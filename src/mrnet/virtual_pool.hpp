// virtual_pool.hpp - N-host virtual pools on the sim engine (PR 7).
//
// The scale tier cannot run 10k real daemons, so it runs 10k virtual ones:
// every host owns a real lease::HeartbeatPublisher, every interior comm
// node a real lease::LeaseAggregator (via mrnet::HierarchicalCass), and
// time advances through sim::Engine — the protocol logic is the production
// code, only the clock and the network hops are simulated. Two modes share
// one driver so the bench can draw the flat-vs-tree crossover:
//
//   flat: every beat and telemetry sample lands on the root directly —
//         O(hosts) root writes, the PR 5 status quo;
//   tree: beats fold through the hierarchical CASS — O(fanout) root
//         writes.
//
// Determinism: all event phases derive from the seed, all time from the
// virtual clock; two same-seed runs must produce byte-identical engine
// traces and equal Stats (tests/sim/test_scale_determinism.cpp), which is
// also what makes BENCH_scale.json reproducible.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mrnet/hierarchy.hpp"
#include "sim/engine.hpp"
#include "util/lease.hpp"
#include "util/rng.hpp"

namespace tdp::mrnet {

struct VirtualPoolConfig {
  int hosts = 100;
  int fanout = 8;
  bool hierarchical = true;  ///< false = flat control
  std::uint64_t seed = 1;
  lease::Config lease;
  /// Per-host telemetry cadence; 0 disables the telemetry plane.
  Micros telemetry_interval_micros = 1'000'000;
  /// Liveness poll cadence (flat monitor poll / cass pump).
  Micros pump_interval_micros = 250'000;
  /// Record engine (time, seq) trace lines and semantic event lines —
  /// memory-heavy at 10k hosts, required by the determinism tier.
  bool log_events = false;

  // Submit->attach latency model (measure_submit_attach): every sender
  // serializes one message per child at `send_cost`, every edge costs one
  // LAN hop plus seeded exponential jitter.
  Micros lan_hop_micros = 150;
  Micros send_cost_micros = 2;
  double jitter_mean_micros = 25.0;
};

class VirtualCassPool {
 public:
  explicit VirtualCassPool(VirtualPoolConfig config);

  /// Runs the pool to `duration_micros` of virtual time (schedules beats,
  /// pumps and telemetry on first call).
  void run(Micros duration_micros);

  /// Schedules a host death (beats stop) at virtual time `when`.
  void kill_host_at(int host, Micros when);
  /// Schedules an interior comm-node death at virtual time `when`
  /// (hierarchical mode only).
  void kill_interior_at(int node, Micros when);

  struct Stats {
    std::uint64_t beats_sent = 0;
    std::uint64_t root_liveness_writes = 0;
    std::uint64_t root_telemetry_writes = 0;
    std::uint64_t summary_publishes = 0;
    std::uint64_t dropped_beats = 0;
    std::uint64_t host_expiries = 0;
    std::uint64_t reparent_events = 0;
    std::uint64_t lease_transitions = 0;
    std::uint64_t events_executed = 0;
    Micros end_micros = 0;

    [[nodiscard]] bool operator==(const Stats&) const = default;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Engine (time, seq) trace + semantic events, in execution order; empty
  /// unless config.log_events.
  [[nodiscard]] const std::vector<std::string>& event_log() const {
    return event_log_;
  }

  [[nodiscard]] const HierarchicalCass* cass() const { return cass_.get(); }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] const std::string& host_name(int host) const {
    return hosts_[static_cast<std::size_t>(host)];
  }
  [[nodiscard]] lease::Health host_health(int host) const;

  struct AttachStats {
    double mean_micros = 0.0;
    double p99_micros = 0.0;
    double max_micros = 0.0;
  };
  /// Submit->attach latency over the current topology: the front-end
  /// multicasts the Figure-6 attach order to every live host (flat: one
  /// serialized send per host; tree: sends fan out level by level) and the
  /// farthest ack closes the handshake. Deterministic for a fixed seed.
  [[nodiscard]] AttachStats measure_submit_attach() const;

 private:
  void schedule_beat(int host, Micros at);
  void schedule_pump(Micros at);
  void schedule_telemetry(Micros at);
  void telemetry_round();
  void log(std::string line);

  VirtualPoolConfig config_;
  sim::Engine engine_;
  sim::VirtualClock clock_;

  std::vector<std::string> hosts_;
  std::vector<bool> host_alive_;
  std::vector<std::unique_ptr<lease::HeartbeatPublisher>> publishers_;

  std::unique_ptr<HierarchicalCass> cass_;  // hierarchical mode
  std::unique_ptr<lease::LeaseMonitor> flat_monitor_;  // flat mode

  bool scheduled_ = false;
  Micros end_micros_ = 0;
  Stats stats_;
  std::vector<std::string> event_log_;
};

}  // namespace tdp::mrnet
