#include "mrnet/overlay.hpp"

#include <algorithm>

namespace tdp::mrnet {

Result<Overlay> Overlay::build(int leaves, int fanout) {
  if (leaves < 1) {
    return make_error(ErrorCode::kInvalidArgument, "leaves must be >= 1");
  }
  if (fanout < 2) {
    return make_error(ErrorCode::kInvalidArgument, "fanout must be >= 2");
  }
  Overlay overlay;
  overlay.leaves_ = leaves;
  overlay.fanout_ = fanout;

  std::vector<int> level(static_cast<std::size_t>(leaves));
  for (int i = 0; i < leaves; ++i) level[static_cast<std::size_t>(i)] = i;
  overlay.parent_.assign(static_cast<std::size_t>(leaves), -1);
  overlay.children_.assign(static_cast<std::size_t>(leaves), {});

  // Ceil-group `fanout` consecutive nodes per parent until one group fits
  // under the root. Interior ids therefore ascend bottom-up, which pump
  // loops exploit: iterating ascending polls children before parents.
  while (static_cast<int>(level.size()) > fanout) {
    std::vector<int> next;
    for (std::size_t i = 0; i < level.size(); i += static_cast<std::size_t>(fanout)) {
      const int node = static_cast<int>(overlay.parent_.size());
      overlay.parent_.push_back(-1);
      overlay.children_.emplace_back();
      const std::size_t end =
          std::min(level.size(), i + static_cast<std::size_t>(fanout));
      for (std::size_t j = i; j < end; ++j) {
        overlay.parent_[static_cast<std::size_t>(level[j])] = node;
        overlay.children_[static_cast<std::size_t>(node)].push_back(level[j]);
      }
      next.push_back(node);
    }
    level = std::move(next);
  }

  const int root = static_cast<int>(overlay.parent_.size());
  overlay.parent_.push_back(-1);
  overlay.children_.emplace_back();
  for (int child : level) {
    overlay.parent_[static_cast<std::size_t>(child)] = root;
    overlay.children_[static_cast<std::size_t>(root)].push_back(child);
  }
  overlay.root_ = root;
  overlay.dead_.assign(overlay.parent_.size(), false);
  return overlay;
}

int Overlay::parent(int node) const {
  if (!valid_node(node) || !alive(node)) return -1;
  return parent_[static_cast<std::size_t>(node)];
}

const std::vector<int>& Overlay::children(int node) const {
  static const std::vector<int> kEmpty;
  if (!valid_node(node)) return kEmpty;
  return children_[static_cast<std::size_t>(node)];
}

std::vector<int> Overlay::interior_nodes() const {
  std::vector<int> nodes;
  for (int node = leaves_; node < root_; ++node) {
    if (alive(node)) nodes.push_back(node);
  }
  return nodes;
}

int Overlay::depth() const {
  int depth = 0;
  for (int leaf = 0; leaf < leaves_; ++leaf) {
    if (!alive(leaf)) continue;
    int hops = 0;
    for (int node = leaf; node != root_; node = parent_[static_cast<std::size_t>(node)]) {
      ++hops;
      if (hops > node_count()) break;  // cycle guard; connected() catches it
    }
    depth = std::max(depth, hops);
  }
  return depth;
}

int Overlay::live_ancestor(int node) const {
  if (!valid_node(node)) return -1;
  int cursor = parent_[static_cast<std::size_t>(node)];
  int steps = 0;
  while (cursor != -1 && !alive(cursor) && steps++ <= node_count()) {
    cursor = parent_[static_cast<std::size_t>(cursor)];
  }
  return cursor == -1 ? root_ : cursor;
}

Result<std::vector<int>> Overlay::kill_node(int node) {
  if (!valid_node(node)) {
    return make_error(ErrorCode::kInvalidArgument, "no such overlay node");
  }
  if (node == root_) {
    return make_error(ErrorCode::kInvalidArgument,
                      "the root (front-end) is outside the fault model");
  }
  if (!alive(node)) {
    return make_error(ErrorCode::kInvalidState, "node already dead");
  }
  dead_[static_cast<std::size_t>(node)] = true;

  // Detach from the (live-ancestor) parent's child list.
  const int old_parent = live_ancestor(node);
  auto& siblings = children_[static_cast<std::size_t>(old_parent)];
  siblings.erase(std::remove(siblings.begin(), siblings.end(), node),
                 siblings.end());

  // Promote orphaned children to the nearest live ancestor.
  std::vector<int> moved = children_[static_cast<std::size_t>(node)];
  children_[static_cast<std::size_t>(node)].clear();
  for (int child : moved) {
    parent_[static_cast<std::size_t>(child)] = old_parent;
    children_[static_cast<std::size_t>(old_parent)].push_back(child);
  }
  return moved;
}

bool Overlay::connected() const {
  for (int leaf = 0; leaf < leaves_; ++leaf) {
    if (!alive(leaf)) continue;
    int cursor = leaf;
    int steps = 0;
    while (cursor != root_) {
      if (!alive(cursor) || steps++ > node_count()) return false;
      cursor = parent_[static_cast<std::size_t>(cursor)];
    }
  }
  return true;
}

std::vector<int> Overlay::reduce_deliveries() const {
  std::vector<int> counts(static_cast<std::size_t>(leaves_), 0);
  // Iterative DFS over the materialized child lists; a node appearing
  // twice (or a cycle) shows up as a live leaf counted twice.
  std::vector<int> stack = {root_};
  std::size_t safety = 0;
  const std::size_t limit = parent_.size() * 2 + 16;
  while (!stack.empty() && safety++ < limit) {
    const int node = stack.back();
    stack.pop_back();
    if (is_leaf(node)) {
      if (alive(node)) ++counts[static_cast<std::size_t>(node)];
      continue;
    }
    for (int child : children_[static_cast<std::size_t>(node)]) {
      stack.push_back(child);
    }
  }
  return counts;
}

}  // namespace tdp::mrnet
