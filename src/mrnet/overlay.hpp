// overlay.hpp - explicit MRNet overlay topology (PR 7).
//
// mrnet.hpp's Tree is a counts-only model of a balanced k-ary tree: enough
// for message accounting, useless for fault injection on *interior* nodes,
// because it has no node identities to kill. The hierarchical CASS needs
// exactly that: kill comm node 137, watch its children re-parent, prove no
// false lease expiry fires for still-alive leaves. This class materializes
// the node graph.
//
// Node ids: leaves are 0..leaves-1; interior nodes are assigned level by
// level bottom-up (deterministically, by ceil-grouping `fanout` consecutive
// nodes); the root is the highest id. Re-parenting on interior death
// promotes the orphaned children to the nearest live ancestor — the same
// repair MPD's ring and MRNet's tree perform when a comm process dies.
#pragma once

#include <vector>

#include "util/status.hpp"

namespace tdp::mrnet {

class Overlay {
 public:
  /// leaves >= 1, fanout >= 2 (same contract as Tree::build).
  static Result<Overlay> build(int leaves, int fanout);

  [[nodiscard]] int leaf_count() const noexcept { return leaves_; }
  [[nodiscard]] int node_count() const noexcept {
    return static_cast<int>(parent_.size());
  }
  [[nodiscard]] int root() const noexcept { return root_; }
  [[nodiscard]] int fanout() const noexcept { return fanout_; }

  [[nodiscard]] bool valid_node(int node) const noexcept {
    return node >= 0 && node < node_count();
  }
  [[nodiscard]] bool is_leaf(int node) const noexcept {
    return node >= 0 && node < leaves_;
  }
  [[nodiscard]] bool is_interior(int node) const noexcept {
    return valid_node(node) && !is_leaf(node) && node != root_;
  }
  [[nodiscard]] bool alive(int node) const {
    return valid_node(node) && !dead_[static_cast<std::size_t>(node)];
  }

  /// Parent id; -1 for the root and for dead nodes.
  [[nodiscard]] int parent(int node) const;
  [[nodiscard]] const std::vector<int>& children(int node) const;
  /// Live interior node ids, ascending (ascending == bottom-up by level).
  [[nodiscard]] std::vector<int> interior_nodes() const;
  /// Longest live-leaf -> root path length in hops.
  [[nodiscard]] int depth() const;
  /// Walks the parent chain from `node` to the first live node (the root
  /// is always live). Returns -1 for invalid input.
  [[nodiscard]] int live_ancestor(int node) const;

  /// Kills a node. A dead leaf just drops out of its parent's child list;
  /// a dead interior node's children re-parent to its nearest live
  /// ancestor (returned, in child-id order). Killing the root is a clean
  /// error — the front-end is not part of the overlay's fault model.
  Result<std::vector<int>> kill_node(int node);

  /// True when every live leaf reaches the root through live nodes — the
  /// fuzz tier's convergence invariant after arbitrary death sequences.
  [[nodiscard]] bool connected() const;

  /// Per-leaf delivery counts of one simulated broadcast/reduction walked
  /// over the materialized child lists. Any live leaf with count != 1 is a
  /// structural bug (missed or double delivery).
  [[nodiscard]] std::vector<int> reduce_deliveries() const;

  Overlay() = default;  // empty overlay; build() is the real constructor

 private:
  int leaves_ = 0;
  int fanout_ = 0;
  int root_ = 0;
  std::vector<int> parent_;
  std::vector<std::vector<int>> children_;
  std::vector<bool> dead_;
};

}  // namespace tdp::mrnet
