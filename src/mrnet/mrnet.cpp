#include "mrnet/mrnet.hpp"

#include <algorithm>
#include <cmath>

#include "util/telemetry.hpp"

namespace tdp::mrnet {

const char* filter_name(Filter filter) noexcept {
  switch (filter) {
    case Filter::kSum: return "sum";
    case Filter::kMin: return "min";
    case Filter::kMax: return "max";
    case Filter::kCount: return "count";
    case Filter::kConcat: return "concat";
    case Filter::kHistMerge: return "histmerge";
  }
  return "?";
}

Tree::Tree(int leaves, int fanout) : leaves_(leaves), fanout_(fanout) {
  leaf_failed_.assign(static_cast<std::size_t>(leaves), false);
  // Count internal nodes of a complete fanout-ary tree over `leaves`
  // positions: successive layers of ceil(n/fanout) until one group is left.
  int level_width = leaves_;
  while (level_width > fanout_) {
    level_width = (level_width + fanout_ - 1) / fanout_;
    internal_ += level_width;
    ++depth_;
  }
  ++depth_;  // the final hop into the root
}

Result<Tree> Tree::build(int leaves, int fanout) {
  if (leaves < 1) {
    return make_error(ErrorCode::kInvalidArgument, "leaves must be >= 1");
  }
  if (fanout < 2) {
    return make_error(ErrorCode::kInvalidArgument, "fanout must be >= 2");
  }
  return Tree(leaves, fanout);
}

int Tree::live_leaves() const {
  return static_cast<int>(std::count(leaf_failed_.begin(), leaf_failed_.end(), false));
}

Status Tree::fail_leaf(int leaf) {
  if (leaf < 0 || leaf >= leaves_) {
    return make_error(ErrorCode::kInvalidArgument, "no such leaf");
  }
  leaf_failed_[static_cast<std::size_t>(leaf)] = true;
  return Status::ok();
}

Status Tree::recover_leaf(int leaf) {
  if (leaf < 0 || leaf >= leaves_) {
    return make_error(ErrorCode::kInvalidArgument, "no such leaf");
  }
  leaf_failed_[static_cast<std::size_t>(leaf)] = false;
  return Status::ok();
}

Tree::BroadcastResult Tree::broadcast() const {
  static telemetry::Counter& broadcasts =
      telemetry::Registry::instance().counter("mrnet.broadcasts");
  broadcasts.inc();
  BroadcastResult result;
  result.hops = depth_;
  result.delivered = live_leaves();
  // Every edge of the tree carries exactly one copy: root -> level1 nodes,
  // ... -> leaves. Total edges = internal nodes + leaves (each node has
  // one inbound edge). The root sends only to its direct children.
  result.messages = internal_ + leaves_;
  int level_width = leaves_;
  while (level_width > fanout_) {
    level_width = (level_width + fanout_ - 1) / fanout_;
  }
  result.root_sends = level_width;
  return result;
}

namespace {

double fold(Filter filter, double acc, double value, bool first) {
  switch (filter) {
    case Filter::kSum: return acc + value;
    case Filter::kMin: return first ? value : std::min(acc, value);
    case Filter::kMax: return first ? value : std::max(acc, value);
    case Filter::kCount: return acc + 1;
    case Filter::kConcat: return acc;       // handled separately
    case Filter::kHistMerge: return acc;    // handled by reduce_histograms
  }
  return acc;
}

}  // namespace

Tree::ReduceResult Tree::reduce(Filter filter,
                                const std::vector<double>& leaf_values) const {
  static telemetry::Counter& reduces =
      telemetry::Registry::instance().counter("mrnet.reduces");
  reduces.inc();
  ReduceResult result;
  result.hops = depth_;
  bool first = true;
  for (int leaf = 0; leaf < leaves_; ++leaf) {
    if (leaf_failed_[static_cast<std::size_t>(leaf)]) {
      ++result.missing;
      continue;
    }
    const double value =
        leaf < static_cast<int>(leaf_values.size())
            ? leaf_values[static_cast<std::size_t>(leaf)]
            : 0.0;
    result.value = fold(filter, result.value, value, first);
    first = false;
    ++result.contributed;
  }
  // Message count: one message per live edge. Leaves send one each; each
  // internal level folds its children into one upward message per node.
  result.messages = result.contributed;
  int level_width = leaves_;
  while (level_width > fanout_) {
    level_width = (level_width + fanout_ - 1) / fanout_;
    result.messages += level_width;
  }
  result.root_receives = level_width;
  return result;
}

Tree::ReduceResult Tree::reduce_concat(
    const std::vector<std::string>& leaf_values) const {
  ReduceResult result = reduce(Filter::kCount, std::vector<double>(
                                                   static_cast<std::size_t>(leaves_),
                                                   1.0));
  result.value = 0.0;
  std::string concat;
  for (int leaf = 0; leaf < leaves_; ++leaf) {
    if (leaf_failed_[static_cast<std::size_t>(leaf)]) continue;
    if (leaf < static_cast<int>(leaf_values.size())) {
      if (!concat.empty()) concat += ',';
      concat += leaf_values[static_cast<std::size_t>(leaf)];
    }
  }
  result.concat = std::move(concat);
  return result;
}

Tree::HistReduceResult Tree::reduce_histograms(
    const std::vector<std::vector<std::uint64_t>>& leaf_buckets) const {
  static telemetry::Counter& reduces =
      telemetry::Registry::instance().counter("mrnet.hist_reduces");
  reduces.inc();
  HistReduceResult result;
  result.hops = depth_;
  for (int leaf = 0; leaf < leaves_; ++leaf) {
    if (leaf_failed_[static_cast<std::size_t>(leaf)]) {
      ++result.missing;
      continue;
    }
    ++result.contributed;
    if (leaf >= static_cast<int>(leaf_buckets.size())) continue;
    const std::vector<std::uint64_t>& buckets =
        leaf_buckets[static_cast<std::size_t>(leaf)];
    if (result.buckets.size() < buckets.size()) {
      result.buckets.resize(buckets.size(), 0);
    }
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      result.buckets[b] += buckets[b];
    }
  }
  // Same edge accounting as reduce(): one message per live edge, one
  // folded message per internal node per level.
  result.messages = result.contributed;
  int level_width = leaves_;
  while (level_width > fanout_) {
    level_width = (level_width + fanout_ - 1) / fanout_;
    result.messages += level_width;
  }
  result.root_receives = level_width;
  return result;
}

Tree::ReduceResult Tree::flat_reduce(Filter filter,
                                     const std::vector<double>& leaf_values) const {
  ReduceResult result;
  result.hops = 1;
  bool first = true;
  for (int leaf = 0; leaf < leaves_; ++leaf) {
    if (leaf_failed_[static_cast<std::size_t>(leaf)]) {
      ++result.missing;
      continue;
    }
    const double value =
        leaf < static_cast<int>(leaf_values.size())
            ? leaf_values[static_cast<std::size_t>(leaf)]
            : 0.0;
    result.value = fold(filter, result.value, value, first);
    first = false;
    ++result.contributed;
  }
  result.messages = result.contributed;
  result.root_receives = result.contributed;  // the scalability problem
  return result;
}

}  // namespace tdp::mrnet
