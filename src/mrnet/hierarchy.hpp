// hierarchy.hpp - the hierarchical CASS (PR 7).
//
// Flat liveness (PR 5) points every daemon's heartbeat at one central
// attrspace: O(hosts) writes land on the root, which caps pool size. Here
// the mrnet overlay carries liveness instead: each interior comm node runs
// a lease::LeaseAggregator over its children and publishes ONE summarized
// beat upward, so the root sees O(fanout) writes regardless of host count.
// Telemetry folds the same way (attr::TelemetryRollup per subtree, merged
// bottom-up, flattened once at the root).
//
// Fault model (mirrors MPD's tree of process managers):
//   - membership: build() seeds a lease on EVERY member at every level, so
//     the tree is born tracking its full host list. A member that dies
//     before its first beat is still detected ttl+grace after build —
//     silence from a never-heard member must not differ from silence from
//     a known one.
//   - leaf (host) death: its beats stop, its parent aggregator's lease
//     expires, the expiry bubbles up as a degraded-subtree summary, and
//     on_host_expired fires at the root (Pool reuses its PR 5 requeue
//     path).
//   - interior node death (kill_interior): the node stops polling and
//     publishing; beats from its children are LOST while it is down (real
//     network semantics). Its own summary lease at its parent expires,
//     which triggers re-parenting: the children promote to the nearest
//     live ancestor and are seeded there fresh from the promotion instant
//     — a live child's next beat lands well inside the ttl (no false
//     expiry), a child that died during the blackout expires ttl+grace
//     after promotion (no lost member).
//
// Not thread-safe: drive observe_host/pump from one thread (the Pool pump
// loop or the sim engine). Internal monitors keep their own leaf locks and
// fire callbacks outside them, same discipline as PR 5.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "attrspace/telemetry_export.hpp"
#include "mrnet/overlay.hpp"
#include "util/clock.hpp"
#include "util/flightrec.hpp"
#include "util/health.hpp"
#include "util/lease.hpp"
#include "util/lease_agg.hpp"
#include "util/status.hpp"

namespace tdp::mrnet {

struct HierarchyConfig {
  /// Overlay fanout (>= 2): the root holds at most this many leases.
  int fanout = 8;
  /// Lease timing shared by hosts and interior summaries.
  lease::Config lease;
  const Clock* clock = &RealClock::instance();
  /// Role used in interior summary beat names:
  /// tdp.liveness.<summary_role>.n<node>.
  std::string summary_role = "cassagg";
};

class HierarchicalCass {
 public:
  /// Fired (outside all locks) when a host's lease expires at whichever
  /// aggregation level holds it.
  using HostExpiredFn = std::function<void(const std::string& host)>;
  /// Optional sink for everything that reaches the root (summary beats,
  /// direct leaf beats in tiny pools, telemetry rollups) — normally the
  /// root AttributeStore.
  using RootWriteFn = std::function<void(const std::string& attribute,
                                         const std::string& value)>;

  static Result<std::unique_ptr<HierarchicalCass>> build(
      const std::vector<std::string>& hosts, HierarchyConfig config);

  void on_host_expired(HostExpiredFn fn) { on_host_expired_ = std::move(fn); }
  void set_root_write(RootWriteFn fn) { root_write_ = std::move(fn); }

  /// One beat from `host` (a name passed to build). Routed to the host
  /// leaf's current parent; lost (counted) if that parent is dead and not
  /// yet re-parented around.
  void observe_host(const std::string& host, const std::string& value = "");

  /// One aggregation round: polls every interior aggregator bottom-up
  /// (summaries published upward as they become due), polls the root
  /// monitor, then processes expiries (host expiry callbacks, dead-subtree
  /// re-parenting). Returns lease transitions observed this round.
  int pump();

  /// Kills an interior comm node (the chaos tier's new scenario). Its
  /// children's beats are lost until the node's own summary lease expires
  /// at the parent and re-parenting runs in pump().
  Status kill_interior(int node);

  /// Live interior node ids (ascending = bottom-up by level).
  [[nodiscard]] std::vector<int> interior_nodes() const;
  /// The interior node currently holding `host`'s lease (the overlay
  /// parent of its leaf; == root() for pools no larger than the fanout).
  [[nodiscard]] int interior_of(const std::string& host) const;
  [[nodiscard]] int root() const { return overlay_.root(); }
  [[nodiscard]] const Overlay& overlay() const { return overlay_; }

  /// Health of `host`'s lease at its current aggregation level; kExpired
  /// if nothing currently tracks it (e.g. mid re-parent, before its first
  /// beat reaches the new parent).
  [[nodiscard]] lease::Health host_health(const std::string& host) const;

  /// True if `host` was in the host list this tree was built over.
  [[nodiscard]] bool member(const std::string& host) const {
    return host_leaf_.count(host) != 0;
  }

  /// Clock reading of `host`'s last recorded beat at its current observer,
  /// or -1 if nothing tracks it (death already detected, or the observer
  /// itself is dead).
  [[nodiscard]] Micros host_last_beat(const std::string& host) const;

  /// Transplants `host`'s lease state from a previous tree after a pool
  /// rebuild: `at >= 0` re-dates the seeded lease to that beat time so the
  /// in-flight detection deadline survives the topology change; `at < 0`
  /// untracks the host so an already-detected death is not re-detected
  /// (the next observed beat re-arms tracking).
  void carry_host_beat(const std::string& host, Micros at);

  /// Pool-wide counts folded from the last summary each root child
  /// reported (leaf children of the root count via their lease directly).
  [[nodiscard]] lease::Summary root_counts() const;

  /// Folds per-host rollups bottom-up over the overlay and writes the
  /// root result through the RootWriteFn under
  /// "tdp.telemetry.rollup.<scope>.". Subtrees under a dead, not-yet-
  /// re-parented interior node are lost, like their beats. Returns
  /// attributes written at the root.
  int rollup_telemetry(
      const std::map<std::string, attr::TelemetryRollup>& per_host,
      const std::string& scope);

  // --- black-box flight recorder + health engine (PR 9) ---

  /// Attaches the tree's flight recorder: interior kills, re-parenting
  /// and host lease expiries land in its ring (recorded outside every
  /// tree/monitor structure, so the recorder's shard mutex stays a leaf).
  void set_recorder(std::shared_ptr<flightrec::Recorder> recorder) {
    recorder_ = std::move(recorder);
  }

  /// Installs the declarative rule set (util/health.hpp grammar) that
  /// rollup_health evaluates at each host's observer. All-or-nothing:
  /// the first parse error is returned and the previous set is kept.
  Status set_health_rules(const std::vector<std::string>& rules);

  /// The health twin of rollup_telemetry: each host's rules run at its
  /// current interior observer, then only folded severities (worst wins)
  /// travel upward. The root writes one tdp.health.<role>.<host> verdict
  /// per host that reached it plus the overall tdp.health.<role> fold.
  /// Hosts under a dead, not-yet-re-parented interior are lost, like
  /// their beats. Rate state is keyed by host, so a re-parent moves the
  /// evaluation point without resetting rate windows. Returns attributes
  /// written at the root.
  int rollup_health(
      const std::map<std::string, std::vector<telemetry::Sample>>& per_host,
      const std::string& role);

  // Stats (the scale tier's assertions).
  [[nodiscard]] std::uint64_t root_liveness_writes() const {
    return root_liveness_writes_;
  }
  [[nodiscard]] std::uint64_t root_telemetry_writes() const {
    return root_telemetry_writes_;
  }
  [[nodiscard]] std::uint64_t summary_publishes() const {
    return summary_publishes_;
  }
  [[nodiscard]] std::uint64_t dropped_beats() const { return dropped_beats_; }
  [[nodiscard]] std::uint64_t reparent_events() const {
    return reparent_events_;
  }
  [[nodiscard]] std::uint64_t host_expiries() const { return host_expiries_; }
  [[nodiscard]] std::uint64_t root_health_writes() const {
    return root_health_writes_;
  }
  /// The overall severity the last rollup_health folded at the root
  /// (kOk before any rollup). The pool feeds this to the schedd's
  /// front door so brownout decisions follow the tree's verdict.
  [[nodiscard]] health::Severity last_health_fold() const {
    return last_health_fold_;
  }

 private:
  explicit HierarchicalCass(HierarchyConfig config);

  [[nodiscard]] std::string summary_attr(int node) const;
  /// Starts lease tracking for every live child of `observer` (build time,
  /// and re-applied to promoted children after re-parenting): the
  /// membership invariant is that every live member is tracked SOMEWHERE
  /// at all times, so even a member that never beats is detected.
  void seed_children(int observer);
  Status route_summary(int from_node, const std::string& attribute,
                       const std::string& value);
  void root_observe(const std::string& attribute, const std::string& value);
  void process_pending();

  HierarchyConfig config_;
  Overlay overlay_;
  std::vector<std::string> hosts_;
  std::map<std::string, int> host_leaf_;
  std::map<std::string, int> summary_node_;

  /// One aggregator per live interior node; erased on kill_interior (a
  /// dead node neither polls nor publishes).
  std::map<int, std::unique_ptr<lease::LeaseAggregator>> aggregators_;
  lease::LeaseMonitor root_monitor_;
  /// Last summary value seen per root child (for root_counts()).
  std::map<std::string, lease::Summary> root_summaries_;

  HostExpiredFn on_host_expired_;
  RootWriteFn root_write_;

  /// Filled by lease transition callbacks during pump(), drained by
  /// process_pending(): (observing node, expired child name).
  std::vector<std::pair<int, std::string>> pending_expired_hosts_;
  std::vector<std::pair<int, std::string>> pending_dead_summaries_;

  std::uint64_t root_liveness_writes_ = 0;
  std::uint64_t root_telemetry_writes_ = 0;
  std::uint64_t summary_publishes_ = 0;
  std::uint64_t dropped_beats_ = 0;
  std::uint64_t reparent_events_ = 0;
  std::uint64_t host_expiries_ = 0;
  std::uint64_t root_health_writes_ = 0;

  /// PR 9: the tree's flight recorder and the per-host health engines
  /// rollup_health drives (engines hold the rate windows, hence per host
  /// and not per observer node).
  std::shared_ptr<flightrec::Recorder> recorder_;
  std::vector<health::Rule> health_rules_;
  std::map<std::string, std::unique_ptr<health::Engine>> health_engines_;
  health::Severity last_health_fold_ = health::Severity::kOk;
};

}  // namespace tdp::mrnet
