#include "mrnet/hierarchy.hpp"

#include <algorithm>
#include <optional>

#include "attrspace/attr_protocol.hpp"

namespace tdp::mrnet {

HierarchicalCass::HierarchicalCass(HierarchyConfig config)
    : config_(std::move(config)),
      root_monitor_(config_.lease, config_.clock) {}

std::string HierarchicalCass::summary_attr(int node) const {
  return lease::liveness_attr(config_.summary_role,
                              "n" + std::to_string(node));
}

Result<std::unique_ptr<HierarchicalCass>> HierarchicalCass::build(
    const std::vector<std::string>& hosts, HierarchyConfig config) {
  if (hosts.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "hierarchical CASS needs at least one host");
  }
  auto overlay = Overlay::build(static_cast<int>(hosts.size()), config.fanout);
  TDP_RETURN_IF_ERROR(overlay.status());
  // No make_unique: the constructor is private.
  std::unique_ptr<HierarchicalCass> cass(
      new HierarchicalCass(std::move(config)));
  cass->overlay_ = std::move(overlay.value());
  cass->hosts_ = hosts;
  for (int leaf = 0; leaf < static_cast<int>(hosts.size()); ++leaf) {
    const auto [it, inserted] =
        cass->host_leaf_.emplace(hosts[static_cast<std::size_t>(leaf)], leaf);
    if (!inserted) {
      return make_error(ErrorCode::kInvalidArgument,
                        "duplicate host name: " + it->first);
    }
  }

  HierarchicalCass* self = cass.get();
  for (int node : cass->overlay_.interior_nodes()) {
    const std::string attr = cass->summary_attr(node);
    cass->summary_node_[attr] = node;
    auto aggregator = std::make_unique<lease::LeaseAggregator>(
        attr, cass->config_.lease, cass->config_.clock,
        [self, node](const std::string& attribute, const std::string& value) {
          return self->route_summary(node, attribute, value);
        });
    aggregator->on_child_transition(
        [self, node](const std::string& name, lease::Health /*from*/,
                     lease::Health to) {
          if (to != lease::Health::kExpired) return;
          if (self->summary_node_.count(name) != 0) {
            self->pending_dead_summaries_.emplace_back(node, name);
          } else {
            self->pending_expired_hosts_.emplace_back(node, name);
          }
        });
    cass->aggregators_.emplace(node, std::move(aggregator));
  }
  const int root = cass->overlay_.root();
  cass->root_monitor_.on_transition(
      [self, root](const std::string& name, lease::Health /*from*/,
                   lease::Health to) {
        if (to != lease::Health::kExpired) return;
        if (self->summary_node_.count(name) != 0) {
          self->pending_dead_summaries_.emplace_back(root, name);
        } else {
          self->pending_expired_hosts_.emplace_back(root, name);
        }
      });

  // The tree is BORN holding a lease on every member. Without this, a host
  // (or interior node) that goes silent before its first beat reaches its
  // parent is never tracked, so its death is never detected — silence from
  // a never-heard member must be indistinguishable from silence from a
  // known one. Membership is the host list passed here, not "whoever has
  // spoken"; the seed counts as the member's first beat.
  for (int node : cass->overlay_.interior_nodes()) {
    cass->seed_children(node);
  }
  cass->seed_children(root);
  return cass;
}

void HierarchicalCass::seed_children(int observer) {
  lease::LeaseAggregator* aggregator = nullptr;
  if (observer != overlay_.root()) {
    const auto it = aggregators_.find(observer);
    if (it == aggregators_.end()) return;  // dead node: nothing to seed
    aggregator = it->second.get();
  }
  for (int child : overlay_.children(observer)) {
    std::string name;
    if (overlay_.is_leaf(child)) {
      name = hosts_[static_cast<std::size_t>(child)];
    } else {
      // Seeded whether the interior child is alive or dead: a dead child's
      // never-beaten summary lease is the only remaining way its death can
      // be observed (see the re-seed in process_pending).
      name = summary_attr(child);
    }
    if (aggregator != nullptr) {
      aggregator->observe_child(name);
    } else {
      root_monitor_.observe(name);
    }
  }
}

void HierarchicalCass::root_observe(const std::string& attribute,
                                    const std::string& value) {
  root_monitor_.observe(attribute);
  ++root_liveness_writes_;
  if (auto parsed = lease::parse_summary(value); parsed.is_ok()) {
    root_summaries_[attribute] = parsed.value();
  }
  if (root_write_) root_write_(attribute, value);
}

void HierarchicalCass::observe_host(const std::string& host,
                                    const std::string& value) {
  const auto it = host_leaf_.find(host);
  if (it == host_leaf_.end()) return;
  const int parent = overlay_.parent(it->second);
  if (parent == overlay_.root()) {
    root_observe(host, value);
    return;
  }
  const auto agg = aggregators_.find(parent);
  if (agg == aggregators_.end()) {
    // The parent comm node is dead and not yet re-parented around: the
    // beat is lost in flight, exactly like a real dead relay.
    ++dropped_beats_;
    return;
  }
  agg->second->observe_child(host);
}

Status HierarchicalCass::route_summary(int from_node,
                                       const std::string& attribute,
                                       const std::string& value) {
  ++summary_publishes_;
  const int parent = overlay_.parent(from_node);
  if (parent == overlay_.root()) {
    root_observe(attribute, value);
    return Status::ok();
  }
  const auto agg = aggregators_.find(parent);
  if (agg == aggregators_.end()) {
    ++dropped_beats_;
    return Status::ok();  // lost in flight, not an error at the sender
  }
  agg->second->observe_child(attribute);
  return Status::ok();
}

int HierarchicalCass::pump() {
  int transitions = 0;
  // Ascending node id == bottom-up by construction, so a summary freshly
  // published by a child aggregator is observed by its parent in the SAME
  // round — degradation news travels one full path per pump, not one
  // level.
  for (auto& [node, aggregator] : aggregators_) {
    transitions += aggregator->poll();
  }
  transitions += root_monitor_.poll();
  process_pending();
  return transitions;
}

void HierarchicalCass::process_pending() {
  std::vector<std::pair<int, std::string>> hosts;
  hosts.swap(pending_expired_hosts_);
  std::vector<std::pair<int, std::string>> summaries;
  summaries.swap(pending_dead_summaries_);

  for (const auto& [observer, host] : hosts) {
    // Stop tracking before the callback: the callback may revive the host
    // (requeue + restart), and a fresh observe must restart from kAlive.
    if (observer == overlay_.root()) {
      root_monitor_.forget(host);
      root_summaries_.erase(host);
    } else if (const auto it = aggregators_.find(observer);
               it != aggregators_.end()) {
      it->second->remove_child(host);
    }
    ++host_expiries_;
    if (recorder_) {
      recorder_->lease("expired", "host=" + host + " observer=" +
                                      std::to_string(observer));
    }
    if (on_host_expired_) on_host_expired_(host);
  }

  for (const auto& [observer, attr] : summaries) {
    const auto node_it = summary_node_.find(attr);
    if (node_it == summary_node_.end()) continue;
    const int dead = node_it->second;
    if (observer == overlay_.root()) {
      root_monitor_.forget(attr);
      root_summaries_.erase(attr);
    } else if (const auto it = aggregators_.find(observer);
               it != aggregators_.end()) {
      it->second->remove_child(attr);
    }
    aggregators_.erase(dead);  // silent death without kill_interior
    if (overlay_.alive(dead)) {
      auto moved = overlay_.kill_node(dead);
      if (moved.is_ok()) {
        ++reparent_events_;
        if (recorder_) {
          recorder_->state("reparent",
                           "dead=n" + std::to_string(dead) + " moved=" +
                               std::to_string(moved.value().size()));
        }
        // Seed every promoted child at its new parent, fresh from NOW: the
        // membership-always-tracked invariant must survive re-parenting, or
        // a child that died during the blackout would vanish untracked. A
        // live child's next beat lands well inside the ttl, so the fresh
        // lease can never falsely expire; a dead one is detected ttl+grace
        // from promotion.
        for (int child : moved.value()) {
          const int parent = overlay_.parent(child);
          if (parent < 0) continue;
          std::string name;
          if (overlay_.is_leaf(child)) {
            name = hosts_[static_cast<std::size_t>(child)];
          } else {
            // A DEAD interior child is seeded at the new parent too: the
            // erased aggregator here was the only holder of its summary
            // lease, so this fresh, never-beaten lease is the only way its
            // death can still be observed — it expires ttl+grace after
            // promotion and the child's own kill_node/re-parent runs then.
            // Skipping it would strand its whole subtree when nested
            // interior nodes die within one ttl+grace window (correlated
            // rack failure).
            name = summary_attr(child);
          }
          if (parent == overlay_.root()) {
            root_monitor_.observe(name);
          } else if (const auto agg = aggregators_.find(parent);
                     agg != aggregators_.end()) {
            agg->second->observe_child(name);
          }
          // A dead new parent tracks nothing; when ITS death is detected
          // these children move (and seed) again.
        }
      }
    }
  }
}

Status HierarchicalCass::kill_interior(int node) {
  if (!overlay_.is_interior(node)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "not an interior overlay node");
  }
  if (aggregators_.erase(node) == 0) {
    return make_error(ErrorCode::kInvalidState, "node already dead");
  }
  if (recorder_) {
    recorder_->state("kill-interior", "node=n" + std::to_string(node));
  }
  // The overlay edge stays until the node's summary lease expires at its
  // parent: death is DETECTED (lease), never announced.
  return Status::ok();
}

std::vector<int> HierarchicalCass::interior_nodes() const {
  std::vector<int> nodes;
  nodes.reserve(aggregators_.size());
  for (const auto& [node, aggregator] : aggregators_) nodes.push_back(node);
  return nodes;
}

int HierarchicalCass::interior_of(const std::string& host) const {
  const auto it = host_leaf_.find(host);
  if (it == host_leaf_.end()) return -1;
  return overlay_.parent(it->second);
}

lease::Health HierarchicalCass::host_health(const std::string& host) const {
  const auto it = host_leaf_.find(host);
  if (it == host_leaf_.end()) return lease::Health::kExpired;
  const int parent = overlay_.parent(it->second);
  if (parent == overlay_.root()) {
    return root_monitor_.tracked(host) ? root_monitor_.health(host)
                                       : lease::Health::kExpired;
  }
  const auto agg = aggregators_.find(parent);
  if (agg == aggregators_.end() || !agg->second->tracks(host)) {
    return lease::Health::kExpired;
  }
  return agg->second->child_health(host);
}

Micros HierarchicalCass::host_last_beat(const std::string& host) const {
  const auto it = host_leaf_.find(host);
  if (it == host_leaf_.end()) return -1;
  const int parent = overlay_.parent(it->second);
  if (parent == overlay_.root()) {
    return root_monitor_.tracked(host) ? root_monitor_.last_beat(host) : -1;
  }
  const auto agg = aggregators_.find(parent);
  if (agg == aggregators_.end()) return -1;
  return agg->second->child_last_beat(host);
}

void HierarchicalCass::carry_host_beat(const std::string& host, Micros at) {
  const auto it = host_leaf_.find(host);
  if (it == host_leaf_.end()) return;
  const int parent = overlay_.parent(it->second);
  if (parent == overlay_.root()) {
    if (at < 0) {
      root_monitor_.forget(host);
      root_summaries_.erase(host);
    } else {
      root_monitor_.observe_at(host, at);
    }
    return;
  }
  const auto agg = aggregators_.find(parent);
  if (agg == aggregators_.end()) return;
  if (at < 0) {
    agg->second->remove_child(host);
  } else {
    agg->second->observe_child_at(host, at);
  }
}

lease::Summary HierarchicalCass::root_counts() const {
  lease::Summary folded;
  for (const auto& [attr, summary] : root_summaries_) {
    folded.alive += summary.alive;
    folded.degraded += summary.degraded;
    folded.expired += summary.expired;
    folded.total += summary.total;
  }
  // Leaf hosts beating directly at the root (pools <= fanout) have no
  // summary value; count them by lease freshness.
  for (const auto& [host, leaf] : host_leaf_) {
    if (overlay_.parent(leaf) != overlay_.root()) continue;
    if (!root_monitor_.tracked(host)) continue;
    switch (root_monitor_.health(host)) {
      case lease::Health::kAlive: ++folded.alive; break;
      case lease::Health::kDegraded: ++folded.degraded; break;
      case lease::Health::kExpired: ++folded.expired; break;
    }
    ++folded.total;
  }
  return folded;
}

int HierarchicalCass::rollup_telemetry(
    const std::map<std::string, attr::TelemetryRollup>& per_host,
    const std::string& scope) {
  // Fold bottom-up: ascending interior ids guarantee children are merged
  // before their parent reads them. A dead (no-aggregator) interior node
  // contributes nothing — its subtree's telemetry is lost with its beats.
  std::map<int, attr::TelemetryRollup> per_node;
  auto leaf_contribution = [&](int leaf) -> const attr::TelemetryRollup* {
    const auto it = per_host.find(hosts_[static_cast<std::size_t>(leaf)]);
    return it == per_host.end() ? nullptr : &it->second;
  };
  auto fold_children = [&](int node, attr::TelemetryRollup* out) {
    for (int child : overlay_.children(node)) {
      if (overlay_.is_leaf(child)) {
        if (const attr::TelemetryRollup* rollup = leaf_contribution(child)) {
          out->merge(*rollup);
        }
      } else if (aggregators_.count(child) != 0) {
        out->merge(per_node[child]);
      }
    }
  };
  for (const auto& [node, aggregator] : aggregators_) {
    fold_children(node, &per_node[node]);
  }
  attr::TelemetryRollup root_rollup;
  fold_children(overlay_.root(), &root_rollup);

  const std::string prefix =
      std::string(attr::kTelemetryPrefix) + "rollup." + scope + ".";
  int written = 0;
  for (const auto& [attribute, value] : root_rollup.flatten(prefix)) {
    ++root_telemetry_writes_;
    ++written;
    if (root_write_) root_write_(attribute, value);
  }
  return written;
}

Status HierarchicalCass::set_health_rules(const std::vector<std::string>& rules) {
  std::vector<health::Rule> parsed;
  parsed.reserve(rules.size());
  for (const std::string& text : rules) {
    auto rule = health::parse_rule(text);
    TDP_RETURN_IF_ERROR(rule.status());
    parsed.push_back(std::move(rule.value()));
  }
  health_rules_ = std::move(parsed);
  // Engines hold rules by value, so a new rule set retires every engine;
  // rate windows restart (a rule change redefines what the rate means).
  health_engines_.clear();
  return Status::ok();
}

int HierarchicalCass::rollup_health(
    const std::map<std::string, std::vector<telemetry::Sample>>& per_host,
    const std::string& role) {
  // Same fold shape as rollup_telemetry — ascending interior ids, dead
  // subtrees lost — but the payload is (severity, per-host verdicts) and
  // the merge operator is health::fold (worst wins). The full rule
  // evaluation happens once per host, at its current observer; only the
  // verdict travels upward.
  struct NodeFold {
    health::Severity severity = health::Severity::kOk;
    std::vector<std::pair<std::string, health::Report>> reports;
  };
  const Micros now = config_.clock->now_micros();
  auto evaluate_host =
      [&](const std::string& host) -> std::optional<health::Report> {
    const auto samples = per_host.find(host);
    if (samples == per_host.end()) return std::nullopt;
    std::unique_ptr<health::Engine>& engine = health_engines_[host];
    if (!engine) {
      engine = std::make_unique<health::Engine>();
      for (const health::Rule& rule : health_rules_) engine->add_rule(rule);
    }
    return engine->evaluate(samples->second, now);
  };
  std::map<int, NodeFold> per_node;
  auto fold_children = [&](int node, NodeFold* out) {
    for (int child : overlay_.children(node)) {
      if (overlay_.is_leaf(child)) {
        const std::string& host = hosts_[static_cast<std::size_t>(child)];
        if (auto report = evaluate_host(host)) {
          out->severity = health::fold(out->severity, report->severity);
          out->reports.emplace_back(host, std::move(*report));
        }
      } else if (aggregators_.count(child) != 0) {
        NodeFold& sub = per_node[child];
        out->severity = health::fold(out->severity, sub.severity);
        for (auto& entry : sub.reports) out->reports.push_back(std::move(entry));
      }
    }
  };
  for (const auto& [node, aggregator] : aggregators_) {
    fold_children(node, &per_node[node]);
  }
  NodeFold root_fold;
  fold_children(overlay_.root(), &root_fold);
  last_health_fold_ = root_fold.severity;

  int written = 0;
  auto write = [&](const std::string& attribute, const std::string& value) {
    ++root_health_writes_;
    ++written;
    if (root_write_) root_write_(attribute, value);
  };
  for (const auto& [host, report] : root_fold.reports) {
    write(health::health_attr(role, host),
          report.encode());  // NOLINT: health report text, not a Message codec
  }
  write(std::string(health::kHealthPrefix) + role,
        health::severity_name(root_fold.severity));
  return written;
}

}  // namespace tdp::mrnet
