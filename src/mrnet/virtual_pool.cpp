#include "mrnet/virtual_pool.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

namespace tdp::mrnet {

namespace {

/// Zero-padded host names keep every name-keyed map in index order, so
/// iteration order (and therefore event order) is seed-stable.
std::string make_host_name(int index) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "h%06d", index);
  return buffer;
}

}  // namespace

VirtualCassPool::VirtualCassPool(VirtualPoolConfig config)
    : config_(config), clock_(engine_) {
  hosts_.reserve(static_cast<std::size_t>(config_.hosts));
  for (int i = 0; i < config_.hosts; ++i) hosts_.push_back(make_host_name(i));
  host_alive_.assign(static_cast<std::size_t>(config_.hosts), true);

  if (config_.hierarchical) {
    HierarchyConfig hierarchy;
    hierarchy.fanout = config_.fanout;
    hierarchy.lease = config_.lease;
    hierarchy.clock = &clock_;
    cass_ = HierarchicalCass::build(hosts_, hierarchy).value();
    cass_->on_host_expired([this](const std::string& host) {
      ++stats_.host_expiries;
      log("t=" + std::to_string(engine_.now()) + " expired " + host);
    });
  } else {
    flat_monitor_ =
        std::make_unique<lease::LeaseMonitor>(config_.lease, &clock_);
    flat_monitor_->on_transition([this](const std::string& name,
                                        lease::Health /*from*/,
                                        lease::Health to) {
      if (to != lease::Health::kExpired) return;
      ++stats_.host_expiries;
      flat_monitor_->forget(name);
      log("t=" + std::to_string(engine_.now()) + " expired " + name);
    });
  }

  publishers_.reserve(hosts_.size());
  for (int i = 0; i < config_.hosts; ++i) {
    const std::string& host = hosts_[static_cast<std::size_t>(i)];
    lease::HeartbeatPublisher::PutFn put;
    if (config_.hierarchical) {
      put = [this, &host](const std::string& /*attribute*/,
                          const std::string& value) {
        ++stats_.beats_sent;
        cass_->observe_host(host, value);
        return Status::ok();
      };
    } else {
      put = [this, &host](const std::string& /*attribute*/,
                          const std::string& /*value*/) {
        ++stats_.beats_sent;
        ++stats_.root_liveness_writes;
        flat_monitor_->observe(host);
        return Status::ok();
      };
    }
    publishers_.push_back(std::make_unique<lease::HeartbeatPublisher>(
        host, config_.lease, &clock_, std::move(put)));
  }
}

void VirtualCassPool::log(std::string line) {
  if (config_.log_events) event_log_.push_back(std::move(line));
}

void VirtualCassPool::schedule_beat(int host, Micros at) {
  engine_.schedule_at(at, [this, host] {
    if (engine_.now() >= end_micros_) return;
    // A killed host's beat chain ends here instead of re-arming no-op
    // events for the rest of the run (kills are seed-scheduled, so never
    // re-arming does not perturb determinism; hosts are never revived).
    if (!host_alive_[static_cast<std::size_t>(host)]) return;
    (void)publishers_[static_cast<std::size_t>(host)]->beat_now();
    schedule_beat(host, engine_.now() + config_.lease.beat_interval_micros);
  });
}

void VirtualCassPool::schedule_pump(Micros at) {
  engine_.schedule_at(at, [this] {
    if (engine_.now() >= end_micros_) return;
    int transitions = 0;
    if (cass_) {
      transitions = cass_->pump();
    } else {
      transitions = flat_monitor_->poll();
    }
    stats_.lease_transitions += static_cast<std::uint64_t>(transitions);
    if (transitions != 0) {
      log("t=" + std::to_string(engine_.now()) + " pump transitions=" +
          std::to_string(transitions));
    }
    schedule_pump(engine_.now() + config_.pump_interval_micros);
  });
}

void VirtualCassPool::telemetry_round() {
  // Synthetic but deterministic per-host metrics: one counter-like scalar
  // and one log2 histogram contribution, both pure functions of (host,
  // virtual time), so same-seed runs roll up identical values.
  const Micros now = engine_.now();
  if (cass_) {
    std::map<std::string, attr::TelemetryRollup> per_host;
    for (int i = 0; i < config_.hosts; ++i) {
      if (!host_alive_[static_cast<std::size_t>(i)]) continue;
      attr::TelemetryRollup& rollup =
          per_host[hosts_[static_cast<std::size_t>(i)]];
      rollup.add_value("work.items",
                       static_cast<double>((i * 7 + now / 1000) % 101));
      std::vector<std::uint64_t> buckets(16, 0);
      buckets[static_cast<std::size_t>((i + now / 1000) % 16)] = 1;
      rollup.add_histogram("work.latency_us", buckets,
                           static_cast<std::uint64_t>(i % 997));
    }
    const int written = cass_->rollup_telemetry(per_host, "pool");
    log("t=" + std::to_string(now) + " rollup attrs=" +
        std::to_string(written));
  } else {
    // Flat control: every host flattens its own sample at the root.
    int written = 0;
    for (int i = 0; i < config_.hosts; ++i) {
      if (!host_alive_[static_cast<std::size_t>(i)]) continue;
      attr::TelemetryRollup rollup;
      rollup.add_value("work.items",
                       static_cast<double>((i * 7 + now / 1000) % 101));
      std::vector<std::uint64_t> buckets(16, 0);
      buckets[static_cast<std::size_t>((i + now / 1000) % 16)] = 1;
      rollup.add_histogram("work.latency_us", buckets,
                           static_cast<std::uint64_t>(i % 997));
      const auto pairs = rollup.flatten("tdp.telemetry.rollup.pool." +
                                        hosts_[static_cast<std::size_t>(i)] +
                                        ".");
      written += static_cast<int>(pairs.size());
    }
    stats_.root_telemetry_writes += static_cast<std::uint64_t>(written);
    log("t=" + std::to_string(now) + " rollup attrs=" +
        std::to_string(written));
  }
}

void VirtualCassPool::schedule_telemetry(Micros at) {
  engine_.schedule_at(at, [this] {
    if (engine_.now() >= end_micros_) return;
    telemetry_round();
    schedule_telemetry(engine_.now() + config_.telemetry_interval_micros);
  });
}

void VirtualCassPool::run(Micros duration_micros) {
  end_micros_ = duration_micros;
  if (!scheduled_) {
    scheduled_ = true;
    if (config_.log_events) {
      engine_.set_trace([this](const sim::Engine::TraceEntry& entry) {
        event_log_.push_back("e " + std::to_string(entry.time) + " " +
                             std::to_string(entry.seq));
      });
    }
    // Beat phases are spread deterministically from the seed so the root
    // is not hit by config.hosts simultaneous writes at t=0.
    Rng rng(config_.seed);
    for (int i = 0; i < config_.hosts; ++i) {
      schedule_beat(i, static_cast<Micros>(rng.next_below(static_cast<std::uint64_t>(
                           config_.lease.beat_interval_micros))));
    }
    schedule_pump(config_.pump_interval_micros);
    if (config_.telemetry_interval_micros > 0) {
      schedule_telemetry(config_.telemetry_interval_micros);
    }
  }
  engine_.run_until(duration_micros);

  stats_.events_executed = engine_.executed();
  stats_.end_micros = engine_.now();
  if (cass_) {
    stats_.root_liveness_writes = cass_->root_liveness_writes();
    stats_.root_telemetry_writes = cass_->root_telemetry_writes();
    stats_.summary_publishes = cass_->summary_publishes();
    stats_.dropped_beats = cass_->dropped_beats();
    stats_.reparent_events = cass_->reparent_events();
  }
}

void VirtualCassPool::kill_host_at(int host, Micros when) {
  engine_.schedule_at(when, [this, host] {
    host_alive_[static_cast<std::size_t>(host)] = false;
    log("t=" + std::to_string(engine_.now()) + " kill_host " +
        hosts_[static_cast<std::size_t>(host)]);
  });
}

void VirtualCassPool::kill_interior_at(int node, Micros when) {
  engine_.schedule_at(when, [this, node] {
    if (!cass_) return;
    (void)cass_->kill_interior(node);
    log("t=" + std::to_string(engine_.now()) + " kill_interior n" +
        std::to_string(node));
  });
}

lease::Health VirtualCassPool::host_health(int host) const {
  const std::string& name = hosts_[static_cast<std::size_t>(host)];
  if (cass_) return cass_->host_health(name);
  return flat_monitor_->tracked(name) ? flat_monitor_->health(name)
                                      : lease::Health::kExpired;
}

VirtualCassPool::AttachStats VirtualCassPool::measure_submit_attach() const {
  // The front-end multicasts one attach order per live host and waits for
  // the farthest ack. Every sender serializes its sends (k-th child waits
  // k send costs); every edge costs one LAN hop + jitter, and the ack
  // returns over the same path without the serialization penalty. Flat
  // mode is the degenerate one-level tree: the root serializes config.hosts
  // sends, which is exactly the O(hosts) term the hierarchy removes.
  Rng rng(config_.seed ^ 0x5ca1ab1eULL);
  auto hop = [&]() {
    return static_cast<double>(config_.lan_hop_micros) +
           rng.next_exponential(config_.jitter_mean_micros);
  };
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(config_.hosts));

  if (!config_.hierarchical || cass_ == nullptr) {
    for (int i = 0; i < config_.hosts; ++i) {
      if (!host_alive_[static_cast<std::size_t>(i)]) continue;
      const double request =
          static_cast<double>((i + 1) * config_.send_cost_micros) + hop();
      latencies.push_back(request + hop());  // + ack
    }
  } else {
    const Overlay& overlay = cass_->overlay();
    // BFS arrival times from the root over the materialized topology.
    std::vector<double> arrival(
        static_cast<std::size_t>(overlay.node_count()), -1.0);
    std::vector<int> frontier = {overlay.root()};
    arrival[static_cast<std::size_t>(overlay.root())] = 0.0;
    while (!frontier.empty()) {
      std::vector<int> next;
      for (int node : frontier) {
        int slot = 0;
        for (int child : overlay.children(node)) {
          const double when =
              arrival[static_cast<std::size_t>(node)] +
              static_cast<double>((++slot) * config_.send_cost_micros) + hop();
          arrival[static_cast<std::size_t>(child)] = when;
          if (!overlay.is_leaf(child)) next.push_back(child);
        }
      }
      frontier = std::move(next);
    }
    const int depth = std::max(1, overlay.depth());
    for (int i = 0; i < config_.hosts; ++i) {
      if (!host_alive_[static_cast<std::size_t>(i)]) continue;
      if (arrival[static_cast<std::size_t>(i)] < 0.0) continue;
      double ack = 0.0;
      for (int d = 0; d < depth; ++d) ack += hop();
      latencies.push_back(arrival[static_cast<std::size_t>(i)] + ack);
    }
  }

  AttachStats stats;
  if (latencies.empty()) return stats;
  std::sort(latencies.begin(), latencies.end());
  double sum = 0.0;
  for (double v : latencies) sum += v;
  stats.mean_micros = sum / static_cast<double>(latencies.size());
  const std::size_t p99_index = std::min(
      latencies.size() - 1,
      static_cast<std::size_t>(
          std::ceil(0.99 * static_cast<double>(latencies.size())) - 1));
  stats.p99_micros = latencies[p99_index];
  stats.max_micros = latencies.back();
  return stats;
}

}  // namespace tdp::mrnet
