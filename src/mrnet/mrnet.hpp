// mrnet.hpp - MRNet-lite: a software multicast/reduction network overlay.
//
// Section 1's Auxiliary Services requirement: "software multicast/
// reduction networks are crucial to scalable tool use [the paper cites
// MRNet, SC'03]. The RM must be aware of and willing to launch this second
// kind of non-application entity." MiniCondor launches the comm nodes via
// the +AuxServiceCmd submit extension; this module implements what those
// nodes do: a balanced k-ary tree over the tool daemons that carries
// broadcasts down (front-end -> daemons) and reductions up (daemon values
// folded by a filter at each internal node).
//
// Every operation reports message and hop counts, which the S5 bench uses
// to reproduce the paper's cited motivation: tree aggregation beats a flat
// gather once the daemon count is large, because the root handles fanout
// messages instead of N.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace tdp::mrnet {

/// Reduction filters applied at each internal node. kHistMerge folds
/// per-leaf log2 histogram bucket vectors elementwise (see
/// reduce_histograms) so the root can recompute exact-within-bucket
/// percentiles over the whole pool — the telemetry-rollup path of the
/// hierarchical CASS.
enum class Filter : std::uint8_t {
  kSum = 0,
  kMin,
  kMax,
  kCount,
  kConcat,
  kHistMerge,
};

const char* filter_name(Filter filter) noexcept;

/// A balanced k-ary overlay with `leaves` backend positions.
class Tree {
 public:
  /// fanout >= 2; leaves >= 1.
  static Result<Tree> build(int leaves, int fanout);

  [[nodiscard]] int leaves() const noexcept { return leaves_; }
  [[nodiscard]] int fanout() const noexcept { return fanout_; }
  /// Internal (non-leaf, non-root counted separately) node count.
  [[nodiscard]] int internal_nodes() const noexcept { return internal_; }
  /// Tree height in hops from root to leaf.
  [[nodiscard]] int depth() const noexcept { return depth_; }
  /// Total processes the RM must launch for this overlay (internal comm
  /// nodes; leaves live inside the tool daemons, the root in the
  /// front-end).
  [[nodiscard]] int comm_processes() const noexcept { return internal_; }

  struct BroadcastResult {
    int messages = 0;       ///< total point-to-point sends
    int hops = 0;           ///< root-to-leaf path length
    int root_sends = 0;     ///< messages the root itself had to send
    int delivered = 0;      ///< leaves reached
  };

  /// Simulates a broadcast to all live leaves.
  [[nodiscard]] BroadcastResult broadcast() const;

  struct ReduceResult {
    double value = 0.0;        ///< folded result (numeric filters)
    std::string concat;        ///< folded result (kConcat)
    int messages = 0;          ///< total point-to-point sends
    int hops = 0;              ///< leaf-to-root path length (critical path)
    int root_receives = 0;     ///< messages arriving at the root
    int contributed = 0;       ///< live leaves that contributed
    int missing = 0;           ///< failed leaves skipped
  };

  /// Folds `leaf_values[i]` (i < leaves) up the tree with `filter`.
  /// Failed leaves/subtrees are skipped and counted in `missing` — the
  /// paper's fault-model requirement that the RM/tool sees partial
  /// aggregates rather than hangs.
  [[nodiscard]] ReduceResult reduce(Filter filter,
                                    const std::vector<double>& leaf_values) const;

  /// String reduction (kConcat): values joined in leaf order with ','.
  [[nodiscard]] ReduceResult reduce_concat(
      const std::vector<std::string>& leaf_values) const;

  struct HistReduceResult {
    std::vector<std::uint64_t> buckets;  ///< elementwise-summed buckets
    int messages = 0;
    int hops = 0;
    int root_receives = 0;
    int contributed = 0;
    int missing = 0;
  };

  /// Histogram reduction (kHistMerge): folds `leaf_buckets[i]` elementwise
  /// up the tree. Bucket vectors may differ in length (short ones are
  /// zero-extended); failed leaves are skipped like reduce().
  [[nodiscard]] HistReduceResult reduce_histograms(
      const std::vector<std::vector<std::uint64_t>>& leaf_buckets) const;

  /// Marks a leaf as failed; subsequent operations skip it.
  Status fail_leaf(int leaf);
  Status recover_leaf(int leaf);
  [[nodiscard]] int live_leaves() const;

  /// A flat (no-tree) gather for the tree-vs-flat comparison: the root
  /// receives one message per live leaf directly.
  [[nodiscard]] ReduceResult flat_reduce(Filter filter,
                                         const std::vector<double>& leaf_values) const;

 private:
  Tree(int leaves, int fanout);

  /// Number of children groups at each level; we only need counts, not an
  /// explicit node graph, because the tree is balanced and complete.
  int leaves_;
  int fanout_;
  int internal_ = 0;
  int depth_ = 0;
  std::vector<bool> leaf_failed_;
};

}  // namespace tdp::mrnet
