#include "condor/master.hpp"

#include <algorithm>
#include <utility>

#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace tdp::condor {

namespace {
const log::Logger kLog("master");
}

Master::Master() : Master(Policy{}) {}

Master::Master(Policy policy) : policy_(policy), jitter_(policy.jitter_seed) {}

void Master::set_policy(Policy policy) {
  LockGuard lock(mutex_);
  policy_ = policy;
  jitter_.reseed(policy.jitter_seed);
}

void Master::set_clock(const Clock* clock) {
  clock_.store(clock != nullptr ? clock : &RealClock::instance(),
               std::memory_order_relaxed);
}

void Master::supervise(const std::string& name, AliveProbe alive,
                       RestartAction restart) {
  LockGuard lock(mutex_);
  Entry& entry = daemons_[name];
  entry = Entry{};
  entry.alive = std::move(alive);
  entry.restart = std::move(restart);
}

void Master::forget(const std::string& name) {
  LockGuard lock(mutex_);
  daemons_.erase(name);
}

Micros Master::backoff_micros(int attempts) {
  // attempts = consecutive attempts already made; the delay separates
  // attempt N from attempt N+1 and doubles per attempt, capped.
  //
  // Overflow audit (PR 10): unlike the shift form fixed in
  // attr::backoff_delay_ms, this bounded doubling loop stops as soon as
  // delay_ms reaches max_backoff_ms, so a huge attempt count can at most
  // double a below-cap value once — no shift-past-width UB, no int64
  // overflow for any sane policy (max_backoff_ms < 2^62 ms).
  std::int64_t delay_ms = policy_.base_backoff_ms;
  for (int i = 1; i < attempts && delay_ms < policy_.max_backoff_ms; ++i) {
    delay_ms *= 2;
  }
  delay_ms = std::min<std::int64_t>(delay_ms, policy_.max_backoff_ms);
  const Micros delay = delay_ms * 1'000;
  if (delay <= 0) return 0;
  // +/-50% decorrelation jitter so a pool of masters does not restart a
  // fleet in lockstep.
  return delay / 2 + static_cast<Micros>(
                         jitter_.next_below(static_cast<std::uint64_t>(delay) + 1));
}

std::vector<std::string> Master::tick() {
  static telemetry::Counter& restart_counter =
      telemetry::Registry::instance().counter("master.restarts");
  static telemetry::Counter& failed_counter =
      telemetry::Registry::instance().counter("master.failed_restarts");
  static telemetry::Counter& circuit_counter =
      telemetry::Registry::instance().counter("master.circuit_open");

  // Snapshot under the lock, probe/restart outside it: probes may take
  // arbitrary time and restart actions may re-enter the master.
  struct Work {
    std::string name;
    AliveProbe alive;
    RestartAction restart;
  };
  std::vector<Work> work;
  {
    LockGuard lock(mutex_);
    ++stats_.ticks;
    work.reserve(daemons_.size());
    for (const auto& [name, entry] : daemons_) {
      work.push_back({name, entry.alive, entry.restart});
    }
  }

  std::vector<std::string> restarted;
  for (const Work& item : work) {
    const bool alive = item.alive && item.alive();
    bool attempt = false;
    bool announce_halt = false;
    {
      LockGuard lock(mutex_);
      auto it = daemons_.find(item.name);
      if (it == daemons_.end()) continue;  // forgotten mid-tick
      Entry& entry = it->second;
      if (alive) {
        // An alive probe closes the breaker and resets the backoff ladder.
        entry.attempts_since_alive = 0;
        entry.next_attempt_micros = 0;
        entry.halted = false;
        continue;
      }
      if (entry.halted) continue;
      if (entry.attempts_since_alive >= policy_.restart_budget) {
        entry.halted = true;
        ++stats_.circuit_breaks;
        announce_halt = true;
      } else {
        const Micros now =
            clock_.load(std::memory_order_relaxed)->now_micros();
        attempt = now >= entry.next_attempt_micros;
      }
    }
    if (announce_halt) {
      // Terminal condition: surface it loudly once and stop burning
      // restarts; an operator (or a probe that comes back alive) resets.
      circuit_counter.inc();
      kLog.error("daemon '", item.name, "' exhausted its restart budget; ",
                 "circuit breaker open (reset() or a live probe closes it)");
      if (recorder_) recorder_->state("circuit-open", "daemon=" + item.name);
      continue;
    }
    if (!attempt) continue;  // dead, but inside its backoff window

    kLog.warn("daemon '", item.name, "' dead; restarting");
    bool ok = false;
    {
      telemetry::Span span("master.restart", "master");
      ok = item.restart && item.restart();
    }
    {
      LockGuard lock(mutex_);
      auto it = daemons_.find(item.name);
      if (it == daemons_.end()) continue;
      Entry& entry = it->second;
      ++entry.attempts_since_alive;
      entry.next_attempt_micros =
          clock_.load(std::memory_order_relaxed)->now_micros() +
          backoff_micros(entry.attempts_since_alive);
      if (ok) {
        ++stats_.restarts;
        ++entry.restarts;
        restart_counter.inc();
        restarted.push_back(item.name);
      } else {
        ++stats_.failed_restarts;
        failed_counter.inc();
      }
    }
    if (recorder_) {
      recorder_->state(ok ? "restart" : "restart-failed",
                       "daemon=" + item.name);
    }
  }
  return restarted;
}

Master::DaemonHealth Master::health(const std::string& name) const {
  LockGuard lock(mutex_);
  auto it = daemons_.find(name);
  if (it == daemons_.end()) return DaemonHealth::kUnknown;
  if (it->second.halted) return DaemonHealth::kHalted;
  if (it->second.attempts_since_alive > 0) return DaemonHealth::kRestarting;
  return DaemonHealth::kHealthy;
}

std::uint64_t Master::restart_count(const std::string& name) const {
  LockGuard lock(mutex_);
  auto it = daemons_.find(name);
  return it == daemons_.end() ? 0 : it->second.restarts;
}

void Master::reset(const std::string& name) {
  LockGuard lock(mutex_);
  auto it = daemons_.find(name);
  if (it == daemons_.end()) return;
  it->second.attempts_since_alive = 0;
  it->second.next_attempt_micros = 0;
  it->second.halted = false;
}

std::size_t Master::supervised_count() const {
  LockGuard lock(mutex_);
  return daemons_.size();
}

Master::Stats Master::stats() const {
  LockGuard lock(mutex_);
  return stats_;
}

}  // namespace tdp::condor
