#include "condor/master.hpp"

#include "util/log.hpp"

namespace tdp::condor {

namespace {
const log::Logger kLog("master");
}

void Master::supervise(const std::string& name, AliveProbe alive,
                       RestartAction restart) {
  LockGuard lock(mutex_);
  daemons_[name] = {std::move(alive), std::move(restart)};
}

void Master::forget(const std::string& name) {
  LockGuard lock(mutex_);
  daemons_.erase(name);
}

std::vector<std::string> Master::tick() {
  // Snapshot under the lock, probe/restart outside it: probes may take
  // arbitrary time and restart actions may re-enter the master.
  std::map<std::string, Entry> snapshot;
  {
    LockGuard lock(mutex_);
    ++stats_.ticks;
    snapshot = daemons_;
  }
  std::vector<std::string> restarted;
  for (const auto& [name, entry] : snapshot) {
    if (entry.alive && entry.alive()) continue;
    kLog.warn("daemon '", name, "' dead; restarting");
    const bool ok = entry.restart && entry.restart();
    LockGuard lock(mutex_);
    if (ok) {
      ++stats_.restarts;
      restarted.push_back(name);
    } else {
      ++stats_.failed_restarts;
    }
  }
  return restarted;
}

std::size_t Master::supervised_count() const {
  LockGuard lock(mutex_);
  return daemons_.size();
}

Master::Stats Master::stats() const {
  LockGuard lock(mutex_);
  return stats_;
}

}  // namespace tdp::condor
