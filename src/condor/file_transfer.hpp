// file_transfer.hpp - staging of job files between submit and execution
// directories, MiniCondor's stand-in for Condor's file-transfer mechanism
// (and the paper's "Tool daemon configuration and data files" requirement:
// "the RT may need configuration files transferred to the execution nodes
// ... trace files must be transferred from the execution nodes after the
// application completes").
#pragma once

#include <string>
#include <vector>

#include "util/status.hpp"

namespace tdp::condor {

class FileTransfer {
 public:
  /// Copies `filename` (relative to `from_dir`, or absolute) into `to_dir`
  /// keeping its base name. Creates `to_dir` if missing. Returns the
  /// destination path.
  static Result<std::string> stage_in(const std::string& from_dir,
                                      const std::string& filename,
                                      const std::string& to_dir);

  /// Copies each file back; missing sources are skipped (a job need not
  /// produce every declared output). Returns the list actually copied.
  static Result<std::vector<std::string>> stage_out(
      const std::string& from_dir, const std::vector<std::string>& filenames,
      const std::string& to_dir);

  /// Creates a fresh scratch directory under `base` with a unique suffix.
  static Result<std::string> make_scratch_dir(const std::string& base,
                                              const std::string& tag);

  /// Recursively removes a scratch directory (refuses non-absolute paths).
  static Status remove_dir(const std::string& path);

  /// Raw file copy helper (binary-safe, preserves execute permission).
  static Status copy_file(const std::string& from, const std::string& to);
};

}  // namespace tdp::condor
