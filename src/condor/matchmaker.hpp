// matchmaker.hpp - the match_maker entity of Figure 4.
//
// "The matchmaking algorithm is responsible for locating compatible
// resource requests with offers. When a compatible match is found, the
// matchmaker notifies the corresponding job and machine about it."
//
// Negotiation is cycle-based, as in Condor's negotiator: each cycle walks
// the idle jobs, evaluates symmetric Requirements against unclaimed
// machines, and picks the candidate maximizing (job rank, machine rank)
// lexicographically. The subsequent claiming protocol — "either party may
// decide not to complete the allocation" — is the schedd/startd's
// business; a refused claim simply returns the job to the idle pool for
// the next cycle.
//
// PR 10 replaces the per-job full scan with attribute-indexed candidate
// pruning: machine ads are indexed by their literal-valued attributes, and
// a job whose Requirements carry `attr == literal` conjuncts (see
// classads::indexable_equalities) only evaluates the machines in the
// intersection of the matching index buckets — plus every machine whose
// value for that attribute is a computed expression (those can never be
// keyed, so they stay candidates for everything). Pruning is a strict
// superset filter: symmetric_match still decides, so results are
// identical to the full scan, just with far fewer evaluations.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "classads/classad.hpp"
#include "condor/job.hpp"
#include "util/sync.hpp"

namespace tdp::condor {

class Matchmaker {
 public:
  /// A startd advertisement; replaces any previous ad for `name`.
  void advertise_machine(const std::string& name, classads::ClassAd ad);

  /// Removes a machine (host gone or shutting down).
  void withdraw_machine(const std::string& name);

  [[nodiscard]] std::size_t machine_count() const;

  struct Match {
    JobId job = 0;
    std::string machine;
    double job_rank = 0.0;
    double machine_rank = 0.0;
  };

  /// One negotiation cycle. `idle_jobs` come from the schedd in queue
  /// order; machines in `busy` are excluded (already claimed). A machine
  /// matched earlier in the same cycle is not offered twice.
  std::vector<Match> negotiate(
      const std::vector<std::pair<JobId, classads::ClassAd>>& idle_jobs,
      const std::set<std::string>& busy);

  /// Lifetime statistics for the pipeline benches.
  struct Stats {
    std::uint64_t cycles = 0;
    std::uint64_t matches = 0;
    std::uint64_t evaluations = 0;   ///< symmetric_match calls performed
    std::uint64_t indexed_jobs = 0;  ///< jobs negotiated via index pruning
    std::uint64_t pruned = 0;        ///< machine evaluations skipped by the index
  };
  [[nodiscard]] Stats stats() const;

  /// Toggles index pruning (on by default). The bench's full-scan control
  /// and a safety hatch; results are identical either way.
  void set_indexing(bool enabled);

 private:
  /// Adds `name`'s literal attributes to the inverted index (computed
  /// attributes land in the per-attribute unindexed set).
  void index_machine_locked(const std::string& name,
                            const classads::ClassAd& ad) TDP_REQUIRES(mutex_);
  void deindex_machine_locked(const std::string& name) TDP_REQUIRES(mutex_);

  mutable Mutex mutex_{"Matchmaker::mutex_"};
  std::map<std::string, classads::ClassAd> machines_ TDP_GUARDED_BY(mutex_);
  Stats stats_ TDP_GUARDED_BY(mutex_);
  bool indexing_ TDP_GUARDED_BY(mutex_) = true;
  /// attribute -> canonical value key -> machines advertising that value.
  std::map<std::string, std::map<std::string, std::set<std::string>>> index_
      TDP_GUARDED_BY(mutex_);
  /// attribute -> machines whose value is a computed expression (cannot be
  /// keyed; always candidates when that attribute is probed).
  std::map<std::string, std::set<std::string>> unindexed_ TDP_GUARDED_BY(mutex_);
  /// machine -> its (attribute, key) entries, "" key = unindexed set; makes
  /// deindexing O(own attributes) instead of a full index walk.
  std::map<std::string, std::vector<std::pair<std::string, std::string>>>
      machine_keys_ TDP_GUARDED_BY(mutex_);
};

}  // namespace tdp::condor
