// matchmaker.hpp - the match_maker entity of Figure 4.
//
// "The matchmaking algorithm is responsible for locating compatible
// resource requests with offers. When a compatible match is found, the
// matchmaker notifies the corresponding job and machine about it."
//
// Negotiation is cycle-based, as in Condor's negotiator: each cycle walks
// the idle jobs in submission order, evaluates symmetric Requirements
// against every unclaimed machine, and picks the candidate maximizing
// (job rank, machine rank) lexicographically. The subsequent claiming
// protocol — "either party may decide not to complete the allocation" —
// is the schedd/startd's business; a refused claim simply returns the job
// to the idle pool for the next cycle.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "classads/classad.hpp"
#include "condor/job.hpp"
#include "util/sync.hpp"

namespace tdp::condor {

class Matchmaker {
 public:
  /// A startd advertisement; replaces any previous ad for `name`.
  void advertise_machine(const std::string& name, classads::ClassAd ad);

  /// Removes a machine (host gone or shutting down).
  void withdraw_machine(const std::string& name);

  [[nodiscard]] std::size_t machine_count() const;

  struct Match {
    JobId job = 0;
    std::string machine;
    double job_rank = 0.0;
    double machine_rank = 0.0;
  };

  /// One negotiation cycle. `idle_jobs` come from the schedd in queue
  /// order; machines in `busy` are excluded (already claimed). A machine
  /// matched earlier in the same cycle is not offered twice.
  std::vector<Match> negotiate(
      const std::vector<std::pair<JobId, classads::ClassAd>>& idle_jobs,
      const std::set<std::string>& busy);

  /// Lifetime statistics for the pipeline benches.
  struct Stats {
    std::uint64_t cycles = 0;
    std::uint64_t matches = 0;
    std::uint64_t evaluations = 0;  ///< symmetric_match calls performed
  };
  [[nodiscard]] Stats stats() const;

 private:
  mutable Mutex mutex_{"Matchmaker::mutex_"};
  std::map<std::string, classads::ClassAd> machines_ TDP_GUARDED_BY(mutex_);
  Stats stats_ TDP_GUARDED_BY(mutex_);
};

}  // namespace tdp::condor
