#include "condor/pool.hpp"

#include <chrono>
#include <limits>
#include <optional>
#include <thread>

#include "util/log.hpp"
#include "util/string_util.hpp"
#include "util/telemetry.hpp"

namespace tdp::condor {

namespace {
const log::Logger kLog("pool");

std::string expand_pattern(const std::string& pattern, const std::string& machine,
                           JobId job) {
  std::map<std::string, std::string> vars{{"m", machine},
                                          {"j", std::to_string(job)}};
  return str::expand_placeholders(pattern, vars);
}
}  // namespace

Pool::Pool(PoolConfig config) : config_(std::move(config)) {
  master_.set_policy(config_.restart_policy);
  master_.set_clock(config_.clock);
  if (config_.enable_flightrec) {
    schedd_.set_recorder(recorder("schedd", "central"));
    master_.set_recorder(recorder("master", "central"));
    recorder("pool", "central")->state("start", "");
    if (config_.cass_store != nullptr) {
      // The operator's capsule trigger: a put on
      // tdp.control.blackbox.<role>.<host> (context "cass") answers with a
      // dump. The callback fires outside the store's shard locks.
      control_subscription_ = config_.cass_store->subscribe(
          "cass", std::string(flightrec::kControlPrefix) + "*",
          [this](const std::string& /*context*/, const std::string& attribute,
                 const std::string& value) { on_control_poke(attribute, value); });
    }
  }
  if (config_.schedd_journal != nullptr) {
    schedd_.set_journal(config_.schedd_journal);
    // The master supervises the submit-side daemon too: a crashed schedd
    // is restarted cold and rebuilds its queue from the journal. Detecting
    // the death is also the dump trigger for the dead daemon's black box:
    // the pool still holds the ring the crashed object recorded into.
    master_.supervise(
        "schedd", [this] { return !schedd_.crashed(); },
        [this] {
          if (config_.enable_flightrec && !config_.capsule_dir.empty()) {
            (void)dump_capsule("schedd", "central", "crash-detected");
          }
          return schedd_.recover().is_ok();
        });
  }
  if (config_.enable_liveness) {
    startd_monitor_ =
        std::make_unique<lease::LeaseMonitor>(config_.startd_lease, config_.clock);
  }
  if (!config_.frontdoor_rules.empty()) {
    auto parsed = parse_frontdoor_config(config_.frontdoor_rules);
    if (parsed.is_ok()) {
      front_door_ =
          std::make_unique<FrontDoor>(std::move(parsed.value()), config_.clock);
      schedd_.set_front_door(front_door_.get());
    } else {
      // A bad admission config must not take the pool down with it: run
      // wide open (the seed behaviour) and say so.
      kLog.warn("frontdoor rules rejected, admission disabled: ",
                parsed.status().to_string());
    }
  }
}

Pool::~Pool() {
  if (control_subscription_ != 0 && config_.cass_store != nullptr) {
    config_.cass_store->unsubscribe(control_subscription_);
  }
  for (auto& [name, startd] : startds_) startd->retire();
}

Startd& Pool::add_machine(const std::string& name, classads::ClassAd ad) {
  machine_ads_[name] = ad;  // remembered so a dead startd can be rebuilt
  auto startd = std::make_unique<Startd>(name, std::move(ad));
  Startd* raw = startd.get();
  if (config_.startd_journal_factory) {
    journal::Journal* claim_journal = config_.startd_journal_factory(name);
    if (claim_journal != nullptr) {
      startd_journals_[name] = claim_journal;
      raw->set_journal(claim_journal);
    }
  }
  if (config_.enable_flightrec) {
    auto rec = recorder("startd", name);
    raw->set_recorder(rec);
    rec->state("start", "");
  }
  startds_[name] = std::move(startd);
  matchmaker_.advertise_machine(name, raw->ad());
  if (config_.backend_factory) {
    backends_[name] = config_.backend_factory(name);
  }
  if (config_.enable_liveness) start_beats(name);
  // The master watches the startd role for this machine. The probe and
  // the restart action capture only the machine name: the Startd object a
  // kill destroys must not be reachable from supervision state.
  master_.supervise(
      "startd@" + name,
      [this, name] { return dead_startds_.find(name) == dead_startds_.end(); },
      [this, name] { return revive_startd(name); });
  return *raw;
}

classads::ClassAd Pool::default_machine_ad(const std::string& name, int memory_mb) {
  classads::ClassAd ad;
  ad.insert_string(classads::ads::kMyType, "Machine");
  ad.insert_string(classads::ads::kName, name);
  ad.insert_string(classads::ads::kOpSys, "LINUX");
  ad.insert_string(classads::ads::kArch, "INTEL");
  ad.insert_int(classads::ads::kMemory, memory_mb);
  ad.insert_real(classads::ads::kLoadAvg, 0.05);
  ad.insert_string(classads::ads::kState, "Unclaimed");
  return ad;
}

Startd* Pool::startd(const std::string& name) {
  auto it = startds_.find(name);
  return it == startds_.end() ? nullptr : it->second.get();
}

std::shared_ptr<proc::ProcessBackend> Pool::backend(const std::string& machine) {
  auto it = backends_.find(machine);
  return it == backends_.end() ? nullptr : it->second;
}

JobId Pool::submit(const JobDescription& description) {
  return schedd_.submit(description);
}

std::vector<JobId> Pool::submit(const SubmitFile& file) { return schedd_.submit(file); }

Result<JobId> Pool::try_submit(const JobDescription& description) {
  return schedd_.try_submit(description);
}

int Pool::negotiate() {
  // Match-cycle latency: one sample per negotiation cycle (pump cadence,
  // not per-message, so always-on sampling is cheap).
  static telemetry::Histogram& match_cycle_us =
      telemetry::Registry::instance().histogram("schedd.match_cycle_us");
  static telemetry::Counter& matches_counter =
      telemetry::Registry::instance().counter("schedd.matches");
  const Micros cycle_start = telemetry::Tracer::instance().now();

  // Busy set: machines currently claimed or running.
  std::set<std::string> busy;
  for (const auto& [name, startd] : startds_) {
    if (startd->state() != Startd::State::kUnclaimed) busy.insert(name);
  }

  // Dispatch order comes from the schedd: the whole idle queue in id
  // order without a front door (the seed behaviour), a bounded weighted
  // round-robin slice over the per-tenant queues with one.
  std::size_t slice = std::numeric_limits<std::size_t>::max();
  if (front_door_) {
    slice = config_.dispatch_slice != 0
                ? config_.dispatch_slice
                : std::max<std::size_t>(64, startds_.size() * 4);
  }
  auto matches = matchmaker_.negotiate(schedd_.dispatch_ads(slice), busy);
  int activated = 0;
  for (const Matchmaker::Match& match : matches) {
    Startd* startd = this->startd(match.machine);
    if (startd == nullptr) continue;
    auto record = schedd_.job(match.job);
    if (!record.is_ok()) continue;

    // Join the job's causal tree (rooted at schedd.submit) for the whole
    // claim+activate leg; Starter::launch nests under this span.
    const telemetry::SpanContext job_parent =
        telemetry::parse_context(record->trace);
    std::optional<telemetry::Span> claim_span;
    if (job_parent.valid()) {
      claim_span.emplace("startd.claim", "startd", job_parent);
    }

    // Claiming protocol (Figure 4): schedd contacts the startd; either
    // party may back out.
    classads::ClassAd job_ad = record->description.to_classad();
    if (!startd->request_claim(match.job, job_ad)) {
      // The refusal reveals the matchmaker's ad was stale; refresh it so
      // the next cycle negotiates against the machine's live state.
      matchmaker_.advertise_machine(match.machine, startd->ad());
      continue;  // job stays idle; next cycle retries
    }
    if (!schedd_.set_matched(match.job, match.machine).is_ok()) {
      startd->release_claim();
      continue;
    }
    schedd_.update_job(match.job, JobStatus::kClaimed, -1, "");

    // Activation: the schedd's shadow serves the request; the startd
    // spawns the starter.
    Shadow* shadow = schedd_.spawn_shadow(match.job, config_.submit_dir);
    StarterConfig starter_config;
    starter_config.submit_dir = config_.submit_dir;
    starter_config.scratch_base = config_.scratch_base;
    starter_config.transport = config_.transport;
    starter_config.backend = backends_[match.machine];
    starter_config.tool_launcher = config_.tool_launcher;
    starter_config.use_real_files = config_.use_real_files;
    starter_config.frontend_host = config_.frontend_host;
    starter_config.frontend_port = config_.frontend_port;
    starter_config.frontend_port2 = config_.frontend_port2;
    starter_config.proxy_address = config_.proxy_address;
    starter_config.cass_address = config_.cass_address;
    starter_config.tool_wait_timeout_ms = config_.tool_wait_timeout_ms;
    starter_config.live_stdio = config_.live_stdio;
    starter_config.retry = config_.retry;
    starter_config.tool_lease_enabled = config_.tool_lease_enabled;
    starter_config.tool_lease = config_.tool_lease;
    starter_config.tool_restart_budget = config_.tool_restart_budget;
    starter_config.lease_clock = config_.clock;
    if (config_.enable_flightrec) {
      starter_config.recorder = recorder("starter", match.machine);
      starter_config.capsule_dir = config_.capsule_dir;
      if (config_.tool_lease_enabled) {
        // The tool daemon's ring: launchers that run the tool in-process
        // (chaos tests) share this same ring via Pool::recorder, so the
        // starter can dump the victim's capsule on lease expiry.
        starter_config.tool_recorder = recorder("paradynd", match.machine);
      }
    }
    if (!config_.lass_listen_pattern.empty()) {
      starter_config.lass_listen_address =
          expand_pattern(config_.lass_listen_pattern, match.machine, match.job);
    }

    JobRecord job_record = std::move(record).value();
    job_record.status = JobStatus::kClaimed;
    job_record.matched_machine = match.machine;
    auto starter = startd->activate(std::move(job_record), std::move(starter_config),
                                    shadow);
    if (!starter.is_ok()) {
      kLog.warn("activation of job ", match.job, " on ", match.machine,
                " failed: ", starter.status().to_string());
      schedd_.update_job(match.job, JobStatus::kFailed, -1,
                         starter.status().to_string());
      startd->release_claim();
      continue;
    }
    ++activated;
  }
  if (activated > 0) matches_counter.add(static_cast<std::uint64_t>(activated));
  match_cycle_us.record(static_cast<std::uint64_t>(std::max<Micros>(
      0, telemetry::Tracer::instance().now() - cycle_start)));
  return activated;
}

int Pool::pump() {
  master_.tick();  // probes every supervised daemon; restarts the dead
  if (startd_monitor_) check_liveness();
  int completed = 0;
  for (auto& [name, startd] : startds_) {
    Starter* starter = startd->starter();
    if (starter == nullptr) continue;
    if (starter->pump()) {
      ++completed;
      startd->retire();
      matchmaker_.advertise_machine(name, startd->ad());  // machine free again
    }
  }
  return completed;
}

Status Pool::fail_machine(const std::string& name) {
  Startd* startd = this->startd(name);
  if (startd == nullptr) {
    return make_error(ErrorCode::kNotFound, "no such machine: " + name);
  }
  matchmaker_.withdraw_machine(name);

  Starter* starter = startd->starter();
  if (starter != nullptr && !starter->done()) {
    const JobId job = starter->job().id;
    // Try to save the application's progress before the "crash" takes
    // everything down. Multi-rank jobs restart from scratch (coordinated
    // MPI checkpointing is beyond both this system and the paper).
    std::string checkpoint;
    auto backend = backends_.find(name);
    if (backend != backends_.end() &&
        starter->job().description.machine_count == 1) {
      auto saved = backend->second->checkpoint(starter->app_pid());
      if (saved.is_ok()) checkpoint = saved.value();
    }
    startd->retire();  // kills the starter's processes, stops its LASS
    Status requeued = schedd_.requeue_job(job, checkpoint);
    if (!requeued.is_ok()) {
      kLog.warn("failed to requeue job ", job, ": ", requeued.to_string());
    }
    kLog.info("machine ", name, " failed; job ", job,
              checkpoint.empty() ? " requeued from scratch"
                                 : " requeued from checkpoint");
  } else {
    startd->retire();
    kLog.info("machine ", name, " failed (idle)");
  }
  return Status::ok();
}

Status Pool::recover_machine(const std::string& name) {
  Startd* startd = this->startd(name);
  if (startd == nullptr) {
    return make_error(ErrorCode::kNotFound, "no such machine: " + name);
  }
  matchmaker_.advertise_machine(name, startd->ad());
  return Status::ok();
}

Status Pool::kill_startd(const std::string& name) {
  auto it = startds_.find(name);
  if (it == startds_.end()) {
    return make_error(ErrorCode::kNotFound, "no such machine: " + name);
  }
  kLog.warn("startd@", name, " killed: no checkpoint, no goodbye");
  if (config_.enable_flightrec) {
    recorder("pool", "central")->state("kill", "startd@" + name);
  }
  matchmaker_.withdraw_machine(name);
  startd_beats_.erase(name);   // heartbeats stop; the lease will expire
  dead_startds_.insert(name);  // the master's probe now sees the death
  // Deliberately not retire(): a killed daemon does not get to checkpoint
  // or requeue anything. Destroying the Startd kills the starter's process
  // tree (the kernel reaping a dead daemon's children) without a status
  // report, and only the claim journal survives.
  startds_.erase(it);
  return Status::ok();
}

void Pool::kill_schedd() {
  kLog.warn("schedd killed: its shadows die with it");
  if (config_.enable_flightrec) {
    recorder("pool", "central")->state("kill", "schedd");
  }
  // Starters report into Shadow* sinks the schedd owns. In real Condor a
  // starter whose shadow vanishes kills its job; model that by retiring
  // busy machines first so no starter is left holding a dangling sink.
  for (auto& [name, startd] : startds_) {
    if (startd->state() == Startd::State::kBusy) {
      startd->retire();
      matchmaker_.advertise_machine(name, startd->ad());
    } else if (startd->state() == Startd::State::kClaimed) {
      startd->release_claim();
    }
  }
  schedd_.crash();
}

bool Pool::revive_startd(const std::string& name) {
  auto ad_it = machine_ads_.find(name);
  if (ad_it == machine_ads_.end()) return false;
  // The master noticing the death is a dump trigger: capture the dead
  // incarnation's last-known ring before the new one records over it.
  if (config_.enable_flightrec && !config_.capsule_dir.empty()) {
    (void)dump_capsule("startd", name, "death-detected");
  }
  auto startd = std::make_unique<Startd>(name, ad_it->second);
  Startd* raw = startd.get();
  // The revived daemon shares the killed one's ring (like its claim
  // journal): one machine, one black box, across incarnations.
  if (config_.enable_flightrec) raw->set_recorder(recorder("startd", name));
  std::optional<JobId> orphan;
  auto journal_it = startd_journals_.find(name);
  if (journal_it != startd_journals_.end()) {
    raw->set_journal(journal_it->second);
    auto replayed = raw->recover();
    if (replayed.is_ok()) {
      orphan = replayed.value();
    } else {
      kLog.warn("startd@", name,
                " claim-journal replay failed: ", replayed.status().to_string());
    }
  }
  startds_[name] = std::move(startd);
  dead_startds_.erase(name);
  if (orphan.has_value()) requeue_orphan(*orphan, name);
  matchmaker_.advertise_machine(name, raw->ad());
  if (config_.enable_liveness) start_beats(name);
  if (config_.enable_flightrec) {
    recorder("pool", "central")->state("revive", "startd@" + name);
  }
  kLog.info("startd@", name, " revived from claim journal");
  return true;
}

void Pool::requeue_orphan(JobId job, const std::string& machine) {
  static telemetry::Counter& requeues_counter =
      telemetry::Registry::instance().counter("pool.orphan_requeues");
  // Exactly-once guard, shared by the claim-journal and lease-expiry
  // paths: only a job that is still in flight *on this machine* is
  // requeued. The first path through clears matched_machine, so the
  // second (and any later duplicate expiry) is a no-op.
  auto record = schedd_.job(job);
  if (!record.is_ok()) return;  // unknown, or the schedd itself is down
  if (job_status_terminal(record->status) || record->status == JobStatus::kIdle) {
    return;
  }
  if (record->matched_machine != machine) return;
  Status requeued = schedd_.requeue_job(job, "");
  if (!requeued.is_ok()) {
    kLog.warn("orphan requeue of job ", job, " failed: ", requeued.to_string());
    return;
  }
  ++orphan_requeues_;
  requeues_counter.inc();
  kLog.warn("job ", job, " orphaned by dead startd@", machine, "; requeued");
}

void Pool::start_beats(const std::string& name) {
  if (!startd_monitor_) return;
  const std::string attribute = lease::liveness_attr("startd", name);
  beat_to_machine_[attribute] = name;
  // Each beat also lands in the startd's own black box: after a kill, the
  // victim's capsule ends with its last beat, which the merged timeline
  // orders against the pool's lease-expiry event.
  std::shared_ptr<flightrec::Recorder> rec =
      config_.enable_flightrec ? recorder("startd", name) : nullptr;
  auto beat = std::make_unique<lease::HeartbeatPublisher>(
      attribute, config_.startd_lease, config_.clock,
      [this, name, rec](const std::string& attr, const std::string& value) {
        if (rec) rec->lease("beat", value);
        // Tree mode: the beat enters the overlay at this machine's leaf
        // (an interior aggregator holds the lease). Flat mode: it lands
        // on the central monitor directly — one root write per beat.
        if (cass_) {
          cass_->observe_host(name, value);
        } else {
          ++flat_liveness_writes_;
          startd_monitor_->observe(attr);
        }
        return Status::ok();
      });
  beat->beat_now();
  startd_beats_[name] = std::move(beat);
}

void Pool::on_machine_lease_expired(const std::string& machine) {
  kLog.warn("liveness lease expired for startd@", machine);
  if (config_.enable_flightrec) {
    // The detector's own record of the death, then the victim's black box:
    // the lease monitor is the peer that still holds the dead daemon's
    // last-known ring, so lease expiry is a capsule trigger.
    recorder("pool", "central")->lease("expired", "startd@" + machine);
    if (!config_.capsule_dir.empty()) {
      (void)dump_capsule("startd", machine, "lease-expired");
    }
  }
  matchmaker_.withdraw_machine(machine);
  for (JobId job : schedd_.jobs_on_machine(machine)) {
    requeue_orphan(job, machine);
  }
}

void Pool::ensure_cass() {
  if (!config_.hierarchical_cass || machine_ads_.size() == cass_hosts_) return;
  // Rebuild only on pool growth. The rebuild is safe mid-flight because
  // every machine's lease state is carried over from the old tree below,
  // so the topology change can neither falsely expire a machine nor reset
  // an in-flight detection deadline.
  std::vector<std::string> hosts;
  hosts.reserve(machine_ads_.size());
  for (const auto& [name, ad] : machine_ads_) hosts.push_back(name);
  mrnet::HierarchyConfig hierarchy;
  hierarchy.fanout = config_.cass_fanout;
  hierarchy.lease = config_.startd_lease;
  hierarchy.clock = config_.clock;
  auto built = mrnet::HierarchicalCass::build(hosts, hierarchy);
  if (!built.is_ok()) {
    kLog.warn("hierarchical CASS build failed: ", built.status().to_string());
    return;
  }
  std::unique_ptr<mrnet::HierarchicalCass> previous = std::move(cass_);
  cass_ = std::move(built.value());
  cass_hosts_ = machine_ads_.size();
  // build() seeded every member fresh-from-now; correct that against the
  // old tree. A machine whose lease was in flight keeps its last-beat time
  // (a machine that went silent just before this growth is still detected
  // on its original deadline, not ttl+grace later). A machine whose death
  // was already detected (untracked in the old tree, in dead_startds_)
  // stays untracked, so it cannot fire a second expiry — its next beat
  // after revival re-arms tracking. Machines new in this rebuild, and live
  // machines transiently untracked mid re-parent, keep the fresh seed.
  if (previous) {
    for (const std::string& name : hosts) {
      if (!previous->member(name)) continue;
      const Micros beat = previous->host_last_beat(name);
      if (beat >= 0) {
        cass_->carry_host_beat(name, beat);
      } else if (dead_startds_.count(name) != 0) {
        cass_->carry_host_beat(name, -1);
      }
    }
  }
  cass_->on_host_expired(
      [this](const std::string& machine) { on_machine_lease_expired(machine); });
  if (config_.cass_store != nullptr) {
    cass_->set_root_write(
        [this](const std::string& attribute, const std::string& value) {
          (void)config_.cass_store->put("cass", attribute, value);
        });
  }
  if (config_.enable_flightrec) cass_->set_recorder(recorder("cass", "tree"));
  if (!config_.health_rules.empty()) {
    Status rules = cass_->set_health_rules(config_.health_rules);
    if (!rules.is_ok()) {
      kLog.warn("health rules rejected: ", rules.to_string());
    }
  }
  kLog.info("hierarchical CASS over ", cass_hosts_, " machines (fanout ",
            config_.cass_fanout, ", root sees O(fanout) liveness writes)");
}

void Pool::check_liveness() {
  ensure_cass();
  // A live startd's beat is refreshed before the poll, so only a daemon
  // whose publisher is gone (killed) can ever be seen expired here.
  for (auto& [name, beat] : startd_beats_) beat->maybe_beat();
  if (cass_) {
    // Expiries at any level surface through on_host_expired.
    cass_->pump();
    return;
  }
  startd_monitor_->poll();
  for (const std::string& attribute : startd_monitor_->expired()) {
    startd_monitor_->forget(attribute);
    auto it = beat_to_machine_.find(attribute);
    if (it == beat_to_machine_.end()) continue;
    on_machine_lease_expired(it->second);
  }
}

Status Pool::kill_cass_node(int node) {
  if (!cass_) {
    return make_error(ErrorCode::kInvalidState,
                      "hierarchical CASS not active");
  }
  return cass_->kill_interior(node);
}

int Pool::publish_cass_rollup() {
  // Per-machine pool state folded to the root: the tree writes one merged
  // rollup (O(1) at the root), the flat control one batch per machine.
  std::map<std::string, attr::TelemetryRollup> per_host;
  for (const auto& [name, ad] : machine_ads_) {
    if (dead_startds_.count(name) != 0) continue;
    auto it = startds_.find(name);
    if (it == startds_.end()) continue;
    attr::TelemetryRollup& rollup = per_host[name];
    rollup.add_value("machine.alive", 1.0);
    rollup.add_value("machine.busy",
                     it->second->state() == Startd::State::kBusy ? 1.0 : 0.0);
  }
  if (cass_) return cass_->rollup_telemetry(per_host, "pool");
  int written = 0;
  for (const auto& [name, rollup] : per_host) {
    const auto pairs =
        rollup.flatten("tdp.telemetry.rollup.pool." + name + ".");
    written += static_cast<int>(pairs.size());
    if (config_.cass_store != nullptr) {
      for (const auto& [attribute, value] : pairs) {
        (void)config_.cass_store->put("cass", attribute, value);
      }
    }
  }
  return written;
}

// ---------------------------------------------------------------------
// Black-box flight recorder + health engine (PR 9)
// ---------------------------------------------------------------------

std::shared_ptr<flightrec::Recorder> Pool::recorder(const std::string& role,
                                                    const std::string& host) {
  if (!config_.enable_flightrec) return nullptr;
  std::shared_ptr<flightrec::Recorder>& slot = recorders_[role + "." + host];
  if (!slot) {
    flightrec::Config rec;
    rec.role = role;
    rec.host = host;
    rec.capacity = config_.flightrec_capacity;
    rec.clock = config_.clock;
    slot = std::make_shared<flightrec::Recorder>(std::move(rec));
  }
  return slot;
}

std::string Pool::capsule_path(const std::string& role,
                               const std::string& host) const {
  return config_.capsule_dir + "/" + role + "." + host + ".capsule";
}

Status Pool::dump_capsule(const std::string& role, const std::string& host,
                          const std::string& reason) {
  if (config_.capsule_dir.empty()) {
    return make_error(ErrorCode::kInvalidState, "pool has no capsule_dir");
  }
  auto it = recorders_.find(role + "." + host);
  if (it == recorders_.end()) {
    return make_error(ErrorCode::kNotFound,
                      "no flight recorder for " + role + "." + host);
  }
  return it->second->dump(capsule_path(role, host), reason);
}

void Pool::on_control_poke(const std::string& attribute,
                           const std::string& value) {
  // tdp.control.blackbox.<role>.<host>; the role never contains a dot,
  // the host may (first dot splits).
  std::string target = attribute.substr(flightrec::kControlPrefix.size());
  const std::size_t dot = target.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= target.size()) {
    kLog.warn("malformed blackbox poke: ", attribute);
    return;
  }
  const std::string role = target.substr(0, dot);
  const std::string host = target.substr(dot + 1);
  const std::string reason = value.empty() ? "operator" : value;
  if (config_.enable_flightrec) {
    recorder("pool", "central")
        ->record(flightrec::EventKind::kControl, "poke",
                 role + "." + host + " reason=" + reason);
  }
  Status dumped = dump_capsule(role, host, reason);
  if (!dumped.is_ok()) {
    kLog.warn("blackbox poke for ", role, ".", host,
              " failed: ", dumped.to_string());
  }
}

int Pool::publish_health() {
  if (config_.health_rules.empty()) return 0;
  ensure_cass();
  const Micros now = config_.clock->now_micros();
  // One sample set per machine ever added. Dead machines are included at
  // machine.alive=0 — unlike the telemetry rollup, absence is exactly the
  // signal a below-threshold rule exists to catch.
  std::map<std::string, std::vector<telemetry::Sample>> per_host;
  for (const auto& [name, ad] : machine_ads_) {
    const auto it = startds_.find(name);
    const bool alive = dead_startds_.count(name) == 0 && it != startds_.end();
    std::vector<telemetry::Sample>& samples = per_host[name];
    telemetry::Sample sample;
    sample.kind = telemetry::Sample::Kind::kGauge;
    sample.name = "machine.alive";
    sample.value = alive ? 1 : 0;
    samples.push_back(sample);
    sample.name = "machine.busy";
    sample.value =
        alive && it->second->state() == Startd::State::kBusy ? 1 : 0;
    samples.push_back(sample);
    sample.name = "pool.orphan_requeues";
    sample.kind = telemetry::Sample::Kind::kCounter;
    sample.value = static_cast<std::int64_t>(orphan_requeues_);
    samples.push_back(sample);
  }
  if (cass_) {
    const int written = cass_->rollup_health(per_host, "startd");
    // The tree's verdict drives brownout: warn/critical sheds, a
    // sustained ok streak recovers (hysteresis lives in the front door).
    schedd_.on_health(cass_->last_health_fold());
    return written;
  }

  int written = 0;
  health::Severity overall = health::Severity::kOk;
  for (auto& [name, samples] : per_host) {
    std::unique_ptr<health::Engine>& engine = health_engines_[name];
    if (!engine) {
      engine = std::make_unique<health::Engine>();
      for (const std::string& text : config_.health_rules) {
        Status added = engine->add_rule(text);
        if (!added.is_ok()) {
          kLog.warn("health rule rejected: ", added.to_string());
        }
      }
    }
    const health::Report report = engine->evaluate(samples, now);
    overall = health::fold(overall, report.severity);
    ++written;
    if (config_.cass_store != nullptr) {
      (void)config_.cass_store->put(
          "cass", health::health_attr("startd", name),
          report.encode());  // NOLINT: health report text, not a Message codec
    }
  }
  ++written;
  if (config_.cass_store != nullptr) {
    (void)config_.cass_store->put("cass",
                                  std::string(health::kHealthPrefix) + "startd",
                                  health::severity_name(overall));
  }
  schedd_.on_health(overall);
  return written;
}

int Pool::publish_frontdoor() {
  if (!front_door_) return 0;
  int written = 0;
  auto put = [&](const std::string& attribute, const std::string& value) {
    ++written;
    if (config_.cass_store != nullptr) {
      (void)config_.cass_store->put("cass", attribute, value);
    }
  };
  put("tdp.frontdoor.state", brownout_state_name(front_door_->state()));
  for (const std::string& tenant : front_door_->seen_tenants()) {
    const TenantCounters counters = front_door_->counters(tenant);
    // One flat line per tenant; tdptop splits on spaces.
    put("tdp.frontdoor.tenant." + tenant,
        "depth=" + std::to_string(schedd_.tenant_idle(tenant)) +
            " active=" + std::to_string(schedd_.tenant_active(tenant)) +
            " admitted=" + std::to_string(counters.admitted) +
            " best_effort=" + std::to_string(counters.best_effort) +
            " busy=" + std::to_string(counters.busy) +
            " shed=" + std::to_string(counters.shed) +
            " shedding=" + (front_door_->is_shed(tenant) ? "1" : "0"));
  }
  return written;
}

std::size_t Pool::busy_count() const {
  std::size_t count = 0;
  for (const auto& [name, startd] : startds_) {
    if (startd->state() == Startd::State::kBusy) ++count;
  }
  return count;
}

Result<JobRecord> Pool::run_to_completion(JobId id, int timeout_ms,
                                          const std::function<void()>& idle_hook) {
  // Wall-clock on purpose (not config_.clock): this is a real-time budget
  // for driving real backends, independent of any virtual clock the pool's
  // leases run on.
  const Clock& wall = RealClock::instance();
  const Micros deadline =
      wall.now_micros() + static_cast<Micros>(timeout_ms) * 1000;
  while (true) {
    auto record = schedd_.job(id);
    if (!record.is_ok()) return record.status();
    if (job_status_terminal(record->status)) return record;

    negotiate();
    pump();
    if (idle_hook) idle_hook();

    if (wall.now_micros() >= deadline) {
      return make_error(ErrorCode::kTimeout,
                        "job " + std::to_string(id) + " still " +
                            job_status_name(record->status) + " after " +
                            std::to_string(timeout_ms) + "ms");
    }
    if (!idle_hook) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace tdp::condor
