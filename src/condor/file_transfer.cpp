#include "condor/file_transfer.hpp"

#include <atomic>
#include <filesystem>
#include <system_error>

#include "util/string_util.hpp"

namespace tdp::condor {

namespace fs = std::filesystem;

Status FileTransfer::copy_file(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::copy_file(from, to, fs::copy_options::overwrite_existing, ec);
  if (ec) {
    return make_error(ErrorCode::kInternal,
                      "copy " + from + " -> " + to + ": " + ec.message());
  }
  // Preserve executability so transferred tool daemons stay runnable.
  auto perms = fs::status(from, ec).permissions();
  if (!ec) fs::permissions(to, perms, ec);
  return Status::ok();
}

Result<std::string> FileTransfer::stage_in(const std::string& from_dir,
                                           const std::string& filename,
                                           const std::string& to_dir) {
  std::error_code ec;
  fs::create_directories(to_dir, ec);
  if (ec) {
    return make_error(ErrorCode::kInternal, "mkdir " + to_dir + ": " + ec.message());
  }
  fs::path source = fs::path(filename).is_absolute()
                        ? fs::path(filename)
                        : fs::path(from_dir) / filename;
  if (!fs::exists(source, ec)) {
    return make_error(ErrorCode::kNotFound, "input file missing: " + source.string());
  }
  fs::path destination = fs::path(to_dir) / source.filename();
  TDP_RETURN_IF_ERROR(copy_file(source.string(), destination.string()));
  return destination.string();
}

Result<std::vector<std::string>> FileTransfer::stage_out(
    const std::string& from_dir, const std::vector<std::string>& filenames,
    const std::string& to_dir) {
  std::error_code ec;
  fs::create_directories(to_dir, ec);
  if (ec) {
    return make_error(ErrorCode::kInternal, "mkdir " + to_dir + ": " + ec.message());
  }
  std::vector<std::string> copied;
  for (const std::string& filename : filenames) {
    if (filename.empty()) continue;
    fs::path source = fs::path(from_dir) / fs::path(filename).filename();
    if (!fs::exists(source, ec)) continue;  // job did not produce it
    fs::path destination = fs::path(to_dir) / fs::path(filename).filename();
    TDP_RETURN_IF_ERROR(copy_file(source.string(), destination.string()));
    copied.push_back(destination.string());
  }
  return copied;
}

Result<std::string> FileTransfer::make_scratch_dir(const std::string& base,
                                                   const std::string& tag) {
  static std::atomic<std::uint64_t> counter{0};
  std::error_code ec;
  fs::path dir = fs::path(base) /
                 ("tdp-scratch-" + tag + "-" +
                  std::to_string(counter.fetch_add(1, std::memory_order_relaxed)));
  fs::create_directories(dir, ec);
  if (ec) {
    return make_error(ErrorCode::kInternal,
                      "mkdir " + dir.string() + ": " + ec.message());
  }
  return dir.string();
}

Status FileTransfer::remove_dir(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return make_error(ErrorCode::kInvalidArgument,
                      "refusing to remove non-absolute path: " + path);
  }
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) {
    return make_error(ErrorCode::kInternal, "rm -r " + path + ": " + ec.message());
  }
  return Status::ok();
}

}  // namespace tdp::condor
