// pool.hpp - the assembled MiniCondor pool: one schedd, one matchmaker,
// many startds, plus the connection proxy of Section 2.4. Pool drives the
// Figure-4 pipeline end to end:
//
//   submit -> schedd queue -> negotiate() [matchmaker] -> claiming
//   [schedd <-> startd] -> activate [startd spawns starter] -> Figure 6
//   TDP dance [starter <-> tool daemon <-> app] -> status via shadow ->
//   schedd records completion.
//
// The pool is transport- and backend-agnostic: with TcpTransport +
// PosixProcessBackend it runs real processes; with InProcTransport +
// SimProcessBackend it becomes the virtual cluster the scalability benches
// sweep.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "condor/frontdoor.hpp"
#include "condor/master.hpp"
#include "condor/matchmaker.hpp"
#include "condor/schedd.hpp"
#include "condor/startd.hpp"
#include "mrnet/hierarchy.hpp"
#include "net/proxy.hpp"
#include "util/flightrec.hpp"
#include "util/health.hpp"
#include "util/journal.hpp"
#include "util/lease.hpp"

namespace tdp::condor {

struct PoolConfig {
  std::shared_ptr<net::Transport> transport;
  /// Creates the per-machine process backend (each execution host controls
  /// its own processes — the single-point-of-responsibility of Section 2.3).
  std::function<std::shared_ptr<proc::ProcessBackend>(const std::string& machine)>
      backend_factory;
  std::string submit_dir = "/tmp";
  std::string scratch_base = "/tmp";
  bool use_real_files = true;
  /// Optional shared tool launcher handed to every starter (not owned).
  ToolLauncher* tool_launcher = nullptr;
  /// Front-end contact info starters publish (Figure 5's -p/-P ports).
  std::string frontend_host;
  int frontend_port = 0;
  int frontend_port2 = 0;
  /// Give starters this proxy address to publish (Section 2.4).
  std::string proxy_address;
  /// Central attribute space address handed to every starter; used to
  /// disseminate front-end contact info when frontend_host is not set.
  std::string cass_address;
  int tool_wait_timeout_ms = 30'000;
  /// Stream job stdout to the shadow while jobs run (real-files mode).
  bool live_stdio = false;
  /// Explicit LASS listen address pattern; "%m"/"%j" expand to machine/job.
  std::string lass_listen_pattern;
  /// Failure-recovery policy handed to every starter's TDP session; enable
  /// when the pool's transport is lossy (chaos tests, flaky networks).
  attr::RetryPolicy retry;

  // --- daemon-death survival (PR 5) ---

  /// Lease-based startd liveness: every pump turn beats each live startd's
  /// tdp.liveness.startd.<machine> lease; a lease that expires (the daemon
  /// died without a goodbye) withdraws the machine and requeues its job
  /// exactly once. Off by default: the seed pipeline stays byte-identical.
  bool enable_liveness = false;
  lease::Config startd_lease;

  /// Clock for lease expiry, master backoff and heartbeat pacing.
  const Clock* clock = &RealClock::instance();

  /// Schedd write-ahead journal (not owned; must outlive the pool). When
  /// set, every queue mutation is journaled and the master supervises the
  /// schedd: a crash() is answered by recover() from this journal.
  journal::Journal* schedd_journal = nullptr;

  /// Per-machine claim-journal factory (not owned; journals must outlive
  /// the pool). A revived startd replays its claim journal and the orphaned
  /// job is requeued exactly once.
  std::function<journal::Journal*(const std::string& machine)> startd_journal_factory;

  /// Master supervision policy (backoff, jitter, restart budget).
  Master::Policy restart_policy;

  /// Tool-daemon lease supervision, forwarded to every starter.
  bool tool_lease_enabled = false;
  lease::Config tool_lease;
  int tool_restart_budget = 2;

  // --- hierarchical CASS (PR 7) ---

  /// Route startd liveness beats (and telemetry rollups) through the
  /// mrnet overlay instead of flat at the central monitor: interior comm
  /// nodes hold the leases and the root sees O(cass_fanout) writes, not
  /// O(machines). Requires enable_liveness. The overlay is (re)built only
  /// when machines are ADDED; startd kills and revives are observed
  /// through leases, never through topology edits, so recovery semantics
  /// are identical to the flat path.
  bool hierarchical_cass = false;
  int cass_fanout = 8;
  /// Optional store the CASS root writes summaries/rollups into (context
  /// "cass"); not owned, may be null (stats still count the writes).
  attr::AttributeStore* cass_store = nullptr;

  // --- black-box flight recorder + health engine (PR 9) ---

  /// Give every pool-side daemon (schedd, each startd, the pool itself,
  /// the CASS tree) an always-on flight recorder ring. Off by default:
  /// the seed pipeline records nothing.
  bool enable_flightrec = false;
  /// Directory capsules are dumped into when a death is detected (master
  /// restart, lease expiry) or an operator pokes
  /// tdp.control.blackbox.<role>.<host> in cass_store (context "cass").
  /// Empty = no automatic dumps; rings still record.
  std::string capsule_dir;
  /// Ring capacity (events) of each recorder.
  std::size_t flightrec_capacity = 4096;
  /// Declarative RED-style rules (util/health.hpp grammar) evaluated per
  /// machine by publish_health(); folded through the CASS tree when
  /// hierarchical_cass is on, flat writes to cass_store otherwise.
  std::vector<std::string> health_rules;

  // --- multi-tenant front door (PR 10) ---

  /// Declarative tenant/quota/brownout rules (condor/frontdoor.hpp
  /// grammar). Non-empty = the pool builds a FrontDoor on its clock and
  /// attaches it to the schedd: try_submit() is rate-limited and
  /// quota-checked per tenant, negotiation dispatches weighted
  /// round-robin from per-tenant queues, and publish_health() drives
  /// brownout shedding. Empty (the default) keeps the seed pipeline:
  /// no admission, full-queue id-order negotiation.
  std::vector<std::string> frontdoor_rules;

  /// Idle jobs offered to the matchmaker per negotiation cycle when the
  /// front door is on (the WRR dispatch slice). 0 = automatic:
  /// max(64, 4 * machines). Ignored without frontdoor_rules.
  std::size_t dispatch_slice = 0;
};

class Pool {
 public:
  explicit Pool(PoolConfig config);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Adds an execution machine with the given advertisement.
  Startd& add_machine(const std::string& name, classads::ClassAd ad);

  /// Builds a generic Linux machine ad (helpers for tests/benches).
  static classads::ClassAd default_machine_ad(const std::string& name,
                                              int memory_mb = 1024);

  [[nodiscard]] Schedd& schedd() noexcept { return schedd_; }
  [[nodiscard]] Matchmaker& matchmaker() noexcept { return matchmaker_; }
  [[nodiscard]] Master& master() noexcept { return master_; }
  [[nodiscard]] Startd* startd(const std::string& name);
  [[nodiscard]] std::shared_ptr<proc::ProcessBackend> backend(
      const std::string& machine);

  /// Submits one job (or a whole submit file) into the schedd. Bypasses
  /// front-door admission (the trusted operator path).
  JobId submit(const JobDescription& description);
  std::vector<JobId> submit(const SubmitFile& file);

  /// Admission-checked submit: with frontdoor_rules configured this may
  /// refuse with kBusy carrying a "retry_after_ms=<n>" hint in the status
  /// message (attr::retry_after_hint_ms parses it). Without a front door
  /// it behaves exactly like submit().
  Result<JobId> try_submit(const JobDescription& description);

  /// One negotiation cycle: match idle jobs, run the claiming protocol,
  /// spawn shadows and activate starters. Returns the number of jobs
  /// activated.
  int negotiate();

  /// One pump turn over every busy starter: services TDP events, collects
  /// completions, retires finished startds. Returns the number of jobs
  /// that reached a terminal state during this call.
  int pump();

  /// Convenience for real-backend runs: negotiate+pump until the job is
  /// terminal or `timeout_ms` passes. `idle_hook` (if set) runs every
  /// iteration — the virtual-cluster benches use it to step sim backends.
  Result<JobRecord> run_to_completion(JobId id, int timeout_ms,
                                      const std::function<void()>& idle_hook = {});

  [[nodiscard]] std::size_t machine_count() const { return startds_.size(); }
  [[nodiscard]] std::size_t busy_count() const;

  /// Simulates a machine crash: any job running there is checkpointed (if
  /// the backend supports it), its processes are killed, and the job is
  /// returned to the idle queue to be rescheduled elsewhere — Condor's
  /// checkpoint/migrate behaviour. The machine is withdrawn from
  /// matchmaking until recover_machine().
  Status fail_machine(const std::string& name);

  /// Brings a failed machine back: re-advertises it to the matchmaker.
  Status recover_machine(const std::string& name);

  // --- daemon-death survival (PR 5) ---

  /// Simulates the startd daemon being killed (kill -9): the startd object
  /// and everything it supervised (starter, application processes) vanish
  /// with no checkpoint and no protocol goodbye. Only the claim journal
  /// survives. Its heartbeats stop, so the lease expires; the master's
  /// probe sees the death and revives the machine per the restart policy.
  Status kill_startd(const std::string& name);

  /// Simulates the schedd being killed: running starters lose their shadows
  /// (retired first - they hold Shadow* sinks into the schedd), then the
  /// queue vanishes from memory. Recovery is the master's job, from the
  /// configured journal.
  void kill_schedd();

  /// Jobs requeued through the orphan paths (lease expiry or claim-journal
  /// replay) so far.
  [[nodiscard]] std::uint64_t orphan_requeues() const noexcept {
    return orphan_requeues_;
  }

  // --- hierarchical CASS (PR 7) ---

  /// The live aggregation tree (null unless hierarchical_cass and at least
  /// one check_liveness() ran). Tests use it to pick interior victims.
  [[nodiscard]] const mrnet::HierarchicalCass* cass() const {
    return cass_.get();
  }

  /// Kills an interior comm node of the aggregation tree: beats from its
  /// subtree are lost until its own summary lease expires at its parent
  /// and the children re-parent. Leaf and root ids are rejected.
  Status kill_cass_node(int node);

  /// Liveness writes the root attrspace absorbed (tree mode: summaries
  /// reaching the root; flat mode: every single beat).
  [[nodiscard]] std::uint64_t root_liveness_writes() const noexcept {
    return cass_ ? cass_->root_liveness_writes() : flat_liveness_writes_;
  }

  /// Folds one per-machine telemetry rollup (alive/busy state) through
  /// the tree to the root (flat mode: one write batch per machine).
  /// Returns attributes written at the root.
  int publish_cass_rollup();

  // --- black-box flight recorder + health engine (PR 9) ---

  /// The flight recorder for a pool-side daemon, created on first use.
  /// Owned here, like claim journals: the ring outlives kill_startd /
  /// kill_schedd so the death-detector can dump the victim's capsule.
  /// Null when enable_flightrec is off.
  std::shared_ptr<flightrec::Recorder> recorder(const std::string& role,
                                                const std::string& host);

  /// Path dump_capsule writes the given daemon's capsule to
  /// (capsule_dir/<role>.<host>.capsule).
  [[nodiscard]] std::string capsule_path(const std::string& role,
                                         const std::string& host) const;

  /// Dumps the named daemon's last-known ring as a capsule into
  /// capsule_dir. kInvalidState without a capsule_dir, kNotFound when no
  /// such recorder exists.
  Status dump_capsule(const std::string& role, const std::string& host,
                      const std::string& reason);

  /// Evaluates the configured health rules over every machine's rollup
  /// samples (dead machines included, at machine.alive=0) and publishes
  /// tdp.health.startd.<machine> verdicts plus the overall
  /// tdp.health.startd fold — through the CASS tree in hierarchical mode,
  /// flat writes to cass_store otherwise. Returns attributes written at
  /// the root.
  int publish_health();

  // --- multi-tenant front door (PR 10) ---

  /// The pool's front door (null without frontdoor_rules).
  [[nodiscard]] FrontDoor* front_door() noexcept { return front_door_.get(); }

  /// Publishes per-tenant front-door state (queue depth, verdict
  /// counters, shed flag) plus the overall brownout state into cass_store
  /// (context "cass") for tdptop. Returns attributes written; 0 without a
  /// front door.
  int publish_frontdoor();

 private:
  /// Answers a tdp.control.blackbox.<role>.<host> put with a dump.
  void on_control_poke(const std::string& attribute, const std::string& value);

  /// Rebuilds a dead startd from its remembered ad, replays its claim
  /// journal, requeues the orphan (exactly once) and re-advertises.
  bool revive_startd(const std::string& name);

  /// Exactly-once requeue guard shared by the lease-expiry and the
  /// claim-journal paths: only a non-terminal, non-idle job still matched
  /// to `machine` is requeued.
  void requeue_orphan(JobId job, const std::string& machine);

  /// Beats every live startd's lease, polls the monitor, and handles
  /// expired leases (withdraw + orphan requeue).
  void check_liveness();

  void start_beats(const std::string& name);

  PoolConfig config_;
  Schedd schedd_;
  Matchmaker matchmaker_;
  Master master_;
  std::map<std::string, std::unique_ptr<Startd>> startds_;
  std::map<std::string, std::shared_ptr<proc::ProcessBackend>> backends_;

  /// Survival state (PR 5): remembered ads for revival, claim journals,
  /// per-machine heartbeats, the lease monitor, and the set of machines
  /// currently dead (probe input for the master).
  std::map<std::string, classads::ClassAd> machine_ads_;
  std::map<std::string, journal::Journal*> startd_journals_;
  std::map<std::string, std::unique_ptr<lease::HeartbeatPublisher>> startd_beats_;
  std::map<std::string, std::string> beat_to_machine_;
  std::unique_ptr<lease::LeaseMonitor> startd_monitor_;
  std::set<std::string> dead_startds_;
  std::uint64_t orphan_requeues_ = 0;

  /// Hierarchical CASS state (PR 7): the tree is rebuilt only when the
  /// machine set GROWS (machine_ads_ never shrinks), so lease recovery
  /// logic — not topology edits — handles every death. A rebuild carries
  /// each machine's lease state over from the old tree (in-flight beat
  /// times preserved; already-detected deaths stay untracked so they do
  /// not expire twice).
  void ensure_cass();
  void on_machine_lease_expired(const std::string& machine);
  std::unique_ptr<mrnet::HierarchicalCass> cass_;
  std::size_t cass_hosts_ = 0;
  std::uint64_t flat_liveness_writes_ = 0;

  /// PR 9 state: recorders keyed "<role>.<host>" (the pool is the
  /// supervisor-side owner, so rings survive daemon kills), per-machine
  /// health engines for the flat path (the tree keeps its own), and the
  /// operator-poke subscription id on cass_store.
  std::map<std::string, std::shared_ptr<flightrec::Recorder>> recorders_;
  std::map<std::string, std::unique_ptr<health::Engine>> health_engines_;
  std::uint64_t control_subscription_ = 0;

  /// PR 10: the admission layer, owned here and attached to the schedd
  /// (which treats it as a strict leaf under its own mutex).
  std::unique_ptr<FrontDoor> front_door_;
};

}  // namespace tdp::condor
