// pool.hpp - the assembled MiniCondor pool: one schedd, one matchmaker,
// many startds, plus the connection proxy of Section 2.4. Pool drives the
// Figure-4 pipeline end to end:
//
//   submit -> schedd queue -> negotiate() [matchmaker] -> claiming
//   [schedd <-> startd] -> activate [startd spawns starter] -> Figure 6
//   TDP dance [starter <-> tool daemon <-> app] -> status via shadow ->
//   schedd records completion.
//
// The pool is transport- and backend-agnostic: with TcpTransport +
// PosixProcessBackend it runs real processes; with InProcTransport +
// SimProcessBackend it becomes the virtual cluster the scalability benches
// sweep.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "condor/master.hpp"
#include "condor/matchmaker.hpp"
#include "condor/schedd.hpp"
#include "condor/startd.hpp"
#include "net/proxy.hpp"

namespace tdp::condor {

struct PoolConfig {
  std::shared_ptr<net::Transport> transport;
  /// Creates the per-machine process backend (each execution host controls
  /// its own processes — the single-point-of-responsibility of Section 2.3).
  std::function<std::shared_ptr<proc::ProcessBackend>(const std::string& machine)>
      backend_factory;
  std::string submit_dir = "/tmp";
  std::string scratch_base = "/tmp";
  bool use_real_files = true;
  /// Optional shared tool launcher handed to every starter (not owned).
  ToolLauncher* tool_launcher = nullptr;
  /// Front-end contact info starters publish (Figure 5's -p/-P ports).
  std::string frontend_host;
  int frontend_port = 0;
  int frontend_port2 = 0;
  /// Give starters this proxy address to publish (Section 2.4).
  std::string proxy_address;
  /// Central attribute space address handed to every starter; used to
  /// disseminate front-end contact info when frontend_host is not set.
  std::string cass_address;
  int tool_wait_timeout_ms = 30'000;
  /// Stream job stdout to the shadow while jobs run (real-files mode).
  bool live_stdio = false;
  /// Explicit LASS listen address pattern; "%m"/"%j" expand to machine/job.
  std::string lass_listen_pattern;
  /// Failure-recovery policy handed to every starter's TDP session; enable
  /// when the pool's transport is lossy (chaos tests, flaky networks).
  attr::RetryPolicy retry;
};

class Pool {
 public:
  explicit Pool(PoolConfig config);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Adds an execution machine with the given advertisement.
  Startd& add_machine(const std::string& name, classads::ClassAd ad);

  /// Builds a generic Linux machine ad (helpers for tests/benches).
  static classads::ClassAd default_machine_ad(const std::string& name,
                                              int memory_mb = 1024);

  [[nodiscard]] Schedd& schedd() noexcept { return schedd_; }
  [[nodiscard]] Matchmaker& matchmaker() noexcept { return matchmaker_; }
  [[nodiscard]] Master& master() noexcept { return master_; }
  [[nodiscard]] Startd* startd(const std::string& name);
  [[nodiscard]] std::shared_ptr<proc::ProcessBackend> backend(
      const std::string& machine);

  /// Submits one job (or a whole submit file) into the schedd.
  JobId submit(const JobDescription& description);
  std::vector<JobId> submit(const SubmitFile& file);

  /// One negotiation cycle: match idle jobs, run the claiming protocol,
  /// spawn shadows and activate starters. Returns the number of jobs
  /// activated.
  int negotiate();

  /// One pump turn over every busy starter: services TDP events, collects
  /// completions, retires finished startds. Returns the number of jobs
  /// that reached a terminal state during this call.
  int pump();

  /// Convenience for real-backend runs: negotiate+pump until the job is
  /// terminal or `timeout_ms` passes. `idle_hook` (if set) runs every
  /// iteration — the virtual-cluster benches use it to step sim backends.
  Result<JobRecord> run_to_completion(JobId id, int timeout_ms,
                                      const std::function<void()>& idle_hook = {});

  [[nodiscard]] std::size_t machine_count() const { return startds_.size(); }
  [[nodiscard]] std::size_t busy_count() const;

  /// Simulates a machine crash: any job running there is checkpointed (if
  /// the backend supports it), its processes are killed, and the job is
  /// returned to the idle queue to be rescheduled elsewhere — Condor's
  /// checkpoint/migrate behaviour. The machine is withdrawn from
  /// matchmaking until recover_machine().
  Status fail_machine(const std::string& name);

  /// Brings a failed machine back: re-advertises it to the matchmaker.
  Status recover_machine(const std::string& name);

 private:
  PoolConfig config_;
  Schedd schedd_;
  Matchmaker matchmaker_;
  Master master_;
  std::map<std::string, std::unique_ptr<Startd>> startds_;
  std::map<std::string, std::shared_ptr<proc::ProcessBackend>> backends_;
};

}  // namespace tdp::condor
