#include "condor/submit_file.hpp"

#include "util/string_util.hpp"

namespace tdp::condor {

namespace {

/// Strips one layer of surrounding quotes, as submit files quote values
/// containing spaces ("+ToolDaemonCmd = \"paradynd\"").
std::string unquote(const std::string& value) {
  if (value.size() >= 2 &&
      ((value.front() == '"' && value.back() == '"') ||
       (value.front() == '\'' && value.back() == '\''))) {
    return value.substr(1, value.size() - 2);
  }
  return value;
}

bool parse_bool(const std::string& value) {
  std::string lowered = str::to_lower(value);
  return lowered == "true" || lowered == "yes" || lowered == "1";
}

}  // namespace

Result<SubmitFile> SubmitFile::parse(const std::string& text) {
  SubmitFile out;
  JobDescription current;
  bool saw_any_command = false;

  std::size_t line_number = 0;
  for (const std::string& raw_line : str::split(text, '\n')) {
    ++line_number;
    std::string line = str::trim(raw_line);
    if (line.empty() || line[0] == '#') continue;

    auto fail = [&](const std::string& what) -> Result<SubmitFile> {
      return make_error(ErrorCode::kInvalidArgument,
                        "submit file line " + std::to_string(line_number) + ": " +
                            what);
    };

    // The queue command ends a proc description.
    std::string lowered = str::to_lower(line);
    if (lowered == "queue" || str::starts_with(lowered, "queue ")) {
      int count = 1;
      if (lowered != "queue") {
        std::string count_text = str::trim(line.substr(6));
        if (!str::is_integer(count_text)) {
          return fail("queue count must be an integer: " + count_text);
        }
        count = std::stoi(count_text);
        if (count < 1) return fail("queue count must be >= 1");
      }
      if (current.executable.empty()) {
        return fail("queue without an executable");
      }
      for (int i = 0; i < count; ++i) out.jobs_.push_back(current);
      saw_any_command = true;
      continue;
    }

    std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return fail("expected 'name = value': " + line);
    }
    std::string name = str::to_lower(str::trim(line.substr(0, eq)));
    std::string value = str::trim(line.substr(eq + 1));
    saw_any_command = true;

    if (name.empty()) return fail("empty attribute name");

    if (name[0] == '+') {
      // Extension attributes. The ToolDaemon family is interpreted; other
      // +attributes are preserved into the job ad.
      std::string ext = name.substr(1);
      std::string unquoted = unquote(value);
      if (ext == "suspendjobatexec") {
        current.suspend_job_at_exec = parse_bool(unquoted);
      } else if (ext == "tooldaemoncmd") {
        current.tool_daemon.present = true;
        current.tool_daemon.cmd = unquoted;
      } else if (ext == "tooldaemonargs" || ext == "tooldaemonarguments") {
        current.tool_daemon.args = unquoted;
      } else if (ext == "tooldaemonoutput") {
        current.tool_daemon.output = unquoted;
      } else if (ext == "tooldaemonerror") {
        current.tool_daemon.error = unquoted;
      } else if (ext == "auxservicecmd") {
        for (const std::string& service : str::split(unquoted, ';')) {
          std::string trimmed = str::trim(service);
          if (!trimmed.empty()) current.aux_services.push_back(trimmed);
        }
      } else {
        current.custom_attributes[ext] = value;
      }
      continue;
    }

    if (name == "universe") {
      std::string lowered_value = str::to_lower(value);
      if (lowered_value == "vanilla") {
        current.universe = Universe::kVanilla;
      } else if (lowered_value == "mpi") {
        current.universe = Universe::kMpi;
      } else if (lowered_value == "standard") {
        current.universe = Universe::kStandard;
      } else {
        return fail("unsupported universe: " + value +
                    " (supported: Vanilla, Standard, MPI)");
      }
    } else if (name == "executable") {
      current.executable = unquote(value);
    } else if (name == "arguments") {
      current.arguments = unquote(value);
    } else if (name == "input") {
      current.input = unquote(value);
    } else if (name == "output") {
      current.output = unquote(value);
    } else if (name == "error") {
      current.error = unquote(value);
    } else if (name == "initialdir" || name == "initial_dir") {
      current.initial_dir = unquote(value);
    } else if (name == "requirements") {
      current.requirements = value;
    } else if (name == "rank") {
      current.rank = value;
    } else if (name == "machine_count") {
      if (!str::is_integer(value)) return fail("machine_count must be an integer");
      current.machine_count = std::stoi(value);
      if (current.machine_count < 1) return fail("machine_count must be >= 1");
    } else if (name == "transfer_files") {
      current.transfer_files = str::to_lower(value) == "always" || parse_bool(value);
    } else if (name == "transfer_input_files" || name == "tranfer_input_files") {
      // (The paper's Figure 5B itself contains the 'tranfer' typo; accept it.)
      for (const std::string& file : str::split(unquote(value), ',')) {
        std::string trimmed = str::trim(file);
        if (!trimmed.empty()) current.transfer_input_files.push_back(trimmed);
      }
    } else if (name == "sim_work_units") {
      if (!str::is_integer(value)) return fail("sim_work_units must be an integer");
      current.sim_work_units = std::stoll(value);
    } else if (name == "sim_exit_code") {
      if (!str::is_integer(value)) return fail("sim_exit_code must be an integer");
      current.sim_exit_code = std::stoi(value);
    } else {
      return fail("unknown submit command: " + name);
    }
  }

  if (!saw_any_command) {
    return make_error(ErrorCode::kInvalidArgument, "empty submit file");
  }
  if (out.jobs_.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "submit file has no queue statement");
  }
  // The tool daemon's own input files come from transfer_input_files when
  // they name the daemon binary (Figure 5B transfers 'paradynd').
  for (JobDescription& job : out.jobs_) {
    if (job.tool_daemon.present) {
      job.tool_daemon.input_files = job.transfer_input_files;
    }
  }
  return out;
}

}  // namespace tdp::condor
