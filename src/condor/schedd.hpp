// schedd.hpp - condor_schedd and condor_shadow (the submit-side daemons).
//
// "condor_schedd ... takes care of the job until a suitable and available
// resource is found for the job. The condor_schedd spawns a condor_shadow
// daemon to serve that particular request." The shadow "acts as the
// resource manager for the request" on the submit side: it receives the
// starter's status stream and serves remote system calls (file I/O
// performed on the submit machine on behalf of the remote job).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "condor/frontdoor.hpp"
#include "condor/job.hpp"
#include "condor/starter.hpp"
#include "condor/submit_file.hpp"
#include "util/flightrec.hpp"
#include "util/health.hpp"
#include "util/journal.hpp"
#include "util/sync.hpp"

namespace tdp::condor {

/// The per-job submit-side agent. Implements StatusSink so a starter can
/// report straight into it; forwards every update to the schedd.
class Shadow final : public StatusSink {
 public:
  using UpdateFn =
      std::function<void(JobId, JobStatus, int exit_code, const std::string&)>;

  Shadow(JobId job, std::string submit_dir, UpdateFn on_update);

  void on_job_status(JobId id, JobStatus status, int exit_code,
                     const std::string& detail) override;

  /// Live stdout stream from the starter (live_stdio mode).
  void on_job_output(JobId id, const std::string& chunk) override;

  /// Everything received through on_job_output so far.
  [[nodiscard]] std::string live_output() const;

  [[nodiscard]] JobId job() const noexcept { return job_; }
  [[nodiscard]] JobStatus last_status() const;
  [[nodiscard]] int exit_code() const;
  [[nodiscard]] std::size_t updates_received() const;

  // --- remote system calls (the standard-universe mechanism: "any system
  // call performed on the remote execute machine is sent over the network
  // to the condor_shadow which actually performs the system call (such as
  // file I/O) on the submit machine") ---

  /// Reads a file relative to the submit directory. Also serves as the
  /// StatusSink remote-syscall channel the standard universe uses.
  Result<std::string> remote_read(const std::string& path) override;

  /// Writes/overwrites a file relative to the submit directory.
  Status remote_write(const std::string& path, const std::string& data) override;

  /// Remote syscalls served so far (standard-universe accounting).
  [[nodiscard]] std::size_t remote_syscalls() const;

 private:
  JobId job_;
  std::string submit_dir_;
  UpdateFn on_update_;

  mutable Mutex mutex_{"Shadow::mutex_"};
  JobStatus last_status_ TDP_GUARDED_BY(mutex_) = JobStatus::kIdle;
  int exit_code_ TDP_GUARDED_BY(mutex_) = -1;
  std::size_t updates_ TDP_GUARDED_BY(mutex_) = 0;
  std::string live_output_ TDP_GUARDED_BY(mutex_);
  std::size_t remote_syscalls_ TDP_GUARDED_BY(mutex_) = 0;
};

/// The submit-side queue manager.
class Schedd {
 public:
  explicit Schedd(std::string name = "schedd");

  /// Queues one job; returns its id. Bypasses the front door (internal
  /// and legacy callers); externally-facing submits go through
  /// try_submit().
  JobId submit(const JobDescription& description);

  /// Queues every job a submit file describes.
  std::vector<JobId> submit(const SubmitFile& file);

  // --- front door (PR 10) ---

  /// Attaches the admission layer (not owned; must outlive the schedd or
  /// be detached with nullptr). From then on try_submit() enforces
  /// per-tenant rate/depth/quota and dispatch_ads() drains the per-tenant
  /// queues weighted round-robin.
  void set_front_door(FrontDoor* front_door);
  [[nodiscard]] FrontDoor* front_door() const;

  /// Admission-controlled submit. Refusals return ErrorCode::kBusy with
  /// "retry_after_ms=<n>" in the message (attr::retry_after_hint_ms
  /// parses it) instead of growing the queue — the backpressure contract.
  /// Without an attached front door this is just submit().
  Result<JobId> try_submit(const JobDescription& description);

  /// Feeds the pool's folded health verdict into the brownout state
  /// machine and applies the consequences to the queue: entering a
  /// brownout (or escalating) sheds idle jobs of tenants below the floor,
  /// exiting un-sheds them. Both directions journal each touched job, so
  /// the decisions replay exactly-once across a crash.
  HealthTransition on_health(health::Severity severity);

  /// Jobs currently held out of dispatch by a brownout.
  [[nodiscard]] std::size_t shed_jobs() const;
  /// Jobs admitted as best-effort during a brownout (lifetime flag).
  [[nodiscard]] std::size_t best_effort_jobs() const;
  /// Idle (dispatchable) / in-flight job counts for one tenant.
  [[nodiscard]] std::size_t tenant_idle(const std::string& tenant) const;
  [[nodiscard]] std::size_t tenant_active(const std::string& tenant) const;

  /// Ads of up to `limit` dispatchable idle jobs, drained from the
  /// per-tenant queues weighted round-robin (shed jobs excluded). Without
  /// a front door falls back to idle_job_ads() — the legacy full scan in
  /// id order. The WRR queues rotate: jobs the matchmaker does not place
  /// return to the back of their tenant's lane.
  [[nodiscard]] std::vector<std::pair<JobId, classads::ClassAd>> dispatch_ads(
      std::size_t limit);

  /// Ads of all idle jobs, in queue order (input to the matchmaker).
  [[nodiscard]] std::vector<std::pair<JobId, classads::ClassAd>> idle_job_ads() const;

  /// Snapshot of a job. kNotFound for unknown ids.
  Result<JobRecord> job(JobId id) const;

  /// Status transition, recorded with detail; illegal regressions from a
  /// terminal state are rejected.
  Status update_job(JobId id, JobStatus status, int exit_code,
                    const std::string& detail);

  /// Marks the match target (set when the matchmaker notifies us).
  Status set_matched(JobId id, const std::string& machine);

  /// User-initiated removal; running jobs are the pool's business to kill.
  Status remove_job(JobId id);

  /// Returns an interrupted (non-terminal) job to the idle queue after a
  /// machine failure. When `checkpoint` is non-empty the job resumes from
  /// it on its next activation. Increments the restart counter.
  Status requeue_job(JobId id, const std::string& checkpoint);

  /// Ids of every non-terminal job currently matched to `machine` (orphan
  /// discovery after a startd death without a goodbye).
  [[nodiscard]] std::vector<JobId> jobs_on_machine(const std::string& machine) const;

  /// Spawns the shadow for a matched job. The schedd owns it.
  Shadow* spawn_shadow(JobId id, const std::string& submit_dir);
  [[nodiscard]] Shadow* shadow(JobId id);

  [[nodiscard]] std::size_t queue_size() const;
  [[nodiscard]] std::size_t count_with_status(JobStatus status) const;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // --- crash recovery (PR 5) ---

  /// Attaches a write-ahead journal (not owned; must outlive the schedd or
  /// be detached with nullptr). Every queue mutation is journaled from then
  /// on; any jobs already queued are snapshotted in. The journal is
  /// compacted to a snapshot when its tail grows past an internal bound.
  void set_journal(journal::Journal* journal);

  /// Simulates whole-process death: all in-memory state (queue, shadows,
  /// next id) vanishes; only the journal - the disk - survives. Queries on
  /// a crashed schedd see an empty daemon, exactly like calls into a dead
  /// process that was restarted cold.
  void crash();

  [[nodiscard]] bool crashed() const;

  /// Rebuilds the queue from the journal (last record per job id wins) and
  /// requeues every job that was in flight when the daemon died - its
  /// shadow died too, so the job restarts idle with restarts+1. Requires a
  /// journal.
  Status recover();

  // --- black-box flight recorder (PR 9) ---

  /// Attaches the schedd's flight recorder (shared with the pool so the
  /// ring survives crash()). Queue lifecycle transitions, the crash and
  /// the journal replay land in the ring; events are recorded with no
  /// schedd lock held.
  void set_recorder(std::shared_ptr<flightrec::Recorder> recorder) {
    recorder_ = std::move(recorder);
  }

 private:
  /// Appends one job record to the journal and compacts when due.
  void journal_record_locked(const JobRecord& record) TDP_REQUIRES(mutex_);

  /// Creates, journals, inserts and tracks one idle job. `trace` is the
  /// submit span's serialized context.
  JobId enqueue_locked(const JobDescription& description, std::string tenant,
                       bool best_effort, std::string trace)
      TDP_REQUIRES(mutex_);

  /// Per-tenant queue accounting. Every status mutation brackets itself
  /// with untrack (old state) / track (new state) so the counters and the
  /// WRR queues always mirror the job table.
  void track_job_locked(const JobRecord& record) TDP_REQUIRES(mutex_);
  void untrack_job_locked(const JobRecord& record) TDP_REQUIRES(mutex_);
  /// Rebuilds counters and WRR queues from jobs_ (recovery).
  void rebuild_tenant_state_locked() TDP_REQUIRES(mutex_);
  [[nodiscard]] int tenant_weight_locked(const std::string& tenant) const
      TDP_REQUIRES(mutex_);

  struct TenantLoad {
    std::size_t idle = 0;    ///< dispatchable (kIdle, not shed)
    std::size_t active = 0;  ///< in flight (matched / claimed / running)
  };

  std::string name_;
  mutable Mutex mutex_{"Schedd::mutex_"};
  std::map<JobId, JobRecord> jobs_ TDP_GUARDED_BY(mutex_);
  std::map<JobId, std::unique_ptr<Shadow>> shadows_ TDP_GUARDED_BY(mutex_);
  JobId next_id_ TDP_GUARDED_BY(mutex_) = 1;
  journal::Journal* journal_ TDP_GUARDED_BY(mutex_) = nullptr;
  bool crashed_ TDP_GUARDED_BY(mutex_) = false;
  /// Admission layer; its mutex is a strict leaf under mutex_.
  FrontDoor* front_door_ TDP_GUARDED_BY(mutex_) = nullptr;
  WrrQueues wrr_ TDP_GUARDED_BY(mutex_);
  std::map<std::string, TenantLoad> tenant_load_ TDP_GUARDED_BY(mutex_);
  /// Set once at creation, before concurrent use; recorded into outside
  /// mutex_ (the recorder's shard lock stays a leaf).
  std::shared_ptr<flightrec::Recorder> recorder_;
};

}  // namespace tdp::condor
