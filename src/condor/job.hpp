// job.hpp - the job model shared by all MiniCondor daemons.
//
// A JobDescription is the parsed submit file (Figure 5B), including the
// Parador extensions: SuspendJobAtExec (create the application paused so
// the tool daemon can attach before main(), Section 4.3) and the
// ToolDaemon* family describing the RT the starter must co-launch.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "classads/classad.hpp"
#include "util/journal.hpp"

namespace tdp::condor {

using JobId = std::int64_t;

/// Condor universes we implement. The paper demonstrates Vanilla + MPI
/// (Section 4.3); Standard adds the remote-system-call file I/O of
/// Section 4.1 ("jobs that are linked for Condor's standard universe ...
/// perform remote system calls ... via the condor_shadow").
enum class Universe : std::uint8_t { kVanilla = 0, kMpi, kStandard };

const char* universe_name(Universe universe) noexcept;

/// Job lifecycle as tracked by the schedd/shadow.
enum class JobStatus : std::uint8_t {
  kIdle = 0,    ///< queued, awaiting a match
  kMatched,     ///< matchmaker found a machine; claim in progress
  kClaimed,     ///< claim accepted; activation pending
  kRunning,     ///< starter has spawned the job
  kCompleted,   ///< terminal: exited
  kFailed,      ///< terminal: could not run / killed / starter error
  kRemoved,     ///< terminal: removed by the user
};

const char* job_status_name(JobStatus status) noexcept;

/// True for states a job can never leave.
inline bool job_status_terminal(JobStatus status) noexcept {
  return status == JobStatus::kCompleted || status == JobStatus::kFailed ||
         status == JobStatus::kRemoved;
}

/// The tool-daemon co-launch request (the +ToolDaemon* submit entries).
struct ToolDaemonSpec {
  bool present = false;
  std::string cmd;            ///< +ToolDaemonCmd
  std::string args;           ///< +ToolDaemonArgs (may contain %pid)
  std::string output;         ///< +ToolDaemonOutput
  std::string error;          ///< +ToolDaemonError
  std::vector<std::string> input_files;  ///< from transfer_input_files
};

/// Parsed submit description for one cluster of jobs.
struct JobDescription {
  Universe universe = Universe::kVanilla;
  std::string executable;
  std::string arguments;
  std::string input;      ///< stdin file
  std::string output;     ///< stdout file
  std::string error;      ///< stderr file
  std::string initial_dir;
  std::string requirements;  ///< job-side match constraint (ClassAd expr)
  std::string rank;          ///< job-side preference
  int machine_count = 1;     ///< MPI universe rank count
  bool transfer_files = false;
  std::vector<std::string> transfer_input_files;

  bool suspend_job_at_exec = false;  ///< +SuspendJobAtExec
  ToolDaemonSpec tool_daemon;

  /// Auxiliary services the RM must co-launch (Section 1: "software
  /// multicast/reduction networks ... The RM must be aware of and willing
  /// to launch this second kind of non-application entity"). Each entry is
  /// a full command line (+AuxServiceCmd, ';'-separated for several).
  std::vector<std::string> aux_services;

  /// Any other +Custom attributes, preserved verbatim.
  std::map<std::string, std::string> custom_attributes;

  /// Simulated-backend knobs (virtual cluster benches): how much virtual
  /// work the job performs and its exit code.
  std::int64_t sim_work_units = 1000;
  int sim_exit_code = 0;

  /// Opaque checkpoint to resume from (set by the pool when a machine
  /// failure interrupted a checkpointable run). Empty = start fresh.
  std::string checkpoint;

  /// Builds the job ClassAd the matchmaker negotiates with.
  [[nodiscard]] classads::ClassAd to_classad() const;
};

/// A queued job as the schedd tracks it.
struct JobRecord {
  JobId id = 0;
  JobDescription description;
  JobStatus status = JobStatus::kIdle;
  std::string matched_machine;  ///< name of the claimed machine
  int exit_code = -1;
  std::string failure_reason;
  /// Times this job was requeued after a machine failure.
  int restarts = 0;
  /// Admission tenant (PR 10): the +Tenant submit attribute, or "default".
  std::string tenant;
  /// True while a brownout holds this idle job out of dispatch. Flipping
  /// the flag is journaled, so shed/unshed decisions replay exactly-once.
  bool shed = false;
  /// Admitted during a brownout: queued, but with no service guarantee.
  bool best_effort = false;
  /// Serialized telemetry trace context of the submit that created this
  /// job (util/telemetry.hpp format_context). Every daemon that later
  /// touches the job - startd claim, starter launch, paradynd attach -
  /// parents its spans here, producing one causal tree per submit.
  std::string trace;
};

/// Serializes the complete record (status + description) into a journal
/// "job" record of alternating key/value fields. Written on every schedd
/// mutation; on replay the last record per id wins, so recovery is a
/// single forward pass (PR 5).
journal::Record job_to_journal(const JobRecord& record);

/// Inverse of job_to_journal. Unknown keys are ignored (forward
/// compatibility); kInvalidArgument on a record of the wrong type or with
/// a malformed id.
Result<JobRecord> job_from_journal(const journal::Record& record);

}  // namespace tdp::condor
