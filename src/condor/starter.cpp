#include "condor/starter.hpp"

#include <filesystem>
#include <fstream>
#include <optional>

#include "attrspace/attr_protocol.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"
#include "util/string_util.hpp"
#include "util/telemetry.hpp"

namespace tdp::condor {

namespace {
const log::Logger kLog("starter");

/// Attribute naming for per-rank pids: rank 0 is also published under the
/// plain "pid" name paradynd blocks on (Figure 6 step 3).
std::string rank_pid_attr(int rank) { return "pid." + std::to_string(rank); }
}  // namespace

Result<proc::Pid> ExecToolLauncher::launch(const ToolDaemonSpec& spec,
                                           const std::vector<std::string>& argv,
                                           const std::string& lass_address,
                                           const std::string& context,
                                           const std::string& pid_attribute,
                                           TdpSession& rm_session) {
  if (argv.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "tool argv empty");
  }
  proc::CreateOptions options;
  options.argv = argv;
  options.mode = proc::CreateMode::kRun;
  options.working_dir = scratch_dir_;
  // The tool daemon finds its TDP environment through these variables, the
  // machine-readable form of the "-a%pid" bootstrap hack the paper used.
  options.env = {"TDP_LASS_ADDRESS=" + lass_address, "TDP_CONTEXT=" + context,
                 "TDP_PID_ATTRIBUTE=" + pid_attribute};
  if (!spec.output.empty()) {
    options.stdout_path = scratch_dir_ + "/" + spec.output;
  }
  if (!spec.error.empty()) {
    options.stderr_path = scratch_dir_ + "/" + spec.error;
  }
  return rm_session.create_process(options);
}

Starter::Starter(JobRecord job, StarterConfig config, StatusSink* sink)
    : job_(std::move(job)), config_(std::move(config)), sink_(sink) {
  context_ = "job-" + std::to_string(job_.id);
}

Starter::~Starter() { shutdown(); }

bool Starter::wants_paused_start() const {
  // Only the explicit submit-file directive pauses the application
  // (Figure 5B: "+SuspendJobAtExec = True ... to allow paradynd to monitor
  // the application process from scratch"). A tool daemon without it
  // attaches to the already-running process (scheme 3 of Section 2.2).
  return job_.description.suspend_job_at_exec;
}

Status Starter::launch() {
  // Join the job's causal tree: the pool's startd.claim span is usually the
  // innermost context (activation happens on the negotiate thread); the
  // job record's serialized submit context is the fallback for starters
  // driven directly (tests). An untraced job records nothing.
  telemetry::ScopedAmbient ambient(telemetry::parse_context(job_.trace));
  std::optional<telemetry::Span> span;
  if (telemetry::current_context().valid()) {
    span.emplace("starter.launch", "starter");
  }
  telemetry::Registry::instance().counter("starter.launches").inc();
  launch_time_micros_ = RealClock::instance().now_micros();
  TDP_RETURN_IF_ERROR(setup_sandbox());
  TDP_RETURN_IF_ERROR(start_lass());
  TDP_RETURN_IF_ERROR(init_tdp());  // Figure 6 step 1: tdp_init

  // Figure 6 step 1 (cont.): create the application. Vanilla creates the
  // single process; MPI creates only rank 0 now — the remaining ranks wait
  // until the master is running (Section 4.3).
  const proc::CreateMode mode = wants_paused_start() ? proc::CreateMode::kPaused
                                                     : proc::CreateMode::kRun;
  TDP_RETURN_IF_ERROR(create_rank(0, mode));
  if (job_.description.universe == Universe::kVanilla ||
      job_.description.machine_count == 1) {
    all_ranks_created_ = true;
  }

  TDP_RETURN_IF_ERROR(publish_job_attributes());

  // Auxiliary services (multicast/reduction comm nodes etc.) launch
  // before the tool so they are ready when daemons connect.
  TDP_RETURN_IF_ERROR(launch_aux_services());

  // Figure 6 step 2: launch the tool daemon as a regular process.
  if (job_.description.tool_daemon.present) {
    TDP_RETURN_IF_ERROR(launch_tool(0));
  }

  job_.status = JobStatus::kRunning;
  if (config_.recorder) {
    config_.recorder->state("launch", "job=" + std::to_string(job_.id));
  }
  if (sink_ != nullptr) {
    sink_->on_job_status(job_.id, JobStatus::kRunning, -1, "starter launched job");
  }
  return Status::ok();
}

Status Starter::setup_sandbox() {
  if (!config_.use_real_files) return Status::ok();
  auto scratch =
      FileTransfer::make_scratch_dir(config_.scratch_base,
                                     config_.machine_name + "-" +
                                         std::to_string(job_.id));
  if (!scratch.is_ok()) return scratch.status();
  scratch_dir_ = scratch.value();

  // Stage input files (job inputs and, per Figure 5B, the tool daemon
  // binary itself when listed in transfer_input_files).
  const bool remote_io =
      job_.description.universe == Universe::kStandard && sink_ != nullptr;
  for (const std::string& file : job_.description.transfer_input_files) {
    auto staged = FileTransfer::stage_in(config_.submit_dir, file, scratch_dir_);
    if (!staged.is_ok()) return staged.status();
  }
  if (!job_.description.input.empty()) {
    if (remote_io) {
      // Standard universe: the input bytes travel over the remote-syscall
      // channel, not a shared filesystem.
      auto data = sink_->remote_read(job_.description.input);
      if (!data.is_ok()) return data.status();
      const std::string local =
          scratch_dir_ + "/" +
          std::filesystem::path(job_.description.input).filename().string();
      std::ofstream out(local, std::ios::binary | std::ios::trunc);
      out << data.value();
      if (!out.good()) {
        return make_error(ErrorCode::kInternal, "cannot write staged input");
      }
    } else {
      auto staged =
          FileTransfer::stage_in(config_.submit_dir, job_.description.input,
                                 scratch_dir_);
      if (!staged.is_ok()) return staged.status();
    }
  }
  // If the executable was transferred, run the staged copy.
  if (job_.description.transfer_files || !job_.description.transfer_input_files.empty()) {
    std::filesystem::path staged_exe =
        std::filesystem::path(scratch_dir_) /
        std::filesystem::path(job_.description.executable).filename();
    std::error_code ec;
    if (!std::filesystem::exists(staged_exe, ec) &&
        !job_.description.executable.empty() &&
        job_.description.executable[0] != '/') {
      auto staged = FileTransfer::stage_in(config_.submit_dir,
                                           job_.description.executable,
                                           scratch_dir_);
      if (!staged.is_ok()) return staged.status();
    }
  }
  return Status::ok();
}

Status Starter::start_lass() {
  lass_ = std::make_unique<attr::AttrServer>(
      "LASS@" + config_.machine_name, config_.transport);
  std::string listen = config_.lass_listen_address;
  if (listen.empty()) {
    listen = "inproc://lass-" + config_.machine_name + "-" + std::to_string(job_.id);
  }
  auto started = lass_->start(listen);
  if (!started.is_ok()) {
    // TCP transports cannot listen on inproc-style defaults; retry on an
    // ephemeral localhost port.
    started = lass_->start("127.0.0.1:0");
    if (!started.is_ok()) return started.status();
  }
  lass_address_ = started.value();

  // Self-hosted telemetry: the starter writes its registry snapshot
  // straight into the LASS store (no wire hop - it owns the server).
  attr::TelemetryPublisher::Options pub_options;
  pub_options.role = "starter";
  pub_options.host = config_.machine_name;
  pub_options.context = context_;
  telemetry_pub_ = std::make_unique<attr::TelemetryPublisher>(
      std::move(pub_options), &lass_->store());

  if (config_.tool_lease_enabled) {
    tool_monitor_ =
        std::make_unique<lease::LeaseMonitor>(config_.tool_lease, config_.lease_clock);
    // Every paradynd beat that lands in this LASS renews its lease. The
    // store fires watchers outside its shard lock, and LeaseMonitor is
    // thread-safe, so observing straight from the I/O thread is fine.
    lass_->store().subscribe(
        context_, std::string(lease::kLivenessPrefix) + "paradynd.*",
        [this](const std::string&, const std::string& attribute, const std::string&) {
          tool_monitor_->observe(attribute);
        });
    // The RM's own beat goes straight into its own store (no wire hop);
    // tdptop and pool-side monitors read it as tdp.liveness.starter.<host>.
    own_beat_ = std::make_unique<lease::HeartbeatPublisher>(
        lease::liveness_attr("starter", config_.machine_name), config_.tool_lease,
        config_.lease_clock,
        [this](const std::string& attribute, const std::string& value) {
          return lass_->store().put(context_, attribute, value);
        });
    own_beat_->beat_now();
  }
  return Status::ok();
}

Status Starter::init_tdp() {
  InitOptions options;
  options.role = Role::kResourceManager;
  options.lass_address = lass_address_;
  options.context = context_;
  options.transport = config_.transport;
  options.backend = config_.backend;
  options.proxy_address = config_.proxy_address;
  options.cass_address = config_.cass_address;
  options.retry = config_.retry;
  auto session = TdpSession::init(std::move(options));
  if (!session.is_ok()) return session.status();
  session_ = std::move(session).value();

  // Section 2.2 step 5 support: if the RT announces readiness instead of
  // continuing the process itself, the RM starts the application.
  return session_->subscribe(
      attr::attrs::kRtReady, [this](const std::string&, const std::string& value) {
        if (value != "1" && value != "true") return;
        auto it = rank_pids_.find(0);
        if (it != rank_pids_.end()) {
          Status status = session_->continue_process(it->second);
          if (!status.is_ok()) {
            kLog.warn("rt_ready continue failed: ", status.to_string());
          }
        }
      });
}

Status Starter::create_rank(int rank, proc::CreateMode mode) {
  proc::CreateOptions options;

  std::string executable = job_.description.executable;
  if (config_.use_real_files && !executable.empty() && executable[0] != '/') {
    // Prefer the staged copy inside the sandbox.
    std::filesystem::path staged =
        std::filesystem::path(scratch_dir_) /
        std::filesystem::path(executable).filename();
    std::error_code ec;
    if (std::filesystem::exists(staged, ec)) executable = staged.string();
  }
  options.argv.push_back(executable);
  for (const std::string& arg : str::split_args(job_.description.arguments)) {
    options.argv.push_back(arg);
  }
  if (job_.description.universe == Universe::kMpi) {
    options.env.push_back("MPI_RANK=" + std::to_string(rank));
    options.env.push_back("MPI_SIZE=" + std::to_string(job_.description.machine_count));
  }
  options.mode = mode;
  options.sim_work_units = job_.description.sim_work_units;
  options.sim_exit_code = job_.description.sim_exit_code;

  if (config_.use_real_files) {
    options.working_dir = scratch_dir_;
    auto in_scratch = [this](const std::string& name) {
      return name.empty() ? std::string()
                          : scratch_dir_ + "/" +
                                std::filesystem::path(name).filename().string();
    };
    options.stdin_path = in_scratch(job_.description.input);
    std::string suffix = rank == 0 ? "" : "." + std::to_string(rank);
    if (!job_.description.output.empty()) {
      options.stdout_path = in_scratch(job_.description.output) + suffix;
    }
    if (!job_.description.error.empty()) {
      options.stderr_path = in_scratch(job_.description.error) + suffix;
    }
  }

  // Figure 6 step 1: while this span is open the pid puts below carry the
  // application's context on the wire, so paradynd's blocking get("pid")
  // later joins this exact subtree (the attach handoff).
  std::optional<telemetry::Span> span;
  if (telemetry::current_context().valid()) {
    span.emplace("app.create", "app");
  }

  Result<proc::Pid> pid = make_error(ErrorCode::kInternal, "not launched");
  if (rank == 0 && !job_.description.checkpoint.empty()) {
    // Resume from the checkpoint captured at the previous machine. The
    // restored process comes up paused-at-exec so a tool can re-attach;
    // without a paused-start request the starter releases it itself.
    pid = config_.backend->restore(job_.description.checkpoint, options);
    if (pid.is_ok() && !wants_paused_start()) {
      TDP_RETURN_IF_ERROR(config_.backend->continue_process(pid.value()));
    }
    if (!pid.is_ok() && pid.status().code() == ErrorCode::kUnsupported) {
      kLog.warn("job ", job_.id,
                " has a checkpoint but the backend cannot restore; "
                "restarting from scratch");
      pid = config_.backend->create_process(options);
    }
  } else {
    pid = config_.backend->create_process(options);
  }
  if (!pid.is_ok()) return pid.status();
  rank_pids_[rank] = pid.value();

  // Publish the pid: per-rank attribute always; rank 0 also as the plain
  // "pid" paradynd blocks on.
  TDP_RETURN_IF_ERROR(
      session_->put(rank_pid_attr(rank), std::to_string(pid.value())));
  if (rank == 0) {
    TDP_RETURN_IF_ERROR(
        session_->put(attr::attrs::kPid, std::to_string(pid.value())));
  }
  kLog.debug("job ", job_.id, " rank ", rank, " pid ", pid.value(), " (",
             proc::process_state_name(mode == proc::CreateMode::kRun
                                          ? proc::ProcessState::kRunning
                                          : proc::ProcessState::kPausedAtExec),
             ")");
  return Status::ok();
}

std::map<std::string, std::string> Starter::placeholder_vars() const {
  std::map<std::string, std::string> vars;
  auto rank0 = rank_pids_.find(0);
  vars["pid"] = rank0 != rank_pids_.end() ? std::to_string(rank0->second) : "0";
  vars["executable"] = job_.description.executable;
  vars["job_id"] = std::to_string(job_.id);
  vars["lass"] = lass_address_;
  vars["context"] = context_;
  vars["num_procs"] = std::to_string(job_.description.machine_count);
  return vars;
}

Status Starter::publish_job_attributes() {
  TDP_RETURN_IF_ERROR(session_->put(attr::attrs::kExecutableName,
                                    job_.description.executable));
  TDP_RETURN_IF_ERROR(session_->put(attr::attrs::kAppArgs,
                                    job_.description.arguments));
  TDP_RETURN_IF_ERROR(session_->put(attr::attrs::kJobId, std::to_string(job_.id)));
  TDP_RETURN_IF_ERROR(session_->put(
      attr::attrs::kNumProcs, std::to_string(job_.description.machine_count)));
  if (!scratch_dir_.empty()) {
    TDP_RETURN_IF_ERROR(session_->put(attr::attrs::kWorkingDir, scratch_dir_));
  }
  if (!config_.frontend_host.empty()) {
    TDP_RETURN_IF_ERROR(
        session_->put(attr::attrs::kFrontendHost, config_.frontend_host));
    TDP_RETURN_IF_ERROR(session_->put(attr::attrs::kFrontendPort,
                                      std::to_string(config_.frontend_port)));
    TDP_RETURN_IF_ERROR(session_->put(attr::attrs::kFrontendPort2,
                                      std::to_string(config_.frontend_port2)));
  } else if (session_->has_cass()) {
    // Dissemination path: the front-end published its contact info into
    // the central space; copy it into this job's local space so the tool
    // daemon finds it with plain LASS gets.
    // try_get, not a blocking get: an empty CASS (no front-end registered)
    // must not stall every job launch.
    auto host = session_->cass_try_get(attr::attrs::kFrontendHost);
    if (host.is_ok()) {
      TDP_RETURN_IF_ERROR(session_->put(attr::attrs::kFrontendHost, host.value()));
      auto port = session_->cass_try_get(attr::attrs::kFrontendPort);
      if (port.is_ok()) {
        TDP_RETURN_IF_ERROR(
            session_->put(attr::attrs::kFrontendPort, port.value()));
      }
      auto port2 = session_->cass_try_get(attr::attrs::kFrontendPort2);
      if (port2.is_ok()) {
        TDP_RETURN_IF_ERROR(
            session_->put(attr::attrs::kFrontendPort2, port2.value()));
      }
      kLog.debug("job ", job_.id,
                 ": front-end contact disseminated from the CASS");
    } else {
      kLog.debug("job ", job_.id, ": no front-end registered in the CASS");
    }
  }
  if (!config_.proxy_address.empty()) {
    TDP_RETURN_IF_ERROR(
        session_->put(attr::attrs::kProxyAddress, config_.proxy_address));
  }
  return Status::ok();
}

Status Starter::launch_tool(int rank) {
  const ToolDaemonSpec& spec = job_.description.tool_daemon;
  std::vector<std::string> argv;
  std::string cmd = spec.cmd;
  if (config_.use_real_files && !cmd.empty() && cmd[0] != '/') {
    std::filesystem::path staged =
        std::filesystem::path(scratch_dir_) / std::filesystem::path(cmd).filename();
    std::error_code ec;
    if (std::filesystem::exists(staged, ec)) cmd = staged.string();
  }
  argv.push_back(cmd);
  const std::string expanded =
      str::expand_placeholders(spec.args, placeholder_vars());
  for (const std::string& arg : str::split_args(expanded)) argv.push_back(arg);

  ToolLauncher* launcher = config_.tool_launcher;
  if (launcher == nullptr) {
    if (!default_launcher_) {
      default_launcher_ = std::make_unique<ExecToolLauncher>(scratch_dir_);
    }
    launcher = default_launcher_.get();
  }
  // Rank 0 blocks on the plain "pid" attribute (Figure 6 step 3); MPI
  // ranks r > 0 get their own daemon blocked on "pid.<r>" (Section 4.3:
  // "processes are created and stopped, paradynds attach to them").
  const std::string pid_attribute =
      rank == 0 ? std::string(attr::attrs::kPid) : rank_pid_attr(rank);
  auto pid =
      launcher->launch(spec, argv, lass_address_, context_, pid_attribute, *session_);
  if (!pid.is_ok()) return pid.status();
  tool_pids_[rank] = pid.value();
  if (rank == 0) tool_pid_ = pid.value();
  kLog.info("job ", job_.id, " tool daemon '", spec.cmd, "' launched for rank ",
            rank, " (pid ", pid.value(), ")");
  return Status::ok();
}

Status Starter::launch_aux_services() {
  for (std::size_t i = 0; i < job_.description.aux_services.size(); ++i) {
    proc::CreateOptions options;
    options.argv = str::split_args(job_.description.aux_services[i]);
    if (options.argv.empty()) continue;
    options.mode = proc::CreateMode::kRun;
    options.env = {"TDP_LASS_ADDRESS=" + lass_address_, "TDP_CONTEXT=" + context_};
    if (config_.use_real_files) options.working_dir = scratch_dir_;
    // Long-lived by default in the simulated world: the service outlives
    // the job unless explicitly killed.
    options.sim_work_units = job_.description.sim_work_units * 100;
    auto pid = config_.backend->create_process(options);
    if (!pid.is_ok()) return pid.status();
    aux_pids_.push_back(pid.value());
    TDP_RETURN_IF_ERROR(session_->put("aux_pid." + std::to_string(i),
                                      std::to_string(pid.value())));
    kLog.info("job ", job_.id, " auxiliary service ", i, " launched (pid ",
              pid.value(), ")");
  }
  return Status::ok();
}

void Starter::forward_stdio() {
  // Tail the job's stdout file and push new bytes to the submit side, so
  // output "appears at the same location as the RT's front-end" while the
  // job is still running.
  if (!config_.use_real_files || job_.description.output.empty() ||
      sink_ == nullptr || scratch_dir_.empty()) {
    return;
  }
  const std::string path =
      scratch_dir_ + "/" +
      std::filesystem::path(job_.description.output).filename().string();
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(in.tellg());
  if (size <= stdio_offset_) return;
  in.seekg(static_cast<std::streamoff>(stdio_offset_));
  std::string chunk(size - stdio_offset_, '\0');
  in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  stdio_offset_ = size;
  sink_->on_job_output(job_.id, chunk);
}

void Starter::watch_tool_daemons() {
  // Fault detection for the RT (Section 1): the RM must notice a dead
  // tool daemon. The application keeps running (losing the profiler must
  // not kill the job), but the death is published into the attribute
  // space and logged so front-ends and operators can react.
  if (done_) return;
  for (const auto& [rank, pid] : tool_pids_) {
    if (pid <= 0) continue;  // in-process tools are not backend-managed
    if (tool_death_reported_[rank]) continue;
    auto info = config_.backend->info(pid);
    if (!info.is_ok() || !proc::is_terminal(info->state)) continue;
    // Tool exit after its application rank finished is normal shutdown.
    auto rank_it = rank_pids_.find(rank);
    if (rank_it != rank_pids_.end()) {
      auto app_info = config_.backend->info(rank_it->second);
      if (app_info.is_ok() && proc::is_terminal(app_info->state)) continue;
    }
    tool_death_reported_[rank] = true;
    session_->put("tool_state." + std::to_string(rank),
                  std::string(proc::process_state_name(info->state)));
    kLog.warn("job ", job_.id, ": tool daemon for rank ", rank, " (pid ", pid,
              ") died while the application is still running");
  }
}

void Starter::check_tool_leases() {
  // Daemon-death supervision for the RT: a missed lease means the tool
  // daemon is gone even when the backend cannot tell us (in-process tools
  // have synthetic pids). The application is never touched — Section 2.3
  // puts the processes under the RM, and the pid is still in the LASS, so
  // the relaunched daemon reattaches via the ordinary Figure 6 handshake.
  if (!tool_monitor_ || done_) return;
  if (own_beat_) own_beat_->maybe_beat();
  tool_monitor_->poll();
  const std::string prefix = std::string(lease::kLivenessPrefix) + "paradynd.";
  for (const std::string& name : tool_monitor_->expired()) {
    if (!str::starts_with(name, prefix)) continue;
    // Beat suffix is the pid attribute with '.' folded to '-': "pid" is
    // rank 0, "pid-<r>" is MPI rank r.
    const std::string suffix = name.substr(prefix.size());
    int rank = 0;
    if (str::starts_with(suffix, "pid-")) {
      try {
        rank = std::stoi(suffix.substr(4));
      } catch (const std::exception&) {
        continue;
      }
    } else if (suffix != "pid") {
      continue;
    }
    // A tool outliving its application rank has nothing left to profile;
    // lease expiry after rank exit is normal shutdown, not a fault.
    auto rank_it = rank_pids_.find(rank);
    if (rank_it != rank_pids_.end()) {
      auto app_info = config_.backend->info(rank_it->second);
      if (!app_info.is_ok() || proc::is_terminal(app_info->state)) {
        tool_monitor_->forget(name);
        continue;
      }
    } else {
      tool_monitor_->forget(name);
      continue;
    }
    if (config_.recorder) {
      config_.recorder->lease("expired", "paradynd rank=" + std::to_string(rank));
    }
    if (config_.tool_recorder && !config_.capsule_dir.empty()) {
      // The starter detected the tool daemon's death and still holds its
      // last-known ring: dump the victim's black box before anything else
      // records over it.
      Status dumped = config_.tool_recorder->dump(
          config_.capsule_dir + "/" + config_.tool_recorder->role() + "." +
              config_.tool_recorder->host() + ".capsule",
          "lease-expired");
      if (!dumped.is_ok()) {
        kLog.warn("job ", job_.id,
                  ": tool capsule dump failed: ", dumped.to_string());
      }
    }
    if (tool_restarts_[rank] >= config_.tool_restart_budget) {
      if (!tool_death_reported_[rank]) {
        tool_death_reported_[rank] = true;
        session_->put("tool_state." + std::to_string(rank), "lease-expired");
        kLog.error("job ", job_.id, ": tool daemon for rank ", rank,
                   " lease expired and the restart budget (",
                   config_.tool_restart_budget, ") is spent; running untooled");
      }
      tool_monitor_->forget(name);
      continue;
    }
    ++tool_restarts_[rank];
    telemetry::Registry::instance().counter("starter.tool_restarts").inc();
    if (config_.recorder) {
      config_.recorder->state("tool-relaunch",
                              "rank=" + std::to_string(rank) + " attempt=" +
                                  std::to_string(tool_restarts_[rank]));
    }
    // Forget before relaunch: the replacement's first beat re-tracks the
    // name with a fresh lease instead of inheriting the expired one.
    tool_monitor_->forget(name);
    kLog.warn("job ", job_.id, ": tool daemon for rank ", rank,
              " lease expired while the application runs; relaunching (",
              tool_restarts_[rank], "/", config_.tool_restart_budget, ")");
    Status relaunched = launch_tool(rank);
    if (!relaunched.is_ok()) {
      kLog.error("job ", job_.id, ": tool relaunch for rank ", rank,
                 " failed: ", relaunched.to_string());
    }
    session_->put("tool_restarts." + std::to_string(rank),
                  std::to_string(tool_restarts_[rank]));
  }
}

proc::Pid Starter::app_pid(int rank) const {
  auto it = rank_pids_.find(rank);
  return it == rank_pids_.end() ? 0 : it->second;
}

bool Starter::pump() {
  if (done_) return true;
  // Pump turns run on the pool thread with no span on the stack; restore
  // the job's context so late rank creation and finish() join its tree.
  telemetry::ScopedAmbient ambient(telemetry::parse_context(job_.trace));
  session_->service_events();
  if (telemetry_pub_) telemetry_pub_->maybe_publish();
  if (config_.live_stdio) forward_stdio();
  watch_tool_daemons();
  check_tool_leases();

  // MPI staged startup: once rank 0 runs (the tool attached and continued
  // it, or no tool was requested), create the remaining ranks.
  if (!all_ranks_created_) {
    auto rank0 = config_.backend->info(rank_pids_[0]);
    if (rank0.is_ok() && (rank0->state == proc::ProcessState::kRunning ||
                          proc::is_terminal(rank0->state))) {
      const proc::CreateMode mode = wants_paused_start()
                                        ? proc::CreateMode::kPaused
                                        : proc::CreateMode::kRun;
      for (int rank = 1; rank < job_.description.machine_count; ++rank) {
        Status status = create_rank(rank, mode);
        if (!status.is_ok()) {
          finish(JobStatus::kFailed, -1,
                 "rank " + std::to_string(rank) + ": " + status.to_string());
          return true;
        }
        if (job_.description.tool_daemon.present) {
          status = launch_tool(rank);
          if (!status.is_ok()) {
            finish(JobStatus::kFailed, -1,
                   "tool for rank " + std::to_string(rank) + ": " +
                       status.to_string());
            return true;
          }
        }
      }
      all_ranks_created_ = true;
    }
  }

  // Tool-wait timeout: a requested tool that never continues the paused
  // application is a fault the RM must detect.
  if (config_.tool_wait_timeout_ms > 0 && wants_paused_start() && !done_) {
    auto rank0 = config_.backend->info(rank_pids_[0]);
    if (rank0.is_ok() && rank0->state == proc::ProcessState::kPausedAtExec) {
      const std::int64_t elapsed_ms =
          (RealClock::instance().now_micros() - launch_time_micros_) / 1000;
      if (elapsed_ms > config_.tool_wait_timeout_ms) {
        finish(JobStatus::kFailed, -1,
               "tool daemon did not start the application within " +
                   std::to_string(config_.tool_wait_timeout_ms) + "ms");
        return true;
      }
    }
  }

  // Fault detection (Section 1): an auxiliary service that dies while the
  // job is live is a failure the RM must observe and act on.
  for (proc::Pid aux : aux_pids_) {
    auto info = config_.backend->info(aux);
    if (info.is_ok() && proc::is_terminal(info->state)) {
      finish(JobStatus::kFailed, -1,
             "auxiliary service (pid " + std::to_string(aux) +
                 ") terminated while the job was running");
      return true;
    }
  }

  // Completion: every created rank terminal and all ranks created.
  if (!all_ranks_created_) return done_;
  bool all_terminal = true;
  int exit_code = 0;
  std::string failure;
  for (const auto& [rank, pid] : rank_pids_) {
    auto info = config_.backend->info(pid);
    if (!info.is_ok()) {
      all_terminal = false;
      break;
    }
    if (!proc::is_terminal(info->state)) {
      all_terminal = false;
      break;
    }
    if (info->state == proc::ProcessState::kSignalled) {
      failure = "rank " + std::to_string(rank) + " killed by signal " +
                std::to_string(info->term_signal);
    } else if (info->state == proc::ProcessState::kFailed) {
      failure = "rank " + std::to_string(rank) + " failed to launch";
    } else if (info->exit_code != 0 && exit_code == 0) {
      exit_code = info->exit_code;
    }
  }
  if (all_terminal) {
    if (!failure.empty()) {
      finish(JobStatus::kFailed, -1, failure);
    } else {
      finish(JobStatus::kCompleted, exit_code, "");
    }
  }
  return done_;
}

void Starter::finish(JobStatus status, int exit_code, const std::string& detail) {
  if (done_) return;
  done_ = true;
  telemetry::ScopedAmbient ambient(telemetry::parse_context(job_.trace));
  std::optional<telemetry::Span> span;
  if (telemetry::current_context().valid()) {
    span.emplace("starter.finish", "starter");
  }
  // Flush the tail of the live stdout stream before teardown.
  if (config_.live_stdio) forward_stdio();
  // Publish the terminal state of every rank before anything is torn
  // down, so an attached tool daemon can observe the exit through the
  // attribute space (Section 2.3 status monitoring). service_events first
  // flushes any event the backend already queued.
  if (session_) {
    session_->service_events();
    for (const auto& [rank, pid] : rank_pids_) {
      auto info = config_.backend->info(pid);
      if (!info.is_ok() || !proc::is_terminal(info->state)) continue;
      std::string value = proc::process_state_name(info->state);
      if (info->state == proc::ProcessState::kExited) {
        value += ":" + std::to_string(info->exit_code);
      } else if (info->state == proc::ProcessState::kSignalled) {
        value += ":" + std::to_string(info->term_signal);
      }
      session_->put(control::state_attr(pid), value);
    }
  }
  for (proc::Pid aux : aux_pids_) {
    auto info = config_.backend->info(aux);
    if (info.is_ok() && !proc::is_terminal(info->state)) {
      config_.backend->kill_process(aux);
    }
  }
  job_.status = status;
  job_.exit_code = exit_code;
  job_.failure_reason = detail;

  // Give the tool daemons a moment to observe the exit, flush their trace
  // files, and terminate; the RM reaps them before staging outputs (the
  // paper: trace files "must be transferred from the execution nodes after
  // the application completes").
  for (const auto& [rank, pid] : tool_pids_) {
    if (pid <= 0) continue;  // in-process tools have synthetic ids
    auto reaped = config_.backend->wait_terminal(pid, 5'000);
    if (!reaped.is_ok()) {
      kLog.warn("tool daemon for rank ", rank, " (pid ", pid,
                ") did not exit after the job; killing it");
      config_.backend->kill_process(pid);
      config_.backend->wait_terminal(pid, 2'000);
    }
  }

  // "When a job completes, the starter sends back any status information
  // to the submitting machine" (Section 4.1) — and stages the declared
  // outputs back, tool daemon trace files included.
  if (config_.use_real_files && !scratch_dir_.empty()) {
    std::vector<std::string> outputs;
    if (!job_.description.output.empty()) outputs.push_back(job_.description.output);
    if (!job_.description.error.empty()) outputs.push_back(job_.description.error);
    if (!job_.description.tool_daemon.output.empty()) {
      outputs.push_back(job_.description.tool_daemon.output);
    }
    if (!job_.description.tool_daemon.error.empty()) {
      outputs.push_back(job_.description.tool_daemon.error);
    }
    for (int rank = 1; rank < job_.description.machine_count; ++rank) {
      if (!job_.description.output.empty()) {
        outputs.push_back(job_.description.output + "." + std::to_string(rank));
      }
    }
    if (job_.description.universe == Universe::kStandard && sink_ != nullptr) {
      // Standard universe: outputs return through remote_write, one
      // "system call" per file.
      for (const std::string& name : outputs) {
        const std::string local =
            scratch_dir_ + "/" + std::filesystem::path(name).filename().string();
        std::ifstream in(local, std::ios::binary);
        if (!in) continue;  // the job did not produce this output
        std::string data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        Status written =
            sink_->remote_write(std::filesystem::path(name).filename().string(),
                                data);
        if (!written.is_ok()) {
          kLog.warn("remote_write of ", name, " failed: ", written.to_string());
        }
      }
    } else {
      auto copied =
          FileTransfer::stage_out(scratch_dir_, outputs, config_.submit_dir);
      if (!copied.is_ok()) {
        kLog.warn("output staging failed: ", copied.status().to_string());
      }
    }
  }
  if (sink_ != nullptr) sink_->on_job_status(job_.id, status, exit_code, detail);
  kLog.info("job ", job_.id, " finished: ", job_status_name(status),
            status == JobStatus::kCompleted ? " code " + std::to_string(exit_code)
                                            : " (" + detail + ")");
}

void Starter::shutdown() {
  for (proc::Pid aux : aux_pids_) {
    auto info = config_.backend->info(aux);
    if (info.is_ok() && !proc::is_terminal(info->state)) {
      config_.backend->kill_process(aux);
    }
  }
  for (const auto& [rank, pid] : rank_pids_) {
    auto info = config_.backend->info(pid);
    if (info.is_ok() && !proc::is_terminal(info->state)) {
      config_.backend->kill_process(pid);
    }
  }
  if (session_) session_->exit();
  if (lass_) lass_->stop();
}

}  // namespace tdp::condor
