// submit_file.hpp - parser for the Condor submit description language,
// extended exactly as Figure 5B shows:
//
//     universe = Vanilla
//     executable = foo
//     input = infile
//     output = outfile
//     arguments = 1 2 3
//     transfer_files = always
//     +SuspendJobAtExec = True
//     +ToolDaemonCmd = "paradynd"
//     +ToolDaemonArgs = "-zunix -l3 -mpinguino.cs.wisc.edu
//                        -p2090 -P2091 -a%pid"
//     +ToolDaemonOutput = "daemon.out"
//     +ToolDaemonError = "daemon.err"
//     transfer_input_files = paradynd
//     queue
//
// "instead of Arguments, one will use ToolDaemonArguments, instead of
// output, one will use ToolDaemonOutput, and so on" (Section 4.3). Both
// the short (+ToolDaemonArgs) and long (+ToolDaemonArguments) spellings
// are accepted. Comments start with '#'. `queue N` emits N identical jobs.
#pragma once

#include <string>
#include <vector>

#include "condor/job.hpp"

namespace tdp::condor {

class SubmitFile {
 public:
  /// Parses the submit text. kInvalidArgument on malformed lines, unknown
  /// universes, or a missing executable at queue time.
  static Result<SubmitFile> parse(const std::string& text);

  /// The jobs this file queues (one JobDescription per queued proc).
  [[nodiscard]] const std::vector<JobDescription>& jobs() const noexcept {
    return jobs_;
  }

 private:
  std::vector<JobDescription> jobs_;
};

}  // namespace tdp::condor
