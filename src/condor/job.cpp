#include "condor/job.hpp"

#include "util/string_util.hpp"

namespace tdp::condor {

const char* universe_name(Universe universe) noexcept {
  switch (universe) {
    case Universe::kVanilla: return "Vanilla";
    case Universe::kMpi: return "MPI";
    case Universe::kStandard: return "Standard";
  }
  return "?";
}

const char* job_status_name(JobStatus status) noexcept {
  switch (status) {
    case JobStatus::kIdle: return "idle";
    case JobStatus::kMatched: return "matched";
    case JobStatus::kClaimed: return "claimed";
    case JobStatus::kRunning: return "running";
    case JobStatus::kCompleted: return "completed";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kRemoved: return "removed";
  }
  return "?";
}

classads::ClassAd JobDescription::to_classad() const {
  classads::ClassAd ad;
  ad.insert_string(classads::ads::kMyType, "Job");
  ad.insert_string("cmd", executable);
  ad.insert_string("universe", universe_name(universe));
  ad.insert_int("machine_count", machine_count);
  // The submit-side image size stands in for memory demand; without better
  // information, assume a small footprint so unconstrained jobs match.
  ad.insert_int("imagesize", 1);
  if (!requirements.empty()) {
    ad.insert(classads::ads::kRequirements, requirements);
  }
  if (!rank.empty()) {
    ad.insert(classads::ads::kRank, rank);
  }
  ad.insert_bool("wants_tool_daemon", tool_daemon.present);
  for (const auto& [name, value] : custom_attributes) {
    // Custom attributes are inserted as expressions when they parse, and as
    // quoted strings otherwise (matching Condor's forgiving submit syntax).
    if (!ad.insert(name, value).is_ok()) ad.insert_string(name, value);
  }
  return ad;
}

namespace {

/// List fields inside one journal value, separated by ASCII unit-separator
/// (cannot appear in paths/command lines; the journal codec escapes the
/// value as a whole).
constexpr char kListSep = '\x1f';

std::string join_list(const std::vector<std::string>& parts) {
  return str::join(parts, std::string(1, kListSep));
}

std::vector<std::string> split_list(const std::string& value) {
  if (value.empty()) return {};
  return str::split(value, kListSep);
}

}  // namespace

journal::Record job_to_journal(const JobRecord& record) {
  journal::Record out;
  out.type = "job";
  auto put = [&out](const std::string& key, const std::string& value) {
    out.fields.push_back(key);
    out.fields.push_back(value);
  };
  const JobDescription& d = record.description;
  put("id", std::to_string(record.id));
  put("status", std::to_string(static_cast<int>(record.status)));
  put("machine", record.matched_machine);
  put("exit_code", std::to_string(record.exit_code));
  put("failure", record.failure_reason);
  put("restarts", std::to_string(record.restarts));
  put("trace", record.trace);
  put("tenant", record.tenant);
  put("shed", record.shed ? "1" : "0");
  put("best_effort", record.best_effort ? "1" : "0");
  put("universe", std::to_string(static_cast<int>(d.universe)));
  put("executable", d.executable);
  put("arguments", d.arguments);
  put("input", d.input);
  put("output", d.output);
  put("error", d.error);
  put("initial_dir", d.initial_dir);
  put("requirements", d.requirements);
  put("rank", d.rank);
  put("machine_count", std::to_string(d.machine_count));
  put("transfer_files", d.transfer_files ? "1" : "0");
  put("transfer_input_files", join_list(d.transfer_input_files));
  put("suspend_job_at_exec", d.suspend_job_at_exec ? "1" : "0");
  put("td_present", d.tool_daemon.present ? "1" : "0");
  put("td_cmd", d.tool_daemon.cmd);
  put("td_args", d.tool_daemon.args);
  put("td_output", d.tool_daemon.output);
  put("td_error", d.tool_daemon.error);
  put("td_input_files", join_list(d.tool_daemon.input_files));
  put("aux_services", join_list(d.aux_services));
  put("sim_work_units", std::to_string(d.sim_work_units));
  put("sim_exit_code", std::to_string(d.sim_exit_code));
  put("checkpoint", d.checkpoint);
  for (const auto& [name, value] : d.custom_attributes) {
    put("ca." + name, value);
  }
  return out;
}

Result<JobRecord> job_from_journal(const journal::Record& record) {
  if (record.type != "job") {
    return Status(ErrorCode::kInvalidArgument,
                  "not a job record: " + record.type);
  }
  if (record.fields.size() % 2 != 0) {
    return Status(ErrorCode::kInvalidArgument, "odd field count");
  }
  JobRecord out;
  JobDescription& d = out.description;
  bool saw_id = false;
  for (std::size_t i = 0; i + 1 < record.fields.size(); i += 2) {
    const std::string& key = record.fields[i];
    const std::string& value = record.fields[i + 1];
    auto as_int = [&value]() { return std::stoll(value); };
    try {
      if (key == "id") {
        out.id = as_int();
        saw_id = true;
      } else if (key == "status") {
        out.status = static_cast<JobStatus>(as_int());
      } else if (key == "machine") {
        out.matched_machine = value;
      } else if (key == "exit_code") {
        out.exit_code = static_cast<int>(as_int());
      } else if (key == "failure") {
        out.failure_reason = value;
      } else if (key == "restarts") {
        out.restarts = static_cast<int>(as_int());
      } else if (key == "trace") {
        out.trace = value;
      } else if (key == "tenant") {
        out.tenant = value;
      } else if (key == "shed") {
        out.shed = value == "1";
      } else if (key == "best_effort") {
        out.best_effort = value == "1";
      } else if (key == "universe") {
        d.universe = static_cast<Universe>(as_int());
      } else if (key == "executable") {
        d.executable = value;
      } else if (key == "arguments") {
        d.arguments = value;
      } else if (key == "input") {
        d.input = value;
      } else if (key == "output") {
        d.output = value;
      } else if (key == "error") {
        d.error = value;
      } else if (key == "initial_dir") {
        d.initial_dir = value;
      } else if (key == "requirements") {
        d.requirements = value;
      } else if (key == "rank") {
        d.rank = value;
      } else if (key == "machine_count") {
        d.machine_count = static_cast<int>(as_int());
      } else if (key == "transfer_files") {
        d.transfer_files = value == "1";
      } else if (key == "transfer_input_files") {
        d.transfer_input_files = split_list(value);
      } else if (key == "suspend_job_at_exec") {
        d.suspend_job_at_exec = value == "1";
      } else if (key == "td_present") {
        d.tool_daemon.present = value == "1";
      } else if (key == "td_cmd") {
        d.tool_daemon.cmd = value;
      } else if (key == "td_args") {
        d.tool_daemon.args = value;
      } else if (key == "td_output") {
        d.tool_daemon.output = value;
      } else if (key == "td_error") {
        d.tool_daemon.error = value;
      } else if (key == "td_input_files") {
        d.tool_daemon.input_files = split_list(value);
      } else if (key == "aux_services") {
        d.aux_services = split_list(value);
      } else if (key == "sim_work_units") {
        d.sim_work_units = as_int();
      } else if (key == "sim_exit_code") {
        d.sim_exit_code = static_cast<int>(as_int());
      } else if (key == "checkpoint") {
        d.checkpoint = value;
      } else if (str::starts_with(key, "ca.")) {
        d.custom_attributes[key.substr(3)] = value;
      }
      // Unknown keys: skip (a newer writer's record replays on an older
      // reader without losing the fields both understand).
    } catch (const std::exception&) {
      return Status(ErrorCode::kInvalidArgument,
                    "malformed journal value for '" + key + "': " + value);
    }
  }
  if (!saw_id) {
    return Status(ErrorCode::kInvalidArgument, "job record without an id");
  }
  return out;
}

}  // namespace tdp::condor
