#include "condor/job.hpp"

namespace tdp::condor {

const char* universe_name(Universe universe) noexcept {
  switch (universe) {
    case Universe::kVanilla: return "Vanilla";
    case Universe::kMpi: return "MPI";
    case Universe::kStandard: return "Standard";
  }
  return "?";
}

const char* job_status_name(JobStatus status) noexcept {
  switch (status) {
    case JobStatus::kIdle: return "idle";
    case JobStatus::kMatched: return "matched";
    case JobStatus::kClaimed: return "claimed";
    case JobStatus::kRunning: return "running";
    case JobStatus::kCompleted: return "completed";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kRemoved: return "removed";
  }
  return "?";
}

classads::ClassAd JobDescription::to_classad() const {
  classads::ClassAd ad;
  ad.insert_string(classads::ads::kMyType, "Job");
  ad.insert_string("cmd", executable);
  ad.insert_string("universe", universe_name(universe));
  ad.insert_int("machine_count", machine_count);
  // The submit-side image size stands in for memory demand; without better
  // information, assume a small footprint so unconstrained jobs match.
  ad.insert_int("imagesize", 1);
  if (!requirements.empty()) {
    ad.insert(classads::ads::kRequirements, requirements);
  }
  if (!rank.empty()) {
    ad.insert(classads::ads::kRank, rank);
  }
  ad.insert_bool("wants_tool_daemon", tool_daemon.present);
  for (const auto& [name, value] : custom_attributes) {
    // Custom attributes are inserted as expressions when they parse, and as
    // quoted strings otherwise (matching Condor's forgiving submit syntax).
    if (!ad.insert(name, value).is_ok()) ad.insert_string(name, value);
  }
  return ad;
}

}  // namespace tdp::condor
