// master.hpp - condor_master: "present on both local and remote nodes; its
// job is to keep track of the other Condor daemons" (Section 4.1). A
// miniature supervisor: daemons register a liveness probe and a restart
// action; tick() restarts whatever died. This is the hook the paper's
// fault-detection requirement ("the RM must be able to detect these
// failures [and] respond to them") hangs on, and the fault-injection tests
// drive it directly.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>
#include "util/sync.hpp"

namespace tdp::condor {

class Master {
 public:
  using AliveProbe = std::function<bool()>;
  using RestartAction = std::function<bool()>;  ///< returns restart success

  /// Registers a daemon under `name`; replaces any existing registration.
  void supervise(const std::string& name, AliveProbe alive, RestartAction restart);

  void forget(const std::string& name);

  /// Probes every daemon and restarts the dead ones. Returns the names
  /// restarted this tick (empty = all healthy).
  std::vector<std::string> tick();

  [[nodiscard]] std::size_t supervised_count() const;

  struct Stats {
    std::uint64_t ticks = 0;
    std::uint64_t restarts = 0;
    std::uint64_t failed_restarts = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    AliveProbe alive;
    RestartAction restart;
  };

  mutable Mutex mutex_{"Master::mutex_"};
  std::map<std::string, Entry> daemons_ TDP_GUARDED_BY(mutex_);
  Stats stats_ TDP_GUARDED_BY(mutex_);
};

}  // namespace tdp::condor
