// master.hpp - condor_master: "present on both local and remote nodes; its
// job is to keep track of the other Condor daemons" (Section 4.1). Since
// PR 5 this is a real supervisor, not just a probe loop: daemons register a
// liveness probe and a restart action; tick() restarts whatever died with
// exponential backoff + jitter between consecutive attempts, and a
// restart-budget circuit breaker halts a crash-looping daemon instead of
// spinning (the terminal condition surfaces as telemetry counter
// master.circuit_open plus DaemonHealth::kHalted). The first restart after
// a death is immediate - backoff only separates repeated attempts for a
// daemon that stays dead.
//
// All time flows through a tdp::Clock so backoff windows are deterministic
// under ManualClock in tests; jitter comes from a seeded Rng for the same
// reason.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/clock.hpp"
#include "util/flightrec.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace tdp::condor {

class Master {
 public:
  using AliveProbe = std::function<bool()>;
  using RestartAction = std::function<bool()>;  ///< returns restart success

  struct Policy {
    /// Delay before the second consecutive restart attempt; doubles per
    /// attempt up to max_backoff_ms. The first attempt is always immediate.
    int base_backoff_ms = 10;
    int max_backoff_ms = 1'000;
    /// Consecutive restart attempts (without an alive probe in between)
    /// after which the circuit breaker halts the daemon.
    int restart_budget = 5;
    /// Seed for the backoff jitter (deterministic chaos runs).
    std::uint64_t jitter_seed = 0x7d05;
  };

  enum class DaemonHealth : std::uint8_t {
    kHealthy,     ///< last probe alive, no recovery in progress
    kRestarting,  ///< dead; restart attempts under way (possibly in backoff)
    kHalted,      ///< circuit breaker open: budget exhausted
    kUnknown,     ///< not supervised
  };

  Master();
  explicit Master(Policy policy);

  void set_policy(Policy policy);
  /// Clock used for backoff scheduling; must outlive the master.
  void set_clock(const Clock* clock);

  /// Registers a daemon under `name`; replaces any existing registration
  /// (and clears its recovery state).
  void supervise(const std::string& name, AliveProbe alive, RestartAction restart);

  void forget(const std::string& name);

  /// Probes every daemon and restarts the dead ones (subject to backoff and
  /// the restart budget). Returns the names restarted this tick (empty =
  /// all healthy or all waiting).
  std::vector<std::string> tick();

  [[nodiscard]] DaemonHealth health(const std::string& name) const;
  /// Successful restarts of `name` since supervision began.
  [[nodiscard]] std::uint64_t restart_count(const std::string& name) const;
  /// Manual operator override: closes the breaker and clears backoff so the
  /// next tick may attempt a restart again.
  void reset(const std::string& name);

  [[nodiscard]] std::size_t supervised_count() const;

  struct Stats {
    std::uint64_t ticks = 0;
    std::uint64_t restarts = 0;
    std::uint64_t failed_restarts = 0;
    std::uint64_t circuit_breaks = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Attaches the master's flight recorder (PR 9): restart outcomes and
  /// circuit-breaker trips land in the ring. Set once at creation, before
  /// concurrent ticks; recorded into outside mutex_.
  void set_recorder(std::shared_ptr<flightrec::Recorder> recorder) {
    recorder_ = std::move(recorder);
  }

 private:
  struct Entry {
    AliveProbe alive;
    RestartAction restart;
    /// Restart attempts since the daemon was last probed alive.
    int attempts_since_alive = 0;
    Micros next_attempt_micros = 0;
    std::uint64_t restarts = 0;
    bool halted = false;
  };

  /// Backoff before attempt number `attempts`+1, with +/-50% jitter.
  [[nodiscard]] Micros backoff_micros(int attempts) TDP_REQUIRES(mutex_);

  mutable Mutex mutex_{"Master::mutex_"};
  std::map<std::string, Entry> daemons_ TDP_GUARDED_BY(mutex_);
  Stats stats_ TDP_GUARDED_BY(mutex_);
  Policy policy_ TDP_GUARDED_BY(mutex_);
  Rng jitter_ TDP_GUARDED_BY(mutex_);

  std::atomic<const Clock*> clock_{&RealClock::instance()};
  std::shared_ptr<flightrec::Recorder> recorder_;
};

}  // namespace tdp::condor
