// frontdoor.hpp - the schedd's multi-tenant admission layer (PR 10).
//
// Condor's schedd accepts every submit and lets the queue grow without
// bound; under a submit storm the daemon melts exactly when the pool needs
// it most. The front door puts an explicit admission decision in front of
// the queue:
//
//   * every job belongs to a tenant (the +Tenant submit attribute; jobs
//     without one share the "default" tenant);
//   * each tenant has a token-bucket submit rate, a bounded queue depth
//     and an in-flight quota, declared in a one-line grammar like the
//     health rules (util/health.hpp):
//
//       tenant <name>: rate=<r/s> burst=<b> depth=<d> weight=<w>
//                      priority=<p> quota=<q>
//       default: rate=... (policy for tenants with no line of their own)
//       brownout: warn-floor=<p> critical-floor=<p> exit-after=<n>
//                 dwell-ms=<ms> busy-retry-ms=<ms> shed-retry-ms=<ms>
//
//   * an over-limit submit is refused with kBusy plus a server-computed
//     retry-after hint (the client's RetryPolicy honors it with jitter —
//     explicit backpressure instead of unbounded queueing);
//   * the health engine's verdict (PR 9) drives a brownout state machine:
//     warn/critical shed the lowest-priority tenants first (priority below
//     the configured floor), degrade everything else to best-effort, and
//     recover with hysteresis (a consecutive-ok streak plus a minimum
//     dwell) so a flapping metric cannot flap the pool;
//   * dispatch to the matchmaker drains per-tenant queues weighted
//     round-robin, so one noisy tenant cannot starve the rest.
//
// Locking: FrontDoor::mutex_ is a strict leaf under Schedd::mutex_ —
// admit()/on_health() compute under it and never call out (DESIGN.md §10).
// WrrQueues is deliberately unlocked: it lives inside the Schedd and is
// guarded by Schedd::mutex_ like the job table it indexes.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "condor/job.hpp"
#include "util/clock.hpp"
#include "util/health.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace tdp::condor {

/// Per-tenant admission policy (one `tenant <name>:` line).
struct TenantPolicy {
  std::string name;
  double rate = 50.0;   ///< sustained submits/second (token refill)
  double burst = 20.0;  ///< bucket capacity (tokens)
  int depth = 1000;     ///< max idle jobs queued at once
  int weight = 1;       ///< weighted-round-robin dispatch share
  int priority = 0;     ///< brownout sheds lowest priority first
  int quota = 0;        ///< max in-flight (matched..running) jobs; 0 = unlimited
};

/// Brownout behaviour (the `brownout:` line).
struct BrownoutPolicy {
  int warn_floor = 0;      ///< warn sheds tenants with priority < this
  int critical_floor = 0;  ///< critical sheds tenants with priority < this
  int exit_after = 3;      ///< consecutive ok evaluations required to exit
  int dwell_ms = 1000;     ///< minimum time in brownout before exit
  int busy_retry_ms = 50;  ///< retry-after hint for depth/quota refusals
  int shed_retry_ms = 500; ///< retry-after hint for shed-tenant refusals
};

/// The parsed configuration: named tenants, the policy tenants without a
/// line inherit, and the brownout behaviour.
struct FrontDoorConfig {
  std::map<std::string, TenantPolicy> tenants;
  TenantPolicy default_policy;
  BrownoutPolicy brownout;
};

/// Parses one `tenant <name>:` / `default:` / `brownout:` line.
/// kInvalidArgument with a pointed message on anything malformed
/// (unknown keys, rate <= 0, burst/depth/weight < 1, quota < 0, a
/// critical floor below the warn floor).
Result<FrontDoorConfig> parse_frontdoor_config(
    const std::vector<std::string>& lines);

/// The tenant a submit belongs to: the +Tenant custom attribute with
/// submit-file quoting stripped, or "default" when absent/empty.
[[nodiscard]] std::string tenant_of(const JobDescription& description);
inline constexpr const char* kDefaultTenant = "default";

/// Brownout depth. Ordered: comparisons like `state >= kWarnBrownout`
/// mean "shedding at least the warn floor".
enum class BrownoutState : std::uint8_t { kNormal = 0, kWarnBrownout, kCriticalBrownout };
[[nodiscard]] const char* brownout_state_name(BrownoutState state) noexcept;

/// One admission decision.
struct Admission {
  enum class Verdict : std::uint8_t {
    kAdmit = 0,       ///< queue it
    kAdmitBestEffort, ///< queue it degraded (brownout: no quota headroom wasted)
    kBusy,            ///< over rate/depth/quota: retry after the hint
    kShed,            ///< tenant shed by brownout: retry after the (longer) hint
  };
  Verdict verdict = Verdict::kAdmit;
  int retry_after_ms = 0;  ///< 0 when admitted
  std::string reason;      ///< human-readable refusal cause ("" when admitted)

  [[nodiscard]] bool admitted() const noexcept {
    return verdict == Verdict::kAdmit || verdict == Verdict::kAdmitBestEffort;
  }
};

/// What one health evaluation changed, for the schedd to act on (shedding
/// already-queued jobs of newly shed tenants is the schedd's job — it owns
/// the queue and the journal).
struct HealthTransition {
  bool entered = false;  ///< entered brownout or escalated warn -> critical
  bool exited = false;   ///< recovered to normal (hysteresis satisfied)
  BrownoutState state = BrownoutState::kNormal;
  int shed_floor = 0;    ///< tenants with priority < this are shed now
};

/// Per-tenant admission counters (tdptop's front-door pane).
struct TenantCounters {
  std::uint64_t admitted = 0;
  std::uint64_t best_effort = 0;
  std::uint64_t busy = 0;  ///< rate/depth/quota refusals
  std::uint64_t shed = 0;  ///< brownout refusals
};

/// The admission engine: token buckets, quotas and the brownout state
/// machine. Thread-safe; the mutex is a strict leaf (Schedd::mutex_ may be
/// held by the caller).
class FrontDoor {
 public:
  explicit FrontDoor(FrontDoorConfig config,
                     const Clock* clock = &RealClock::instance());

  /// The effective policy for `tenant` (its own line or the default, with
  /// the name filled in).
  [[nodiscard]] TenantPolicy policy(const std::string& tenant) const;

  /// Decides one submit. `queued_depth` and `active` are the tenant's
  /// current idle-queue depth and in-flight job count, maintained by the
  /// caller (the schedd owns the job table; the front door owns only the
  /// policy state).
  Admission admit(const std::string& tenant, std::size_t queued_depth,
                  std::size_t active);

  /// Feeds one health-engine verdict into the brownout state machine.
  /// Entering (or escalating) happens immediately on warn/critical; exit
  /// requires `exit_after` consecutive ok verdicts AND `dwell_ms` elapsed
  /// since entry — the hysteresis that stops a flapping metric from
  /// flapping the pool.
  HealthTransition on_health(health::Severity severity);

  [[nodiscard]] BrownoutState state() const;
  /// Current shed floor (0 when normal: nothing shed).
  [[nodiscard]] int shed_floor() const;
  /// True when `tenant` is currently shed.
  [[nodiscard]] bool is_shed(const std::string& tenant) const;

  [[nodiscard]] TenantCounters counters(const std::string& tenant) const;
  /// Tenants seen so far (admitted or refused), sorted.
  [[nodiscard]] std::vector<std::string> seen_tenants() const;
  /// Brownout entries so far (flap detector for tests).
  [[nodiscard]] std::uint64_t brownout_entries() const;

  [[nodiscard]] const BrownoutPolicy& brownout_policy() const noexcept {
    return config_.brownout;
  }

 private:
  struct Bucket {
    double tokens = 0.0;
    Micros refilled_at = 0;
  };

  [[nodiscard]] const TenantPolicy& policy_locked(
      const std::string& tenant) const TDP_REQUIRES(mutex_);

  FrontDoorConfig config_;  ///< immutable after construction
  const Clock* clock_;      ///< not owned

  mutable Mutex mutex_{"FrontDoor::mutex_"};
  std::map<std::string, Bucket> buckets_ TDP_GUARDED_BY(mutex_);
  std::map<std::string, TenantCounters> counters_ TDP_GUARDED_BY(mutex_);
  BrownoutState state_ TDP_GUARDED_BY(mutex_) = BrownoutState::kNormal;
  Micros entered_at_ TDP_GUARDED_BY(mutex_) = 0;
  int ok_streak_ TDP_GUARDED_BY(mutex_) = 0;
  std::uint64_t entries_ TDP_GUARDED_BY(mutex_) = 0;
};

/// Per-tenant FIFO queues drained weighted round-robin. Unlocked by
/// design: owned by the Schedd and guarded by Schedd::mutex_ (annotating
/// that here would need the container to know its owner's mutex, so the
/// schedd simply never touches it unlocked).
class WrrQueues {
 public:
  /// Queues `id` under `tenant` with the given WRR weight; a job id
  /// already queued anywhere is not queued twice.
  void push(const std::string& tenant, int weight, JobId id);

  /// Removes `id` wherever it is queued (job removed/completed/shed).
  void erase(JobId id);

  /// Pops up to `limit` job ids, weighted round-robin across tenants: a
  /// rotating cursor gives each tenant up to `weight` consecutive pops per
  /// visit. Popped ids leave the queues — the caller re-pushes what the
  /// matchmaker did not place.
  std::vector<JobId> pop_round(std::size_t limit);

  [[nodiscard]] std::size_t size() const { return queued_.size(); }
  [[nodiscard]] bool contains(JobId id) const { return queued_.count(id) != 0; }
  [[nodiscard]] std::size_t tenant_depth(const std::string& tenant) const;

 private:
  struct Lane {
    int weight = 1;
    std::deque<JobId> jobs;
  };
  /// map keeps lanes in deterministic (name) order; the cursor remembers
  /// the tenant to start from so no lane is systematically favored.
  std::map<std::string, Lane> lanes_;
  std::set<JobId> queued_;
  std::string cursor_;  ///< first tenant to serve next round
};

}  // namespace tdp::condor
