// starter.hpp - condor_starter: "the entity that spawns the remote Condor
// job on a given machine. It sets up the execution environment and
// monitors the job once it is running" (Section 4.1). Together with the
// startd it forms the RM of the TDP model, and it is the daemon that was
// modified in Parador to speak TDP (Figure 6):
//
//   Step 1: starter runs tdp_init (creating/joining the LASS) and launches
//           the application with tdp_create_process(paused) when the
//           submit file carries +SuspendJobAtExec;
//   Step 2: starter launches the tool daemon (ToolDaemonCmd) as a normal
//           process, with %pid placeholders expanded;
//   Step 3: the paradynd blocks in tdp_get("pid") until the starter's
//           tdp_put lands the application pid in the LASS, attaches, and
//   Step 4: continues the application and controls it from then on.
//
// The starter also implements the MPI universe's staged startup
// (Section 4.3): rank 0 first, tool attached, and the remaining ranks
// created once rank 0 has been set running.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attrspace/attr_server.hpp"
#include "attrspace/telemetry_export.hpp"
#include "condor/file_transfer.hpp"
#include "condor/job.hpp"
#include "core/tdp.hpp"
#include "net/transport.hpp"
#include "proc/backend.hpp"
#include "util/flightrec.hpp"
#include "util/lease.hpp"

namespace tdp::condor {

/// Where the starter reports job progress (implemented by the shadow).
class StatusSink {
 public:
  virtual ~StatusSink() = default;
  virtual void on_job_status(JobId id, JobStatus status, int exit_code,
                             const std::string& detail) = 0;

  /// Live standard-output forwarding (the paper's "standard input and
  /// output management": the job's stdio "appears at the same location as
  /// the RT's front-end" — here, the submit side — while the job runs).
  /// Default: ignore; the shadow accumulates it.
  virtual void on_job_output(JobId id, const std::string& chunk) {
    (void)id;
    (void)chunk;
  }

  // --- remote system calls (standard universe, Section 4.1): file I/O
  // "sent over the network to the condor_shadow which actually performs
  // the system call on the submit machine". Default: unsupported; the
  // Shadow implements them against the submit directory. ---

  virtual Result<std::string> remote_read(const std::string& path) {
    (void)path;
    return make_error(ErrorCode::kUnsupported, "no remote-syscall channel");
  }
  virtual Status remote_write(const std::string& path, const std::string& data) {
    (void)path;
    (void)data;
    return make_error(ErrorCode::kUnsupported, "no remote-syscall channel");
  }
};

/// Strategy for launching the run-time tool daemon. The default executes
/// ToolDaemonCmd as a real process through the RM's TDP session; tests and
/// the virtual cluster substitute in-process tool objects.
class ToolLauncher {
 public:
  virtual ~ToolLauncher() = default;

  /// `argv` already has %pid etc. expanded. `pid_attribute` names the LASS
  /// attribute this daemon must block on for its application pid ("pid"
  /// for rank 0 / vanilla jobs, "pid.<r>" for MPI rank r — the paper's MPI
  /// universe attaches one paradynd per rank, Section 4.3). Returns the
  /// tool's pid (or a synthetic id for in-process tools).
  virtual Result<proc::Pid> launch(const ToolDaemonSpec& spec,
                                   const std::vector<std::string>& argv,
                                   const std::string& lass_address,
                                   const std::string& context,
                                   const std::string& pid_attribute,
                                   TdpSession& rm_session) = 0;
};

/// Default launcher: tdp_create_process(RT, run) per Figure 3A.
class ExecToolLauncher final : public ToolLauncher {
 public:
  explicit ExecToolLauncher(std::string scratch_dir)
      : scratch_dir_(std::move(scratch_dir)) {}

  Result<proc::Pid> launch(const ToolDaemonSpec& spec,
                           const std::vector<std::string>& argv,
                           const std::string& lass_address,
                           const std::string& context,
                           const std::string& pid_attribute,
                           TdpSession& rm_session) override;

 private:
  std::string scratch_dir_;
};

struct StarterConfig {
  std::string machine_name = "exec-host";
  std::string submit_dir;          ///< where inputs live / outputs return
  std::string scratch_base = "/tmp";
  std::shared_ptr<net::Transport> transport;
  std::shared_ptr<proc::ProcessBackend> backend;
  /// Listen address for this job's LASS; empty selects
  /// "inproc://lass-<machine>-<job>" for in-process transports and
  /// "127.0.0.1:0" for TCP.
  std::string lass_listen_address;
  /// Optional external tool launcher (not owned); nullptr = exec launcher.
  ToolLauncher* tool_launcher = nullptr;
  /// Skip real filesystem staging/stdio (virtual-cluster mode).
  bool use_real_files = true;
  /// Front-end contact info published into the LASS (Section 4.3: "port
  /// arguments should be published by the front-end and disseminated to
  /// remote sites as attribute values").
  std::string frontend_host;
  int frontend_port = 0;
  int frontend_port2 = 0;
  /// RM proxy address published for firewalled RT->front-end connections.
  std::string proxy_address;
  /// Central attribute space (CASS) on the submit/front-end host. When
  /// set and no static frontend_host is configured, the starter reads the
  /// front-end contact info from the CASS and disseminates it into this
  /// job's LASS (the paper's Section 4.3 "complete TDP framework" flow).
  std::string cass_address;
  /// Fail the job if a requested tool has not continued the paused
  /// application within this bound (<=0 disables; virtual mode ignores).
  int tool_wait_timeout_ms = 30'000;
  /// Stream the job's stdout to the StatusSink while it runs (real-files
  /// mode only).
  bool live_stdio = false;
  /// Failure-recovery policy for this starter's TDP session (LASS link).
  attr::RetryPolicy retry;

  /// Lease-based tool-daemon supervision. When enabled the starter watches
  /// tdp.liveness.paradynd.* beats in its LASS, publishes its own
  /// tdp.liveness.starter.<machine> beat, and relaunches a tool daemon
  /// whose lease expires while its application rank is still running (the
  /// pid is still in the LASS, so the replacement reattaches through the
  /// normal Figure 6 handshake). Backend-pid polling cannot see in-process
  /// tools (synthetic pids); the lease can.
  bool tool_lease_enabled = false;
  lease::Config tool_lease;
  /// Relaunches per rank before the starter gives up on that tool.
  int tool_restart_budget = 2;
  /// Clock for lease expiry decisions (tests inject a ManualClock).
  const Clock* lease_clock = &RealClock::instance();

  // --- black-box flight recorder (PR 9) ---

  /// This starter's own flight recorder (role "starter"): launch, tool
  /// lease expiries and relaunches land in it. Null = off.
  std::shared_ptr<flightrec::Recorder> recorder;
  /// The tool daemon's ring, when the launcher shares one. The starter is
  /// the peer that detects a tool death (lease expiry), so it dumps this
  /// last-known ring as a capsule into capsule_dir at that moment.
  std::shared_ptr<flightrec::Recorder> tool_recorder;
  /// Where tool capsules go; empty disables the dump.
  std::string capsule_dir;
};

class Starter {
 public:
  Starter(JobRecord job, StarterConfig config, StatusSink* sink);
  ~Starter();

  Starter(const Starter&) = delete;
  Starter& operator=(const Starter&) = delete;

  /// Performs Figure 6 steps 1-2: sandbox, LASS, tdp_init, application
  /// creation (paused when a tool will attach), attribute publication,
  /// tool launch. On success the job is kRunning (from the RM's view).
  Status launch();

  /// One turn of the starter's central poll loop: services TDP events,
  /// advances MPI staged startup, detects completion/failure, stages
  /// output files, and reports to the shadow. Returns true when the job
  /// has reached a terminal state.
  bool pump();

  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] const JobRecord& job() const noexcept { return job_; }
  [[nodiscard]] std::string lass_address() const { return lass_address_; }
  [[nodiscard]] std::string scratch_dir() const { return scratch_dir_; }
  [[nodiscard]] const std::string& context() const { return context_; }

  /// Pid of rank `rank` (0 = the master process). 0 when not yet created.
  [[nodiscard]] proc::Pid app_pid(int rank = 0) const;

  /// Pids of the co-launched auxiliary services.
  [[nodiscard]] const std::vector<proc::Pid>& aux_pids() const noexcept {
    return aux_pids_;
  }

  /// Number of ranks created so far (MPI staged startup observability).
  [[nodiscard]] int ranks_created() const noexcept {
    return static_cast<int>(rank_pids_.size());
  }

  /// The RM-side TDP session (tests; also how a startd injects control).
  TdpSession& rm_session() { return *session_; }

  /// Kills all application processes and tears down the LASS.
  void shutdown();

  /// Tool-daemon relaunches performed for `rank` after lease expiry.
  [[nodiscard]] int tool_restarts(int rank = 0) const {
    auto it = tool_restarts_.find(rank);
    return it == tool_restarts_.end() ? 0 : it->second;
  }

 private:
  Status setup_sandbox();
  Status start_lass();
  Status init_tdp();
  Status create_rank(int rank, proc::CreateMode mode);
  Status publish_job_attributes();
  Status launch_tool(int rank);
  Status launch_aux_services();
  void finish(JobStatus status, int exit_code, const std::string& detail);
  void forward_stdio();
  void watch_tool_daemons();
  void check_tool_leases();
  [[nodiscard]] bool wants_paused_start() const;
  [[nodiscard]] std::map<std::string, std::string> placeholder_vars() const;

  JobRecord job_;
  StarterConfig config_;
  StatusSink* sink_;

  std::unique_ptr<attr::AttrServer> lass_;
  /// Publishes this RM's metrics into its own LASS (tdp.telemetry.starter.*)
  /// each pump turn, so tools and tdptop observe the RM through the same
  /// attribute space that carries job control.
  std::unique_ptr<attr::TelemetryPublisher> telemetry_pub_;
  std::string lass_address_;
  std::string context_;
  std::unique_ptr<TdpSession> session_;
  std::unique_ptr<ExecToolLauncher> default_launcher_;

  std::string scratch_dir_;
  std::map<int, proc::Pid> rank_pids_;
  std::map<int, proc::Pid> tool_pids_;  ///< one tool daemon per rank
  std::vector<proc::Pid> aux_pids_;     ///< co-launched auxiliary services
  proc::Pid tool_pid_ = 0;              ///< rank 0's tool daemon
  bool all_ranks_created_ = false;
  bool done_ = false;
  std::int64_t launch_time_micros_ = 0;
  std::size_t stdio_offset_ = 0;          ///< bytes of stdout forwarded so far
  std::map<int, bool> tool_death_reported_;

  /// Lease-based tool supervision (tool_lease_enabled).
  std::unique_ptr<lease::LeaseMonitor> tool_monitor_;
  std::unique_ptr<lease::HeartbeatPublisher> own_beat_;
  std::map<int, int> tool_restarts_;
};

}  // namespace tdp::condor
