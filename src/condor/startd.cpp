#include "condor/startd.hpp"

#include "util/log.hpp"

namespace tdp::condor {

namespace {
const log::Logger kLog("startd");
}

const char* startd_state_name(Startd::State state) noexcept {
  switch (state) {
    case Startd::State::kUnclaimed: return "unclaimed";
    case Startd::State::kClaimed: return "claimed";
    case Startd::State::kBusy: return "busy";
  }
  return "?";
}

Startd::Startd(std::string name, classads::ClassAd ad)
    : name_(std::move(name)), ad_(std::move(ad)) {}

Startd::State Startd::state() const {
  LockGuard lock(mutex_);
  return state_;
}

classads::ClassAd Startd::ad() const {
  LockGuard lock(mutex_);
  return ad_;
}

Starter* Startd::starter() const {
  LockGuard lock(mutex_);
  return starter_.get();
}

void Startd::update_ad(classads::ClassAd ad) {
  LockGuard lock(mutex_);
  ad_ = std::move(ad);
}

bool Startd::request_claim(JobId job, const classads::ClassAd& job_ad) {
  bool granted = false;
  {
    LockGuard lock(mutex_);
    if (state_ != State::kUnclaimed) {
      kLog.debug(name_, ": claim for job ", job, " refused (",
                 startd_state_name(state_), ")");
      return false;
    }
    // Machine-side re-verification: conditions may have changed since the
    // matchmaker's cycle (stale ad); the startd gets the final word.
    if (ad_.has(classads::ads::kRequirements) &&
        !ad_.evaluate(classads::ads::kRequirements, &job_ad).is_true()) {
      kLog.debug(name_, ": claim for job ", job, " refused (requirements)");
      return false;
    }
    state_ = State::kClaimed;
    claimed_job_ = job;
    journal_claim_locked();
    granted = true;
  }
  if (granted && recorder_) {
    recorder_->state("claim", "job=" + std::to_string(job));
  }
  return granted;
}

void Startd::release_claim() {
  bool released = false;
  {
    LockGuard lock(mutex_);
    if (state_ == State::kClaimed) {
      state_ = State::kUnclaimed;
      claimed_job_ = 0;
      journal_claim_locked();
      released = true;
    }
  }
  if (released && recorder_) recorder_->state("release", "");
}

Result<Starter*> Startd::activate(JobRecord job, StarterConfig config,
                                  StatusSink* sink) {
  const JobId job_id = job.id;
  UniqueLock lock(mutex_);
  if (state_ != State::kClaimed || claimed_job_ != job.id) {
    return make_error(ErrorCode::kInvalidState,
                      name_ + ": activation without a matching claim");
  }
  config.machine_name = name_;
  auto starter = std::make_unique<Starter>(std::move(job), std::move(config), sink);
  lock.unlock();
  Status launched = starter->launch();  // may spawn processes: no lock held
  lock.lock();
  if (!launched.is_ok()) {
    state_ = State::kUnclaimed;
    claimed_job_ = 0;
    return launched;
  }
  starter_ = std::move(starter);
  state_ = State::kBusy;
  Starter* active = starter_.get();
  lock.unlock();
  if (recorder_) {
    recorder_->state("activate", "job=" + std::to_string(job_id));
  }
  return active;
}

void Startd::retire() {
  UniqueLock lock(mutex_);
  std::unique_ptr<Starter> starter = std::move(starter_);
  state_ = State::kUnclaimed;
  claimed_job_ = 0;
  journal_claim_locked();
  lock.unlock();
  if (starter != nullptr && recorder_) recorder_->state("retire", "");
  starter.reset();  // shutdown outside the lock
}

JobId Startd::claimed_job() const {
  LockGuard lock(mutex_);
  return claimed_job_;
}

// ---------------------------------------------------------------------
// Claim-table journal (PR 5)
// ---------------------------------------------------------------------

void Startd::journal_claim_locked() {
  if (journal_ == nullptr) return;
  // The claim table is one slot, so every write is a full snapshot of it;
  // no separate compaction pass is ever needed.
  journal::Record record;
  if (claimed_job_ != 0) {
    record.type = "claim";
    record.fields = {std::to_string(claimed_job_)};
  } else {
    record.type = "clear";
  }
  Status written = journal_->write_snapshot({record});
  if (!written.is_ok()) {
    kLog.warn(name_, ": claim journal write failed: ", written.to_string());
  }
}

void Startd::set_journal(journal::Journal* journal) {
  // Attach only: the journal may still hold the previous incarnation's
  // claim, which recover() must be able to read before anything overwrites
  // it.
  LockGuard lock(mutex_);
  journal_ = journal;
}

Result<std::optional<JobId>> Startd::recover() {
  UniqueLock lock(mutex_);
  if (journal_ == nullptr) {
    return make_error(ErrorCode::kInvalidState, name_ + ": no claim journal");
  }
  journal::ReplayStats replay_stats;
  auto replayed = journal_->replay(&replay_stats);
  if (!replayed.is_ok()) return replayed.status();
  if (replay_stats.resyncs > 0 || replay_stats.torn_tail) {
    kLog.warn(name_, ": claim journal recovery skipped ",
              replay_stats.bytes_skipped, " byte(s) across ",
              replay_stats.resyncs, " resync(s)",
              replay_stats.torn_tail ? " plus a torn tail" : "");
  }
  std::optional<JobId> orphan;
  for (const journal::Record& record : replayed.value()) {
    if (record.type == "claim" && !record.fields.empty()) {
      try {
        orphan = std::stoll(record.fields[0]);
      } catch (const std::exception&) {
        kLog.warn(name_, ": damaged claim record ignored");
      }
    } else if (record.type == "clear") {
      orphan.reset();
    }
  }
  // The new incarnation starts unclaimed either way: the dead starter's
  // processes are gone, so holding the claim open would wedge the machine.
  state_ = State::kUnclaimed;
  claimed_job_ = 0;
  journal_claim_locked();
  if (orphan.has_value()) {
    kLog.warn(name_, ": recovered with orphaned claim for job ", *orphan);
  }
  lock.unlock();
  if (recorder_) {
    recorder_->replay("claim-journal", replay_stats);
    recorder_->state("recover", orphan.has_value()
                                    ? "orphan=" + std::to_string(*orphan)
                                    : "clean");
  }
  return orphan;
}

}  // namespace tdp::condor
