#include "condor/startd.hpp"

#include "util/log.hpp"

namespace tdp::condor {

namespace {
const log::Logger kLog("startd");
}

const char* startd_state_name(Startd::State state) noexcept {
  switch (state) {
    case Startd::State::kUnclaimed: return "unclaimed";
    case Startd::State::kClaimed: return "claimed";
    case Startd::State::kBusy: return "busy";
  }
  return "?";
}

Startd::Startd(std::string name, classads::ClassAd ad)
    : name_(std::move(name)), ad_(std::move(ad)) {}

Startd::State Startd::state() const {
  LockGuard lock(mutex_);
  return state_;
}

classads::ClassAd Startd::ad() const {
  LockGuard lock(mutex_);
  return ad_;
}

Starter* Startd::starter() const {
  LockGuard lock(mutex_);
  return starter_.get();
}

void Startd::update_ad(classads::ClassAd ad) {
  LockGuard lock(mutex_);
  ad_ = std::move(ad);
}

bool Startd::request_claim(JobId job, const classads::ClassAd& job_ad) {
  LockGuard lock(mutex_);
  if (state_ != State::kUnclaimed) {
    kLog.debug(name_, ": claim for job ", job, " refused (",
               startd_state_name(state_), ")");
    return false;
  }
  // Machine-side re-verification: conditions may have changed since the
  // matchmaker's cycle (stale ad); the startd gets the final word.
  if (ad_.has(classads::ads::kRequirements) &&
      !ad_.evaluate(classads::ads::kRequirements, &job_ad).is_true()) {
    kLog.debug(name_, ": claim for job ", job, " refused (requirements)");
    return false;
  }
  state_ = State::kClaimed;
  claimed_job_ = job;
  return true;
}

void Startd::release_claim() {
  LockGuard lock(mutex_);
  if (state_ == State::kClaimed) {
    state_ = State::kUnclaimed;
    claimed_job_ = 0;
  }
}

Result<Starter*> Startd::activate(JobRecord job, StarterConfig config,
                                  StatusSink* sink) {
  UniqueLock lock(mutex_);
  if (state_ != State::kClaimed || claimed_job_ != job.id) {
    return make_error(ErrorCode::kInvalidState,
                      name_ + ": activation without a matching claim");
  }
  config.machine_name = name_;
  auto starter = std::make_unique<Starter>(std::move(job), std::move(config), sink);
  lock.unlock();
  Status launched = starter->launch();  // may spawn processes: no lock held
  lock.lock();
  if (!launched.is_ok()) {
    state_ = State::kUnclaimed;
    claimed_job_ = 0;
    return launched;
  }
  starter_ = std::move(starter);
  state_ = State::kBusy;
  return starter_.get();
}

void Startd::retire() {
  UniqueLock lock(mutex_);
  std::unique_ptr<Starter> starter = std::move(starter_);
  state_ = State::kUnclaimed;
  claimed_job_ = 0;
  lock.unlock();
  starter.reset();  // shutdown outside the lock
}

JobId Startd::claimed_job() const {
  LockGuard lock(mutex_);
  return claimed_job_;
}

}  // namespace tdp::condor
