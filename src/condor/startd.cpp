#include "condor/startd.hpp"

#include "util/log.hpp"

namespace tdp::condor {

namespace {
const log::Logger kLog("startd");
}

const char* startd_state_name(Startd::State state) noexcept {
  switch (state) {
    case Startd::State::kUnclaimed: return "unclaimed";
    case Startd::State::kClaimed: return "claimed";
    case Startd::State::kBusy: return "busy";
  }
  return "?";
}

Startd::Startd(std::string name, classads::ClassAd ad)
    : name_(std::move(name)), ad_(std::move(ad)) {}

Startd::State Startd::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

void Startd::update_ad(classads::ClassAd ad) {
  std::lock_guard<std::mutex> lock(mutex_);
  ad_ = std::move(ad);
}

bool Startd::request_claim(JobId job, const classads::ClassAd& job_ad) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kUnclaimed) {
    kLog.debug(name_, ": claim for job ", job, " refused (",
               startd_state_name(state_), ")");
    return false;
  }
  // Machine-side re-verification: conditions may have changed since the
  // matchmaker's cycle (stale ad); the startd gets the final word.
  if (ad_.has(classads::ads::kRequirements) &&
      !ad_.evaluate(classads::ads::kRequirements, &job_ad).is_true()) {
    kLog.debug(name_, ": claim for job ", job, " refused (requirements)");
    return false;
  }
  state_ = State::kClaimed;
  claimed_job_ = job;
  return true;
}

void Startd::release_claim() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == State::kClaimed) {
    state_ = State::kUnclaimed;
    claimed_job_ = 0;
  }
}

Result<Starter*> Startd::activate(JobRecord job, StarterConfig config,
                                  StatusSink* sink) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (state_ != State::kClaimed || claimed_job_ != job.id) {
    return make_error(ErrorCode::kInvalidState,
                      name_ + ": activation without a matching claim");
  }
  config.machine_name = name_;
  auto starter = std::make_unique<Starter>(std::move(job), std::move(config), sink);
  lock.unlock();
  Status launched = starter->launch();  // may spawn processes: no lock held
  lock.lock();
  if (!launched.is_ok()) {
    state_ = State::kUnclaimed;
    claimed_job_ = 0;
    return launched;
  }
  starter_ = std::move(starter);
  state_ = State::kBusy;
  return starter_.get();
}

void Startd::retire() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::unique_ptr<Starter> starter = std::move(starter_);
  state_ = State::kUnclaimed;
  claimed_job_ = 0;
  lock.unlock();
  starter.reset();  // shutdown outside the lock
}

JobId Startd::claimed_job() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return claimed_job_;
}

}  // namespace tdp::condor
