// startd.hpp - condor_startd: "represents a given resource in the Condor
// pool ... When the condor_startd is ready to execute a Condor job, it
// spawns the condor_starter." It owns the machine's side of the claiming
// protocol: a claim may be refused ("either party may decide not to
// complete the allocation").
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "classads/classad.hpp"
#include "condor/starter.hpp"

namespace tdp::condor {

class Startd {
 public:
  enum class State : std::uint8_t { kUnclaimed = 0, kClaimed, kBusy };

  Startd(std::string name, classads::ClassAd ad);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const classads::ClassAd& ad() const noexcept { return ad_; }
  [[nodiscard]] State state() const;

  /// Updates the advertisement (e.g. load changes).
  void update_ad(classads::ClassAd ad);

  /// The claiming protocol, machine side: verifies the machine is still
  /// unclaimed and that its Requirements still hold against the job ad.
  /// Returns false to refuse the claim.
  bool request_claim(JobId job, const classads::ClassAd& job_ad);

  /// Releases an existing claim without running (schedd backed out).
  void release_claim();

  /// Activation: spawns the starter for the claimed job. The startd owns
  /// the starter until the job finishes and retire() is called.
  Result<Starter*> activate(JobRecord job, StarterConfig config, StatusSink* sink);

  [[nodiscard]] Starter* starter() { return starter_.get(); }

  /// Tears down the finished starter and returns to kUnclaimed.
  void retire();

  [[nodiscard]] JobId claimed_job() const;

 private:
  std::string name_;
  classads::ClassAd ad_;
  mutable std::mutex mutex_;
  State state_ = State::kUnclaimed;
  JobId claimed_job_ = 0;
  std::unique_ptr<Starter> starter_;
};

const char* startd_state_name(Startd::State state) noexcept;

}  // namespace tdp::condor
