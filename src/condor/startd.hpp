// startd.hpp - condor_startd: "represents a given resource in the Condor
// pool ... When the condor_startd is ready to execute a Condor job, it
// spawns the condor_starter." It owns the machine's side of the claiming
// protocol: a claim may be refused ("either party may decide not to
// complete the allocation").
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "classads/classad.hpp"
#include "condor/starter.hpp"
#include "util/flightrec.hpp"
#include "util/journal.hpp"
#include "util/sync.hpp"

namespace tdp::condor {

class Startd {
 public:
  enum class State : std::uint8_t { kUnclaimed = 0, kClaimed, kBusy };

  Startd(std::string name, classads::ClassAd ad);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Snapshot of the current advertisement (updated concurrently by
  /// update_ad(), hence by value).
  [[nodiscard]] classads::ClassAd ad() const;
  [[nodiscard]] State state() const;

  /// Updates the advertisement (e.g. load changes).
  void update_ad(classads::ClassAd ad);

  /// The claiming protocol, machine side: verifies the machine is still
  /// unclaimed and that its Requirements still hold against the job ad.
  /// Returns false to refuse the claim.
  bool request_claim(JobId job, const classads::ClassAd& job_ad);

  /// Releases an existing claim without running (schedd backed out).
  void release_claim();

  /// Activation: spawns the starter for the claimed job. The startd owns
  /// the starter until the job finishes and retire() is called.
  Result<Starter*> activate(JobRecord job, StarterConfig config, StatusSink* sink);

  [[nodiscard]] Starter* starter() const;

  /// Tears down the finished starter and returns to kUnclaimed.
  void retire();

  [[nodiscard]] JobId claimed_job() const;

  // --- claim-table journal (PR 5) ---

  /// Attaches a write-ahead journal for the claim table (not owned). Claim
  /// grants and releases are recorded so a startd restarted after a crash
  /// knows which job it was holding.
  void set_journal(journal::Journal* journal);

  /// Replays the claim journal. Returns the orphaned claim - the job the
  /// dead incarnation held - if one was live, so the pool can requeue it
  /// exactly once. The recovered startd always comes back kUnclaimed (the
  /// starter and its processes died with the old incarnation).
  Result<std::optional<JobId>> recover();

  // --- black-box flight recorder (PR 9) ---

  /// Attaches the machine's flight recorder (shared with the pool, which
  /// keeps it alive across kill_startd the way claim journals survive).
  /// Claim transitions and journal replays land in the ring; events are
  /// recorded with no startd lock held.
  void set_recorder(std::shared_ptr<flightrec::Recorder> recorder) {
    recorder_ = std::move(recorder);
  }

 private:
  /// Journals the claim state: a live claim writes ("claim", job), release
  /// writes ("clear").
  void journal_claim_locked() TDP_REQUIRES(mutex_);

  std::string name_;
  mutable Mutex mutex_{"Startd::mutex_"};
  classads::ClassAd ad_ TDP_GUARDED_BY(mutex_);
  State state_ TDP_GUARDED_BY(mutex_) = State::kUnclaimed;
  JobId claimed_job_ TDP_GUARDED_BY(mutex_) = 0;
  std::unique_ptr<Starter> starter_ TDP_GUARDED_BY(mutex_);
  journal::Journal* journal_ TDP_GUARDED_BY(mutex_) = nullptr;
  /// Set once at creation, before concurrent use; recorded into outside
  /// mutex_ so the recorder's shard lock stays a leaf with no edge from
  /// Startd::mutex_.
  std::shared_ptr<flightrec::Recorder> recorder_;
};

const char* startd_state_name(Startd::State state) noexcept;

}  // namespace tdp::condor
