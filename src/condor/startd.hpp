// startd.hpp - condor_startd: "represents a given resource in the Condor
// pool ... When the condor_startd is ready to execute a Condor job, it
// spawns the condor_starter." It owns the machine's side of the claiming
// protocol: a claim may be refused ("either party may decide not to
// complete the allocation").
#pragma once

#include <memory>
#include <string>

#include "classads/classad.hpp"
#include "condor/starter.hpp"
#include "util/sync.hpp"

namespace tdp::condor {

class Startd {
 public:
  enum class State : std::uint8_t { kUnclaimed = 0, kClaimed, kBusy };

  Startd(std::string name, classads::ClassAd ad);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Snapshot of the current advertisement (updated concurrently by
  /// update_ad(), hence by value).
  [[nodiscard]] classads::ClassAd ad() const;
  [[nodiscard]] State state() const;

  /// Updates the advertisement (e.g. load changes).
  void update_ad(classads::ClassAd ad);

  /// The claiming protocol, machine side: verifies the machine is still
  /// unclaimed and that its Requirements still hold against the job ad.
  /// Returns false to refuse the claim.
  bool request_claim(JobId job, const classads::ClassAd& job_ad);

  /// Releases an existing claim without running (schedd backed out).
  void release_claim();

  /// Activation: spawns the starter for the claimed job. The startd owns
  /// the starter until the job finishes and retire() is called.
  Result<Starter*> activate(JobRecord job, StarterConfig config, StatusSink* sink);

  [[nodiscard]] Starter* starter() const;

  /// Tears down the finished starter and returns to kUnclaimed.
  void retire();

  [[nodiscard]] JobId claimed_job() const;

 private:
  std::string name_;
  mutable Mutex mutex_{"Startd::mutex_"};
  classads::ClassAd ad_ TDP_GUARDED_BY(mutex_);
  State state_ TDP_GUARDED_BY(mutex_) = State::kUnclaimed;
  JobId claimed_job_ TDP_GUARDED_BY(mutex_) = 0;
  std::unique_ptr<Starter> starter_ TDP_GUARDED_BY(mutex_);
};

const char* startd_state_name(Startd::State state) noexcept;

}  // namespace tdp::condor
