#include "condor/matchmaker.hpp"

#include <cstdio>
#include <optional>

#include "util/string_util.hpp"

namespace tdp::condor {

namespace {

/// Canonical index key for a literal value, mirroring the ClassAd `==`
/// semantics the index stands in for (classads compare()): numbers compare
/// as double across int/real, strings case-insensitively, bools only with
/// bools. Distinct prefixes keep the kinds apart — a number never equals a
/// string, so they must never share a bucket.
std::optional<std::string> index_key(const classads::Value& value) {
  using classads::ValueKind;
  switch (value.kind()) {
    case ValueKind::kBool:
      return std::string("b:") + (value.as_bool() ? "1" : "0");
    case ValueKind::kInt:
    case ValueKind::kReal: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "n:%.17g", value.to_double());
      return std::string(buf);
    }
    case ValueKind::kString:
      return "s:" + str::to_lower(value.as_string());
    default:
      return std::nullopt;
  }
}

}  // namespace

void Matchmaker::index_machine_locked(const std::string& name,
                                      const classads::ClassAd& ad) {
  auto& keys = machine_keys_[name];
  for (const std::string& attribute : ad.names()) {
    const auto literal = classads::literal_value(ad.lookup(attribute));
    if (literal.has_value()) {
      if (auto key = index_key(*literal); key.has_value()) {
        index_[attribute][*key].insert(name);
        keys.emplace_back(attribute, *key);
        continue;
      }
    }
    // Computed (or unkeyable) value: candidate for every probe of this
    // attribute — correctness over pruning.
    unindexed_[attribute].insert(name);
    keys.emplace_back(attribute, std::string());
  }
}

void Matchmaker::deindex_machine_locked(const std::string& name) {
  auto it = machine_keys_.find(name);
  if (it == machine_keys_.end()) return;
  for (const auto& [attribute, key] : it->second) {
    if (key.empty()) {
      auto un_it = unindexed_.find(attribute);
      if (un_it == unindexed_.end()) continue;
      un_it->second.erase(name);
      if (un_it->second.empty()) unindexed_.erase(un_it);
      continue;
    }
    auto attr_it = index_.find(attribute);
    if (attr_it == index_.end()) continue;
    auto key_it = attr_it->second.find(key);
    if (key_it == attr_it->second.end()) continue;
    key_it->second.erase(name);
    if (key_it->second.empty()) attr_it->second.erase(key_it);
    if (attr_it->second.empty()) index_.erase(attr_it);
  }
  machine_keys_.erase(it);
}

void Matchmaker::advertise_machine(const std::string& name, classads::ClassAd ad) {
  LockGuard lock(mutex_);
  deindex_machine_locked(name);
  auto [it, inserted] = machines_.insert_or_assign(name, std::move(ad));
  index_machine_locked(name, it->second);
}

void Matchmaker::withdraw_machine(const std::string& name) {
  LockGuard lock(mutex_);
  deindex_machine_locked(name);
  machines_.erase(name);
}

std::size_t Matchmaker::machine_count() const {
  LockGuard lock(mutex_);
  return machines_.size();
}

void Matchmaker::set_indexing(bool enabled) {
  LockGuard lock(mutex_);
  indexing_ = enabled;
}

std::vector<Matchmaker::Match> Matchmaker::negotiate(
    const std::vector<std::pair<JobId, classads::ClassAd>>& idle_jobs,
    const std::set<std::string>& busy) {
  LockGuard lock(mutex_);
  ++stats_.cycles;

  std::set<std::string> taken(busy);
  std::size_t free_machines = 0;
  for (const auto& [name, ad] : machines_) {
    if (taken.count(name) == 0) ++free_machines;
  }
  std::vector<Match> matches;
  for (const auto& [job_id, job_ad] : idle_jobs) {
    // Every machine claimed: no job later in the cycle can match.
    if (free_machines == 0) break;

    // Candidate pruning: intersect the index buckets of the job's
    // `attr == literal` requirements. Empty probe list -> full scan.
    bool use_index = false;
    bool impossible = false;
    std::set<std::string> candidates;
    if (indexing_) {
      const auto probes =
          classads::indexable_equalities(job_ad.lookup(classads::ads::kRequirements));
      for (const classads::IndexableEq& eq : probes) {
        // A bare (unscoped) name resolves MY-first: it only constrains
        // the machine when the job ad itself lacks the attribute.
        if (!eq.target_scoped && job_ad.has(eq.attribute)) continue;
        const auto key = index_key(eq.value);
        if (!key.has_value()) continue;
        std::set<std::string> bucket;
        if (auto attr_it = index_.find(eq.attribute); attr_it != index_.end()) {
          if (auto key_it = attr_it->second.find(*key);
              key_it != attr_it->second.end()) {
            bucket = key_it->second;
          }
        }
        if (auto un_it = unindexed_.find(eq.attribute); un_it != unindexed_.end()) {
          bucket.insert(un_it->second.begin(), un_it->second.end());
        }
        if (!use_index) {
          candidates = std::move(bucket);
          use_index = true;
        } else {
          for (auto it = candidates.begin(); it != candidates.end();) {
            it = bucket.count(*it) != 0 ? std::next(it) : candidates.erase(it);
          }
        }
        if (candidates.empty()) {
          impossible = true;  // no machine can satisfy this conjunct
          break;
        }
      }
    }
    if (use_index) {
      ++stats_.indexed_jobs;
      stats_.pruned += machines_.size() - candidates.size();
      if (impossible) continue;
    }

    const std::string* best_machine = nullptr;
    double best_job_rank = 0.0, best_machine_rank = 0.0;

    // One evaluation pass over either the pruned candidates or all
    // machines; the candidate set is a superset filter, so the winner is
    // the same either way.
    auto candidate_it = candidates.begin();
    auto machine_it = machines_.begin();
    while (true) {
      const std::map<std::string, classads::ClassAd>::value_type* entry = nullptr;
      if (use_index) {
        if (candidate_it == candidates.end()) break;
        auto found = machines_.find(*candidate_it++);
        if (found == machines_.end()) continue;  // withdrawn since indexing
        entry = &*found;
      } else {
        if (machine_it == machines_.end()) break;
        entry = &*machine_it++;
      }
      const std::string& name = entry->first;
      const classads::ClassAd& machine_ad = entry->second;
      if (taken.count(name) != 0) continue;
      ++stats_.evaluations;
      if (!classads::symmetric_match(job_ad, machine_ad)) continue;
      const double job_rank = classads::rank_of(job_ad, machine_ad);
      const double machine_rank = classads::rank_of(machine_ad, job_ad);
      if (best_machine == nullptr || job_rank > best_job_rank ||
          (job_rank == best_job_rank && machine_rank > best_machine_rank)) {
        best_machine = &name;
        best_job_rank = job_rank;
        best_machine_rank = machine_rank;
      }
    }
    if (best_machine != nullptr) {
      matches.push_back({job_id, *best_machine, best_job_rank, best_machine_rank});
      taken.insert(*best_machine);
      --free_machines;
      ++stats_.matches;
    }
  }
  return matches;
}

Matchmaker::Stats Matchmaker::stats() const {
  LockGuard lock(mutex_);
  return stats_;
}

}  // namespace tdp::condor
