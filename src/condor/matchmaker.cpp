#include "condor/matchmaker.hpp"

namespace tdp::condor {

void Matchmaker::advertise_machine(const std::string& name, classads::ClassAd ad) {
  LockGuard lock(mutex_);
  machines_[name] = std::move(ad);
}

void Matchmaker::withdraw_machine(const std::string& name) {
  LockGuard lock(mutex_);
  machines_.erase(name);
}

std::size_t Matchmaker::machine_count() const {
  LockGuard lock(mutex_);
  return machines_.size();
}

std::vector<Matchmaker::Match> Matchmaker::negotiate(
    const std::vector<std::pair<JobId, classads::ClassAd>>& idle_jobs,
    const std::set<std::string>& busy) {
  LockGuard lock(mutex_);
  ++stats_.cycles;

  std::set<std::string> taken(busy);
  std::vector<Match> matches;
  for (const auto& [job_id, job_ad] : idle_jobs) {
    const std::string* best_machine = nullptr;
    double best_job_rank = 0.0, best_machine_rank = 0.0;

    for (const auto& [name, machine_ad] : machines_) {
      if (taken.count(name) != 0) continue;
      ++stats_.evaluations;
      if (!classads::symmetric_match(job_ad, machine_ad)) continue;
      const double job_rank = classads::rank_of(job_ad, machine_ad);
      const double machine_rank = classads::rank_of(machine_ad, job_ad);
      if (best_machine == nullptr || job_rank > best_job_rank ||
          (job_rank == best_job_rank && machine_rank > best_machine_rank)) {
        best_machine = &name;
        best_job_rank = job_rank;
        best_machine_rank = machine_rank;
      }
    }
    if (best_machine != nullptr) {
      matches.push_back({job_id, *best_machine, best_job_rank, best_machine_rank});
      taken.insert(*best_machine);
      ++stats_.matches;
    }
  }
  return matches;
}

Matchmaker::Stats Matchmaker::stats() const {
  LockGuard lock(mutex_);
  return stats_;
}

}  // namespace tdp::condor
