#include "condor/schedd.hpp"

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>

#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace tdp::condor {

namespace {
const log::Logger kLog("schedd");
}

// ---------------------------------------------------------------------
// Shadow
// ---------------------------------------------------------------------

Shadow::Shadow(JobId job, std::string submit_dir, UpdateFn on_update)
    : job_(job), submit_dir_(std::move(submit_dir)), on_update_(std::move(on_update)) {}

void Shadow::on_job_status(JobId id, JobStatus status, int exit_code,
                           const std::string& detail) {
  // Status updates arrive from the starter's thread while its launch/pump
  // span (or the job's ambient context) is active; join that tree. An
  // untraced update (unit tests driving a bare Shadow) records nothing.
  std::optional<telemetry::Span> span;
  if (telemetry::current_context().valid()) {
    span.emplace("shadow.update", "shadow");
  }
  {
    LockGuard lock(mutex_);
    last_status_ = status;
    if (job_status_terminal(status)) exit_code_ = exit_code;
    ++updates_;
  }
  if (on_update_) on_update_(id, status, exit_code, detail);
}

void Shadow::on_job_output(JobId id, const std::string& chunk) {
  (void)id;
  LockGuard lock(mutex_);
  live_output_ += chunk;
}

std::string Shadow::live_output() const {
  LockGuard lock(mutex_);
  return live_output_;
}

JobStatus Shadow::last_status() const {
  LockGuard lock(mutex_);
  return last_status_;
}

int Shadow::exit_code() const {
  LockGuard lock(mutex_);
  return exit_code_;
}

std::size_t Shadow::updates_received() const {
  LockGuard lock(mutex_);
  return updates_;
}

Result<std::string> Shadow::remote_read(const std::string& path) {
  {
    LockGuard lock(mutex_);
    ++remote_syscalls_;
  }
  std::ifstream in(submit_dir_ + "/" + path, std::ios::binary);
  if (!in) {
    return make_error(ErrorCode::kNotFound, "remote_read: no such file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status Shadow::remote_write(const std::string& path, const std::string& data) {
  {
    LockGuard lock(mutex_);
    ++remote_syscalls_;
  }
  std::ofstream out(submit_dir_ + "/" + path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return make_error(ErrorCode::kInternal, "remote_write: cannot open: " + path);
  }
  out << data;
  return out.good() ? Status::ok()
                    : make_error(ErrorCode::kInternal, "remote_write failed: " + path);
}

std::size_t Shadow::remote_syscalls() const {
  LockGuard lock(mutex_);
  return remote_syscalls_;
}

// ---------------------------------------------------------------------
// Schedd
// ---------------------------------------------------------------------

Schedd::Schedd(std::string name) : name_(std::move(name)) {}

JobId Schedd::enqueue_locked(const JobDescription& description,
                             std::string tenant, bool best_effort,
                             std::string trace) {
  JobRecord record;
  record.id = next_id_++;
  record.description = description;
  record.status = JobStatus::kIdle;
  record.tenant = std::move(tenant);
  record.best_effort = best_effort;
  record.trace = std::move(trace);
  journal_record_locked(record);
  const JobId id = record.id;
  jobs_[id] = std::move(record);
  track_job_locked(jobs_[id]);
  kLog.debug(name_, ": queued job ", id);
  return id;
}

JobId Schedd::submit(const JobDescription& description) {
  // The root of the job's causal tree: every later span - startd claim,
  // starter launch, paradynd attach - parents here via record.trace.
  telemetry::Span span("schedd.submit", "schedd");
  telemetry::Registry::instance().counter("schedd.submits").inc();
  UniqueLock lock(mutex_);
  const JobId id = enqueue_locked(  // NOLINT: journal-under-lock debt already baselined at journal_record_locked
      description, tenant_of(description), /*best_effort=*/false,
      span.context().valid() ? telemetry::format_context(span.context())
                             : std::string());
  lock.unlock();
  if (recorder_) {
    recorder_->state("submit", "job=" + std::to_string(id), span.context().trace_id,
                     span.context().span_id);
  }
  return id;
}

Result<JobId> Schedd::try_submit(const JobDescription& description) {
  telemetry::Span span("schedd.submit", "schedd");
  telemetry::Registry::instance().counter("schedd.submits").inc();
  const std::string tenant = tenant_of(description);
  UniqueLock lock(mutex_);
  bool best_effort = false;
  if (front_door_ != nullptr) {
    auto load_it = tenant_load_.find(tenant);
    const TenantLoad load =
        load_it == tenant_load_.end() ? TenantLoad{} : load_it->second;
    const Admission decision = front_door_->admit(tenant, load.idle, load.active);
    if (!decision.admitted()) {
      lock.unlock();
      telemetry::Registry::instance().counter("schedd.submits_refused").inc();
      // The hint rides in the message the same way a busy attr reply
      // carries it, so attr::retry_after_hint_ms() parses both.
      return make_error(ErrorCode::kBusy,
                        decision.reason + "; retry_after_ms=" +
                            std::to_string(decision.retry_after_ms));
    }
    best_effort = decision.verdict == Admission::Verdict::kAdmitBestEffort;
  }
  const JobId id = enqueue_locked(
      description, tenant, best_effort,
      span.context().valid() ? telemetry::format_context(span.context())
                             : std::string());
  lock.unlock();
  if (recorder_) {
    recorder_->state("submit", "job=" + std::to_string(id), span.context().trace_id,
                     span.context().span_id);
  }
  return id;
}

std::vector<JobId> Schedd::submit(const SubmitFile& file) {
  std::vector<JobId> ids;
  ids.reserve(file.jobs().size());
  for (const JobDescription& description : file.jobs()) {
    ids.push_back(submit(description));
  }
  return ids;
}

std::vector<std::pair<JobId, classads::ClassAd>> Schedd::idle_job_ads() const {
  LockGuard lock(mutex_);
  std::vector<std::pair<JobId, classads::ClassAd>> out;
  for (const auto& [id, record] : jobs_) {
    if (record.status == JobStatus::kIdle && !record.shed) {
      out.emplace_back(id, record.description.to_classad());
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Front door (PR 10)
// ---------------------------------------------------------------------

int Schedd::tenant_weight_locked(const std::string& tenant) const {
  // FrontDoor::mutex_ is a strict leaf under Schedd::mutex_ (DESIGN.md §10).
  return front_door_ == nullptr ? 1 : front_door_->policy(tenant).weight;
}

void Schedd::track_job_locked(const JobRecord& record) {
  const std::string& tenant =
      record.tenant.empty() ? kDefaultTenant : record.tenant;
  TenantLoad& load = tenant_load_[tenant];
  switch (record.status) {
    case JobStatus::kIdle:
      if (!record.shed) {
        ++load.idle;
        wrr_.push(tenant, tenant_weight_locked(tenant), record.id);
      }
      break;
    case JobStatus::kMatched:
    case JobStatus::kClaimed:
    case JobStatus::kRunning:
      ++load.active;
      break;
    default:
      break;
  }
}

void Schedd::untrack_job_locked(const JobRecord& record) {
  const std::string& tenant =
      record.tenant.empty() ? kDefaultTenant : record.tenant;
  wrr_.erase(record.id);
  auto it = tenant_load_.find(tenant);
  if (it == tenant_load_.end()) return;
  switch (record.status) {
    case JobStatus::kIdle:
      if (!record.shed && it->second.idle > 0) --it->second.idle;
      break;
    case JobStatus::kMatched:
    case JobStatus::kClaimed:
    case JobStatus::kRunning:
      if (it->second.active > 0) --it->second.active;
      break;
    default:
      break;
  }
}

void Schedd::rebuild_tenant_state_locked() {
  wrr_ = WrrQueues{};
  tenant_load_.clear();
  for (const auto& [id, record] : jobs_) track_job_locked(record);
}

void Schedd::set_front_door(FrontDoor* front_door) {
  LockGuard lock(mutex_);
  front_door_ = front_door;
  // WRR weights come from the front door's policies: re-queue everything.
  rebuild_tenant_state_locked();
}

FrontDoor* Schedd::front_door() const {
  LockGuard lock(mutex_);
  return front_door_;
}

HealthTransition Schedd::on_health(health::Severity severity) {
  HealthTransition transition;
  std::size_t newly_shed = 0;
  std::size_t unshed = 0;
  {
    UniqueLock lock(mutex_);
    if (front_door_ == nullptr) return transition;
    transition = front_door_->on_health(severity);
    if (transition.state != BrownoutState::kNormal) {
      // Shed every dispatchable job of a tenant below the floor. Runs on
      // every brownout tick, not just the entering one, so jobs that slip
      // back to idle mid-brownout (machine-failure requeues) are caught.
      // The `record.shed` guard plus the journal append make each decision
      // exactly-once: a replayed journal sees one flip, not two.
      for (auto& [id, record] : jobs_) {
        if (record.status != JobStatus::kIdle || record.shed) continue;
        const std::string& tenant =
            record.tenant.empty() ? kDefaultTenant : record.tenant;
        if (front_door_->policy(tenant).priority >= transition.shed_floor) {
          continue;
        }
        untrack_job_locked(record);
        record.shed = true;
        track_job_locked(record);
        journal_record_locked(record);
        ++newly_shed;
      }
    } else if (transition.exited) {
      for (auto& [id, record] : jobs_) {
        if (!record.shed) continue;
        untrack_job_locked(record);
        record.shed = false;
        track_job_locked(record);
        journal_record_locked(record);
        ++unshed;
      }
    }
  }
  if (recorder_ && (transition.entered || transition.exited)) {
    recorder_->state("brownout",
                     std::string(brownout_state_name(transition.state)) +
                         " shed=" + std::to_string(newly_shed) +
                         " unshed=" + std::to_string(unshed));
  }
  if (newly_shed > 0) {
    telemetry::Registry::instance().counter("schedd.jobs_shed").add(newly_shed);
  }
  return transition;
}

std::size_t Schedd::shed_jobs() const {
  LockGuard lock(mutex_);
  std::size_t count = 0;
  for (const auto& [id, record] : jobs_) {
    if (record.shed) ++count;
  }
  return count;
}

std::size_t Schedd::best_effort_jobs() const {
  LockGuard lock(mutex_);
  std::size_t count = 0;
  for (const auto& [id, record] : jobs_) {
    if (record.best_effort) ++count;
  }
  return count;
}

std::size_t Schedd::tenant_idle(const std::string& tenant) const {
  LockGuard lock(mutex_);
  auto it = tenant_load_.find(tenant);
  return it == tenant_load_.end() ? 0 : it->second.idle;
}

std::size_t Schedd::tenant_active(const std::string& tenant) const {
  LockGuard lock(mutex_);
  auto it = tenant_load_.find(tenant);
  return it == tenant_load_.end() ? 0 : it->second.active;
}

std::vector<std::pair<JobId, classads::ClassAd>> Schedd::dispatch_ads(
    std::size_t limit) {
  LockGuard lock(mutex_);
  std::vector<std::pair<JobId, classads::ClassAd>> out;
  if (front_door_ == nullptr) {
    // Legacy path: the whole idle queue in id order (the seed behaviour).
    for (const auto& [id, record] : jobs_) {
      if (record.status == JobStatus::kIdle && !record.shed) {
        out.emplace_back(id, record.description.to_classad());
      }
    }
    return out;
  }
  for (JobId id : wrr_.pop_round(limit)) {
    auto it = jobs_.find(id);
    // Popping is destructive; drop ids that stopped being dispatchable
    // between push and pop (matched, removed, shed).
    if (it == jobs_.end() || it->second.status != JobStatus::kIdle ||
        it->second.shed) {
      continue;
    }
    out.emplace_back(id, it->second.description.to_classad());
    // Rotate: back of the lane, so an unmatched job yields its turn but a
    // matched one is simply erased by its status transition.
    const std::string& tenant =
        it->second.tenant.empty() ? kDefaultTenant : it->second.tenant;
    wrr_.push(tenant, tenant_weight_locked(tenant), id);
  }
  return out;
}

Result<JobRecord> Schedd::job(JobId id) const {
  LockGuard lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return make_error(ErrorCode::kNotFound, "no such job: " + std::to_string(id));
  }
  return it->second;
}

Status Schedd::update_job(JobId id, JobStatus status, int exit_code,
                          const std::string& detail) {
  {
    UniqueLock lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return make_error(ErrorCode::kNotFound, "no such job: " + std::to_string(id));
    }
    if (job_status_terminal(it->second.status) && status != it->second.status) {
      return make_error(ErrorCode::kInvalidState,
                        "job " + std::to_string(id) + " already terminal");
    }
    untrack_job_locked(it->second);
    it->second.status = status;
    track_job_locked(it->second);
    if (job_status_terminal(status)) it->second.exit_code = exit_code;
    if (!detail.empty() && status == JobStatus::kFailed) {
      it->second.failure_reason = detail;
    }
    journal_record_locked(it->second);
  }
  if (recorder_) {
    recorder_->state("job", "job=" + std::to_string(id) + " status=" +
                                job_status_name(status));
  }
  return Status::ok();
}

Status Schedd::set_matched(JobId id, const std::string& machine) {
  LockGuard lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return make_error(ErrorCode::kNotFound, "no such job: " + std::to_string(id));
  }
  if (it->second.status != JobStatus::kIdle) {
    return make_error(ErrorCode::kInvalidState,
                      "job " + std::to_string(id) + " is not idle");
  }
  untrack_job_locked(it->second);
  it->second.status = JobStatus::kMatched;
  track_job_locked(it->second);
  it->second.matched_machine = machine;
  journal_record_locked(it->second);
  return Status::ok();
}

Status Schedd::remove_job(JobId id) {
  LockGuard lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return make_error(ErrorCode::kNotFound, "no such job: " + std::to_string(id));
  }
  if (job_status_terminal(it->second.status)) {
    return make_error(ErrorCode::kInvalidState, "job already terminal");
  }
  untrack_job_locked(it->second);
  it->second.status = JobStatus::kRemoved;
  track_job_locked(it->second);
  journal_record_locked(it->second);
  return Status::ok();
}

Status Schedd::requeue_job(JobId id, const std::string& checkpoint) {
  LockGuard lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return make_error(ErrorCode::kNotFound, "no such job: " + std::to_string(id));
  }
  if (job_status_terminal(it->second.status)) {
    return make_error(ErrorCode::kInvalidState, "job already terminal");
  }
  untrack_job_locked(it->second);
  it->second.status = JobStatus::kIdle;
  track_job_locked(it->second);
  it->second.matched_machine.clear();
  it->second.description.checkpoint = checkpoint;
  ++it->second.restarts;
  journal_record_locked(it->second);
  shadows_.erase(id);  // a fresh shadow is spawned on the next activation
  kLog.info(name_, ": job ", id, " requeued (restart #", it->second.restarts,
            checkpoint.empty() ? ", from scratch)" : ", from checkpoint)");
  return Status::ok();
}

std::vector<JobId> Schedd::jobs_on_machine(const std::string& machine) const {
  LockGuard lock(mutex_);
  std::vector<JobId> ids;
  for (const auto& [id, record] : jobs_) {
    if (record.matched_machine == machine && !job_status_terminal(record.status)) {
      ids.push_back(id);
    }
  }
  return ids;
}

Shadow* Schedd::spawn_shadow(JobId id, const std::string& submit_dir) {
  LockGuard lock(mutex_);
  auto shadow = std::make_unique<Shadow>(
      id, submit_dir,
      [this](JobId job_id, JobStatus status, int exit_code, const std::string& detail) {
        // Shadow -> schedd status propagation (Figure 4's update path).
        update_job(job_id, status, exit_code, detail);
      });
  Shadow* raw = shadow.get();
  shadows_[id] = std::move(shadow);
  return raw;
}

Shadow* Schedd::shadow(JobId id) {
  LockGuard lock(mutex_);
  auto it = shadows_.find(id);
  return it == shadows_.end() ? nullptr : it->second.get();
}

std::size_t Schedd::queue_size() const {
  LockGuard lock(mutex_);
  return jobs_.size();
}

// ---------------------------------------------------------------------
// Crash recovery (PR 5)
// ---------------------------------------------------------------------

void Schedd::journal_record_locked(const JobRecord& record) {
  // The journal mutex is a strict leaf (DESIGN.md §10): appending under
  // Schedd::mutex_ is the intended order and the append never calls out.
  static constexpr std::size_t kCompactTailRecords = 256;
  if (journal_ == nullptr) return;
  Status appended = journal_->append(job_to_journal(record));
  if (!appended.is_ok()) {
    kLog.warn(name_, ": journal append failed: ", appended.to_string());
    return;
  }
  if (journal_->tail_size() >= kCompactTailRecords) {
    std::vector<journal::Record> snapshot;
    snapshot.reserve(jobs_.size() + 1);
    for (const auto& [id, live] : jobs_) {
      if (live.id == record.id) continue;  // the in-flight mutation
      snapshot.push_back(job_to_journal(live));
    }
    snapshot.push_back(job_to_journal(record));
    Status written = journal_->write_snapshot(snapshot);
    if (!written.is_ok()) {
      kLog.warn(name_, ": journal compaction failed: ", written.to_string());
    }
  }
}

void Schedd::set_journal(journal::Journal* journal) {
  LockGuard lock(mutex_);
  journal_ = journal;
  if (journal_ == nullptr || jobs_.empty()) return;
  // Adopt the live queue as journal truth (attach-to-running-daemon case).
  std::vector<journal::Record> snapshot;
  snapshot.reserve(jobs_.size());
  for (const auto& [id, record] : jobs_) {
    snapshot.push_back(job_to_journal(record));
  }
  Status written = journal_->write_snapshot(snapshot);
  if (!written.is_ok()) {
    kLog.warn(name_, ": journal adoption snapshot failed: ", written.to_string());
  }
}

void Schedd::crash() {
  std::size_t dropped = 0;
  {
    LockGuard lock(mutex_);
    kLog.warn(name_, ": simulated crash; dropping ", jobs_.size(),
              " job(s) and ", shadows_.size(), " shadow(s) from memory");
    dropped = jobs_.size();
    jobs_.clear();
    shadows_.clear();
    wrr_ = WrrQueues{};
    tenant_load_.clear();
    next_id_ = 1;
    crashed_ = true;
  }
  // The recorder is the pool's, not the dead object's memory: like the
  // journal, it survives the crash and carries the last pre-death events.
  if (recorder_) {
    recorder_->state("crash", "jobs_dropped=" + std::to_string(dropped));
  }
}

bool Schedd::crashed() const {
  LockGuard lock(mutex_);
  return crashed_;
}

Status Schedd::recover() {
  telemetry::Span span("schedd.recover", "schedd");
  UniqueLock lock(mutex_);
  if (journal_ == nullptr) {
    return make_error(ErrorCode::kInvalidState, "schedd has no journal");
  }
  journal::ReplayStats replay_stats;
  auto replayed = journal_->replay(&replay_stats);
  if (!replayed.is_ok()) return replayed.status();
  if (replay_stats.resyncs > 0 || replay_stats.torn_tail) {
    kLog.warn(name_, ": journal recovery skipped ", replay_stats.bytes_skipped,
              " byte(s) across ", replay_stats.resyncs, " resync(s)",
              replay_stats.torn_tail ? " plus a torn tail" : "");
    telemetry::Registry::instance()
        .counter("schedd.journal_resyncs")
        .add(replay_stats.resyncs + (replay_stats.torn_tail ? 1 : 0));
  }
  jobs_.clear();
  shadows_.clear();
  JobId max_id = 0;
  for (const journal::Record& raw : replayed.value()) {
    if (raw.type != "job") continue;
    auto record = job_from_journal(raw);
    if (!record.is_ok()) {
      kLog.warn(name_, ": skipping damaged journal record: ",
                record.status().to_string());
      continue;
    }
    max_id = std::max(max_id, record->id);
    jobs_[record->id] = std::move(record.value());
  }
  next_id_ = std::max<JobId>(next_id_, max_id + 1);
  // Jobs that were in flight died with the daemon's shadows and claims:
  // return them to the idle queue. Brownout is likewise re-derived from
  // live health after recovery, so a stale shed flag (which would strand
  // the job if the overload died with the daemon) is cleared here.
  std::size_t requeued = 0;
  bool dirty = false;
  for (auto& [id, record] : jobs_) {
    if (record.tenant.empty()) record.tenant = kDefaultTenant;
    if (record.shed) {
      record.shed = false;
      dirty = true;
    }
    if (record.status == JobStatus::kIdle || job_status_terminal(record.status)) {
      continue;
    }
    record.status = JobStatus::kIdle;
    record.matched_machine.clear();
    ++record.restarts;
    dirty = true;
    ++requeued;
  }
  rebuild_tenant_state_locked();
  // Durability for the fixups is ONE compaction snapshot instead of
  // per-record appends, written outside the lock: the daemon still reads
  // as crashed until the snapshot lands, so nothing can interleave a newer
  // mutation behind it, and the file write stays off the lock graph. This
  // keeps recovery exactly-once either way - a crash before the snapshot
  // replays the old journal and redoes the same idempotent fixups, a crash
  // after it replays the recovered state.
  std::vector<JobRecord> live;
  if (dirty) {
    live.reserve(jobs_.size());
    for (const auto& [id, record] : jobs_) live.push_back(record);
  }
  const std::size_t recovered = jobs_.size();
  journal::Journal* journal = journal_;  // guarded pointer, used unlocked below
  lock.unlock();
  if (dirty) {
    std::vector<journal::Record> snapshot;
    snapshot.reserve(live.size());
    for (const JobRecord& record : live) {
      snapshot.push_back(job_to_journal(record));
    }
    Status written = journal->write_snapshot(snapshot);
    if (!written.is_ok()) {
      kLog.warn(name_, ": recovery snapshot failed: ", written.to_string());
    }
  }
  lock.lock();
  crashed_ = false;
  lock.unlock();
  kLog.info(name_, ": recovered ", recovered, " job(s) from journal, ",
            requeued, " requeued");
  telemetry::Registry::instance().counter("schedd.recoveries").inc();
  if (recorder_) {
    recorder_->replay("queue-journal", replay_stats);
    recorder_->state("recover", "jobs=" + std::to_string(recovered) +
                                    " requeued=" + std::to_string(requeued));
  }
  return Status::ok();
}

std::size_t Schedd::count_with_status(JobStatus status) const {
  LockGuard lock(mutex_);
  std::size_t count = 0;
  for (const auto& [id, record] : jobs_) {
    if (record.status == status) ++count;
  }
  return count;
}

}  // namespace tdp::condor
