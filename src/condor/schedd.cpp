#include "condor/schedd.hpp"

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>

#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace tdp::condor {

namespace {
const log::Logger kLog("schedd");
}

// ---------------------------------------------------------------------
// Shadow
// ---------------------------------------------------------------------

Shadow::Shadow(JobId job, std::string submit_dir, UpdateFn on_update)
    : job_(job), submit_dir_(std::move(submit_dir)), on_update_(std::move(on_update)) {}

void Shadow::on_job_status(JobId id, JobStatus status, int exit_code,
                           const std::string& detail) {
  // Status updates arrive from the starter's thread while its launch/pump
  // span (or the job's ambient context) is active; join that tree. An
  // untraced update (unit tests driving a bare Shadow) records nothing.
  std::optional<telemetry::Span> span;
  if (telemetry::current_context().valid()) {
    span.emplace("shadow.update", "shadow");
  }
  {
    LockGuard lock(mutex_);
    last_status_ = status;
    if (job_status_terminal(status)) exit_code_ = exit_code;
    ++updates_;
  }
  if (on_update_) on_update_(id, status, exit_code, detail);
}

void Shadow::on_job_output(JobId id, const std::string& chunk) {
  (void)id;
  LockGuard lock(mutex_);
  live_output_ += chunk;
}

std::string Shadow::live_output() const {
  LockGuard lock(mutex_);
  return live_output_;
}

JobStatus Shadow::last_status() const {
  LockGuard lock(mutex_);
  return last_status_;
}

int Shadow::exit_code() const {
  LockGuard lock(mutex_);
  return exit_code_;
}

std::size_t Shadow::updates_received() const {
  LockGuard lock(mutex_);
  return updates_;
}

Result<std::string> Shadow::remote_read(const std::string& path) {
  {
    LockGuard lock(mutex_);
    ++remote_syscalls_;
  }
  std::ifstream in(submit_dir_ + "/" + path, std::ios::binary);
  if (!in) {
    return make_error(ErrorCode::kNotFound, "remote_read: no such file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status Shadow::remote_write(const std::string& path, const std::string& data) {
  {
    LockGuard lock(mutex_);
    ++remote_syscalls_;
  }
  std::ofstream out(submit_dir_ + "/" + path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return make_error(ErrorCode::kInternal, "remote_write: cannot open: " + path);
  }
  out << data;
  return out.good() ? Status::ok()
                    : make_error(ErrorCode::kInternal, "remote_write failed: " + path);
}

std::size_t Shadow::remote_syscalls() const {
  LockGuard lock(mutex_);
  return remote_syscalls_;
}

// ---------------------------------------------------------------------
// Schedd
// ---------------------------------------------------------------------

Schedd::Schedd(std::string name) : name_(std::move(name)) {}

JobId Schedd::submit(const JobDescription& description) {
  // The root of the job's causal tree: every later span - startd claim,
  // starter launch, paradynd attach - parents here via record.trace.
  telemetry::Span span("schedd.submit", "schedd");
  telemetry::Registry::instance().counter("schedd.submits").inc();
  UniqueLock lock(mutex_);
  JobRecord record;
  record.id = next_id_++;
  record.description = description;
  record.status = JobStatus::kIdle;
  if (span.context().valid()) {
    record.trace = telemetry::format_context(span.context());
  }
  journal_record_locked(record);
  const JobId id = record.id;
  jobs_[id] = std::move(record);
  kLog.debug(name_, ": queued job ", id);
  lock.unlock();
  if (recorder_) {
    recorder_->state("submit", "job=" + std::to_string(id), span.context().trace_id,
                     span.context().span_id);
  }
  return id;
}

std::vector<JobId> Schedd::submit(const SubmitFile& file) {
  std::vector<JobId> ids;
  ids.reserve(file.jobs().size());
  for (const JobDescription& description : file.jobs()) {
    ids.push_back(submit(description));
  }
  return ids;
}

std::vector<std::pair<JobId, classads::ClassAd>> Schedd::idle_job_ads() const {
  LockGuard lock(mutex_);
  std::vector<std::pair<JobId, classads::ClassAd>> out;
  for (const auto& [id, record] : jobs_) {
    if (record.status == JobStatus::kIdle) {
      out.emplace_back(id, record.description.to_classad());
    }
  }
  return out;
}

Result<JobRecord> Schedd::job(JobId id) const {
  LockGuard lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return make_error(ErrorCode::kNotFound, "no such job: " + std::to_string(id));
  }
  return it->second;
}

Status Schedd::update_job(JobId id, JobStatus status, int exit_code,
                          const std::string& detail) {
  {
    UniqueLock lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return make_error(ErrorCode::kNotFound, "no such job: " + std::to_string(id));
    }
    if (job_status_terminal(it->second.status) && status != it->second.status) {
      return make_error(ErrorCode::kInvalidState,
                        "job " + std::to_string(id) + " already terminal");
    }
    it->second.status = status;
    if (job_status_terminal(status)) it->second.exit_code = exit_code;
    if (!detail.empty() && status == JobStatus::kFailed) {
      it->second.failure_reason = detail;
    }
    journal_record_locked(it->second);
  }
  if (recorder_) {
    recorder_->state("job", "job=" + std::to_string(id) + " status=" +
                                job_status_name(status));
  }
  return Status::ok();
}

Status Schedd::set_matched(JobId id, const std::string& machine) {
  LockGuard lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return make_error(ErrorCode::kNotFound, "no such job: " + std::to_string(id));
  }
  if (it->second.status != JobStatus::kIdle) {
    return make_error(ErrorCode::kInvalidState,
                      "job " + std::to_string(id) + " is not idle");
  }
  it->second.status = JobStatus::kMatched;
  it->second.matched_machine = machine;
  journal_record_locked(it->second);
  return Status::ok();
}

Status Schedd::remove_job(JobId id) {
  LockGuard lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return make_error(ErrorCode::kNotFound, "no such job: " + std::to_string(id));
  }
  if (job_status_terminal(it->second.status)) {
    return make_error(ErrorCode::kInvalidState, "job already terminal");
  }
  it->second.status = JobStatus::kRemoved;
  journal_record_locked(it->second);
  return Status::ok();
}

Status Schedd::requeue_job(JobId id, const std::string& checkpoint) {
  LockGuard lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return make_error(ErrorCode::kNotFound, "no such job: " + std::to_string(id));
  }
  if (job_status_terminal(it->second.status)) {
    return make_error(ErrorCode::kInvalidState, "job already terminal");
  }
  it->second.status = JobStatus::kIdle;
  it->second.matched_machine.clear();
  it->second.description.checkpoint = checkpoint;
  ++it->second.restarts;
  journal_record_locked(it->second);
  shadows_.erase(id);  // a fresh shadow is spawned on the next activation
  kLog.info(name_, ": job ", id, " requeued (restart #", it->second.restarts,
            checkpoint.empty() ? ", from scratch)" : ", from checkpoint)");
  return Status::ok();
}

std::vector<JobId> Schedd::jobs_on_machine(const std::string& machine) const {
  LockGuard lock(mutex_);
  std::vector<JobId> ids;
  for (const auto& [id, record] : jobs_) {
    if (record.matched_machine == machine && !job_status_terminal(record.status)) {
      ids.push_back(id);
    }
  }
  return ids;
}

Shadow* Schedd::spawn_shadow(JobId id, const std::string& submit_dir) {
  LockGuard lock(mutex_);
  auto shadow = std::make_unique<Shadow>(
      id, submit_dir,
      [this](JobId job_id, JobStatus status, int exit_code, const std::string& detail) {
        // Shadow -> schedd status propagation (Figure 4's update path).
        update_job(job_id, status, exit_code, detail);
      });
  Shadow* raw = shadow.get();
  shadows_[id] = std::move(shadow);
  return raw;
}

Shadow* Schedd::shadow(JobId id) {
  LockGuard lock(mutex_);
  auto it = shadows_.find(id);
  return it == shadows_.end() ? nullptr : it->second.get();
}

std::size_t Schedd::queue_size() const {
  LockGuard lock(mutex_);
  return jobs_.size();
}

// ---------------------------------------------------------------------
// Crash recovery (PR 5)
// ---------------------------------------------------------------------

void Schedd::journal_record_locked(const JobRecord& record) {
  // The journal mutex is a strict leaf (DESIGN.md §10): appending under
  // Schedd::mutex_ is the intended order and the append never calls out.
  static constexpr std::size_t kCompactTailRecords = 256;
  if (journal_ == nullptr) return;
  Status appended = journal_->append(job_to_journal(record));
  if (!appended.is_ok()) {
    kLog.warn(name_, ": journal append failed: ", appended.to_string());
    return;
  }
  if (journal_->tail_size() >= kCompactTailRecords) {
    std::vector<journal::Record> snapshot;
    snapshot.reserve(jobs_.size() + 1);
    for (const auto& [id, live] : jobs_) {
      if (live.id == record.id) continue;  // the in-flight mutation
      snapshot.push_back(job_to_journal(live));
    }
    snapshot.push_back(job_to_journal(record));
    Status written = journal_->write_snapshot(snapshot);
    if (!written.is_ok()) {
      kLog.warn(name_, ": journal compaction failed: ", written.to_string());
    }
  }
}

void Schedd::set_journal(journal::Journal* journal) {
  LockGuard lock(mutex_);
  journal_ = journal;
  if (journal_ == nullptr || jobs_.empty()) return;
  // Adopt the live queue as journal truth (attach-to-running-daemon case).
  std::vector<journal::Record> snapshot;
  snapshot.reserve(jobs_.size());
  for (const auto& [id, record] : jobs_) {
    snapshot.push_back(job_to_journal(record));
  }
  Status written = journal_->write_snapshot(snapshot);
  if (!written.is_ok()) {
    kLog.warn(name_, ": journal adoption snapshot failed: ", written.to_string());
  }
}

void Schedd::crash() {
  std::size_t dropped = 0;
  {
    LockGuard lock(mutex_);
    kLog.warn(name_, ": simulated crash; dropping ", jobs_.size(),
              " job(s) and ", shadows_.size(), " shadow(s) from memory");
    dropped = jobs_.size();
    jobs_.clear();
    shadows_.clear();
    next_id_ = 1;
    crashed_ = true;
  }
  // The recorder is the pool's, not the dead object's memory: like the
  // journal, it survives the crash and carries the last pre-death events.
  if (recorder_) {
    recorder_->state("crash", "jobs_dropped=" + std::to_string(dropped));
  }
}

bool Schedd::crashed() const {
  LockGuard lock(mutex_);
  return crashed_;
}

Status Schedd::recover() {
  telemetry::Span span("schedd.recover", "schedd");
  UniqueLock lock(mutex_);
  if (journal_ == nullptr) {
    return make_error(ErrorCode::kInvalidState, "schedd has no journal");
  }
  journal::ReplayStats replay_stats;
  auto replayed = journal_->replay(&replay_stats);
  if (!replayed.is_ok()) return replayed.status();
  if (replay_stats.resyncs > 0 || replay_stats.torn_tail) {
    kLog.warn(name_, ": journal recovery skipped ", replay_stats.bytes_skipped,
              " byte(s) across ", replay_stats.resyncs, " resync(s)",
              replay_stats.torn_tail ? " plus a torn tail" : "");
    telemetry::Registry::instance()
        .counter("schedd.journal_resyncs")
        .add(replay_stats.resyncs + (replay_stats.torn_tail ? 1 : 0));
  }
  jobs_.clear();
  shadows_.clear();
  JobId max_id = 0;
  for (const journal::Record& raw : replayed.value()) {
    if (raw.type != "job") continue;
    auto record = job_from_journal(raw);
    if (!record.is_ok()) {
      kLog.warn(name_, ": skipping damaged journal record: ",
                record.status().to_string());
      continue;
    }
    max_id = std::max(max_id, record->id);
    jobs_[record->id] = std::move(record.value());
  }
  next_id_ = std::max<JobId>(next_id_, max_id + 1);
  // Jobs that were in flight died with the daemon's shadows and claims:
  // return them to the idle queue (the journal makes this exactly-once -
  // the requeue itself is journaled, so a second recovery sees kIdle).
  std::size_t requeued = 0;
  for (auto& [id, record] : jobs_) {
    if (record.status == JobStatus::kIdle || job_status_terminal(record.status)) {
      continue;
    }
    record.status = JobStatus::kIdle;
    record.matched_machine.clear();
    ++record.restarts;
    journal_record_locked(record);
    ++requeued;
  }
  crashed_ = false;
  const std::size_t recovered = jobs_.size();
  kLog.info(name_, ": recovered ", recovered, " job(s) from journal, ",
            requeued, " requeued");
  telemetry::Registry::instance().counter("schedd.recoveries").inc();
  lock.unlock();
  if (recorder_) {
    recorder_->replay("queue-journal", replay_stats);
    recorder_->state("recover", "jobs=" + std::to_string(recovered) +
                                    " requeued=" + std::to_string(requeued));
  }
  return Status::ok();
}

std::size_t Schedd::count_with_status(JobStatus status) const {
  LockGuard lock(mutex_);
  std::size_t count = 0;
  for (const auto& [id, record] : jobs_) {
    if (record.status == status) ++count;
  }
  return count;
}

}  // namespace tdp::condor
