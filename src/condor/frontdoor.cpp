#include "condor/frontdoor.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/string_util.hpp"

namespace tdp::condor {

namespace {

/// "key=<number>" with the whole value consumed, as in health.cpp's
/// threshold parser.
Result<double> parse_kv_number(std::string_view token, std::string_view key) {
  if (token.size() <= key.size() + 1 || token.substr(0, key.size()) != key ||
      token[key.size()] != '=') {
    return make_error(ErrorCode::kInvalidArgument,
                      "expected " + std::string(key) + "=<number>, got '" +
                          std::string(token) + "'");
  }
  const std::string number(token.substr(key.size() + 1));
  char* end = nullptr;
  const double value = std::strtod(number.c_str(), &end);
  if (end == number.c_str() || *end != '\0') {
    return make_error(ErrorCode::kInvalidArgument,
                      "bad number for " + std::string(key) + ": " + number);
  }
  return value;
}

/// Applies one "key=value" token to a tenant policy.
Status apply_tenant_key(TenantPolicy& policy, std::string_view token) {
  const std::size_t eq = token.find('=');
  const std::string_view key =
      eq == std::string_view::npos ? token : token.substr(0, eq);
  auto number = parse_kv_number(token, key);
  if (!number.is_ok()) return number.status();
  const double v = *number;
  if (key == "rate") {
    if (v <= 0) {
      return make_error(ErrorCode::kInvalidArgument,
                        "rate must be > 0, got " + std::string(token));
    }
    policy.rate = v;
  } else if (key == "burst") {
    if (v < 1) {
      return make_error(ErrorCode::kInvalidArgument,
                        "burst must be >= 1, got " + std::string(token));
    }
    policy.burst = v;
  } else if (key == "depth") {
    if (v < 1) {
      return make_error(ErrorCode::kInvalidArgument,
                        "depth must be >= 1, got " + std::string(token));
    }
    policy.depth = static_cast<int>(v);
  } else if (key == "weight") {
    if (v < 1) {
      return make_error(ErrorCode::kInvalidArgument,
                        "weight must be >= 1, got " + std::string(token));
    }
    policy.weight = static_cast<int>(v);
  } else if (key == "priority") {
    policy.priority = static_cast<int>(v);
  } else if (key == "quota") {
    if (v < 0) {
      return make_error(ErrorCode::kInvalidArgument,
                        "quota must be >= 0 (0 = unlimited), got " +
                            std::string(token));
    }
    policy.quota = static_cast<int>(v);
  } else {
    return make_error(ErrorCode::kInvalidArgument,
                      "unknown tenant key '" + std::string(key) + "'");
  }
  return Status::ok();
}

/// Applies one "key=value" token to the brownout policy.
Status apply_brownout_key(BrownoutPolicy& policy, std::string_view token) {
  const std::size_t eq = token.find('=');
  const std::string_view key =
      eq == std::string_view::npos ? token : token.substr(0, eq);
  auto number = parse_kv_number(token, key);
  if (!number.is_ok()) return number.status();
  const double v = *number;
  if (key == "warn-floor") {
    policy.warn_floor = static_cast<int>(v);
  } else if (key == "critical-floor") {
    policy.critical_floor = static_cast<int>(v);
  } else if (key == "exit-after") {
    if (v < 1) {
      return make_error(ErrorCode::kInvalidArgument,
                        "exit-after must be >= 1, got " + std::string(token));
    }
    policy.exit_after = static_cast<int>(v);
  } else if (key == "dwell-ms") {
    if (v < 0) {
      return make_error(ErrorCode::kInvalidArgument,
                        "dwell-ms must be >= 0, got " + std::string(token));
    }
    policy.dwell_ms = static_cast<int>(v);
  } else if (key == "busy-retry-ms") {
    if (v < 1) {
      return make_error(ErrorCode::kInvalidArgument,
                        "busy-retry-ms must be >= 1, got " + std::string(token));
    }
    policy.busy_retry_ms = static_cast<int>(v);
  } else if (key == "shed-retry-ms") {
    if (v < 1) {
      return make_error(ErrorCode::kInvalidArgument,
                        "shed-retry-ms must be >= 1, got " + std::string(token));
    }
    policy.shed_retry_ms = static_cast<int>(v);
  } else {
    return make_error(ErrorCode::kInvalidArgument,
                      "unknown brownout key '" + std::string(key) + "'");
  }
  return Status::ok();
}

}  // namespace

Result<FrontDoorConfig> parse_frontdoor_config(
    const std::vector<std::string>& lines) {
  FrontDoorConfig config;
  for (const std::string& raw : lines) {
    const std::string line = str::trim(raw);
    if (line.empty() || line[0] == '#') continue;

    const std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return make_error(ErrorCode::kInvalidArgument,
                        "front-door line needs '<head>: ...': " + line);
    }
    const std::string head = str::trim(line.substr(0, colon));

    std::istringstream rest{line.substr(colon + 1)};
    std::vector<std::string> tokens;
    for (std::string token; rest >> token;) tokens.push_back(std::move(token));

    if (head == "brownout") {
      for (const std::string& token : tokens) {
        Status applied = apply_brownout_key(config.brownout, token);
        if (!applied.is_ok()) return applied;
      }
      continue;
    }

    TenantPolicy policy = config.default_policy;
    if (head == kDefaultTenant) {
      policy.name = kDefaultTenant;
      for (const std::string& token : tokens) {
        Status applied = apply_tenant_key(policy, token);
        if (!applied.is_ok()) return applied;
      }
      config.default_policy = policy;
      continue;
    }

    std::istringstream head_words{head};
    std::string kind, name, extra;
    head_words >> kind >> name;
    if (kind != "tenant" || name.empty() || (head_words >> extra)) {
      return make_error(ErrorCode::kInvalidArgument,
                        "front-door line wants 'tenant <name>: ...', "
                        "'default: ...' or 'brownout: ...': " + line);
    }
    if (config.tenants.count(name) != 0) {
      return make_error(ErrorCode::kInvalidArgument,
                        "duplicate tenant '" + name + "'");
    }
    policy.name = name;
    for (const std::string& token : tokens) {
      Status applied = apply_tenant_key(policy, token);
      if (!applied.is_ok()) return applied;
    }
    config.tenants.emplace(name, std::move(policy));
  }
  if (config.brownout.critical_floor < config.brownout.warn_floor) {
    return make_error(ErrorCode::kInvalidArgument,
                      "critical-floor must shed at least as much as "
                      "warn-floor");
  }
  if (config.default_policy.name.empty()) {
    config.default_policy.name = kDefaultTenant;
  }
  return config;
}

std::string tenant_of(const JobDescription& description) {
  for (const auto& [key, value] : description.custom_attributes) {
    if (str::to_lower(key) != "tenant") continue;
    std::string tenant = str::trim(value);
    // Submit files keep string values quoted ("acme"); strip that.
    if (tenant.size() >= 2 && tenant.front() == '"' && tenant.back() == '"') {
      tenant = tenant.substr(1, tenant.size() - 2);
    }
    if (!tenant.empty()) return tenant;
  }
  return kDefaultTenant;
}

const char* brownout_state_name(BrownoutState state) noexcept {
  switch (state) {
    case BrownoutState::kNormal: return "normal";
    case BrownoutState::kWarnBrownout: return "warn-brownout";
    case BrownoutState::kCriticalBrownout: return "critical-brownout";
  }
  return "?";
}

FrontDoor::FrontDoor(FrontDoorConfig config, const Clock* clock)
    : config_(std::move(config)), clock_(clock) {
  if (config_.default_policy.name.empty()) {
    config_.default_policy.name = kDefaultTenant;
  }
}

const TenantPolicy& FrontDoor::policy_locked(const std::string& tenant) const {
  auto it = config_.tenants.find(tenant);
  return it == config_.tenants.end() ? config_.default_policy : it->second;
}

TenantPolicy FrontDoor::policy(const std::string& tenant) const {
  LockGuard lock(mutex_);
  TenantPolicy policy = policy_locked(tenant);
  policy.name = tenant;
  return policy;
}

Admission FrontDoor::admit(const std::string& tenant, std::size_t queued_depth,
                           std::size_t active) {
  LockGuard lock(mutex_);
  const TenantPolicy& policy = policy_locked(tenant);
  TenantCounters& counters = counters_[tenant];
  Admission result;

  // Shed checks come first: a shed tenant must not drain its own bucket
  // (the tokens should be full when the brownout lifts).
  const int floor = state_ == BrownoutState::kNormal ? 0
                    : state_ == BrownoutState::kWarnBrownout
                        ? config_.brownout.warn_floor
                        : config_.brownout.critical_floor;
  if (state_ != BrownoutState::kNormal && policy.priority < floor) {
    ++counters.shed;
    result.verdict = Admission::Verdict::kShed;
    result.retry_after_ms = config_.brownout.shed_retry_ms;
    result.reason = "tenant shed: " + std::string(brownout_state_name(state_)) +
                    " floor=" + std::to_string(floor);
    return result;
  }

  if (queued_depth >= static_cast<std::size_t>(policy.depth)) {
    ++counters.busy;
    result.verdict = Admission::Verdict::kBusy;
    result.retry_after_ms = config_.brownout.busy_retry_ms;
    result.reason = "queue depth limit " + std::to_string(policy.depth);
    return result;
  }
  if (policy.quota > 0 && active >= static_cast<std::size_t>(policy.quota)) {
    ++counters.busy;
    result.verdict = Admission::Verdict::kBusy;
    result.retry_after_ms = config_.brownout.busy_retry_ms;
    result.reason = "in-flight quota " + std::to_string(policy.quota);
    return result;
  }

  const Micros now = clock_->now_micros();
  auto [it, fresh] = buckets_.try_emplace(tenant);
  Bucket& bucket = it->second;
  if (fresh) {
    bucket.tokens = policy.burst;  // a new tenant starts with a full burst
    bucket.refilled_at = now;
  } else if (now > bucket.refilled_at) {
    const double elapsed_s =
        static_cast<double>(now - bucket.refilled_at) / 1e6;
    bucket.tokens = std::min(policy.burst,
                             bucket.tokens + elapsed_s * policy.rate);
    bucket.refilled_at = now;
  }
  if (bucket.tokens < 1.0) {
    ++counters.busy;
    result.verdict = Admission::Verdict::kBusy;
    // Hint = time until one whole token refills at the sustained rate; the
    // client layers jitter on top so the herd desynchronizes.
    result.retry_after_ms = std::max(
        1, static_cast<int>((1.0 - bucket.tokens) * 1000.0 / policy.rate) + 1);
    result.reason = "rate limit " + std::to_string(policy.rate) + "/s";
    return result;
  }
  bucket.tokens -= 1.0;

  if (state_ != BrownoutState::kNormal) {
    ++counters.best_effort;
    result.verdict = Admission::Verdict::kAdmitBestEffort;
    return result;
  }
  ++counters.admitted;
  return result;
}

HealthTransition FrontDoor::on_health(health::Severity severity) {
  LockGuard lock(mutex_);
  HealthTransition transition;
  const Micros now = clock_->now_micros();

  if (severity == health::Severity::kOk) {
    if (state_ != BrownoutState::kNormal) {
      ++ok_streak_;
      const bool dwelled =
          now - entered_at_ >=
          static_cast<Micros>(config_.brownout.dwell_ms) * 1000;
      if (ok_streak_ >= config_.brownout.exit_after && dwelled) {
        state_ = BrownoutState::kNormal;
        ok_streak_ = 0;
        transition.exited = true;
      }
    }
  } else {
    ok_streak_ = 0;
    const BrownoutState target = severity == health::Severity::kCritical
                                     ? BrownoutState::kCriticalBrownout
                                     : BrownoutState::kWarnBrownout;
    // Escalation is immediate; de-escalation (critical -> warn verdicts)
    // keeps the deeper state until a full ok-streak exit, so the shed set
    // only ever grows within one brownout episode.
    if (target > state_) {
      if (state_ == BrownoutState::kNormal) ++entries_;
      entered_at_ = now;  // escalating re-arms the dwell
      state_ = target;
      transition.entered = true;
    }
  }

  transition.state = state_;
  transition.shed_floor = state_ == BrownoutState::kNormal ? 0
                          : state_ == BrownoutState::kWarnBrownout
                              ? config_.brownout.warn_floor
                              : config_.brownout.critical_floor;
  return transition;
}

BrownoutState FrontDoor::state() const {
  LockGuard lock(mutex_);
  return state_;
}

int FrontDoor::shed_floor() const {
  LockGuard lock(mutex_);
  switch (state_) {
    case BrownoutState::kNormal: return 0;
    case BrownoutState::kWarnBrownout: return config_.brownout.warn_floor;
    case BrownoutState::kCriticalBrownout:
      return config_.brownout.critical_floor;
  }
  return 0;
}

bool FrontDoor::is_shed(const std::string& tenant) const {
  LockGuard lock(mutex_);
  if (state_ == BrownoutState::kNormal) return false;
  const int floor = state_ == BrownoutState::kWarnBrownout
                        ? config_.brownout.warn_floor
                        : config_.brownout.critical_floor;
  return policy_locked(tenant).priority < floor;
}

TenantCounters FrontDoor::counters(const std::string& tenant) const {
  LockGuard lock(mutex_);
  auto it = counters_.find(tenant);
  return it == counters_.end() ? TenantCounters{} : it->second;
}

std::vector<std::string> FrontDoor::seen_tenants() const {
  LockGuard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, c] : counters_) names.push_back(name);
  return names;
}

std::uint64_t FrontDoor::brownout_entries() const {
  LockGuard lock(mutex_);
  return entries_;
}

void WrrQueues::push(const std::string& tenant, int weight, JobId id) {
  if (!queued_.insert(id).second) return;
  Lane& lane = lanes_[tenant];
  lane.weight = std::max(1, weight);
  lane.jobs.push_back(id);
}

void WrrQueues::erase(JobId id) {
  if (queued_.erase(id) == 0) return;
  for (auto it = lanes_.begin(); it != lanes_.end(); ++it) {
    auto& jobs = it->second.jobs;
    auto pos = std::find(jobs.begin(), jobs.end(), id);
    if (pos != jobs.end()) {
      jobs.erase(pos);
      if (jobs.empty()) lanes_.erase(it);
      return;
    }
  }
}

std::size_t WrrQueues::tenant_depth(const std::string& tenant) const {
  auto it = lanes_.find(tenant);
  return it == lanes_.end() ? 0 : it->second.jobs.size();
}

std::vector<JobId> WrrQueues::pop_round(std::size_t limit) {
  std::vector<JobId> out;
  if (limit == 0 || queued_.empty()) return out;
  while (out.size() < limit && !queued_.empty()) {
    bool popped_any = false;
    auto it = lanes_.lower_bound(cursor_);
    for (std::size_t visited = 0, n = lanes_.size();
         visited < n && out.size() < limit; ++visited) {
      if (it == lanes_.end()) it = lanes_.begin();
      Lane& lane = it->second;
      for (int k = 0; k < lane.weight && !lane.jobs.empty(); ++k) {
        out.push_back(lane.jobs.front());
        queued_.erase(lane.jobs.front());
        lane.jobs.pop_front();
        popped_any = true;
        if (out.size() >= limit) break;
      }
      ++it;
      // The next round resumes at the lane after the last one served, so
      // no tenant is systematically first.
      cursor_ = it == lanes_.end() ? std::string() : it->first;
    }
    if (!popped_any) break;
  }
  // Drop drained lanes; weight re-arrives with the next push.
  for (auto it = lanes_.begin(); it != lanes_.end();) {
    it = it->second.jobs.empty() ? lanes_.erase(it) : std::next(it);
  }
  return out;
}

}  // namespace tdp::condor
