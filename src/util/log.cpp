#include "util/log.hpp"

#include <cinttypes>
#include <cstdio>

#include "util/sync.hpp"
#include "util/telemetry.hpp"

namespace tdp::log {

namespace {

std::atomic<Level> g_level{Level::kWarn};
std::atomic<bool> g_timestamps{false};

tdp::Mutex& sink_mutex() {
  static tdp::Mutex m{"log::sink_mutex"};
  return m;
}

Sink& sink_ref() {
  static Sink s;  // empty -> stderr
  return s;
}

tdp::Mutex& observer_mutex() {
  static tdp::Mutex m{"log::observer_mutex"};
  return m;
}

Observer& observer_ref() {
  static Observer o;
  return o;
}

}  // namespace

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

void set_level(Level level) noexcept { g_level.store(level, std::memory_order_relaxed); }

Level get_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_sink(Sink sink) {
  LockGuard lock(sink_mutex());
  sink_ref() = std::move(sink);
}

void set_observer(Observer observer) {
  LockGuard lock(observer_mutex());
  observer_ref() = std::move(observer);
}

void set_timestamps(bool enabled) noexcept {
  g_timestamps.store(enabled, std::memory_order_relaxed);
}

bool timestamps_enabled() noexcept {
  return g_timestamps.load(std::memory_order_relaxed);
}

void write(Level level, std::string_view component, std::string_view message) {
  std::string line;
  line.reserve(component.size() + message.size() + 16);
  if (timestamps_enabled()) {
    char prefix[48];
    std::snprintf(prefix, sizeof(prefix), "[%" PRId64 "us] ",
                  telemetry::Tracer::instance().now());
    line += prefix;
    const telemetry::SpanContext ctx = telemetry::current_context();
    if (ctx.valid()) {
      std::snprintf(prefix, sizeof(prefix), "[%08" PRIx64 "] ",
                    ctx.trace_id & 0xffffffffu);
      line += prefix;
    }
  }
  line += '[';
  line += level_name(level);
  line += "] ";
  line += component;
  line += ": ";
  line += message;

  {
    LockGuard lock(sink_mutex());
    if (sink_ref()) {
      sink_ref()(line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }

  // Copy the observer under its own lock, invoke outside: the observer may
  // take leaf locks of its own (flight-recorder shards) and must never run
  // under a log lock.
  Observer observer;
  {
    LockGuard lock(observer_mutex());
    observer = observer_ref();
  }
  if (observer) observer(level, component, message);
}

}  // namespace tdp::log
