#include "util/lease.hpp"

#include <algorithm>
#include <utility>

namespace tdp::lease {

std::string liveness_attr(const std::string& role, const std::string& host) {
  std::string safe_host = host;
  std::replace(safe_host.begin(), safe_host.end(), '.', '-');
  return std::string(kLivenessPrefix) + role + "." + safe_host;
}

const char* health_name(Health health) {
  switch (health) {
    case Health::kAlive:
      return "alive";
    case Health::kDegraded:
      return "degraded";
    case Health::kExpired:
      return "expired";
  }
  return "unknown";
}

// --- HeartbeatPublisher ---

HeartbeatPublisher::HeartbeatPublisher(std::string attribute, Config config,
                                       const Clock* clock, PutFn put)
    : attribute_(std::move(attribute)),
      config_(config),
      clock_(clock),
      put_(std::move(put)) {}

Status HeartbeatPublisher::maybe_beat() {
  {
    LockGuard lock(mutex_);
    const Micros now = clock_->now_micros();
    if (last_beat_micros_ >= 0 &&
        now - last_beat_micros_ < config_.beat_interval_micros) {
      return Status::ok();
    }
  }
  return beat_now();
}

Status HeartbeatPublisher::beat_now() {
  std::string value;
  {
    LockGuard lock(mutex_);
    const Micros now = clock_->now_micros();
    value = std::to_string(++sequence_) + " " + std::to_string(now);
    last_beat_micros_ = now;
  }
  // The put may block on the network; never hold the lock across it.
  return put_(attribute_, value);
}

std::uint64_t HeartbeatPublisher::beats_sent() const {
  LockGuard lock(mutex_);
  return sequence_;
}

// --- LeaseMonitor ---

LeaseMonitor::LeaseMonitor(Config config, const Clock* clock)
    : config_(config), clock_(clock) {}

void LeaseMonitor::on_transition(TransitionCallback callback) {
  LockGuard lock(mutex_);
  callbacks_.push_back(std::move(callback));
}

void LeaseMonitor::observe(const std::string& name) {
  observe_at(name, clock_->now_micros());
}

void LeaseMonitor::observe_at(const std::string& name, Micros at_micros) {
  LockGuard lock(mutex_);
  auto [it, inserted] = entries_.try_emplace(name);
  it->second.last_beat_micros = at_micros;
  if (inserted) it->second.reported = Health::kAlive;
  // A beat does not flip `reported` back by itself: the resurrection
  // transition (kExpired -> kAlive) fires from the next poll(), keeping
  // every callback on the poller's thread.
}

Micros LeaseMonitor::last_beat(const std::string& name) const {
  LockGuard lock(mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? -1 : it->second.last_beat_micros;
}

Health LeaseMonitor::compute(Micros last_beat, Micros now) const {
  const Micros elapsed = now - last_beat;
  // A beat landing exactly at the TTL boundary still renews: the lease is
  // alive while elapsed <= ttl (the renewal-race rule).
  if (elapsed <= config_.ttl_micros) return Health::kAlive;
  if (elapsed <= config_.ttl_micros + config_.grace_micros) {
    return Health::kDegraded;
  }
  return Health::kExpired;
}

Health LeaseMonitor::health(const std::string& name) const {
  LockGuard lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return Health::kExpired;
  return compute(it->second.last_beat_micros, clock_->now_micros());
}

int LeaseMonitor::poll() {
  struct Transition {
    std::string name;
    Health from;
    Health to;
    Micros last_beat;
  };
  std::vector<Transition> transitions;
  std::vector<TransitionCallback> callbacks;
  {
    LockGuard lock(mutex_);
    const Micros now = clock_->now_micros();
    for (auto& [name, entry] : entries_) {
      const Health current = compute(entry.last_beat_micros, now);
      if (current == entry.reported) continue;
      transitions.push_back(
          {name, entry.reported, current, entry.last_beat_micros});
      entry.reported = current;
    }
    if (!transitions.empty()) callbacks = callbacks_;
  }
  // Loss ordering: the lease whose beats stopped first is reported first,
  // so a cascade (startd died, then its tool) is observed in causal order.
  std::stable_sort(transitions.begin(), transitions.end(),
                   [](const Transition& a, const Transition& b) {
                     return a.last_beat < b.last_beat;
                   });
  mutex_.assert_not_held();
  for (const Transition& transition : transitions) {
    for (const TransitionCallback& callback : callbacks) {
      callback(transition.name, transition.from, transition.to);
    }
  }
  return static_cast<int>(transitions.size());
}

std::vector<std::string> LeaseMonitor::expired() const {
  LockGuard lock(mutex_);
  const Micros now = clock_->now_micros();
  std::vector<std::string> names;
  for (const auto& [name, entry] : entries_) {
    if (compute(entry.last_beat_micros, now) == Health::kExpired) {
      names.push_back(name);
    }
  }
  return names;
}

LeaseMonitor::Counts LeaseMonitor::counts() const {
  LockGuard lock(mutex_);
  const Micros now = clock_->now_micros();
  Counts counts;
  for (const auto& [name, entry] : entries_) {
    switch (compute(entry.last_beat_micros, now)) {
      case Health::kAlive: ++counts.alive; break;
      case Health::kDegraded: ++counts.degraded; break;
      case Health::kExpired: ++counts.expired; break;
    }
  }
  return counts;
}

void LeaseMonitor::forget(const std::string& name) {
  LockGuard lock(mutex_);
  entries_.erase(name);
}

std::size_t LeaseMonitor::tracked_count() const {
  LockGuard lock(mutex_);
  return entries_.size();
}

bool LeaseMonitor::tracked(const std::string& name) const {
  LockGuard lock(mutex_);
  return entries_.count(name) != 0;
}

}  // namespace tdp::lease
