#include "util/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>

namespace tdp::str {

std::vector<std::string> split(std::string_view input, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_args(std::string_view input) {
  std::vector<std::string> out;
  std::string current;
  bool in_token = false;
  char quote = '\0';
  for (char c : input) {
    if (quote != '\0') {
      if (c == quote) {
        quote = '\0';
      } else {
        current += c;
      }
      continue;
    }
    if (c == '\'' || c == '"') {
      quote = c;
      in_token = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (in_token) {
        out.push_back(std::move(current));
        current.clear();
        in_token = false;
      }
      continue;
    }
    current += c;
    in_token = true;
  }
  if (in_token) out.push_back(std::move(current));
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view input) {
  std::size_t begin = 0;
  std::size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) --end;
  return std::string(input.substr(begin, end - begin));
}

std::string to_lower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool is_integer(std::string_view text) noexcept {
  if (text.empty()) return false;
  std::int64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  return ec == std::errc() && ptr == end;
}

std::string expand_placeholders(std::string_view input,
                                const std::map<std::string, std::string>& vars) {
  std::string out;
  out.reserve(input.size());
  std::size_t i = 0;
  while (i < input.size()) {
    if (input[i] != '%') {
      out += input[i++];
      continue;
    }
    if (i + 1 < input.size() && input[i + 1] == '%') {
      out += '%';
      i += 2;
      continue;
    }
    std::size_t j = i + 1;
    while (j < input.size() &&
           (std::isalnum(static_cast<unsigned char>(input[j])) || input[j] == '_')) {
      ++j;
    }
    std::string name(input.substr(i + 1, j - i - 1));
    auto it = vars.find(name);
    if (name.empty() || it == vars.end()) {
      out += input.substr(i, j - i);  // leave unknown placeholder untouched
    } else {
      out += it->second;
    }
    i = j;
  }
  return out;
}

std::string format_host_port(std::string_view host, int port) {
  std::string out(host);
  out += ':';
  out += std::to_string(port);
  return out;
}

bool parse_host_port(std::string_view text, std::string* host, int* port) {
  std::size_t pos = text.rfind(':');
  if (pos == std::string_view::npos || pos == 0 || pos + 1 >= text.size()) return false;
  std::string_view port_part = text.substr(pos + 1);
  if (!is_integer(port_part)) return false;
  int value = 0;
  std::from_chars(port_part.data(), port_part.data() + port_part.size(), value);
  if (value < 0 || value > 65535) return false;
  if (host != nullptr) *host = std::string(text.substr(0, pos));
  if (port != nullptr) *port = value;
  return true;
}

}  // namespace tdp::str
