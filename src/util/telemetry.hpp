// telemetry.hpp - self-hosted observability for the TDP daemons: a
// lock-sharded metrics registry (counters / gauges / log2 histograms, all
// atomics on the hot path) and a span-based tracer whose context rides the
// attribute-space wire frames, so one submit yields a single causal tree
// across schedd, shadow, startd, starter, paradynd and the application.
//
// Design constraints, in order:
//   - zero allocation after registration: handles returned by the Registry
//     are stable references; hot paths cache them once and then only do
//     relaxed atomic adds.
//   - virtual-clock aware: the Tracer reads time through util/clock.hpp's
//     Clock interface, so sim-engine runs produce deterministic spans.
//   - self-hosted export: dump through the attribute-space itself under
//     tdp.telemetry.<role>.<host>.* (see attrspace/telemetry_export.hpp),
//     the way Condor-family managers expose daemon state through their own
//     job-control channel.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace tdp::blockio {
struct ScanStats;
}  // namespace tdp::blockio

namespace tdp::telemetry {

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Monotonic counter. All operations are relaxed atomics; cross-metric
/// consistency is not promised (snapshots are advisory, like /proc).
class Counter {
 public:
  void inc() noexcept { value_.fetch_add(1, std::memory_order_relaxed); }
  void add(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge (queue depths, live connections, ...). Signed so
/// add(-1) works for up/down tracking.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket log2 histogram: bucket b counts values whose bit width is
/// b, i.e. [2^(b-1), 2^b) for b >= 1 and the single value 0 for b == 0.
/// record() is three relaxed fetch_adds - no locks, no allocation. Intended
/// unit is microseconds but any non-negative magnitude works.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::uint64_t v) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// Percentiles are the upper bound of the bucket in which the
    /// percentile falls - an overestimate bounded by 2x (the bucket
    /// width), which is the precision log2 buckets buy.
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Raw bucket counts (relaxed loads). This is the mergeable form: the
  /// hierarchical CASS folds per-host buckets elementwise up the mrnet
  /// overlay and recomputes percentiles at the root with
  /// snapshot_from_buckets() — exact where folding per-host percentiles
  /// would be statistically meaningless.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Recomputes a Snapshot (count + percentiles) from merged log2 bucket
/// counts; `sum` is carried alongside by the merger. `buckets` may be
/// shorter than kBuckets (missing tail buckets count zero).
[[nodiscard]] Histogram::Snapshot snapshot_from_buckets(
    const std::vector<std::uint64_t>& buckets, std::uint64_t sum);

/// One registry entry flattened for export / inspection.
struct Sample {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  /// Counter/gauge value (histograms: 0).
  std::int64_t value = 0;
  /// Histogram-only fields.
  Histogram::Snapshot hist;
};

/// Process-wide, lock-sharded metrics registry. Locks are taken only at
/// registration and snapshot time; the returned references stay valid for
/// the life of the process (entries are never removed), so callers cache
/// them in function-local statics and the steady state is lock-free.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// All metrics, sorted by name. Values are read with relaxed loads; the
  /// snapshot is consistent per-metric, not across metrics.
  [[nodiscard]] std::vector<Sample> snapshot() const;

 private:
  static constexpr std::size_t kShards = 8;

  struct Shard {
    mutable Mutex mutex{"telemetry::Registry::Shard::mutex"};
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters
        TDP_GUARDED_BY(mutex);
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges
        TDP_GUARDED_BY(mutex);
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms
        TDP_GUARDED_BY(mutex);
  };

  Shard& shard_for(std::string_view name) noexcept;

  Shard shards_[kShards];
};

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

/// Identifies a position in a causal tree. Propagated across daemons as a
/// compact string header ("1-<trace-hex>-<span-hex>") in a reserved
/// attribute-space message field; see net/message.hpp kTraceField.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }
};

/// "1-%016x-%016x". The leading "1" is the header version: parsers ignore
/// versions they do not understand, and readers that predate telemetry see
/// only an unknown string field (the frame layout is unchanged).
std::string format_context(const SpanContext& ctx);

/// Returns an invalid context on malformed input or unknown version.
SpanContext parse_context(std::string_view header);

/// One finished span.
struct SpanRecord {
  std::string name;  ///< operation, e.g. "starter.launch"
  std::string role;  ///< daemon role, e.g. "starter"
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root
  Micros start_us = 0;
  Micros end_us = 0;
};

/// Process-wide span collector. Span ids come from plain atomic counters
/// (not RNG) and time from the configured Clock, so a sim run with a
/// VirtualClock produces byte-identical traces; clear() rewinds the id
/// counters for back-to-back determinism tests.
class Tracer {
 public:
  static Tracer& instance();

  /// nullptr restores the default RealClock. The pointer must outlive all
  /// tracing activity (sim engines call set_clock(nullptr) on teardown).
  void set_clock(const Clock* clock) noexcept;
  [[nodiscard]] Micros now() const noexcept;

  /// Disabled: Span construction is a no-op (contexts come back invalid,
  /// nothing is recorded). Default on; the overhead bench measures off.
  void set_enabled(bool enabled) noexcept;
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::vector<SpanRecord> finished() const;

  /// Drops all finished spans AND resets the id counters - only safe when
  /// no spans are in flight (tests, bench setup).
  void clear();

  /// Chrome trace_event JSON ("ph":"X" complete events) from finished
  /// spans; view via chrome://tracing, Perfetto, or scripts/trace2html.py.
  [[nodiscard]] std::string chrome_trace_json() const;
  Status dump_chrome_trace(const std::string& path) const;

  /// Appends every finished span to `path` as one compressed block
  /// (util/blockio). Each call emits one self-delimiting, CRC-guarded
  /// block, so a collector can tail the file across daemon restarts and
  /// resume from any block boundary (seek-to-sync) instead of re-reading
  /// from byte zero; a torn tail from a crash mid-dump costs only that
  /// final block.
  Status dump_span_blocks(const std::string& path) const;

  /// Observers run for every span handed to record() — including spans the
  /// back-pressure cap drops from finished_ — outside the Tracer lock, so
  /// an observer may take leaf locks of its own. The flight recorder
  /// (util/flightrec.hpp) mirrors span completions into per-daemon rings
  /// through this; it filters by SpanRecord::role because the Tracer is
  /// process-wide. Returns an id for remove_span_observer.
  using SpanObserver = std::function<void(const SpanRecord&)>;
  std::uint64_t add_span_observer(SpanObserver observer);
  void remove_span_observer(std::uint64_t id);

  // Internal - used by Span.
  std::uint64_t next_trace_id() noexcept {
    return next_trace_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t next_span_id() noexcept {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }
  void record(SpanRecord rec);

 private:
  /// Back-pressure: beyond this many retained spans, new records are
  /// dropped (counted in telemetry.spans_dropped) rather than growing
  /// without bound in long-lived daemons.
  static constexpr std::size_t kMaxFinished = 65536;

  mutable Mutex mutex_{"telemetry::Tracer::mutex_"};
  std::vector<SpanRecord> finished_ TDP_GUARDED_BY(mutex_);

  /// Leaf lock for the observer table; record() copies the observers out
  /// and invokes them with no Tracer lock held. has_observers_ keeps the
  /// no-observer hot path to one relaxed load.
  mutable Mutex observers_mutex_{"telemetry::Tracer::observers_mutex_"};
  std::map<std::uint64_t, SpanObserver> observers_
      TDP_GUARDED_BY(observers_mutex_);

  // Deliberately unguarded: atomics. has_observers_ keeps the no-observer
  // hot path to one relaxed load; next_observer_ mints ids.
  std::atomic<bool> has_observers_{false};
  std::atomic<std::uint64_t> next_observer_{1};
  std::atomic<const Clock*> clock_{nullptr};
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> next_trace_{1};
  std::atomic<std::uint64_t> next_span_{1};
};

/// Reads spans back from a block file written by dump_span_blocks,
/// starting at byte `offset` (0 = whole file; a collector passes the
/// position it checkpointed after its last read). Damaged regions are
/// skipped by marker resync; `stats`, when non-null, reports blocks,
/// resyncs, and a torn tail so the collector can account for loss.
Result<std::vector<SpanRecord>> load_span_blocks(
    const std::string& path, std::uint64_t offset = 0,
    blockio::ScanStats* stats = nullptr);

/// The context a new Span would inherit on this thread: the innermost
/// active Span if any, else the ambient (remote) context.
[[nodiscard]] SpanContext current_context();

/// The thread's ambient context: set when a message carrying a trace
/// header is being handled (or a traced attribute value was just read), so
/// work triggered by a remote operation joins the remote trace.
[[nodiscard]] SpanContext ambient_context();
void set_ambient_context(const SpanContext& ctx);

/// RAII save/set/restore of the ambient context.
class ScopedAmbient {
 public:
  explicit ScopedAmbient(const SpanContext& ctx);
  ~ScopedAmbient();
  ScopedAmbient(const ScopedAmbient&) = delete;
  ScopedAmbient& operator=(const ScopedAmbient&) = delete;

 private:
  SpanContext saved_;
};

/// RAII span. Parents to current_context() (or an explicit parent); while
/// alive it is the thread's innermost span, so nested Spans and outgoing
/// attribute-space calls inherit it. Records on destruction/end().
class Span {
 public:
  Span(std::string_view name, std::string_view role);
  Span(std::string_view name, std::string_view role,
       const SpanContext& parent);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Invalid when the tracer is disabled.
  [[nodiscard]] SpanContext context() const noexcept { return ctx_; }
  [[nodiscard]] bool recording() const noexcept { return open_; }
  void end();

 private:
  void begin(std::string_view name, std::string_view role,
             const SpanContext& parent);

  SpanContext ctx_;
  std::uint64_t parent_ = 0;
  Micros start_ = 0;
  std::string name_;
  std::string role_;
  bool open_ = false;
};

}  // namespace tdp::telemetry
