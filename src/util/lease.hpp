// lease.hpp - heartbeat/lease liveness primitive (PR 5).
//
// TDP separates failure domains: the RM, the tool daemon and the
// application may die independently, and the paper requires that the
// survivors *detect* the death and respond (Section 2.3: "the RM must be
// able to detect these failures [and] respond to them"). Detection here is
// lease-based: every daemon publishes a heartbeat attribute
// `tdp.liveness.<role>.<host>` through the attribute space, and any
// interested peer holds a lease over that name. A lease is
//
//     kAlive     while the last beat is at most ttl old,
//     kDegraded  between ttl and ttl+grace (one missed beat is not death:
//                the grace period absorbs scheduling jitter and transport
//                retry stalls from PR 2),
//     kExpired   after ttl+grace - the peer is presumed dead and loss
//                callbacks fire.
//
// All time flows through a tdp::Clock pointer so the same code runs under
// the real clock in deployments and under ManualClock / the sim virtual
// clock in tests - lease expiry in the chaos tier is deterministic, not a
// sleep race.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/clock.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace tdp::lease {

/// Attribute-name prefix for liveness beats: tdp.liveness.<role>.<host>.
/// Lives here (not attr_protocol.hpp) because util/ sits below attrspace/ in
/// the layering; the attrspace registry references this constant.
inline constexpr const char* kLivenessPrefix = "tdp.liveness.";

/// "tdp.liveness.<role>.<host>". Dots inside `host` are replaced with '-'
/// so the two-level split (role, host) stays parseable by observers.
std::string liveness_attr(const std::string& role, const std::string& host);

struct Config {
  /// Beat age at which a lease stops being healthy.
  Micros ttl_micros = 2'000'000;
  /// Extra allowance past the TTL before the holder declares death.
  Micros grace_micros = 500'000;
  /// How often the publisher refreshes its beat (default TTL/4: three
  /// consecutive beats may be lost before the lease even degrades).
  Micros beat_interval_micros = 500'000;
};

enum class Health : std::uint8_t { kAlive, kDegraded, kExpired };

const char* health_name(Health health);

/// Publishes one daemon's heartbeat through a caller-supplied put function
/// (normally TdpSession::put or AttrStore::put bound to the liveness
/// attribute). Value format: "<seq> <clock-micros>" - the sequence number
/// makes every beat a distinct put so subscribers are re-notified.
class HeartbeatPublisher {
 public:
  using PutFn = std::function<Status(const std::string& attribute,
                                     const std::string& value)>;

  HeartbeatPublisher(std::string attribute, Config config, const Clock* clock,
                     PutFn put);

  /// Beats only if beat_interval has elapsed since the last beat; call it
  /// from the daemon's poll loop on every iteration.
  Status maybe_beat();

  /// Unconditional beat (daemon startup, post-reconnect re-announce).
  Status beat_now();

  [[nodiscard]] std::uint64_t beats_sent() const;
  [[nodiscard]] const std::string& attribute() const { return attribute_; }

 private:
  mutable Mutex mutex_{"HeartbeatPublisher::mutex_"};
  std::uint64_t sequence_ TDP_GUARDED_BY(mutex_) = 0;
  Micros last_beat_micros_ TDP_GUARDED_BY(mutex_) = -1;

  const std::string attribute_;
  const Config config_;
  const Clock* clock_;
  const PutFn put_;
};

/// Holds leases over a set of heartbeat names. observe() records a beat
/// (typically from an attrspace subscription callback, which may run on an
/// I/O thread); poll() recomputes every lease against the clock and fires
/// transition callbacks for each health change. Callbacks run outside the
/// monitor lock, ordered by expiry deadline (the peer that died first is
/// reported first), and each boundary crossing fires exactly once.
class LeaseMonitor {
 public:
  /// (name, previous health, new health).
  using TransitionCallback =
      std::function<void(const std::string&, Health, Health)>;

  explicit LeaseMonitor(Config config,
                        const Clock* clock = &RealClock::instance());

  /// Appends a callback fired from poll() on every health transition.
  void on_transition(TransitionCallback callback);

  /// Records a beat for `name` at the current clock reading. Unknown names
  /// start being tracked (as kAlive) from their first beat, so a daemon
  /// that has not announced itself yet can never be declared dead.
  void observe(const std::string& name);

  /// Records a beat as of an explicit (normally past) clock reading: a
  /// monitor rebuilt around a topology change carries the old monitor's
  /// in-flight beat times so detection deadlines are neither reset nor
  /// fabricated by the rebuild.
  void observe_at(const std::string& name, Micros at_micros);

  /// Clock reading of the last recorded beat, or -1 if `name` is
  /// untracked.
  [[nodiscard]] Micros last_beat(const std::string& name) const;

  /// Current health of `name`, computed against the clock; kExpired for
  /// names never observed (use tracked() to distinguish).
  [[nodiscard]] Health health(const std::string& name) const;

  [[nodiscard]] bool tracked(const std::string& name) const;

  /// Recomputes every lease and fires transition callbacks. Returns the
  /// number of transitions reported.
  int poll();

  /// Names currently past ttl+grace.
  [[nodiscard]] std::vector<std::string> expired() const;

  /// Tracked names bucketed by current health, computed against the clock
  /// in one pass. This is the input to per-level lease aggregation
  /// (lease_agg.hpp): an interior CASS node summarizes its children with
  /// counts, not names, so the upward beat stays O(1).
  struct Counts {
    int alive = 0;
    int degraded = 0;
    int expired = 0;
    [[nodiscard]] int total() const noexcept {
      return alive + degraded + expired;
    }
  };
  [[nodiscard]] Counts counts() const;

  /// Stops tracking `name` (no transition fires; the next observe()
  /// restarts tracking from kAlive).
  void forget(const std::string& name);

  [[nodiscard]] std::size_t tracked_count() const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct Entry {
    Micros last_beat_micros = 0;
    Health reported = Health::kAlive;
  };

  [[nodiscard]] Health compute(Micros last_beat, Micros now) const;

  mutable Mutex mutex_{"LeaseMonitor::mutex_"};
  std::map<std::string, Entry> entries_ TDP_GUARDED_BY(mutex_);
  std::vector<TransitionCallback> callbacks_ TDP_GUARDED_BY(mutex_);

  const Config config_;
  const Clock* clock_;
};

}  // namespace tdp::lease
