// compress.hpp - self-contained block compression for the journal and span
// export (PR 6). The container bakes in no compression library, so this is
// a small LZ77 byte codec of the LZ4 family: greedy hash-chain matcher,
// token = (literal-run nibble | match-length nibble), 2-byte little-endian
// match offsets. It is not LZ4-compatible on the wire - it is ours, which
// keeps the decoder auditable and the fuzz tier honest - but it has the
// same shape: decompression is a straight memcpy loop, no entropy coder,
// no allocation beyond the output buffer.
//
// Also hosts the CRC-32 (ISO-HDLC polynomial, the zlib one) used by the
// block format to validate payloads before trusting a sync marker.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace tdp::compress {

/// Codec byte stored in every block header. Values are wire format:
/// renumbering breaks journals on disk.
enum class Codec : std::uint8_t {
  kStore = 0,  ///< payload stored verbatim
  kLz = 1,     ///< LZ77 token stream (this file)
};

/// CRC-32 (reflected, poly 0xEDB88320) of `data`, seeded with `seed` so
/// checksums can be chained. Matches zlib's crc32() for interoperability
/// of any future external tooling.
std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

/// Compresses `input` into the LZ token stream. Always succeeds; the worst
/// case (incompressible input) expands by ~1/255 plus a few bytes, which is
/// why callers compare sizes and fall back to Codec::kStore.
std::string lz_compress(std::string_view input);

/// Decompresses a token stream produced by lz_compress. `expected_size` is
/// the decoded length recorded in the block header: the decoder allocates
/// exactly that much and fails (kInvalidArgument) on any
/// token that would write outside it, reference data before the start, or
/// leave the output short - corrupted headers must never turn into
/// unbounded allocation or an overrun.
Result<std::string> lz_decompress(std::string_view input, std::size_t expected_size);

/// Upper bound a caller may impose on expected_size before calling
/// lz_decompress: a corrupt header claiming a multi-GB block is rejected
/// outright instead of allocated.
inline constexpr std::size_t kMaxBlockRawSize = 64u * 1024u * 1024u;

}  // namespace tdp::compress
