// sync.hpp - the repo's single gateway to mutual exclusion.
//
// Every mutex-protected field in src/ uses the tdp::Mutex / tdp::SharedMutex
// wrappers below together with the TDP_* Clang Thread Safety Analysis
// attributes, so lock discipline is proven at compile time under
// `clang++ -Wthread-safety -Werror` and compiles to plain std primitives
// everywhere else. scripts/lint.py enforces that no raw std::mutex /
// std::lock_guard / std::condition_variable appears outside this header.
//
// Debug builds additionally carry a runtime LockOrderGraph inside the
// wrappers: a per-thread held-lock stack plus a global acquired-after edge
// set. An acquisition that would close a cycle in the edge set — a lock-order
// inversion that the static analysis cannot see because it spans objects or
// depends on dynamic state — aborts deterministically with the lock names of
// both the held stack and the offending path, instead of deadlocking a
// production run. See DESIGN.md §10 for the canonical lock-ordering table
// and how to read an abort.
//
// Release builds (NDEBUG) compile all of the checking out: tdp::Mutex is
// layout-identical to std::mutex (static_assert'd in tests/util/sync
// release tests).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros (no-ops off clang).
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define TDP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef TDP_THREAD_ANNOTATION
#define TDP_THREAD_ANNOTATION(x)  // not clang: annotations vanish
#endif

/// Marks a class as a lockable capability (mutexes).
#define TDP_CAPABILITY(x) TDP_THREAD_ANNOTATION(capability(x))
/// Marks an RAII class whose ctor acquires and dtor releases a capability.
#define TDP_SCOPED_CAPABILITY TDP_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be touched while `x` is held.
#define TDP_GUARDED_BY(x) TDP_THREAD_ANNOTATION(guarded_by(x))
/// Pointee may only be touched while `x` is held.
#define TDP_PT_GUARDED_BY(x) TDP_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function must be called with the capability held (exclusive).
#define TDP_REQUIRES(...) TDP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function must be called with the capability held (shared or exclusive).
#define TDP_REQUIRES_SHARED(...) \
  TDP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability and does not release it.
#define TDP_ACQUIRE(...) TDP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TDP_ACQUIRE_SHARED(...) \
  TDP_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability.
#define TDP_RELEASE(...) TDP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TDP_RELEASE_SHARED(...) \
  TDP_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `cond`.
#define TDP_TRY_ACQUIRE(...) \
  TDP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TDP_TRY_ACQUIRE_SHARED(...) \
  TDP_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
/// Function must be called with the capability NOT held (deadlock guard).
#define TDP_EXCLUDES(...) TDP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held; teaches the analysis too.
#define TDP_ASSERT_HELD(...) TDP_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))
#define TDP_ASSERT_HELD_SHARED(...) \
  TDP_THREAD_ANNOTATION(assert_shared_capability(__VA_ARGS__))
/// Function returns a reference to the capability guarding its result.
#define TDP_RETURN_CAPABILITY(x) TDP_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch; every use needs a justification comment.
#define TDP_NO_THREAD_SAFETY_ANALYSIS \
  TDP_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Lock-order detector switch. On in Debug (!NDEBUG), off in Release;
// override per-target with -DTDP_LOCK_ORDER_CHECKS=0/1.
// ---------------------------------------------------------------------------

#ifndef TDP_LOCK_ORDER_CHECKS
#ifdef NDEBUG
#define TDP_LOCK_ORDER_CHECKS 0
#else
#define TDP_LOCK_ORDER_CHECKS 1
#endif
#endif

namespace tdp {

/// Compile-time visibility of the detector state (for tests/diagnostics).
inline constexpr bool kLockOrderChecksEnabled = TDP_LOCK_ORDER_CHECKS != 0;

#if TDP_LOCK_ORDER_CHECKS

namespace sync_internal {

/// Global acquired-after graph + per-thread held-lock stacks.
///
/// Edge A→B means "B was acquired while A was held". Before an acquisition
/// of B with A held we check whether A is reachable *from* B through the
/// existing edges; if so, some other code path acquires in the opposite
/// order and the program can deadlock — abort now, deterministically, with
/// both lock names, rather than hanging on an unlucky schedule.
class LockOrderGraph {
 public:
  using ViolationHandler = void (*)(const std::string& message);

  static LockOrderGraph& instance() {
    static LockOrderGraph g;
    return g;
  }

  /// Called BEFORE blocking on `lock`. Records edges held→lock, checks for
  /// cycles and reentrant acquisition, and invokes the violation handler
  /// (default: print + abort) on a violation.
  void check_acquire(const void* lock, const char* name, bool shared) {
    std::vector<Held>& held = held_stack();
    for (const Held& h : held) {
      if (h.lock == lock) {
        report(std::string("lock-order violation: reentrant acquisition of ") +
               (shared ? "shared " : "") + "lock \"" + name +
               "\" already held by this thread (" + describe_stack(held) + ")");
        return;
      }
    }
    if (held.empty()) return;
    std::lock_guard<std::mutex> g(mu_);
    names_[lock] = name;
    for (const Held& h : held) {
      names_[h.lock] = h.name;
      if (edges_[h.lock].insert(lock).second) {
        // New edge h→lock. A cycle exists iff h is reachable from lock.
        std::vector<const void*> path;
        seen_.clear();
        seen_.insert(lock);
        if (reachable(lock, h.lock, path)) {
          std::string msg =
              std::string("lock-order violation: acquiring \"") + name +
              "\" while holding \"" + h.name +
              "\" inverts the established order (this thread holds: " +
              describe_stack(held) + "; prior order: ";
          for (std::size_t i = 0; i < path.size(); ++i) {
            if (i) msg += " -> ";
            msg += '"';
            msg += name_of(path[i]);
            msg += '"';
          }
          msg += " -> \"";
          msg += h.name;
          msg += "\")";
          report(std::move(msg));
          return;
        }
      }
    }
  }

  /// Called AFTER `lock` is actually held.
  void on_acquired(const void* lock, const char* name, bool shared) {
    held_stack().push_back(Held{lock, name, shared});
  }

  /// Called before releasing `lock` (any position in the stack).
  void on_release(const void* lock) {
    std::vector<Held>& held = held_stack();
    for (auto it = held.rbegin(); it != held.rend(); ++it) {
      if (it->lock == lock) {
        held.erase(std::next(it).base());
        return;
      }
    }
  }

  /// True when this thread holds `lock` (exclusively when `exclusive`).
  bool held_by_this_thread(const void* lock, bool require_exclusive) const {
    for (const Held& h : held_stack()) {
      if (h.lock == lock) return !require_exclusive || !h.shared;
    }
    return false;
  }

  /// A destroyed lock must leave no dangling edges that alias a future
  /// allocation at the same address.
  void forget(const void* lock) {
    std::lock_guard<std::mutex> g(mu_);
    edges_.erase(lock);
    for (auto& [from, to] : edges_) to.erase(lock);
    names_.erase(lock);
  }

  /// Tests: replace print+abort with a recording handler. Returns previous.
  ViolationHandler set_violation_handler(ViolationHandler h) {
    std::lock_guard<std::mutex> g(report_mu_);
    ViolationHandler old = handler_;
    handler_ = h;
    return old;
  }

  /// Tests: drop all recorded edges (fresh graph between test cases).
  void reset() {
    std::lock_guard<std::mutex> g(mu_);
    edges_.clear();
    names_.clear();
  }

 private:
  struct Held {
    const void* lock;
    const char* name;
    bool shared;
  };

  static std::vector<Held>& held_stack() {
    thread_local std::vector<Held> stack;
    return stack;
  }

  // mu_ held by callers of reachable/name_of.
  bool reachable(const void* from, const void* to, std::vector<const void*>& path) {
    if (from == to) return true;
    path.push_back(from);
    auto it = edges_.find(from);
    if (it != edges_.end()) {
      for (const void* next : it->second) {
        if (seen_.insert(next).second && reachable(next, to, path)) return true;
      }
    }
    path.pop_back();
    return false;
  }

  const char* name_of(const void* lock) {
    auto it = names_.find(lock);
    return it == names_.end() ? "<unknown>" : it->second;
  }

  static std::string describe_stack(const std::vector<Held>& held) {
    std::string out;
    for (std::size_t i = 0; i < held.size(); ++i) {
      if (i) out += ", ";
      out += '"';
      out += held[i].name;
      out += '"';
      if (held[i].shared) out += " (shared)";
    }
    return out.empty() ? std::string("<nothing>") : out;
  }

  void report(std::string message) {
    ViolationHandler h;
    {
      std::lock_guard<std::mutex> g(report_mu_);
      h = handler_;
    }
    if (h != nullptr) {
      h(message);
      return;
    }
    std::fprintf(stderr, "tdp::sync FATAL: %s\n", message.c_str());
    std::fflush(stderr);
    std::abort();
  }

  std::mutex mu_;  // guards edges_, names_, seen_ (raw: cannot self-instrument)
  std::mutex report_mu_;  // guards handler_; separate so report() fired while
                          // mu_ is held never re-enters mu_
  std::unordered_map<const void*, std::unordered_set<const void*>> edges_;
  std::unordered_map<const void*, const char*> names_;
  std::unordered_set<const void*> seen_;  // per-query visited set (under mu_)

  ViolationHandler handler_ = nullptr;
};

}  // namespace sync_internal

#endif  // TDP_LOCK_ORDER_CHECKS

// ---------------------------------------------------------------------------
// Mutex / SharedMutex
// ---------------------------------------------------------------------------

/// std::mutex wrapper carrying the `capability` attribute and (Debug) the
/// lock-order detector hooks. Construct with a stable name so detector
/// aborts read like a report, not a pointer dump.
class TDP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
#if TDP_LOCK_ORDER_CHECKS
  explicit Mutex(const char* name) : name_(name) {}
  ~Mutex() { sync_internal::LockOrderGraph::instance().forget(this); }
#else
  explicit Mutex(const char*) {}
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TDP_ACQUIRE() {
#if TDP_LOCK_ORDER_CHECKS
    sync_internal::LockOrderGraph::instance().check_acquire(this, name_, false);
#endif
    m_.lock();
#if TDP_LOCK_ORDER_CHECKS
    sync_internal::LockOrderGraph::instance().on_acquired(this, name_, false);
#endif
  }

  bool try_lock() TDP_TRY_ACQUIRE(true) {
    // Non-blocking: cannot deadlock, so no order edge is recorded.
    bool ok = m_.try_lock();
#if TDP_LOCK_ORDER_CHECKS
    if (ok) sync_internal::LockOrderGraph::instance().on_acquired(this, name_, false);
#endif
    return ok;
  }

  void unlock() TDP_RELEASE() {
#if TDP_LOCK_ORDER_CHECKS
    sync_internal::LockOrderGraph::instance().on_release(this);
#endif
    m_.unlock();
  }

  /// Debug: dies unless this thread holds the mutex. Teaches the static
  /// analysis the capability is held on paths it cannot see (callbacks).
  void assert_held() const TDP_ASSERT_HELD() {
#if TDP_LOCK_ORDER_CHECKS
    if (!sync_internal::LockOrderGraph::instance().held_by_this_thread(this, true)) {
      std::fprintf(stderr, "tdp::sync FATAL: \"%s\" expected held by this thread\n",
                   name_);
      std::abort();
    }
#endif
  }

  /// Debug: dies if this thread holds the mutex — the "callbacks fire
  /// outside locks" invariant, asserted instead of commented.
  void assert_not_held() const {
#if TDP_LOCK_ORDER_CHECKS
    if (sync_internal::LockOrderGraph::instance().held_by_this_thread(this, false)) {
      std::fprintf(stderr,
                   "tdp::sync FATAL: \"%s\" held by this thread but must not be\n",
                   name_);
      std::abort();
    }
#endif
  }

 private:
  std::mutex m_;
#if TDP_LOCK_ORDER_CHECKS
  const char* name_ = "tdp::Mutex";
#endif
};

/// std::shared_mutex wrapper; same discipline, plus Debug rejection of
/// reentrant read-locks (std::shared_mutex makes them UB-adjacent: a
/// pending writer between the two read acquisitions deadlocks the thread).
class TDP_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
#if TDP_LOCK_ORDER_CHECKS
  explicit SharedMutex(const char* name) : name_(name) {}
  ~SharedMutex() { sync_internal::LockOrderGraph::instance().forget(this); }
#else
  explicit SharedMutex(const char*) {}
#endif

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() TDP_ACQUIRE() {
#if TDP_LOCK_ORDER_CHECKS
    sync_internal::LockOrderGraph::instance().check_acquire(this, name_, false);
#endif
    m_.lock();
#if TDP_LOCK_ORDER_CHECKS
    sync_internal::LockOrderGraph::instance().on_acquired(this, name_, false);
#endif
  }

  bool try_lock() TDP_TRY_ACQUIRE(true) {
    bool ok = m_.try_lock();
#if TDP_LOCK_ORDER_CHECKS
    if (ok) sync_internal::LockOrderGraph::instance().on_acquired(this, name_, false);
#endif
    return ok;
  }

  void unlock() TDP_RELEASE() {
#if TDP_LOCK_ORDER_CHECKS
    sync_internal::LockOrderGraph::instance().on_release(this);
#endif
    m_.unlock();
  }

  void lock_shared() TDP_ACQUIRE_SHARED() {
#if TDP_LOCK_ORDER_CHECKS
    sync_internal::LockOrderGraph::instance().check_acquire(this, name_, true);
#endif
    m_.lock_shared();
#if TDP_LOCK_ORDER_CHECKS
    sync_internal::LockOrderGraph::instance().on_acquired(this, name_, true);
#endif
  }

  bool try_lock_shared() TDP_TRY_ACQUIRE_SHARED(true) {
    bool ok = m_.try_lock_shared();
#if TDP_LOCK_ORDER_CHECKS
    if (ok) sync_internal::LockOrderGraph::instance().on_acquired(this, name_, true);
#endif
    return ok;
  }

  void unlock_shared() TDP_RELEASE_SHARED() {
#if TDP_LOCK_ORDER_CHECKS
    sync_internal::LockOrderGraph::instance().on_release(this);
#endif
    m_.unlock_shared();
  }

  void assert_held() const TDP_ASSERT_HELD() {
#if TDP_LOCK_ORDER_CHECKS
    if (!sync_internal::LockOrderGraph::instance().held_by_this_thread(this, true)) {
      std::fprintf(stderr, "tdp::sync FATAL: \"%s\" expected held (exclusive)\n",
                   name_);
      std::abort();
    }
#endif
  }

  void assert_held_shared() const TDP_ASSERT_HELD_SHARED() {
#if TDP_LOCK_ORDER_CHECKS
    if (!sync_internal::LockOrderGraph::instance().held_by_this_thread(this, false)) {
      std::fprintf(stderr, "tdp::sync FATAL: \"%s\" expected held (any mode)\n",
                   name_);
      std::abort();
    }
#endif
  }

  void assert_not_held() const {
#if TDP_LOCK_ORDER_CHECKS
    if (sync_internal::LockOrderGraph::instance().held_by_this_thread(this, false)) {
      std::fprintf(stderr,
                   "tdp::sync FATAL: \"%s\" held by this thread but must not be\n",
                   name_);
      std::abort();
    }
#endif
  }

 private:
  std::shared_mutex m_;
#if TDP_LOCK_ORDER_CHECKS
  const char* name_ = "tdp::SharedMutex";
#endif
};

// ---------------------------------------------------------------------------
// RAII guards
// ---------------------------------------------------------------------------

/// Exclusive RAII guard over tdp::Mutex or tdp::SharedMutex.
template <class M>
class TDP_SCOPED_CAPABILITY BasicLockGuard {
 public:
  explicit BasicLockGuard(M& m) TDP_ACQUIRE(m) : mu_(&m) { mu_->lock(); }
  BasicLockGuard(M& m, std::defer_lock_t) TDP_EXCLUDES(m) : mu_(&m), owned_(false) {}

  BasicLockGuard(const BasicLockGuard&) = delete;
  BasicLockGuard& operator=(const BasicLockGuard&) = delete;

  ~BasicLockGuard() TDP_RELEASE() {
    if (owned_) mu_->unlock();
  }

  void lock() TDP_ACQUIRE() {
    mu_->lock();
    owned_ = true;
  }

  void unlock() TDP_RELEASE() {
    mu_->unlock();
    owned_ = false;
  }

  [[nodiscard]] bool owns_lock() const { return owned_; }

 private:
  template <class CV>
  friend class BasicCondVar;
  M* mu_;
  bool owned_ = true;
};

using LockGuard = BasicLockGuard<Mutex>;
using UniqueLock = BasicLockGuard<Mutex>;  // relock-capable alias, same type
using WriteLock = BasicLockGuard<SharedMutex>;

/// Shared (reader) RAII guard over tdp::SharedMutex.
class TDP_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& m) TDP_ACQUIRE_SHARED(m) : mu_(&m) {
    mu_->lock_shared();
  }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

  ~SharedLock() TDP_RELEASE() {
    if (owned_) mu_->unlock_shared();
  }

  void unlock() TDP_RELEASE() {
    mu_->unlock_shared();
    owned_ = false;
  }

 private:
  SharedMutex* mu_;
  bool owned_ = true;
};

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

/// Condition variable paired with tdp::Mutex via LockGuard. Implemented on
/// condition_variable_any so the wait path re-enters Mutex::lock and keeps
/// the lock-order detector's held-set exact across the sleep.
template <class CV>
class BasicCondVar {
 public:
  BasicCondVar() = default;
  BasicCondVar(const BasicCondVar&) = delete;
  BasicCondVar& operator=(const BasicCondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(LockGuard& g) { cv_.wait(*g.mu_); }

  template <class Pred>
  void wait(LockGuard& g, Pred pred) {
    cv_.wait(*g.mu_, std::move(pred));
  }

  template <class Rep, class Period>
  std::cv_status wait_for(LockGuard& g, const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(*g.mu_, d);
  }

  template <class Rep, class Period, class Pred>
  bool wait_for(LockGuard& g, const std::chrono::duration<Rep, Period>& d,
                Pred pred) {
    return cv_.wait_for(*g.mu_, d, std::move(pred));
  }

  template <class Clock, class Duration, class Pred>
  bool wait_until(LockGuard& g,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Pred pred) {
    return cv_.wait_until(*g.mu_, deadline, std::move(pred));
  }

 private:
  CV cv_;
};

using CondVar = BasicCondVar<std::condition_variable_any>;

}  // namespace tdp
