// rng.hpp - small deterministic PRNG (xoshiro256**) used by the virtual
// cluster, workload generators and benches. Determinism matters: every
// figure-reproduction bench must produce the same event sequence on every
// run so paper-vs-measured comparisons are stable.
#pragma once

#include <cstdint>

namespace tdp {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into four non-zero words.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Exponentially distributed value with the given mean (> 0); used for
  /// job inter-arrival times in the Figure-4 pipeline bench.
  double next_exponential(double mean);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace tdp
