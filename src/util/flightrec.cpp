#include "util/flightrec.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/blockio.hpp"
#include "util/journal.hpp"
#include "util/telemetry.hpp"

namespace tdp::flightrec {

namespace {

/// Record types inside a capsule block payload (one journal-style line
/// per record, newline-joined).
constexpr const char* kMetaType = "capsule";
constexpr const char* kEventType = "event";
constexpr const char* kCapsuleVersion = "1";

Result<std::uint64_t> parse_u64(const std::string& text) {
  if (text.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "empty integer field");
  }
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return make_error(ErrorCode::kInvalidArgument,
                        "bad integer field: " + text);
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

Result<Micros> parse_micros(const std::string& text) {
  std::string body = text;
  bool negative = false;
  if (!body.empty() && body.front() == '-') {
    negative = true;
    body.erase(body.begin());
  }
  auto magnitude = parse_u64(body);
  if (!magnitude.is_ok()) return magnitude.status();
  auto value = static_cast<Micros>(*magnitude);
  return negative ? -value : value;
}

std::string u64s(std::uint64_t v) { return std::to_string(v); }

}  // namespace

std::string control_attr(std::string_view role, std::string_view host) {
  std::string attr{kControlPrefix};
  attr += role;
  attr += '.';
  attr += host;
  return attr;
}

const char* kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kLog: return "log";
    case EventKind::kSpan: return "span";
    case EventKind::kState: return "state";
    case EventKind::kFault: return "fault";
    case EventKind::kLease: return "lease";
    case EventKind::kReplay: return "replay";
    case EventKind::kControl: return "control";
  }
  return "?";
}

Result<EventKind> parse_kind(std::string_view name) {
  for (auto kind : {EventKind::kLog, EventKind::kSpan, EventKind::kState,
                    EventKind::kFault, EventKind::kLease, EventKind::kReplay,
                    EventKind::kControl}) {
    if (name == kind_name(kind)) return kind;
  }
  return make_error(ErrorCode::kInvalidArgument,
                    "unknown event kind: " + std::string(name));
}

Recorder::Recorder(Config config) : config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.capacity < config_.shards) config_.capacity = config_.shards;
  if (config_.clock == nullptr) config_.clock = &RealClock::instance();
  per_shard_ = config_.capacity / config_.shards;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    {
      LockGuard lock(shard->mutex);
      shard->ring.resize(per_shard_);
    }
    shards_.push_back(std::move(shard));
  }
}

Micros Recorder::now() const noexcept { return config_.clock->now_micros(); }

void Recorder::record(EventKind kind, std::string what, std::string detail,
                      std::uint64_t trace_id, std::uint64_t span_id,
                      std::uint8_t severity) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Event ev;
  ev.kind = kind;
  ev.severity = severity;
  ev.at_micros = now();
  ev.trace_id = trace_id;
  ev.span_id = span_id;
  ev.what = std::move(what);
  ev.detail = std::move(detail);
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  ev.seq = seq;
  Shard& shard = *shards_[seq % shards_.size()];
  LockGuard lock(shard.mutex);
  shard.ring[(seq / shards_.size()) % per_shard_] = std::move(ev);
  ++shard.written;
}

void Recorder::log_event(log::Level level, std::string_view component,
                         std::string_view message) {
  if (level < config_.log_threshold) return;
  record(EventKind::kLog, std::string(component), std::string(message),
         /*trace_id=*/0, /*span_id=*/0,
         static_cast<std::uint8_t>(static_cast<int>(level)));
}

void Recorder::state(std::string_view transition, std::string_view detail,
                     std::uint64_t trace_id, std::uint64_t span_id) {
  record(EventKind::kState, std::string(transition), std::string(detail),
         trace_id, span_id);
}

void Recorder::fault(std::string_view kind, std::string_view detail) {
  record(EventKind::kFault, std::string(kind), std::string(detail));
}

void Recorder::lease(std::string_view what, std::string_view detail) {
  record(EventKind::kLease, std::string(what), std::string(detail));
}

void Recorder::span(const telemetry::SpanRecord& rec) {
  std::string detail = "dur_us=" + std::to_string(rec.end_us - rec.start_us);
  if (rec.parent_id != 0) {
    detail += " parent=" + std::to_string(rec.parent_id);
  }
  record(EventKind::kSpan, rec.name, std::move(detail), rec.trace_id,
         rec.span_id);
}

void Recorder::replay(std::string_view source,
                      const journal::ReplayStats& stats) {
  std::ostringstream oss;
  oss << "records=" << stats.records << " blocks=" << stats.blocks
      << " resyncs=" << stats.resyncs << " bytes_skipped=" << stats.bytes_skipped
      << " torn_tail=" << (stats.torn_tail ? 1 : 0);
  record(EventKind::kReplay, std::string(source), oss.str());
}

std::uint64_t Recorder::overwritten() const noexcept {
  std::uint64_t lost = 0;
  for (const auto& shard : shards_) {
    LockGuard lock(shard->mutex);
    if (shard->written > shard->ring.size()) {
      lost += shard->written - shard->ring.size();
    }
  }
  return lost;
}

std::vector<Event> Recorder::snapshot() const {
  std::vector<Event> events;
  events.reserve(config_.capacity);
  for (const auto& shard : shards_) {
    LockGuard lock(shard->mutex);
    const std::size_t live = std::min<std::size_t>(
        static_cast<std::size_t>(shard->written), shard->ring.size());
    for (std::size_t i = 0; i < live; ++i) {
      events.push_back(shard->ring[i]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return events;
}

std::string Recorder::encode_capsule(std::string_view reason) const {
  // Snapshot under the shard locks (one at a time); everything below is
  // lock-free serialization.
  const std::vector<Event> events = snapshot();
  const std::uint64_t total = recorded();
  const std::uint64_t lost = overwritten();

  journal::Record meta;
  meta.type = kMetaType;
  meta.fields = {kCapsuleVersion,
                 config_.role,
                 config_.host,
                 std::string(reason),
                 std::to_string(now()),
                 u64s(total),
                 u64s(lost),
                 u64s(events.size())};

  std::string out = blockio::encode_block(journal::encode_record(meta));

  for (std::size_t base = 0; base < events.size();
       base += kEventsPerBlock) {
    std::string payload;
    const std::size_t end = std::min(events.size(), base + kEventsPerBlock);
    for (std::size_t i = base; i < end; ++i) {
      const Event& ev = events[i];
      journal::Record rec;
      rec.type = kEventType;
      rec.fields = {kind_name(ev.kind), u64s(ev.severity), u64s(ev.seq),
                    std::to_string(ev.at_micros), u64s(ev.trace_id),
                    u64s(ev.span_id), ev.what, ev.detail};
      if (!payload.empty()) payload += '\n';
      payload += journal::encode_record(rec);
    }
    out += blockio::encode_block(payload);
  }
  return out;
}

Status Recorder::dump(const std::string& path, std::string_view reason) {
  record(EventKind::kControl, "dump",
         std::string(reason) + " path=" + path);
  // Serialize (takes and releases shard locks), then write with no lock
  // held — capsule I/O must never happen under a ring lock.
  const std::string bytes = encode_capsule(reason);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return make_error(ErrorCode::kInternal, "cannot open capsule " + path);
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return make_error(ErrorCode::kInternal, "short capsule write " + path);
  }
  return Status::ok();
}

Result<Capsule> decode_capsule(std::string_view bytes,
                               blockio::ScanStats* stats) {
  blockio::BlockReader reader(bytes);
  Capsule capsule;
  bool saw_meta = false;
  while (true) {
    auto block = reader.next();
    if (!block.is_ok()) {
      if (block.status().code() == ErrorCode::kNotFound) break;
      return block.status();
    }
    std::istringstream lines(block->payload);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      auto rec = journal::decode_record(line);
      if (!rec.is_ok()) return rec.status();
      if (rec->type == kMetaType) {
        if (rec->fields.size() < 8 || rec->fields[0] != kCapsuleVersion) {
          return make_error(ErrorCode::kInvalidArgument,
                            "bad capsule meta record");
        }
        capsule.role = rec->fields[1];
        capsule.host = rec->fields[2];
        capsule.reason = rec->fields[3];
        auto at = parse_micros(rec->fields[4]);
        auto total = parse_u64(rec->fields[5]);
        auto lost = parse_u64(rec->fields[6]);
        if (!at.is_ok()) return at.status();
        if (!total.is_ok()) return total.status();
        if (!lost.is_ok()) return lost.status();
        capsule.dumped_at = *at;
        capsule.recorded = *total;
        capsule.overwritten = *lost;
        saw_meta = true;
        continue;
      }
      if (rec->type != kEventType) {
        return make_error(ErrorCode::kInvalidArgument,
                          "unknown capsule record type: " + rec->type);
      }
      if (!saw_meta) {
        return make_error(ErrorCode::kInvalidArgument,
                          "capsule events before meta block");
      }
      if (rec->fields.size() < 8) {
        return make_error(ErrorCode::kInvalidArgument,
                          "short capsule event record");
      }
      Event ev;
      auto kind = parse_kind(rec->fields[0]);
      auto severity = parse_u64(rec->fields[1]);
      auto seq = parse_u64(rec->fields[2]);
      auto at = parse_micros(rec->fields[3]);
      auto trace = parse_u64(rec->fields[4]);
      auto span = parse_u64(rec->fields[5]);
      if (!kind.is_ok()) return kind.status();
      if (!severity.is_ok()) return severity.status();
      if (!seq.is_ok()) return seq.status();
      if (!at.is_ok()) return at.status();
      if (!trace.is_ok()) return trace.status();
      if (!span.is_ok()) return span.status();
      ev.kind = *kind;
      ev.severity = static_cast<std::uint8_t>(*severity);
      ev.seq = *seq;
      ev.at_micros = *at;
      ev.trace_id = *trace;
      ev.span_id = *span;
      ev.what = rec->fields[6];
      ev.detail = rec->fields[7];
      capsule.events.push_back(std::move(ev));
    }
  }
  if (stats != nullptr) *stats = reader.stats();
  if (!saw_meta) {
    return make_error(ErrorCode::kInvalidArgument,
                      "not a capsule: no meta block");
  }
  return capsule;
}

Result<Capsule> read_capsule(const std::string& path,
                             blockio::ScanStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(ErrorCode::kNotFound, "no capsule at " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  return decode_capsule(bytes, stats);
}

std::vector<TimelineEvent> merge_timeline(
    const std::vector<Capsule>& capsules) {
  std::vector<TimelineEvent> timeline;
  for (const auto& capsule : capsules) {
    for (const auto& ev : capsule.events) {
      timeline.push_back(TimelineEvent{capsule.role, capsule.host, ev});
    }
  }
  std::sort(timeline.begin(), timeline.end(),
            [](const TimelineEvent& a, const TimelineEvent& b) {
              if (a.event.at_micros != b.event.at_micros) {
                return a.event.at_micros < b.event.at_micros;
              }
              if (a.role != b.role) return a.role < b.role;
              if (a.host != b.host) return a.host < b.host;
              return a.event.seq < b.event.seq;
            });
  return timeline;
}

// ---------------------------------------------------------------------------
// Log tap: one log::Observer fanning lines out to registered recorders.
// ---------------------------------------------------------------------------

namespace {

tdp::Mutex& tap_mutex() {
  static tdp::Mutex m{"flightrec::tap_mutex"};
  return m;
}

std::vector<std::weak_ptr<Recorder>>& tap_list() {
  static std::vector<std::weak_ptr<Recorder>> recorders;
  return recorders;
}

void tap_dispatch(log::Level level, std::string_view component,
                  std::string_view message) {
  // Copy the live targets under the tap lock, record outside it: the
  // recorder's shard mutex must stay a leaf with no edge from tap_mutex.
  std::vector<std::shared_ptr<Recorder>> targets;
  {
    LockGuard lock(tap_mutex());
    auto& list = tap_list();
    for (auto it = list.begin(); it != list.end();) {
      if (auto strong = it->lock()) {
        targets.push_back(std::move(strong));
        ++it;
      } else {
        it = list.erase(it);
      }
    }
  }
  for (auto& recorder : targets) {
    recorder->log_event(level, component, message);
  }
}

}  // namespace

void register_log_recorder(const std::shared_ptr<Recorder>& recorder) {
  bool install = false;
  {
    LockGuard lock(tap_mutex());
    auto& list = tap_list();
    install = list.empty();
    list.push_back(recorder);
  }
  if (install) log::set_observer(&tap_dispatch);
}

void unregister_log_recorder(const Recorder* recorder) {
  bool uninstall = false;
  {
    LockGuard lock(tap_mutex());
    auto& list = tap_list();
    for (auto it = list.begin(); it != list.end();) {
      auto strong = it->lock();
      if (!strong || strong.get() == recorder) {
        it = list.erase(it);
      } else {
        ++it;
      }
    }
    uninstall = list.empty();
  }
  if (uninstall) log::set_observer(nullptr);
}

}  // namespace tdp::flightrec
