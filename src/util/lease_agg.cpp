#include "util/lease_agg.hpp"

#include <cstdio>
#include <utility>

namespace tdp::lease {

std::string format_summary(const Summary& summary) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "%llu %lld a=%d d=%d e=%d t=%d",
                static_cast<unsigned long long>(summary.seq),
                static_cast<long long>(summary.at_micros), summary.alive,
                summary.degraded, summary.expired, summary.total);
  return buffer;
}

Result<Summary> parse_summary(const std::string& value) {
  Summary summary;
  unsigned long long seq = 0;
  long long at = 0;
  const int matched =
      std::sscanf(value.c_str(), "%llu %lld a=%d d=%d e=%d t=%d", &seq, &at,
                  &summary.alive, &summary.degraded, &summary.expired,
                  &summary.total);
  if (matched != 6) {
    return make_error(ErrorCode::kInvalidArgument,
                      "malformed summary beat: " + value);
  }
  summary.seq = seq;
  summary.at_micros = at;
  if (summary.alive < 0 || summary.degraded < 0 || summary.expired < 0 ||
      summary.alive + summary.degraded + summary.expired != summary.total) {
    return make_error(ErrorCode::kInvalidArgument,
                      "inconsistent summary counts: " + value);
  }
  return summary;
}

LeaseAggregator::LeaseAggregator(std::string attribute, Config config,
                                 const Clock* clock, PutFn put)
    : monitor_(config, clock),
      attribute_(std::move(attribute)),
      config_(config),
      clock_(clock),
      put_(std::move(put)) {}

void LeaseAggregator::on_child_transition(
    LeaseMonitor::TransitionCallback callback) {
  monitor_.on_transition(std::move(callback));
}

void LeaseAggregator::observe_child(const std::string& name) {
  monitor_.observe(name);
}

void LeaseAggregator::observe_child_at(const std::string& name,
                                       Micros at_micros) {
  monitor_.observe_at(name, at_micros);
}

Micros LeaseAggregator::child_last_beat(const std::string& name) const {
  return monitor_.last_beat(name);
}

void LeaseAggregator::remove_child(const std::string& name) {
  monitor_.forget(name);
}

bool LeaseAggregator::tracks(const std::string& name) const {
  return monitor_.tracked(name);
}

std::size_t LeaseAggregator::child_count() const {
  return monitor_.tracked_count();
}

Health LeaseAggregator::child_health(const std::string& name) const {
  return monitor_.health(name);
}

int LeaseAggregator::poll() {
  // Child transitions first (callbacks fire inside, outside all locks)...
  const int transitions = monitor_.poll();
  // ...then decide whether the summary is due upward. Publishing on shape
  // change (not only on the pacing interval) bounds root detection latency
  // to child-TTL + one poll per level, not + beat_interval per level.
  const LeaseMonitor::Counts counts = monitor_.counts();
  bool due = false;
  {
    LockGuard lock(mutex_);
    const Micros now = clock_->now_micros();
    due = last_publish_micros_ < 0 ||
          now - last_publish_micros_ >= config_.beat_interval_micros ||
          counts.alive != last_published_.alive ||
          counts.degraded != last_published_.degraded ||
          counts.expired != last_published_.expired ||
          counts.total() != last_published_.total;
  }
  if (due) (void)publish_locked_counts(counts);
  return transitions;
}

Status LeaseAggregator::publish_now() {
  return publish_locked_counts(monitor_.counts());
}

Status LeaseAggregator::publish_locked_counts(LeaseMonitor::Counts counts) {
  std::string value;
  {
    LockGuard lock(mutex_);
    const Micros now = clock_->now_micros();
    Summary summary;
    summary.seq = ++sequence_;
    summary.at_micros = now;
    summary.alive = counts.alive;
    summary.degraded = counts.degraded;
    summary.expired = counts.expired;
    summary.total = counts.total();
    last_publish_micros_ = now;
    last_published_ = summary;
    value = format_summary(summary);
  }
  // The put may cross the network (or recurse into a parent aggregator's
  // own leaf lock); never hold our lock across it.
  return put_(attribute_, value);
}

Summary LeaseAggregator::summary() const {
  const LeaseMonitor::Counts counts = monitor_.counts();
  Summary summary;
  {
    LockGuard lock(mutex_);
    summary.seq = sequence_;
    summary.at_micros = last_publish_micros_;
  }
  summary.alive = counts.alive;
  summary.degraded = counts.degraded;
  summary.expired = counts.expired;
  summary.total = counts.total();
  return summary;
}

std::uint64_t LeaseAggregator::publishes() const {
  LockGuard lock(mutex_);
  return sequence_;
}

}  // namespace tdp::lease
