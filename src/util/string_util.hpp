// string_util.hpp - string helpers shared by all TDP subsystems.
//
// Includes the argument-string machinery the paper relies on: attribute
// values are null-terminated strings that may encode multiple values
// ("-p1500 -P2000", Section 3.2) and submit-file ToolDaemonArgs may embed
// placeholders such as "%pid" that the starter substitutes before putting
// them in the LASS (Section 4.3 / Figure 5B).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace tdp::str {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view input, char sep);

/// Splits on any run of unquoted whitespace, honoring single and double
/// quotes ("a 'b c' d" -> {a, "b c", d}). This is the tokenizer used to
/// turn a ToolDaemonArgs attribute value into an argv vector.
std::vector<std::string> split_args(std::string_view input);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading and trailing whitespace.
std::string trim(std::string_view input);

/// ASCII lowercase copy.
std::string to_lower(std::string_view input);

bool starts_with(std::string_view text, std::string_view prefix) noexcept;
bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// True when `text` parses fully as a (signed) decimal integer.
bool is_integer(std::string_view text) noexcept;

/// Expands %-placeholders: every "%name" occurrence whose `name` (a maximal
/// run of [A-Za-z_0-9]) is present in `vars` is replaced by its value;
/// "%%" produces a literal '%'; unknown placeholders are left untouched so
/// that tool-specific syntax passes through. This implements the paper's
/// "-a%pid" notation.
std::string expand_placeholders(std::string_view input,
                                const std::map<std::string, std::string>& vars);

/// Formats "host:port" and parses it back. parse_host_port returns false on
/// malformed input (missing ':', non-numeric port, port out of range).
std::string format_host_port(std::string_view host, int port);
bool parse_host_port(std::string_view text, std::string* host, int* port);

}  // namespace tdp::str
