#include "util/blockio.hpp"

#include <cstring>

namespace tdp::blockio {

namespace {

inline void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline std::uint16_t read_u16(const char* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint8_t>(p[0]) |
                                    (static_cast<std::uint8_t>(p[1]) << 8));
}

inline std::uint32_t read_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  return v;
}

}  // namespace

std::string encode_block(std::string_view payload) {
  compress::Codec codec = compress::Codec::kStore;
  std::string compressed;
  if (payload.size() >= kCompressThreshold) {
    compressed = compress::lz_compress(payload);
    if (compressed.size() < payload.size()) codec = compress::Codec::kLz;
  }
  const std::string_view body =
      codec == compress::Codec::kLz ? std::string_view(compressed) : payload;

  std::string block;
  block.reserve(kHeaderSize + body.size());
  put_u32(block, kSyncMagic);
  block.push_back(static_cast<char>(kBlockVersion));
  block.push_back(static_cast<char>(codec));
  put_u16(block, 0);  // flags, reserved
  put_u32(block, static_cast<std::uint32_t>(payload.size()));
  put_u32(block, static_cast<std::uint32_t>(body.size()));
  put_u32(block, compress::crc32(body));
  block.append(body);
  return block;
}

Result<DecodedBlock> BlockReader::decode_at(std::uint64_t offset) {
  if (offset >= stream_.size()) {
    return make_error(ErrorCode::kNotFound, "end of stream");
  }
  if (stream_.size() - offset < kHeaderSize) {
    // A crash mid-append can tear even the header, so trailing bytes too
    // short to hold one are the torn-tail shape, not a clean end.
    return make_error(ErrorCode::kInvalidState, "torn block header at end of stream");
  }
  const char* p = stream_.data() + offset;
  if (read_u32(p) != kSyncMagic) {
    return make_error(ErrorCode::kInvalidArgument, "bad sync marker");
  }
  const std::uint8_t version = static_cast<std::uint8_t>(p[4]);
  const std::uint8_t codec = static_cast<std::uint8_t>(p[5]);
  const std::uint16_t flags = read_u16(p + 6);
  const std::uint32_t raw_len = read_u32(p + 8);
  const std::uint32_t comp_len = read_u32(p + 12);
  const std::uint32_t crc = read_u32(p + 16);
  if (version != kBlockVersion || flags != 0 ||
      codec > static_cast<std::uint8_t>(compress::Codec::kLz) ||
      raw_len > compress::kMaxBlockRawSize || comp_len > compress::kMaxBlockRawSize ||
      (codec == static_cast<std::uint8_t>(compress::Codec::kStore) &&
       comp_len != raw_len)) {
    return make_error(ErrorCode::kInvalidArgument, "bad block header");
  }
  if (stream_.size() - offset - kHeaderSize < comp_len) {
    // Header is plausible but the payload runs past the end: this is the
    // torn-tail shape. Distinguished from header corruption so next()
    // stops instead of resyncing into the void.
    return make_error(ErrorCode::kInvalidState, "torn block at end of stream");
  }
  const std::string_view body(stream_.data() + offset + kHeaderSize, comp_len);
  if (compress::crc32(body) != crc) {
    return make_error(ErrorCode::kInvalidArgument, "block crc mismatch");
  }
  DecodedBlock block;
  block.offset = offset;
  block.next_offset = offset + kHeaderSize + comp_len;
  if (codec == static_cast<std::uint8_t>(compress::Codec::kLz)) {
    auto decompressed = compress::lz_decompress(body, raw_len);
    if (!decompressed.is_ok()) return decompressed.status();
    block.payload = std::move(decompressed).value();
  } else {
    block.payload.assign(body.data(), body.size());
  }
  return block;
}

Result<DecodedBlock> BlockReader::next() {
  std::uint64_t offset = pos_;
  bool resynced = false;
  const std::uint64_t scan_start = pos_;
  while (true) {
    auto block = decode_at(offset);
    if (block.is_ok()) {
      if (resynced) {
        ++stats_.resyncs;
        stats_.bytes_skipped += block->offset - scan_start;
      }
      ++stats_.blocks;
      pos_ = block->next_offset;
      return block;
    }
    if (block.status().code() == ErrorCode::kNotFound) {
      pos_ = stream_.size();
      return block.status();  // clean end of stream
    }
    if (block.status().code() == ErrorCode::kInvalidState) {
      // Torn tail: a partially appended block. Nothing after it can be
      // trusted to exist, so the scan ends here.
      stats_.torn_tail = true;
      pos_ = stream_.size();
      return make_error(ErrorCode::kNotFound, "torn trailing block dropped");
    }
    // Corrupt block (or a payload byte run that happened to look like a
    // marker): scan forward for the next candidate marker and try again.
    resynced = true;
    std::uint64_t scan = offset + 1;
    while (scan + 4 <= stream_.size() &&
           read_u32(stream_.data() + scan) != kSyncMagic) {
      ++scan;
    }
    if (scan + 4 > stream_.size()) {
      stats_.bytes_skipped += stream_.size() - scan_start;
      ++stats_.resyncs;
      pos_ = stream_.size();
      return make_error(ErrorCode::kNotFound, "no further sync marker");
    }
    offset = scan;
  }
}

}  // namespace tdp::blockio
