#include "util/journal.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/blockio.hpp"

namespace tdp::journal {

namespace {

/// Escapes one field so that '\t' can separate fields and '\n' records.
/// Copies clean runs in one append: the common field has nothing to escape,
/// so this is a reserve + single memcpy instead of a per-character loop.
void escape_into(const std::string& field, std::string& out) {
  out.reserve(out.size() + field.size());
  std::size_t run = 0;
  for (std::size_t i = 0; i < field.size(); ++i) {
    const char c = field[i];
    if (c != '\\' && c != '\t' && c != '\n') continue;
    out.append(field, run, i - run);
    out += '\\';
    out += c == '\\' ? '\\' : (c == '\t' ? 't' : 'n');
    run = i + 1;
  }
  out.append(field, run, field.size() - run);
}

/// Inverse of escape_into, splitting on unescaped tabs. Same run-copy
/// shape: between escapes and separators, bytes move in bulk.
Result<std::vector<std::string>> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  fields.reserve(
      static_cast<std::size_t>(std::count(line.begin(), line.end(), '\t')) + 1);
  fields.emplace_back();
  std::size_t run = 0;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\t') {
      fields.back().append(line, run, i - run);
      fields.emplace_back();
      run = i + 1;
    } else if (c == '\\') {
      fields.back().append(line, run, i - run);
      if (i + 1 >= line.size()) {
        return Status(ErrorCode::kInvalidArgument, "dangling escape");
      }
      const char next = line[++i];
      if (next == '\\') {
        fields.back() += '\\';
      } else if (next == 't') {
        fields.back() += '\t';
      } else if (next == 'n') {
        fields.back() += '\n';
      } else {
        return Status(ErrorCode::kInvalidArgument, "bad escape");
      }
      run = i + 1;
    }
  }
  fields.back().append(line, run, line.size() - run);
  return fields;
}

/// Splits a decoded block payload into newline-terminated record lines and
/// appends the decoded records. A line the CRC vouched for but that fails
/// to decode is a writer bug, not disk damage: surfaced as an error.
Status decode_payload_lines(const std::string& payload,
                            std::vector<Record>* out, std::size_t* count) {
  std::size_t start = 0;
  while (start < payload.size()) {
    std::size_t end = payload.find('\n', start);
    if (end == std::string::npos) end = payload.size();
    const std::string line = payload.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    auto record = decode_record(line);
    if (!record.is_ok()) return record.status();
    out->push_back(std::move(record.value()));
    ++*count;
  }
  return Status::ok();
}

/// True when the file begins with the block sync marker ("TDPJ" on disk).
/// Pre-PR-6 journals are plain text whose first bytes are a record type,
/// so this distinguishes the formats in practice; an empty or missing file
/// counts as block format (nothing written yet).
bool file_is_block_format(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return true;
  char magic[4] = {};
  in.read(magic, sizeof magic);
  if (in.gcount() == 0) return true;  // empty: new file, block format
  if (in.gcount() < 4) return false;
  const std::uint32_t value =
      static_cast<std::uint32_t>(static_cast<std::uint8_t>(magic[0])) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(magic[1])) << 8) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(magic[2])) << 16) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(magic[3])) << 24);
  return value == blockio::kSyncMagic;
}

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status(ErrorCode::kNotFound, "no such file: " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return contents;
}

/// Replays one pre-PR-6 plain-text stream. `strict` is the snapshot rule:
/// corruption is fatal because snapshots are written atomically. Non-strict
/// (the log) stops at the first bad line and drops the torn trailing one.
Status replay_text_stream(const std::string& contents, bool strict,
                          std::vector<Record>* out, std::size_t* count,
                          ReplayStats* stats) {
  std::size_t start = 0;
  while (start < contents.size()) {
    const std::size_t end = contents.find('\n', start);
    if (end == std::string::npos) {
      if (strict) {
        return Status(ErrorCode::kInvalidArgument, "torn snapshot line");
      }
      stats->torn_tail = true;
      stats->bytes_skipped += contents.size() - start;
      break;  // torn trailing append: drop it
    }
    const std::string line = contents.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    auto record = decode_record(line);
    if (!record.is_ok()) {
      if (strict) return record.status();
      ++stats->resyncs;  // corrupt log line ends the usable tail
      stats->bytes_skipped += contents.size() - (start - line.size() - 1);
      break;
    }
    out->push_back(std::move(record.value()));
    ++*count;
  }
  return Status::ok();
}

/// Replays a block stream starting at `offset`. Snapshot rule (`strict`):
/// any resync or torn tail is fatal. Log rule: corrupt blocks are skipped
/// via sync-marker scan and a torn trailing block is dropped.
Status replay_block_stream(const std::string& contents, std::uint64_t offset,
                           bool strict, std::vector<Record>* out,
                           std::size_t* count, ReplayStats* stats) {
  blockio::BlockReader reader(contents, offset);
  while (true) {
    auto block = reader.next();
    if (!block.is_ok()) {
      if (block.status().code() == ErrorCode::kNotFound) break;  // end
      return block.status();
    }
    TDP_RETURN_IF_ERROR(decode_payload_lines(block->payload, out, count));
  }
  const blockio::ScanStats scan = reader.stats();
  stats->blocks += scan.blocks;
  stats->resyncs += scan.resyncs;
  stats->bytes_skipped += scan.bytes_skipped;
  stats->torn_tail = stats->torn_tail || scan.torn_tail;
  if (strict && (scan.resyncs != 0 || scan.torn_tail)) {
    return Status(ErrorCode::kInvalidArgument,
                  "snapshot block stream corrupt (snapshots are written "
                  "atomically; damage means real trouble)");
  }
  return Status::ok();
}

}  // namespace

std::string encode_record(const Record& record) {
  std::string line;
  escape_into(record.type, line);
  for (const std::string& field : record.fields) {
    line += '\t';
    escape_into(field, line);
  }
  return line;
}

Result<Record> decode_record(const std::string& line) {
  auto fields = split_fields(line);
  if (!fields.is_ok()) return fields.status();
  if (fields->empty() || fields->front().empty()) {
    return Status(ErrorCode::kInvalidArgument, "record without a type");
  }
  Record record;
  record.type = fields->front();
  record.fields.assign(fields->begin() + 1, fields->end());
  return record;
}

Journal::Journal(std::string path) : path_(std::move(path)) {}

std::unique_ptr<Journal> Journal::in_memory() {
  return std::unique_ptr<Journal>(new Journal(""));
}

Result<std::unique_ptr<Journal>> Journal::open_file(const std::string& path) {
  if (path.empty()) {
    return Status(ErrorCode::kInvalidArgument, "journal path empty");
  }
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty() && !std::filesystem::exists(parent, ec)) {
    return Status(ErrorCode::kNotFound,
                  "journal parent directory missing: " + parent.string());
  }
  auto journal = std::unique_ptr<Journal>(new Journal(path));
  // Recover the tail count (and the legacy-text flag) so the compaction
  // trigger and append format survive reopen.
  auto replayed = journal->replay();
  if (!replayed.is_ok()) return replayed.status();
  return journal;
}

Status Journal::append_payload_locked(const std::string& payload,
                                      std::size_t count) {
  std::ofstream out(path_ + ".log", std::ios::app | std::ios::binary);
  if (!out) {
    return Status(ErrorCode::kInternal, "journal log open failed: " + path_);
  }
  if (log_is_text_) {
    out << payload;  // legacy file: keep appending lines, never mix formats
  } else {
    const std::string block = blockio::encode_block(payload);
    out.write(block.data(), static_cast<std::streamsize>(block.size()));
  }
  out.flush();
  if (!out) {
    return Status(ErrorCode::kInternal, "journal log write failed: " + path_);
  }
  tail_count_ += count;
  return Status::ok();
}

Status Journal::append(const Record& record) {
  LockGuard lock(mutex_);
  if (path_.empty()) {
    memory_tail_.push_back(record);
    ++tail_count_;
    return Status::ok();
  }
  return append_payload_locked(encode_record(record) + '\n', 1);
}

Status Journal::append_batch(const std::vector<Record>& records) {
  if (records.empty()) return Status::ok();
  LockGuard lock(mutex_);
  if (path_.empty()) {
    memory_tail_.insert(memory_tail_.end(), records.begin(), records.end());
    tail_count_ += records.size();
    return Status::ok();
  }
  std::string payload;
  for (const Record& record : records) {
    escape_into(record.type, payload);
    for (const std::string& field : record.fields) {
      payload += '\t';
      escape_into(field, payload);
    }
    payload += '\n';
  }
  return append_payload_locked(payload, records.size());
}

Status Journal::write_snapshot(const std::vector<Record>& records) {
  LockGuard lock(mutex_);
  if (path_.empty()) {
    memory_snapshot_ = records;
    memory_tail_.clear();
    tail_count_ = 0;
    return Status::ok();
  }
  const std::string tmp = path_ + ".snap.tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      return Status(ErrorCode::kInternal, "snapshot open failed: " + tmp);
    }
    // Chunk the snapshot so one corrupt compression window can never cost
    // more than kSnapshotChunk of payload, and so giant snapshots stay
    // under the per-block size cap.
    constexpr std::size_t kSnapshotChunk = 256 * 1024;
    std::string payload;
    for (const Record& record : records) {
      escape_into(record.type, payload);
      for (const std::string& field : record.fields) {
        payload += '\t';
        escape_into(field, payload);
      }
      payload += '\n';
      if (payload.size() >= kSnapshotChunk) {
        const std::string block = blockio::encode_block(payload);
        out.write(block.data(), static_cast<std::streamsize>(block.size()));
        payload.clear();
      }
    }
    if (!payload.empty()) {
      const std::string block = blockio::encode_block(payload);
      out.write(block.data(), static_cast<std::streamsize>(block.size()));
    }
    out.flush();
    if (!out) {
      return Status(ErrorCode::kInternal, "snapshot write failed: " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_ + ".snap", ec);
  if (ec) {
    return Status(ErrorCode::kInternal, "snapshot rename failed: " + ec.message());
  }
  // The snapshot now owns all state; an empty log is correct even if the
  // truncation below were to be lost. Truncation also retires a legacy
  // text log: appends resume in block format.
  std::ofstream truncate(path_ + ".log", std::ios::trunc | std::ios::binary);
  log_is_text_ = false;
  tail_count_ = 0;
  return Status::ok();
}

Result<std::vector<Record>> Journal::replay() const { return replay(nullptr); }

Result<std::vector<Record>> Journal::replay(ReplayStats* stats) const {
  LockGuard lock(mutex_);
  ReplayStats local;
  std::vector<Record> records;
  if (path_.empty()) {
    records = memory_snapshot_;
    records.insert(records.end(), memory_tail_.begin(), memory_tail_.end());
    local.records = records.size();
    if (stats) *stats = local;
    return records;
  }
  std::size_t tail = 0;
  for (const bool is_snapshot : {true, false}) {
    const std::string file = path_ + (is_snapshot ? ".snap" : ".log");
    auto contents = read_file(file);
    if (!contents.is_ok()) continue;  // missing file: valid empty journal
    std::size_t count = 0;
    Status replayed;
    if (file_is_block_format(file)) {
      replayed = replay_block_stream(contents.value(), 0, is_snapshot,
                                     &records, &count, &local);
    } else {
      if (!is_snapshot) log_is_text_ = true;
      replayed = replay_text_stream(contents.value(), is_snapshot, &records,
                                    &count, &local);
    }
    TDP_RETURN_IF_ERROR(replayed);
    if (!is_snapshot) tail = count;
  }
  tail_count_ = tail;
  local.records = records.size();
  if (stats) *stats = local;
  return records;
}

Result<std::uint64_t> Journal::log_position() const {
  LockGuard lock(mutex_);
  if (path_.empty()) return static_cast<std::uint64_t>(tail_count_);
  std::error_code ec;
  const auto size = std::filesystem::file_size(path_ + ".log", ec);
  if (ec) return std::uint64_t{0};  // no log yet: position zero
  return static_cast<std::uint64_t>(size);
}

Result<std::vector<Record>> Journal::replay_from(std::uint64_t position,
                                                 ReplayStats* stats) const {
  LockGuard lock(mutex_);
  ReplayStats local;
  std::vector<Record> records;
  if (path_.empty()) {
    const std::size_t start =
        std::min(static_cast<std::size_t>(position), memory_tail_.size());
    records.assign(memory_tail_.begin() + static_cast<std::ptrdiff_t>(start),
                   memory_tail_.end());
    local.records = records.size();
    if (stats) *stats = local;
    return records;
  }
  const std::string file = path_ + ".log";
  auto contents = read_file(file);
  if (!contents.is_ok()) {
    if (stats) *stats = local;
    return records;  // no log: empty delta
  }
  if (!file_is_block_format(file)) {
    return Status(ErrorCode::kUnsupported,
                  "replay_from requires the block log format (legacy text "
                  "journal; write a snapshot to convert)");
  }
  if (position > contents->size()) {
    return Status(ErrorCode::kInvalidArgument,
                  "replay position past end of log");
  }
  std::size_t count = 0;
  TDP_RETURN_IF_ERROR(replay_block_stream(contents.value(), position, false,
                                          &records, &count, &local));
  local.records = records.size();
  if (stats) *stats = local;
  return records;
}

std::size_t Journal::tail_size() const {
  LockGuard lock(mutex_);
  return tail_count_;
}

}  // namespace tdp::journal
