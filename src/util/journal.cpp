#include "util/journal.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace tdp::journal {

namespace {

/// Escapes one field so that '\t' can separate fields and '\n' records.
void escape_into(const std::string& field, std::string& out) {
  for (char c : field) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

Result<std::vector<std::string>> split_fields(const std::string& line) {
  std::vector<std::string> fields(1);
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\t') {
      fields.emplace_back();
    } else if (c == '\\') {
      if (i + 1 >= line.size()) {
        return Status(ErrorCode::kInvalidArgument, "dangling escape");
      }
      const char next = line[++i];
      if (next == '\\') {
        fields.back() += '\\';
      } else if (next == 't') {
        fields.back() += '\t';
      } else if (next == 'n') {
        fields.back() += '\n';
      } else {
        return Status(ErrorCode::kInvalidArgument, "bad escape");
      }
    } else {
      fields.back() += c;
    }
  }
  return fields;
}

}  // namespace

std::string encode_record(const Record& record) {
  std::string line;
  escape_into(record.type, line);
  for (const std::string& field : record.fields) {
    line += '\t';
    escape_into(field, line);
  }
  return line;
}

Result<Record> decode_record(const std::string& line) {
  auto fields = split_fields(line);
  if (!fields.is_ok()) return fields.status();
  if (fields->empty() || fields->front().empty()) {
    return Status(ErrorCode::kInvalidArgument, "record without a type");
  }
  Record record;
  record.type = fields->front();
  record.fields.assign(fields->begin() + 1, fields->end());
  return record;
}

Journal::Journal(std::string path) : path_(std::move(path)) {}

std::unique_ptr<Journal> Journal::in_memory() {
  return std::unique_ptr<Journal>(new Journal(""));
}

Result<std::unique_ptr<Journal>> Journal::open_file(const std::string& path) {
  if (path.empty()) {
    return Status(ErrorCode::kInvalidArgument, "journal path empty");
  }
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty() && !std::filesystem::exists(parent, ec)) {
    return Status(ErrorCode::kNotFound,
                  "journal parent directory missing: " + parent.string());
  }
  auto journal = std::unique_ptr<Journal>(new Journal(path));
  // Recover the tail count so the compaction trigger survives reopen.
  auto replayed = journal->replay();
  if (!replayed.is_ok()) return replayed.status();
  return journal;
}

Status Journal::append(const Record& record) {
  LockGuard lock(mutex_);
  if (path_.empty()) {
    memory_tail_.push_back(record);
    ++tail_count_;
    return Status::ok();
  }
  std::ofstream out(path_ + ".log", std::ios::app | std::ios::binary);
  if (!out) {
    return Status(ErrorCode::kInternal, "journal log open failed: " + path_);
  }
  out << encode_record(record) << '\n';
  out.flush();
  if (!out) {
    return Status(ErrorCode::kInternal, "journal log write failed: " + path_);
  }
  ++tail_count_;
  return Status::ok();
}

Status Journal::write_snapshot(const std::vector<Record>& records) {
  LockGuard lock(mutex_);
  if (path_.empty()) {
    memory_snapshot_ = records;
    memory_tail_.clear();
    tail_count_ = 0;
    return Status::ok();
  }
  const std::string tmp = path_ + ".snap.tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      return Status(ErrorCode::kInternal, "snapshot open failed: " + tmp);
    }
    for (const Record& record : records) {
      out << encode_record(record) << '\n';
    }
    out.flush();
    if (!out) {
      return Status(ErrorCode::kInternal, "snapshot write failed: " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_ + ".snap", ec);
  if (ec) {
    return Status(ErrorCode::kInternal, "snapshot rename failed: " + ec.message());
  }
  // The snapshot now owns all state; an empty log is correct even if the
  // truncation below were to be lost.
  std::ofstream truncate(path_ + ".log", std::ios::trunc | std::ios::binary);
  tail_count_ = 0;
  return Status::ok();
}

Result<std::vector<Record>> Journal::replay() const {
  LockGuard lock(mutex_);
  std::vector<Record> records;
  if (path_.empty()) {
    records = memory_snapshot_;
    records.insert(records.end(), memory_tail_.begin(), memory_tail_.end());
    return records;
  }
  std::size_t tail = 0;
  for (const char* suffix : {".snap", ".log"}) {
    std::ifstream in(path_ + suffix, std::ios::binary);
    if (!in) continue;  // neither file existing yet is a valid empty journal
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::size_t start = 0;
    while (start < contents.size()) {
      const std::size_t end = contents.find('\n', start);
      if (end == std::string::npos) break;  // torn trailing append: drop it
      const std::string line = contents.substr(start, end - start);
      start = end + 1;
      if (line.empty()) continue;
      auto record = decode_record(line);
      if (!record.is_ok()) {
        // A corrupt snapshot is fatal (it is written atomically, so damage
        // means real trouble); a corrupt log line ends the usable tail.
        if (std::string(suffix) == ".snap") return record.status();
        break;
      }
      records.push_back(std::move(record.value()));
      if (std::string(suffix) == ".log") ++tail;
    }
  }
  tail_count_ = tail;
  return records;
}

std::size_t Journal::tail_size() const {
  LockGuard lock(mutex_);
  return tail_count_;
}

}  // namespace tdp::journal
