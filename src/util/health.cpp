#include "util/health.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace tdp::health {

namespace {

/// %g keeps thresholds and values readable in published attributes.
std::string format_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

Result<Rule::Stat> parse_stat(std::string_view token) {
  if (token == "value") return Rule::Stat::kValue;
  if (token == "rate") return Rule::Stat::kRate;
  if (token == "p50") return Rule::Stat::kP50;
  if (token == "p95") return Rule::Stat::kP95;
  if (token == "p99") return Rule::Stat::kP99;
  return make_error(ErrorCode::kInvalidArgument,
                    "unknown stat: " + std::string(token));
}

const char* stat_name(Rule::Stat stat) noexcept {
  switch (stat) {
    case Rule::Stat::kValue: return "value";
    case Rule::Stat::kRate: return "rate";
    case Rule::Stat::kP50: return "p50";
    case Rule::Stat::kP95: return "p95";
    case Rule::Stat::kP99: return "p99";
  }
  return "?";
}

Result<double> parse_threshold(std::string_view token, std::string_view key) {
  if (token.size() <= key.size() + 1 ||
      token.substr(0, key.size()) != key || token[key.size()] != '=') {
    return make_error(ErrorCode::kInvalidArgument,
                      "expected " + std::string(key) + "=<number>, got '" +
                          std::string(token) + "'");
  }
  const std::string number(token.substr(key.size() + 1));
  char* end = nullptr;
  const double value = std::strtod(number.c_str(), &end);
  if (end == number.c_str() || *end != '\0') {
    return make_error(ErrorCode::kInvalidArgument,
                      "bad threshold number: " + number);
  }
  return value;
}

/// The statistic a rule extracts from one sample.
double extract(const Rule& rule, const telemetry::Sample& sample) {
  switch (rule.stat) {
    case Rule::Stat::kValue:
      return sample.kind == telemetry::Sample::Kind::kHistogram
                 ? static_cast<double>(sample.hist.count)
                 : static_cast<double>(sample.value);
    case Rule::Stat::kRate:
      // Raw value here; evaluate() turns it into a per-second delta.
      return sample.kind == telemetry::Sample::Kind::kHistogram
                 ? static_cast<double>(sample.hist.count)
                 : static_cast<double>(sample.value);
    case Rule::Stat::kP50: return sample.hist.p50;
    case Rule::Stat::kP95: return sample.hist.p95;
    case Rule::Stat::kP99: return sample.hist.p99;
  }
  return 0.0;
}

Severity judge(const Rule& rule, double value) {
  if (rule.dir == Rule::Dir::kAbove) {
    if (value >= rule.critical) return Severity::kCritical;
    if (value >= rule.warn) return Severity::kWarn;
    return Severity::kOk;
  }
  if (value <= rule.critical) return Severity::kCritical;
  if (value <= rule.warn) return Severity::kWarn;
  return Severity::kOk;
}

}  // namespace

std::string health_attr(std::string_view role, std::string_view host) {
  std::string attr{kHealthPrefix};
  attr += role;
  attr += '.';
  attr += host;
  return attr;
}

const char* severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::kOk: return "ok";
    case Severity::kWarn: return "warn";
    case Severity::kCritical: return "critical";
  }
  return "?";
}

Result<Rule> parse_rule(std::string_view text) {
  // "<name>: <metric> <stat> <above|below> warn=<x> critical=<y>"
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "health rule needs '<name>: ...': " + std::string(text));
  }
  Rule rule;
  rule.name = std::string(text.substr(0, colon));

  std::istringstream rest{std::string(text.substr(colon + 1))};
  std::string metric, stat, dir, warn, critical, extra;
  rest >> metric >> stat >> dir >> warn >> critical;
  if (critical.empty() || (rest >> extra)) {
    return make_error(
        ErrorCode::kInvalidArgument,
        "health rule wants '<name>: <metric> <stat> <above|below> "
        "warn=<x> critical=<y>': " + std::string(text));
  }
  rule.metric = metric;
  auto parsed_stat = parse_stat(stat);
  if (!parsed_stat.is_ok()) return parsed_stat.status();
  rule.stat = *parsed_stat;
  if (dir == "above") {
    rule.dir = Rule::Dir::kAbove;
  } else if (dir == "below") {
    rule.dir = Rule::Dir::kBelow;
  } else {
    return make_error(ErrorCode::kInvalidArgument,
                      "direction must be above|below, got '" + dir + "'");
  }
  auto warn_v = parse_threshold(warn, "warn");
  if (!warn_v.is_ok()) return warn_v.status();
  auto critical_v = parse_threshold(critical, "critical");
  if (!critical_v.is_ok()) return critical_v.status();
  rule.warn = *warn_v;
  rule.critical = *critical_v;
  if (rule.dir == Rule::Dir::kAbove ? rule.critical < rule.warn
                                    : rule.critical > rule.warn) {
    return make_error(ErrorCode::kInvalidArgument,
                      "critical threshold must be at least as severe as "
                      "warn: " + std::string(text));
  }
  return rule;
}

std::string format_rule(const Rule& rule) {
  std::string out = rule.name;
  out += ": ";
  out += rule.metric;
  out += ' ';
  out += stat_name(rule.stat);
  out += rule.dir == Rule::Dir::kAbove ? " above" : " below";
  out += " warn=" + format_value(rule.warn);
  out += " critical=" + format_value(rule.critical);
  return out;
}

std::string Report::encode() const {
  if (severity == Severity::kOk) return "ok";
  std::string out = severity_name(severity);
  out += " rule=";
  out += firing;
  out += " value=";
  out += format_value(firing_value);
  return out;
}

Result<Severity> parse_severity(std::string_view encoded) {
  const std::size_t space = encoded.find(' ');
  const std::string_view head =
      space == std::string_view::npos ? encoded : encoded.substr(0, space);
  for (auto severity :
       {Severity::kOk, Severity::kWarn, Severity::kCritical}) {
    if (head == severity_name(severity)) return severity;
  }
  return make_error(ErrorCode::kInvalidArgument,
                    "unknown health severity: " + std::string(encoded));
}

void Engine::add_rule(Rule rule) {
  LockGuard lock(mutex_);
  rules_.push_back(std::move(rule));
}

Status Engine::add_rule(std::string_view text) {
  auto rule = parse_rule(text);
  if (!rule.is_ok()) return rule.status();
  add_rule(std::move(*rule));
  return Status::ok();
}

std::size_t Engine::rule_count() const {
  LockGuard lock(mutex_);
  return rules_.size();
}

Report Engine::evaluate(const std::vector<telemetry::Sample>& samples,
                        Micros now) {
  Report report;
  LockGuard lock(mutex_);
  for (const Rule& rule : rules_) {
    const telemetry::Sample* sample = nullptr;
    for (const auto& s : samples) {
      if (s.name == rule.metric) {
        sample = &s;
        break;
      }
    }
    if (sample == nullptr) continue;  // absent metric: rule skipped

    double value = extract(rule, *sample);
    if (rule.stat == Rule::Stat::kRate) {
      auto it = previous_.find(rule.metric);
      double rate = 0.0;
      if (it != previous_.end() && now > it->second.at) {
        rate = (value - it->second.value) /
               (static_cast<double>(now - it->second.at) / 1e6);
      }
      previous_[rule.metric] = RateState{now, value};
      value = rate;
    }

    Verdict verdict;
    verdict.rule = rule.name;
    verdict.metric = rule.metric;
    verdict.value = value;
    verdict.severity = judge(rule, value);
    if (verdict.severity > report.severity ||
        (verdict.severity != Severity::kOk && report.firing.empty())) {
      report.firing = rule.name;
      report.firing_value = value;
    }
    report.severity = fold(report.severity, verdict.severity);
    report.verdicts.push_back(std::move(verdict));
  }
  if (report.severity == Severity::kOk) {
    report.firing.clear();
    report.firing_value = 0.0;
  }
  return report;
}

}  // namespace tdp::health
