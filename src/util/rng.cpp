#include "util/rng.hpp"

#include <cmath>

namespace tdp {

double Rng::next_exponential(double mean) {
  // Inverse-CDF sampling; clamp u away from 0 to avoid log(0).
  double u = next_double();
  if (u < 1e-12) u = 1e-12;
  return -mean * std::log(u);
}

}  // namespace tdp
