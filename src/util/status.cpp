#include "util/status.hpp"

namespace tdp {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kConnectionError: return "CONNECTION_ERROR";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kInvalidState: return "INVALID_STATE";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kUnsupported: return "UNSUPPORTED";
    case ErrorCode::kCancelled: return "CANCELLED";
    case ErrorCode::kBusy: return "BUSY";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out = error_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tdp
