// lease_agg.hpp - per-level lease aggregation (PR 7).
//
// The flat liveness design (lease.hpp, PR 5) has every daemon beat straight
// at one central monitor: O(hosts) writes arriving at the root attrspace,
// which caps pool size long before the paper's scale. The hierarchical CASS
// (mrnet/hierarchy.hpp) interposes interior nodes, and this file is the
// primitive an interior node runs: it holds leases on its children via an
// embedded LeaseMonitor and publishes ONE summarized beat upward, so each
// level of the tree compresses its subtree's liveness into a single
// attribute write. The root then sees O(fanout) writes regardless of hosts.
//
// Summary beat value format (an extension of the plain "<seq> <micros>"
// heartbeat so existing parsers still find the leading pair):
//
//     "<seq> <micros> a=<alive> d=<degraded> e=<expired> t=<total>"
//
// A summary is kAlive when every child is alive and kDegraded otherwise —
// a "degraded subtree" means some descendants missed beats but the interior
// node itself is up and reporting. The summary never claims kExpired: a
// subtree is declared dead only by the *parent's* lease on the summary beat
// expiring, i.e. the interior node itself went silent (DESIGN.md §14).
#pragma once

#include <cstdint>
#include <string>

#include "util/clock.hpp"
#include "util/lease.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace tdp::lease {

/// Parsed form of one summarized upward beat.
struct Summary {
  std::uint64_t seq = 0;
  Micros at_micros = 0;
  int alive = 0;
  int degraded = 0;
  int expired = 0;
  int total = 0;

  /// Aggregate health claimed by the summary. kExpired is never claimed:
  /// subtree death is only ever inferred by the parent's lease expiring.
  [[nodiscard]] Health health() const noexcept {
    return (degraded == 0 && expired == 0) ? Health::kAlive
                                           : Health::kDegraded;
  }

  [[nodiscard]] bool same_shape(const Summary& other) const noexcept {
    return alive == other.alive && degraded == other.degraded &&
           expired == other.expired && total == other.total;
  }
};

[[nodiscard]] std::string format_summary(const Summary& summary);
[[nodiscard]] Result<Summary> parse_summary(const std::string& value);

/// One interior node's aggregation state: a LeaseMonitor over the child
/// beat names plus a paced publisher of the summarized upward beat. The
/// upward beat is published when beat_interval elapses OR the summary shape
/// changes (a child degrading must not wait out the pacing interval, or the
/// root would learn of trouble one beat late per level).
///
/// Thread-safety: same discipline as HeartbeatPublisher/LeaseMonitor — all
/// state behind leaf mutexes (§10 row 5), the upward put and all child
/// transition callbacks run outside every lock.
class LeaseAggregator {
 public:
  using PutFn = HeartbeatPublisher::PutFn;

  /// `attribute` is this node's own upward beat name (e.g.
  /// tdp.liveness.cassagg.n137); `put` delivers it one level up.
  LeaseAggregator(std::string attribute, Config config, const Clock* clock,
                  PutFn put);

  /// Appends a callback fired from poll() on every child health
  /// transition, outside all aggregator/monitor locks.
  void on_child_transition(LeaseMonitor::TransitionCallback callback);

  /// Records one child beat (child names are arbitrary: leaf host beat
  /// attributes or child aggregators' summary attributes).
  void observe_child(const std::string& name);

  /// Records a child beat as of an explicit past clock reading (lease
  /// state carried across a tree rebuild, see LeaseMonitor::observe_at).
  void observe_child_at(const std::string& name, Micros at_micros);

  /// Last recorded beat time for `name`, or -1 if untracked.
  [[nodiscard]] Micros child_last_beat(const std::string& name) const;

  /// Stops tracking a child with no transition (re-parenting, not death).
  void remove_child(const std::string& name);

  [[nodiscard]] bool tracks(const std::string& name) const;
  [[nodiscard]] std::size_t child_count() const;
  [[nodiscard]] Health child_health(const std::string& name) const;

  /// Recomputes child leases, fires transition callbacks, then publishes
  /// one summarized beat upward if due. Returns child transitions reported.
  int poll();

  /// Unconditional upward publish (node startup, post-re-parent announce).
  Status publish_now();

  /// Current summary computed fresh from the child monitor (seq/at_micros
  /// are those of the *last published* beat, counts are live).
  [[nodiscard]] Summary summary() const;

  [[nodiscard]] std::uint64_t publishes() const;
  [[nodiscard]] const std::string& attribute() const { return attribute_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Status publish_locked_counts(LeaseMonitor::Counts counts);

  LeaseMonitor monitor_;  // owns its own leaf lock

  mutable Mutex mutex_{"lease::LeaseAggregator::mutex_"};
  std::uint64_t sequence_ TDP_GUARDED_BY(mutex_) = 0;
  Micros last_publish_micros_ TDP_GUARDED_BY(mutex_) = -1;
  Summary last_published_ TDP_GUARDED_BY(mutex_);

  const std::string attribute_;
  const Config config_;
  const Clock* clock_;
  const PutFn put_;
};

}  // namespace tdp::lease
