#include "util/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/blockio.hpp"

namespace tdp::telemetry {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

namespace {

int bucket_index(std::uint64_t v) noexcept {
  if (v == 0) return 0;
  int b = std::bit_width(v);  // 1..64
  return b >= Histogram::kBuckets ? Histogram::kBuckets - 1 : b;
}

/// Upper bound of bucket b (the representative value snapshot() reports).
double bucket_upper(int b) noexcept {
  if (b <= 0) return 0.0;
  if (b >= 63) return static_cast<double>(std::uint64_t{1} << 63);
  return static_cast<double>((std::uint64_t{1} << b) - 1);
}

/// Shared by snapshot() and snapshot_from_buckets(): a value at cumulative
/// rank r is in the first bucket where the running total reaches r. Ranks
/// are 1-based ceilings, p100 == max.
double bucket_percentile(const std::uint64_t* buckets, int n,
                         std::uint64_t count, double q) noexcept {
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
  std::uint64_t seen = 0;
  for (int b = 0; b < n; ++b) {
    seen += buckets[b];
    if (seen >= rank) return bucket_upper(b);
  }
  return bucket_upper(n - 1);
}

}  // namespace

void Histogram::record(std::uint64_t v) noexcept {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  std::uint64_t buckets[kBuckets];
  for (int b = 0; b < kBuckets; ++b) {
    buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    snap.count += buckets[b];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;
  snap.p50 = bucket_percentile(buckets, kBuckets, snap.count, 0.50);
  snap.p95 = bucket_percentile(buckets, kBuckets, snap.count, 0.95);
  snap.p99 = bucket_percentile(buckets, kBuckets, snap.count, 0.99);
  return snap;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(static_cast<std::size_t>(kBuckets));
  for (int b = 0; b < kBuckets; ++b) {
    out[static_cast<std::size_t>(b)] =
        buckets_[b].load(std::memory_order_relaxed);
  }
  return out;
}

Histogram::Snapshot snapshot_from_buckets(
    const std::vector<std::uint64_t>& buckets, std::uint64_t sum) {
  Histogram::Snapshot snap;
  const int n = std::min(static_cast<int>(buckets.size()),
                         Histogram::kBuckets);
  for (int b = 0; b < n; ++b) snap.count += buckets[static_cast<std::size_t>(b)];
  snap.sum = sum;
  if (snap.count == 0 || n == 0) return snap;
  snap.p50 = bucket_percentile(buckets.data(), n, snap.count, 0.50);
  snap.p95 = bucket_percentile(buckets.data(), n, snap.count, 0.95);
  snap.p99 = bucket_percentile(buckets.data(), n, snap.count, 0.99);
  return snap;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::instance() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

Registry::Shard& Registry::shard_for(std::string_view name) noexcept {
  return shards_[std::hash<std::string_view>{}(name) % kShards];
}

Counter& Registry::counter(std::string_view name) {
  Shard& s = shard_for(name);
  LockGuard lock(s.mutex);
  auto it = s.counters.find(name);
  if (it == s.counters.end()) {
    it = s.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  Shard& s = shard_for(name);
  LockGuard lock(s.mutex);
  auto it = s.gauges.find(name);
  if (it == s.gauges.end()) {
    it = s.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  Shard& s = shard_for(name);
  LockGuard lock(s.mutex);
  auto it = s.histograms.find(name);
  if (it == s.histograms.end()) {
    it = s.histograms.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<Sample> Registry::snapshot() const {
  std::vector<Sample> out;
  for (const Shard& s : shards_) {
    LockGuard lock(s.mutex);
    for (const auto& [name, c] : s.counters) {
      Sample sample;
      sample.name = name;
      sample.kind = Sample::Kind::kCounter;
      sample.value = static_cast<std::int64_t>(c->value());
      out.push_back(std::move(sample));
    }
    for (const auto& [name, g] : s.gauges) {
      Sample sample;
      sample.name = name;
      sample.kind = Sample::Kind::kGauge;
      sample.value = g->value();
      out.push_back(std::move(sample));
    }
    for (const auto& [name, h] : s.histograms) {
      Sample sample;
      sample.name = name;
      sample.kind = Sample::Kind::kHistogram;
      sample.hist = h->snapshot();
      out.push_back(std::move(sample));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

// ---------------------------------------------------------------------------
// Trace context header
// ---------------------------------------------------------------------------

std::string format_context(const SpanContext& ctx) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "1-%016" PRIx64 "-%016" PRIx64, ctx.trace_id,
                ctx.span_id);
  return buf;
}

namespace {

bool parse_hex16(std::string_view s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  *out = v;
  return true;
}

}  // namespace

SpanContext parse_context(std::string_view header) {
  SpanContext ctx;
  // "1-" + 16 hex + "-" + 16 hex. Unknown versions parse as invalid, which
  // callers treat exactly like "no trace header" - forward compatible.
  if (header.size() != 35 || header[0] != '1' || header[1] != '-' ||
      header[18] != '-') {
    return ctx;
  }
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  if (!parse_hex16(header.substr(2, 16), &trace) ||
      !parse_hex16(header.substr(19, 16), &span)) {
    return ctx;
  }
  ctx.trace_id = trace;
  ctx.span_id = span;
  return ctx;
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // leaked: outlives all users
  return *tracer;
}

void Tracer::set_clock(const Clock* clock) noexcept {
  clock_.store(clock, std::memory_order_release);
}

Micros Tracer::now() const noexcept {
  const Clock* clock = clock_.load(std::memory_order_acquire);
  return clock ? clock->now_micros() : RealClock::instance().now_micros();
}

void Tracer::set_enabled(bool enabled) noexcept {
  enabled_.store(enabled, std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::finished() const {
  LockGuard lock(mutex_);
  return finished_;
}

void Tracer::clear() {
  LockGuard lock(mutex_);
  finished_.clear();
  next_trace_.store(1, std::memory_order_relaxed);
  next_span_.store(1, std::memory_order_relaxed);
}

std::uint64_t Tracer::add_span_observer(SpanObserver observer) {
  LockGuard lock(observers_mutex_);
  const std::uint64_t id =
      next_observer_.fetch_add(1, std::memory_order_relaxed);
  observers_.emplace(id, std::move(observer));
  has_observers_.store(true, std::memory_order_release);
  return id;
}

void Tracer::remove_span_observer(std::uint64_t id) {
  LockGuard lock(observers_mutex_);
  observers_.erase(id);
  has_observers_.store(!observers_.empty(), std::memory_order_release);
}

void Tracer::record(SpanRecord rec) {
  if (has_observers_.load(std::memory_order_acquire)) {
    // Copy the observer list under its leaf lock, invoke outside any lock.
    std::vector<SpanObserver> observers;
    {
      LockGuard lock(observers_mutex_);
      observers.reserve(observers_.size());
      for (const auto& [id, fn] : observers_) observers.push_back(fn);
    }
    for (const auto& fn : observers) fn(rec);
  }
  LockGuard lock(mutex_);
  if (finished_.size() >= kMaxFinished) {
    // Dropped spans still count, so the gap is visible in tdptop.
    Registry::instance().counter("telemetry.spans_dropped").inc();
    return;
  }
  finished_.push_back(std::move(rec));
}

namespace {

void json_escape_into(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

std::string Tracer::chrome_trace_json() const {
  const std::vector<SpanRecord> spans = finished();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (const SpanRecord& s : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    json_escape_into(&out, s.name);
    out += "\",\"cat\":\"";
    json_escape_into(&out, s.role.empty() ? std::string("tdp") : s.role);
    // "X" complete events: ts/dur in micros. pid 1 (one trace file per
    // process); tid = trace id so each causal tree gets its own track.
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%" PRId64 ",\"dur\":%" PRId64
                  ",\"pid\":1,\"tid\":%" PRIu64
                  ",\"args\":{\"trace\":\"%" PRIx64 "\",\"span\":\"%" PRIx64
                  "\",\"parent\":\"%" PRIx64 "\"}}",
                  s.start_us, s.end_us - s.start_us, s.trace_id, s.trace_id,
                  s.span_id, s.parent_id);
    out += buf;
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status Tracer::dump_chrome_trace(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    return make_error(ErrorCode::kInternal,
                      "dump_chrome_trace: cannot open " + path);
  }
  f << chrome_trace_json();
  f.close();
  if (!f) {
    return make_error(ErrorCode::kInternal,
                      "dump_chrome_trace: write failed for " + path);
  }
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Span block export (util/blockio container)
// ---------------------------------------------------------------------------

namespace {

// One span inside a block payload, little-endian:
//   u32 name_len | name | u32 role_len | role |
//   u64 trace | u64 span | u64 parent | i64 start_us | i64 end_us
// Length-delimited like the wire's v2 fields, so a reader that trusts the
// block CRC can slice records without a terminator scan.

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

bool get_u32(std::string_view data, std::size_t* pos, std::uint32_t* v) {
  if (data.size() - *pos < 4) return false;
  std::uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[*pos + i])) << (8 * i);
  }
  *pos += 4;
  *v = out;
  return true;
}

bool get_u64(std::string_view data, std::size_t* pos, std::uint64_t* v) {
  if (data.size() - *pos < 8) return false;
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[*pos + i])) << (8 * i);
  }
  *pos += 8;
  *v = out;
  return true;
}

bool get_string(std::string_view data, std::size_t* pos, std::string* out) {
  std::uint32_t len = 0;
  if (!get_u32(data, pos, &len)) return false;
  if (data.size() - *pos < len) return false;
  out->assign(data.data() + *pos, len);
  *pos += len;
  return true;
}

}  // namespace

Status Tracer::dump_span_blocks(const std::string& path) const {
  const std::vector<SpanRecord> spans = finished();
  std::string payload;
  for (const SpanRecord& s : spans) {
    put_u32(&payload, static_cast<std::uint32_t>(s.name.size()));
    payload += s.name;
    put_u32(&payload, static_cast<std::uint32_t>(s.role.size()));
    payload += s.role;
    put_u64(&payload, s.trace_id);
    put_u64(&payload, s.span_id);
    put_u64(&payload, s.parent_id);
    put_u64(&payload, static_cast<std::uint64_t>(s.start_us));
    put_u64(&payload, static_cast<std::uint64_t>(s.end_us));
  }
  if (payload.empty()) return Status::ok();
  std::ofstream f(path, std::ios::binary | std::ios::app);
  if (!f) {
    return make_error(ErrorCode::kInternal,
                      "dump_span_blocks: cannot open " + path);
  }
  f << blockio::encode_block(payload);
  f.close();
  if (!f) {
    return make_error(ErrorCode::kInternal,
                      "dump_span_blocks: write failed for " + path);
  }
  return Status::ok();
}

Result<std::vector<SpanRecord>> load_span_blocks(const std::string& path,
                                                 std::uint64_t offset,
                                                 blockio::ScanStats* stats) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    return make_error(ErrorCode::kNotFound,
                      "load_span_blocks: cannot open " + path);
  }
  std::ostringstream contents;
  contents << f.rdbuf();
  const std::string stream = contents.str();
  if (offset > stream.size()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "load_span_blocks: offset past end of " + path);
  }
  std::vector<SpanRecord> spans;
  blockio::BlockReader reader(stream, offset);
  while (true) {
    auto block = reader.next();
    if (!block.is_ok()) break;  // end of stream (torn tail lands in stats)
    const std::string_view payload = block->payload;
    std::size_t pos = 0;
    while (pos < payload.size()) {
      SpanRecord s;
      std::uint64_t start = 0;
      std::uint64_t end = 0;
      if (!get_string(payload, &pos, &s.name) ||
          !get_string(payload, &pos, &s.role) ||
          !get_u64(payload, &pos, &s.trace_id) ||
          !get_u64(payload, &pos, &s.span_id) ||
          !get_u64(payload, &pos, &s.parent_id) ||
          !get_u64(payload, &pos, &start) || !get_u64(payload, &pos, &end)) {
        // The block CRC vouched for these bytes, so a short record means a
        // writer bug, not disk damage; surface it instead of resyncing.
        return make_error(ErrorCode::kInvalidArgument,
                          "load_span_blocks: malformed span record in " + path);
      }
      s.start_us = static_cast<Micros>(start);
      s.end_us = static_cast<Micros>(end);
      spans.push_back(std::move(s));
    }
  }
  if (stats != nullptr) *stats = reader.stats();
  return spans;
}

// ---------------------------------------------------------------------------
// Thread-local span stack + ambient context
// ---------------------------------------------------------------------------

namespace {

struct ThreadTraceState {
  std::vector<SpanContext> stack;
  SpanContext ambient;
};

ThreadTraceState& thread_state() {
  thread_local ThreadTraceState state;
  return state;
}

}  // namespace

SpanContext current_context() {
  ThreadTraceState& st = thread_state();
  if (!st.stack.empty()) return st.stack.back();
  return st.ambient;
}

SpanContext ambient_context() { return thread_state().ambient; }

void set_ambient_context(const SpanContext& ctx) {
  thread_state().ambient = ctx;
}

ScopedAmbient::ScopedAmbient(const SpanContext& ctx)
    : saved_(thread_state().ambient) {
  thread_state().ambient = ctx;
}

ScopedAmbient::~ScopedAmbient() { thread_state().ambient = saved_; }

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

Span::Span(std::string_view name, std::string_view role) {
  begin(name, role, current_context());
}

Span::Span(std::string_view name, std::string_view role,
           const SpanContext& parent) {
  begin(name, role, parent);
}

void Span::begin(std::string_view name, std::string_view role,
                 const SpanContext& parent) {
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return;
  if (parent.valid()) {
    ctx_.trace_id = parent.trace_id;
    parent_ = parent.span_id;
  } else {
    ctx_.trace_id = tracer.next_trace_id();
  }
  ctx_.span_id = tracer.next_span_id();
  name_.assign(name);
  role_.assign(role);
  start_ = tracer.now();
  thread_state().stack.push_back(ctx_);
  open_ = true;
}

void Span::end() {
  if (!open_) return;
  open_ = false;
  auto& stack = thread_state().stack;
  // Normally LIFO; tolerate out-of-order destruction by searching from the
  // top (a mismatched entry would otherwise mis-parent later spans).
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->span_id == ctx_.span_id) {
      stack.erase(std::next(it).base());
      break;
    }
  }
  Tracer& tracer = Tracer::instance();
  SpanRecord rec;
  rec.name = std::move(name_);
  rec.role = std::move(role_);
  rec.trace_id = ctx_.trace_id;
  rec.span_id = ctx_.span_id;
  rec.parent_id = parent_;
  rec.start_us = start_;
  rec.end_us = tracer.now();
  tracer.record(std::move(rec));
}

Span::~Span() { end(); }

}  // namespace tdp::telemetry
