// journal.hpp - a small write-ahead journal + snapshot for daemon state
// (PR 5; block format PR 6). A restarted daemon must "reload state instead
// of starting cold": the schedd journals its job queue, the startd its
// claim table, and the attribute space its durable entries. Records stay
// one line each, tab-separated escaped fields, so the recovery story is
// auditable by eye - but since PR 6 the lines are carried inside
// compressed, checksummed blocks (util/blockio.hpp): every block starts
// with a sync marker, so a reader can seek to any block boundary and
// resume, and mid-stream corruption costs one block, not the whole tail.
//
// Two backings share one interface:
//   * in_memory()  - vectors; what the sim/chaos tier uses so a "process
//                    death" is modelled as dropping the daemon object while
//                    the journal (the disk) survives;
//   * open_file()  - <path>.snap + <path>.log on disk, snapshot written
//                    atomically (tmp + rename), torn trailing blocks
//                    dropped on replay (a crash mid-append must not poison
//                    recovery). Pre-PR-6 plain-text journals are detected
//                    on open and keep working: replay understands both
//                    formats, and appends to a legacy text log stay text
//                    so one file never mixes formats. The first snapshot
//                    rewrites everything as blocks.
//
// Locking: Journal::mutex_ is a strict leaf - daemons append while holding
// their own state lock, so the journal must never call out or acquire
// anything else (DESIGN.md §10).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.hpp"
#include "util/sync.hpp"

namespace tdp::journal {

/// One journal entry: a record type tag plus its payload fields. Writers
/// define their own schema per type ("job", "claim", "attr", ...).
struct Record {
  std::string type;
  std::vector<std::string> fields;

  bool operator==(const Record& other) const {
    return type == other.type && fields == other.fields;
  }
};

/// Serializes a record to its single-line wire form (exposed for tests).
std::string encode_record(const Record& record);
/// Parses one line; kInvalidArgument on malformed escapes.
Result<Record> decode_record(const std::string& line);

/// What replay() saw on disk. The recovery paths (schedd queue, startd
/// claims, durable attrspace) log these so an operator can tell a clean
/// restart from one that lost a torn tail or skipped corrupt blocks.
struct ReplayStats {
  std::size_t records = 0;        ///< records recovered
  std::size_t blocks = 0;         ///< v2 blocks decoded (snapshot + log)
  std::size_t resyncs = 0;        ///< corrupt log regions skipped via sync scan
  std::uint64_t bytes_skipped = 0;///< log bytes lost to those regions
  bool torn_tail = false;         ///< log ended in a partial append (dropped)
};

class Journal {
 public:
  /// Volatile backing that survives daemon-object destruction (the chaos
  /// tier's "disk").
  static std::unique_ptr<Journal> in_memory();

  /// Disk backing at <path>.snap / <path>.log; parent directory must exist.
  static Result<std::unique_ptr<Journal>> open_file(const std::string& path);

  /// Appends one record to the tail log (flushed before returning). Block
  /// backing writes one block per record: ~20 bytes of framing buys a
  /// per-record durability boundary.
  Status append(const Record& record);

  /// Appends many records as ONE block (one sync marker, one checksum, one
  /// compression window) - all-or-nothing on replay. The batch write path
  /// for snapshot-sized bursts.
  Status append_batch(const std::vector<Record>& records);

  /// Atomically replaces the snapshot with `records` and truncates the
  /// tail log (compaction).
  Status write_snapshot(const std::vector<Record>& records);

  /// Snapshot records followed by surviving tail records, in write order.
  /// `stats` (optional) reports what recovery saw.
  [[nodiscard]] Result<std::vector<Record>> replay() const;
  [[nodiscard]] Result<std::vector<Record>> replay(ReplayStats* stats) const;

  /// Byte offset where the next log append will land - always a block
  /// boundary, so it is a valid replay_from() resume point. In-memory
  /// backing reports its tail index instead.
  [[nodiscard]] Result<std::uint64_t> log_position() const;

  /// Replays only log records from blocks at or after `position`
  /// (a value previously returned by log_position()). The snapshot is not
  /// read: this is the incremental path for a reader that already holds
  /// state up to `position` and only needs the delta - bounded by bytes
  /// appended since, not by journal size. kUnsupported on legacy text logs.
  [[nodiscard]] Result<std::vector<Record>> replay_from(
      std::uint64_t position, ReplayStats* stats = nullptr) const;

  /// Records appended since the last snapshot - the compaction trigger.
  [[nodiscard]] std::size_t tail_size() const;

 private:
  explicit Journal(std::string path);

  Status append_payload_locked(const std::string& payload, std::size_t count)
      TDP_REQUIRES(mutex_);

  mutable Mutex mutex_{"Journal::mutex_"};
  std::vector<Record> memory_snapshot_ TDP_GUARDED_BY(mutex_);
  std::vector<Record> memory_tail_ TDP_GUARDED_BY(mutex_);
  mutable std::size_t tail_count_ TDP_GUARDED_BY(mutex_) = 0;
  /// True when the existing .log on disk predates the block format; appends
  /// then stay line-oriented so one file never mixes formats.
  mutable bool log_is_text_ TDP_GUARDED_BY(mutex_) = false;

  /// Empty for the in-memory backing.
  const std::string path_;
};

}  // namespace tdp::journal
