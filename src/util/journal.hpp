// journal.hpp - a small write-ahead journal + snapshot for daemon state
// (PR 5). A restarted daemon must "reload state instead of starting cold":
// the schedd journals its job queue, the startd its claim table, and the
// attribute space its durable entries. The format is deliberately tiny -
// one record per line, tab-separated escaped fields - because the state
// being protected is small and the recovery story must be auditable by eye.
//
// Two backings share one interface:
//   * in_memory()  - vectors; what the sim/chaos tier uses so a "process
//                    death" is modelled as dropping the daemon object while
//                    the journal (the disk) survives;
//   * open_file()  - <path>.snap + <path>.log on disk, snapshot written
//                    atomically (tmp + rename), torn trailing log lines
//                    dropped on replay (a crash mid-append must not poison
//                    recovery).
//
// Locking: Journal::mutex_ is a strict leaf - daemons append while holding
// their own state lock, so the journal must never call out or acquire
// anything else (DESIGN.md §10).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/status.hpp"
#include "util/sync.hpp"

namespace tdp::journal {

/// One journal entry: a record type tag plus its payload fields. Writers
/// define their own schema per type ("job", "claim", "attr", ...).
struct Record {
  std::string type;
  std::vector<std::string> fields;

  bool operator==(const Record& other) const {
    return type == other.type && fields == other.fields;
  }
};

/// Serializes a record to its single-line wire form (exposed for tests).
std::string encode_record(const Record& record);
/// Parses one line; kInvalidArgument on malformed escapes.
Result<Record> decode_record(const std::string& line);

class Journal {
 public:
  /// Volatile backing that survives daemon-object destruction (the chaos
  /// tier's "disk").
  static std::unique_ptr<Journal> in_memory();

  /// Disk backing at <path>.snap / <path>.log; parent directory must exist.
  static Result<std::unique_ptr<Journal>> open_file(const std::string& path);

  /// Appends one record to the tail log (flushed before returning).
  Status append(const Record& record);

  /// Atomically replaces the snapshot with `records` and truncates the
  /// tail log (compaction).
  Status write_snapshot(const std::vector<Record>& records);

  /// Snapshot records followed by surviving tail records, in write order.
  [[nodiscard]] Result<std::vector<Record>> replay() const;

  /// Records appended since the last snapshot - the compaction trigger.
  [[nodiscard]] std::size_t tail_size() const;

 private:
  explicit Journal(std::string path);

  mutable Mutex mutex_{"Journal::mutex_"};
  std::vector<Record> memory_snapshot_ TDP_GUARDED_BY(mutex_);
  std::vector<Record> memory_tail_ TDP_GUARDED_BY(mutex_);
  mutable std::size_t tail_count_ TDP_GUARDED_BY(mutex_) = 0;

  /// Empty for the in-memory backing.
  const std::string path_;
};

}  // namespace tdp::journal
