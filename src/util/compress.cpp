#include "util/compress.hpp"

#include <array>
#include <cstring>

namespace tdp::compress {

namespace {

/// Token stream grammar (one "sequence" repeated until input exhausted):
///   u8 token: high nibble = literal run length, low nibble = match length
///             minus kMinMatch; nibble 15 means "extended below"
///   [u8 255]* u8   extension bytes for the literal run (if nibble == 15)
///   literal bytes
///   u16le offset   distance back into the output (only if a match follows;
///                  the final sequence of a stream has literals only and
///                  simply ends the input after its literal bytes)
///   [u8 255]* u8   extension bytes for the match length (if nibble == 15)
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr int kHashBits = 15;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline std::uint32_t read_u32_unaligned(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint32_t hash4(std::uint32_t v) {
  // Fibonacci hashing of the next 4 bytes; 2^kHashBits buckets.
  return (v * 2654435761u) >> (32 - kHashBits);
}

void append_run_length(std::string& out, std::size_t extra) {
  while (extra >= 255) {
    out.push_back(static_cast<char>(0xff));
    extra -= 255;
  }
  out.push_back(static_cast<char>(extra));
}

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string lz_compress(std::string_view input) {
  std::string out;
  out.reserve(input.size() / 2 + 16);
  const char* base = input.data();
  const std::size_t size = input.size();

  // Last 4 bytes are always emitted as literals: a match needs 4 readable
  // bytes at the cursor, and ending on literals is what the decoder's
  // final-sequence rule expects.
  const std::size_t match_limit = size > kMinMatch ? size - kMinMatch : 0;

  std::array<std::uint32_t, 1u << kHashBits> head{};
  head.fill(0xFFFFFFFFu);

  std::size_t literal_start = 0;
  std::size_t pos = 0;
  while (pos < match_limit) {
    const std::uint32_t h = hash4(read_u32_unaligned(base + pos));
    const std::uint32_t candidate = head[h];
    head[h] = static_cast<std::uint32_t>(pos);
    if (candidate == 0xFFFFFFFFu || pos - candidate > kMaxOffset ||
        read_u32_unaligned(base + candidate) != read_u32_unaligned(base + pos)) {
      ++pos;
      continue;
    }
    // Extend the match as far as the input allows.
    std::size_t match_len = kMinMatch;
    while (pos + match_len < size && base[candidate + match_len] == base[pos + match_len]) {
      ++match_len;
    }

    const std::size_t literal_len = pos - literal_start;
    const std::size_t match_code = match_len - kMinMatch;
    const std::uint8_t lit_nibble =
        static_cast<std::uint8_t>(literal_len >= 15 ? 15 : literal_len);
    const std::uint8_t match_nibble =
        static_cast<std::uint8_t>(match_code >= 15 ? 15 : match_code);
    out.push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
    if (lit_nibble == 15) append_run_length(out, literal_len - 15);
    out.append(base + literal_start, literal_len);
    const std::uint16_t offset = static_cast<std::uint16_t>(pos - candidate);
    out.push_back(static_cast<char>(offset & 0xff));
    out.push_back(static_cast<char>(offset >> 8));
    if (match_nibble == 15) append_run_length(out, match_code - 15);

    // Index a couple of positions inside the match so repeated structures
    // keep finding each other, then skip past it.
    const std::size_t match_end = pos + match_len;
    for (std::size_t i = pos + 1; i < match_end && i < match_limit; i += 2) {
      head[hash4(read_u32_unaligned(base + i))] = static_cast<std::uint32_t>(i);
    }
    pos = match_end;
    literal_start = pos;
  }

  // Final literal-only sequence (may be empty input: emit nothing).
  const std::size_t tail = size - literal_start;
  if (size != 0) {
    const std::uint8_t lit_nibble = static_cast<std::uint8_t>(tail >= 15 ? 15 : tail);
    out.push_back(static_cast<char>(lit_nibble << 4));
    if (lit_nibble == 15) append_run_length(out, tail - 15);
    out.append(base + literal_start, tail);
  }
  return out;
}

Result<std::string> lz_decompress(std::string_view input, std::size_t expected_size) {
  if (expected_size > kMaxBlockRawSize) {
    return make_error(ErrorCode::kInvalidArgument, "decompressed size exceeds block limit");
  }
  std::string out;
  out.reserve(expected_size);
  std::size_t pos = 0;
  const std::size_t size = input.size();

  auto read_extended = [&](std::size_t base_len, std::size_t* len) -> bool {
    *len = base_len;
    while (true) {
      if (pos >= size) return false;
      const std::uint8_t byte = static_cast<std::uint8_t>(input[pos++]);
      *len += byte;
      if (byte != 255) return true;
    }
  };

  while (pos < size) {
    const std::uint8_t token = static_cast<std::uint8_t>(input[pos++]);
    std::size_t literal_len = token >> 4;
    if (literal_len == 15 && !read_extended(15, &literal_len)) {
      return make_error(ErrorCode::kInvalidArgument, "truncated literal length");
    }
    if (literal_len > size - pos) {
      return make_error(ErrorCode::kInvalidArgument, "literal run past end of input");
    }
    if (literal_len > expected_size - out.size()) {
      return make_error(ErrorCode::kInvalidArgument, "literal run exceeds declared size");
    }
    out.append(input.data() + pos, literal_len);
    pos += literal_len;
    if (pos == size) break;  // final sequence: literals only

    if (size - pos < 2) {
      return make_error(ErrorCode::kInvalidArgument, "truncated match offset");
    }
    const std::size_t offset = static_cast<std::uint8_t>(input[pos]) |
                               (static_cast<std::size_t>(
                                    static_cast<std::uint8_t>(input[pos + 1]))
                                << 8);
    pos += 2;
    std::size_t match_len = (token & 0x0f) + kMinMatch;
    if ((token & 0x0f) == 15 && !read_extended(15 + kMinMatch, &match_len)) {
      return make_error(ErrorCode::kInvalidArgument, "truncated match length");
    }
    if (offset == 0 || offset > out.size()) {
      return make_error(ErrorCode::kInvalidArgument, "match offset outside produced output");
    }
    if (match_len > expected_size - out.size()) {
      return make_error(ErrorCode::kInvalidArgument, "match exceeds declared size");
    }
    // Byte-by-byte on purpose: overlapping matches (offset < match_len)
    // replicate the just-written bytes, the classic LZ run encoding.
    std::size_t src = out.size() - offset;
    for (std::size_t i = 0; i < match_len; ++i) {
      out.push_back(out[src + i]);
    }
  }
  if (out.size() != expected_size) {
    return make_error(ErrorCode::kInvalidArgument, "decompressed size mismatch");
  }
  return out;
}

}  // namespace tdp::compress
