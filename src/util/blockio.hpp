// blockio.hpp - the block-structured container format shared by the v2
// journal and span export (PR 6, a4io-style). A stream is a sequence of
// self-delimiting blocks, each led by a sync marker:
//
//   u32 magic 0x4A504454 ("TDPJ") | u8 version | u8 codec | u16 flags |
//   u32 raw_len | u32 comp_len | u32 crc32(compressed payload) |
//   comp_len payload bytes
//
// Properties the journal and any streaming reader rely on:
//   * Seekability: a reader positioned at any block boundary (a "sync
//     point") can resume without reading anything before it. Positions are
//     plain byte offsets, cheap to checkpoint and compare.
//   * Resynchronization: after a corrupt region the reader scans forward
//     for the next marker and validates the full header + CRC before
//     trusting it, so marker bytes occurring inside a payload (collisions
//     are legal and expected) cannot fake a block.
//   * Torn tails: a block whose header or payload extends past the end of
//     the stream is dropped - exactly the crash-mid-append case.
//
// The payload is opaque here; the journal packs length-delimited records
// into it (see util/journal.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/compress.hpp"
#include "util/status.hpp"

namespace tdp::blockio {

/// First four bytes of every block, little-endian on the wire.
inline constexpr std::uint32_t kSyncMagic = 0x4A504454u;  // "TDPJ"
/// Header size in bytes: magic + version + codec + flags + raw + comp + crc.
inline constexpr std::size_t kHeaderSize = 4 + 1 + 1 + 2 + 4 + 4 + 4;
/// Current container version. Readers reject blocks from the future
/// instead of misparsing them; resync then skips to the next marker.
inline constexpr std::uint8_t kBlockVersion = 2;
/// Payloads at or above this size attempt LZ compression; smaller ones
/// (single-record durability appends) are stored - the header would cost
/// more than the window saves.
inline constexpr std::size_t kCompressThreshold = 128;

/// Encodes one block: picks Codec::kLz when it actually shrinks the
/// payload (and the payload clears kCompressThreshold), Codec::kStore
/// otherwise. The result is appendable to any byte sink.
std::string encode_block(std::string_view payload);

/// One decoded block plus the cursor state to continue the scan.
struct DecodedBlock {
  std::string payload;
  std::uint64_t offset = 0;       ///< byte offset of this block's marker
  std::uint64_t next_offset = 0;  ///< where the following block starts
};

/// Outcome counters of a scan, for recovery logging and tests.
struct ScanStats {
  std::size_t blocks = 0;            ///< blocks decoded successfully
  std::size_t resyncs = 0;           ///< corrupt regions skipped via marker scan
  std::uint64_t bytes_skipped = 0;   ///< bytes lost to those regions
  bool torn_tail = false;            ///< stream ended inside a block
};

/// Forward reader over a contiguous buffer (journals are read whole at
/// recovery; span streams hand in their mapped bytes). Not thread-safe.
class BlockReader {
 public:
  explicit BlockReader(std::string_view stream, std::uint64_t start_offset = 0)
      : stream_(stream), pos_(start_offset) {}

  /// Decodes the block at the cursor. On corruption, scans forward to the
  /// next marker that validates (header sane AND CRC matches) and returns
  /// that block instead, counting the resync. Returns kNotFound at end of
  /// stream (including a torn trailing block, which sets stats().torn_tail).
  Result<DecodedBlock> next();

  [[nodiscard]] const ScanStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t position() const noexcept { return pos_; }

 private:
  /// Tries to decode exactly at `offset`; no resync.
  Result<DecodedBlock> decode_at(std::uint64_t offset);

  std::string_view stream_;
  std::uint64_t pos_ = 0;
  ScanStats stats_;
};

}  // namespace tdp::blockio
