// status.hpp - error handling primitives for the TDP library.
//
// The SC'03 TDP paper specifies a C API whose calls return success or a
// small set of failure conditions (e.g. "an error is returned if the
// attribute is not contained in the shared space", Section 3.2).  The C++
// core uses Status / Result<T>; the C facade in core/tdp_c.h maps these to
// integer tdp_rc codes.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace tdp {

/// Canonical error codes used across all TDP subsystems.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kNotFound,         ///< attribute / job / process does not exist
  kAlreadyExists,    ///< duplicate id, double-attach, double-init
  kInvalidArgument,  ///< malformed input (submit file, expression, address)
  kTimeout,          ///< blocking op exceeded its deadline
  kConnectionError,  ///< transport-level failure (peer gone, refused)
  kPermissionDenied, ///< e.g. cross-host LASS access (Section 2.1)
  kInvalidState,     ///< operation illegal in current process/job state
  kResourceExhausted,///< no machines match, fd limits, queue full
  kInternal,         ///< bug or unexpected OS error
  kUnsupported,      ///< feature not available on this backend
  kCancelled,        ///< operation aborted by shutdown
  kBusy,             ///< server sheds load; retry after the hinted delay
};

/// Human-readable name for an ErrorCode ("OK", "NOT_FOUND", ...).
const char* error_code_name(ErrorCode code) noexcept;

/// A cheap, copyable success-or-error value.
///
/// Invariant: ok() implies message().empty() is allowed but code is kOk.
class Status {
 public:
  /// Constructs a success status.
  Status() noexcept = default;

  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return Status{}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == ErrorCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OK" or "NOT_FOUND: attribute 'pid' missing".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status make_error(ErrorCode code, std::string message) {
  return Status{code, std::move(message)};
}

/// Exception thrown by Result<T>::value() on error access; also used by
/// constructors that cannot produce a valid object (Core Guidelines C.42).
class TdpError : public std::runtime_error {
 public:
  explicit TdpError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  [[nodiscard]] const Status& status() const noexcept { return status_; }

 private:
  Status status_;
};

/// A value-or-Status result, in the spirit of std::expected (not available
/// in the toolchain's libstdc++ 12).
template <typename T>
class Result {
 public:
  // Intentionally implicit: allows `return value;` and `return status;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.is_ok()) {
      status_ = make_error(ErrorCode::kInternal,
                           "Result constructed from OK status without value");
    }
  }

  [[nodiscard]] bool is_ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] const Status& status() const noexcept { return status_; }

  /// Returns the contained value; throws TdpError when is_ok() is false.
  T& value() & {
    require_ok();
    return *value_;
  }
  const T& value() const& {
    require_ok();
    return *value_;
  }
  T&& value() && {
    require_ok();
    return std::move(*value_);
  }

  T value_or(T fallback) const& {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  void require_ok() const {
    if (!value_.has_value()) throw TdpError(status_);
  }

  std::optional<T> value_;
  Status status_;  // kOk iff value_ engaged
};

/// Propagate-on-error helper: `TDP_RETURN_IF_ERROR(expr);`
#define TDP_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::tdp::Status tdp_status_tmp_ = (expr);        \
    if (!tdp_status_tmp_.is_ok()) return tdp_status_tmp_; \
  } while (false)

}  // namespace tdp
