// log.hpp - thread-safe leveled logging with per-component tags.
//
// Every TDP daemon role (schedd, shadow, startd, starter, paradynd, LASS,
// CASS, ...) logs through a named Logger so interleaved multi-daemon traces
// stay readable -- mirroring how Condor's dæmons each keep their own log.
#pragma once

#include <atomic>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace tdp::log {

enum class Level : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* level_name(Level level) noexcept;

/// Global minimum level; messages below it are dropped before formatting.
void set_level(Level level) noexcept;
Level get_level() noexcept;

/// Redirect log output (default: stderr). The sink receives fully
/// formatted lines without trailing newline. Passing nullptr restores the
/// default sink. Used by tests to capture daemon traces.
using Sink = std::function<void(std::string_view line)>;
void set_sink(Sink sink);

/// Secondary tap, called for every line that clears the global level, in
/// addition to (and after) the sink. The observer runs with no log lock
/// held, so it may take its own leaf locks — the flight recorder
/// (util/flightrec.hpp) uses this to mirror warnings into its event ring.
/// Passing nullptr removes the tap.
using Observer =
    std::function<void(Level, std::string_view component, std::string_view message)>;
void set_observer(Observer observer);

/// Opt-in line prefixes for correlating logs with telemetry: a monotonic
/// microsecond timestamp (telemetry clock, so sim runs log virtual time)
/// and, when a span is active on the calling thread, the short (low 32
/// bits) trace id. Off by default - the format stays byte-identical.
void set_timestamps(bool enabled) noexcept;
bool timestamps_enabled() noexcept;

/// Emit one formatted line: "[LEVEL] component: message", or with
/// set_timestamps(true): "[<micros>us] [<trace8>] [LEVEL] component: ...".
void write(Level level, std::string_view component, std::string_view message);

/// A named logging handle, cheap to copy.
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  template <typename... Args>
  void trace(Args&&... args) const { emit(Level::kTrace, std::forward<Args>(args)...); }
  template <typename... Args>
  void debug(Args&&... args) const { emit(Level::kDebug, std::forward<Args>(args)...); }
  template <typename... Args>
  void info(Args&&... args) const { emit(Level::kInfo, std::forward<Args>(args)...); }
  template <typename... Args>
  void warn(Args&&... args) const { emit(Level::kWarn, std::forward<Args>(args)...); }
  template <typename... Args>
  void error(Args&&... args) const { emit(Level::kError, std::forward<Args>(args)...); }

  [[nodiscard]] const std::string& component() const noexcept { return component_; }

 private:
  template <typename... Args>
  void emit(Level level, Args&&... args) const {
    if (level < get_level()) return;
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    write(level, component_, oss.str());
  }

  std::string component_;
};

}  // namespace tdp::log
