// clock.hpp - time abstraction so the same daemon code runs against real
// wall-clock time (POSIX deployments) or the discrete-event virtual clock
// (src/sim), which is how benches scale to thousands of hosts on one core.
#pragma once

#include <chrono>
#include <cstdint>

namespace tdp {

/// Monotonic time in microseconds since an arbitrary epoch.
using Micros = std::int64_t;

/// Interface over "now"; implementations: RealClock and sim::VirtualClock.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual Micros now_micros() const = 0;
};

/// std::chrono::steady_clock-backed clock.
class RealClock final : public Clock {
 public:
  [[nodiscard]] Micros now_micros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Process-wide shared instance.
  static RealClock& instance() {
    static RealClock clock;
    return clock;
  }
};

/// A manually advanced clock for unit tests of timeout logic.
class ManualClock final : public Clock {
 public:
  [[nodiscard]] Micros now_micros() const override { return now_; }
  void advance_micros(Micros delta) { now_ += delta; }
  void set_micros(Micros value) { now_ = value; }

 private:
  Micros now_ = 0;
};

}  // namespace tdp
