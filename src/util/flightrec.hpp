// flightrec.hpp - the per-daemon black-box flight recorder (PR 9).
//
// PR 5's kill matrix proves the pool *recovers* from daemon deaths; this
// module makes them *explainable*. Every daemon keeps a fixed-size,
// lock-sharded in-memory ring of structured events — log lines at/above a
// threshold, span completions from the PR 4 Tracer, daemon state
// transitions, fault injections, lease transitions, journal replay stats —
// recorded with a relaxed-atomic sequence on the hot path and one short
// leaf-lock critical section per event. The ring is bounded: old events
// are overwritten, never allocated past capacity, so the recorder is safe
// to leave on in production (bench/bench_flightrec.cpp holds the steady-
// state overhead under 5%).
//
// When a daemon dies the ring becomes evidence. Three triggers dump it as
// a *capsule* — a compressed, CRC-checked util/blockio stream:
//   * the daemon itself crashes and its holder still has the recorder
//     (the chaos tier's ownership model: like PR 5 claim journals, the
//     recorder is a shared_ptr owned by the supervisor side, so it
//     survives kill -9 of the daemon object);
//   * the peer that *detects* the death (master / starter / pool lease
//     monitor) dumps the dead daemon's last-known ring on lease expiry;
//   * an operator pokes tdp.control.blackbox.<role>.<host> in the
//     attribute space.
// scripts/blackbox.py merges capsules from multiple daemons into one
// causally-ordered timeline keyed on trace ids; merge_timeline() is the
// same operation in-process for tests.
//
// Locking: Recorder shard mutexes are strict leaves (DESIGN.md §10) — the
// record path never calls out, and capsule encode/dump performs file I/O
// strictly OUTSIDE the shard locks (snapshot first, then serialize), the
// same idiom the PR 5 durability path uses.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.hpp"
#include "util/log.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace tdp::blockio {
struct ScanStats;
}  // namespace tdp::blockio

namespace tdp::journal {
struct ReplayStats;
}  // namespace tdp::journal

namespace tdp::telemetry {
struct SpanRecord;
}  // namespace tdp::telemetry

namespace tdp::flightrec {

/// Attribute an operator puts to request a capsule dump:
/// tdp.control.blackbox.<role>.<host> = <reason>. The holder of the
/// recorder subscribes and answers with a dump.
inline constexpr std::string_view kControlPrefix = "tdp.control.blackbox.";
[[nodiscard]] std::string control_attr(std::string_view role,
                                       std::string_view host);

/// What happened. Values are wire format (capsules on disk name them via
/// kind_name); renumbering breaks archived capsules.
enum class EventKind : std::uint8_t {
  kLog = 0,     ///< a log line at/above the recorder's threshold
  kSpan = 1,    ///< a finished Tracer span (what=name, detail=duration)
  kState = 2,   ///< daemon lifecycle transition (start, crash, recover...)
  kFault = 3,   ///< injected network fault (net/faulty.hpp observer)
  kLease = 4,   ///< lease activity: beat, degraded, expired
  kReplay = 5,  ///< journal replay stats after a recovery
  kControl = 6, ///< capsule trigger bookkeeping (operator poke, dump)
};

[[nodiscard]] const char* kind_name(EventKind kind) noexcept;
/// Reverse of kind_name; kInvalidArgument on unknown names.
Result<EventKind> parse_kind(std::string_view name);

/// One ring entry. `seq` is the recorder-wide record order (gaps mean the
/// ring overwrote); trace/span ids key the cross-daemon merge.
struct Event {
  EventKind kind = EventKind::kLog;
  std::uint8_t severity = 0;  ///< log::Level for kLog events, else 0
  std::uint64_t seq = 0;
  Micros at_micros = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::string what;    ///< short tag: component, span name, "beat", ...
  std::string detail;  ///< free-form payload
};

struct Config {
  std::string role;  ///< daemon role: "startd", "schedd", "paradynd", ...
  std::string host;  ///< machine the daemon runs on
  /// Total ring capacity (events), split across shards. Old events are
  /// overwritten once a shard's slice is full.
  std::size_t capacity = 4096;
  std::size_t shards = 4;
  /// kLog events below this level are dropped at the door.
  log::Level log_threshold = log::Level::kWarn;
  /// Time source for event stamps; null = RealClock (sim runs inject).
  const Clock* clock = nullptr;
};

/// A decoded capsule: the dump header plus every event that survived.
struct Capsule {
  std::string role;
  std::string host;
  std::string reason;       ///< dump trigger ("crash", "lease-expired", ...)
  Micros dumped_at = 0;
  std::uint64_t recorded = 0;     ///< events ever recorded at dump time
  std::uint64_t overwritten = 0;  ///< of those, lost to ring wrap
  std::vector<Event> events;      ///< ascending seq
};

/// One merged-timeline entry: an event plus which daemon said it.
struct TimelineEvent {
  std::string role;
  std::string host;
  Event event;
};

class Recorder {
 public:
  explicit Recorder(Config config);

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  [[nodiscard]] const std::string& role() const noexcept {
    return config_.role;
  }
  [[nodiscard]] const std::string& host() const noexcept {
    return config_.host;
  }

  /// Master switch for the overhead bench; disabled record() returns
  /// before touching the sequence counter.
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// The core hot path: stamps, sequences (one relaxed fetch_add), and
  /// stores the event in its shard's ring slot under that shard's leaf
  /// mutex. Never allocates beyond the strings it is handed, never calls
  /// out, never takes two locks.
  void record(EventKind kind, std::string what, std::string detail,
              std::uint64_t trace_id = 0, std::uint64_t span_id = 0,
              std::uint8_t severity = 0);

  // Typed conveniences over record() — one per event source.
  void log_event(log::Level level, std::string_view component,
                 std::string_view message);
  void state(std::string_view transition, std::string_view detail,
             std::uint64_t trace_id = 0, std::uint64_t span_id = 0);
  void fault(std::string_view kind, std::string_view detail);
  void lease(std::string_view what, std::string_view detail);
  void span(const telemetry::SpanRecord& rec);
  void replay(std::string_view source, const journal::ReplayStats& stats);

  /// Events ever recorded / lost to ring overwrite (relaxed counters).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return next_seq_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t overwritten() const noexcept;

  /// Every event currently in the ring, ascending seq. Locks shards one
  /// at a time (never two locks at once); the result is advisory across
  /// shards, exact within each, like Registry::snapshot().
  [[nodiscard]] std::vector<Event> snapshot() const;

  /// Serializes the current ring as a capsule byte stream: a meta block
  /// followed by event blocks (kEventsPerBlock events each), every block
  /// compressed + CRC-guarded by util/blockio. Snapshot happens under the
  /// shard locks, serialization and any I/O strictly after.
  [[nodiscard]] std::string encode_capsule(std::string_view reason) const;

  /// encode_capsule + atomic-ish file write (whole capsule in one stream).
  /// Records a kControl event ("dump", path) in the ring first so the
  /// capsule itself shows why it exists.
  Status dump(const std::string& path, std::string_view reason);

  /// Events per capsule block: small enough that a torn tail costs a
  /// bounded slice, big enough that the block framing amortizes.
  static constexpr std::size_t kEventsPerBlock = 256;

 private:
  struct Shard {
    mutable Mutex mutex{"flightrec::Recorder::Shard::mutex"};
    std::vector<Event> ring TDP_GUARDED_BY(mutex);  ///< fixed size, wraps
    std::uint64_t written TDP_GUARDED_BY(mutex) = 0;
  };

  [[nodiscard]] Micros now() const noexcept;

  Config config_;
  std::size_t per_shard_ = 0;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> next_seq_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Decodes a capsule byte stream. Damaged regions resync via the block
/// sync marker; a capsule truncated mid-block still yields every complete
/// event, with `stats` (optional) reporting blocks, resyncs, skipped bytes
/// and the torn tail so a reader can account for loss instead of silently
/// merging. kInvalidArgument when the stream does not start with a capsule
/// meta block.
Result<Capsule> decode_capsule(std::string_view bytes,
                               blockio::ScanStats* stats = nullptr);

/// Reads and decodes a capsule file.
Result<Capsule> read_capsule(const std::string& path,
                             blockio::ScanStats* stats = nullptr);

/// Merges capsules from multiple daemons into one causally-ordered
/// timeline: ascending event time, ties broken by (role, host, seq) so the
/// order is deterministic. The in-process twin of scripts/blackbox.py.
std::vector<TimelineEvent> merge_timeline(const std::vector<Capsule>& capsules);

/// Registers `recorder` to receive every log line at/above its threshold
/// (via log::set_observer; all registered recorders see all lines — in a
/// multi-daemon process the component tag disambiguates). Weak reference:
/// a destroyed recorder just stops receiving. unregister to stop early.
void register_log_recorder(const std::shared_ptr<Recorder>& recorder);
void unregister_log_recorder(const Recorder* recorder);

}  // namespace tdp::flightrec
