// health.hpp - the declarative pool health engine (PR 9).
//
// RED-style SLO rules (rate / error / duration) evaluated over telemetry
// Registry snapshots: each rule watches one metric through a statistic
// (current value, per-second rate, or a latency percentile), compares it
// against warn/critical thresholds, and the engine folds every verdict to
// one overall severity (worst wins). Rules are written in a one-line text
// grammar so deployments can ship them as configuration:
//
//   <name>: <metric> <stat> <above|below> warn=<x> critical=<y>
//
//   stat  := value | rate | p50 | p95 | p99
//   e.g.  "err-rate: proxy.errors rate above warn=5 critical=50"
//         "host-up: machine.alive value below warn=0.9 critical=0.4"
//
// Reports publish through the attribute space as
// tdp.health.<role>.<host> = "<severity> rule=<name> value=<v>" and fold
// bottom-up over the hierarchical CASS exactly like PR 7's telemetry
// rollups (mrnet::HierarchicalCass::rollup_health), so the root sees
// O(fanout) health writes and tdptop's alerts pane reads one prefix.
//
// Locking: Engine::mutex_ is a strict leaf — evaluate() computes under it
// and never calls out (DESIGN.md §10).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"
#include "util/telemetry.hpp"

namespace tdp::health {

/// Attribute prefix health reports publish under.
inline constexpr std::string_view kHealthPrefix = "tdp.health.";
[[nodiscard]] std::string health_attr(std::string_view role,
                                      std::string_view host);

enum class Severity : std::uint8_t { kOk = 0, kWarn = 1, kCritical = 2 };

[[nodiscard]] const char* severity_name(Severity severity) noexcept;

/// Worst-wins fold, the bottom-up aggregation operator.
[[nodiscard]] constexpr Severity fold(Severity a, Severity b) noexcept {
  return a < b ? b : a;
}

/// One declarative threshold rule.
struct Rule {
  enum class Stat : std::uint8_t { kValue, kRate, kP50, kP95, kP99 };
  enum class Dir : std::uint8_t { kAbove, kBelow };

  std::string name;    ///< rule id, shows up in the published report
  std::string metric;  ///< telemetry Sample name it watches
  Stat stat = Stat::kValue;
  Dir dir = Dir::kAbove;
  double warn = 0.0;
  double critical = 0.0;
};

/// Parses the one-line grammar above. kInvalidArgument with a pointed
/// message on anything malformed.
Result<Rule> parse_rule(std::string_view text);
/// Round-trips parse_rule.
std::string format_rule(const Rule& rule);

/// One rule's outcome for one evaluation.
struct Verdict {
  std::string rule;
  std::string metric;
  Severity severity = Severity::kOk;
  double value = 0.0;  ///< the statistic the thresholds were compared to
};

/// One evaluation's fold: overall severity plus the verdict per rule whose
/// metric was present (rules watching absent metrics are skipped — a
/// daemon that never registered the metric is not thereby critical).
struct Report {
  Severity severity = Severity::kOk;
  /// Name and value of the worst firing rule (empty when ok).
  std::string firing;
  double firing_value = 0.0;
  std::vector<Verdict> verdicts;

  /// "ok" | "<warn|critical> rule=<name> value=<v>" — the published form.
  [[nodiscard]] std::string encode() const;
};

/// Severity of an encoded report ("critical rule=..." -> kCritical).
/// kInvalidArgument on an unknown leading token.
Result<Severity> parse_severity(std::string_view encoded);

/// Evaluates a rule set against successive registry snapshots. Stateful:
/// rate rules remember the previous (value, time) per metric, so the same
/// Engine instance must see a monotonic clock. Thread-safe; the mutex is a
/// leaf.
class Engine {
 public:
  Engine() = default;

  void add_rule(Rule rule);
  /// Parses and adds; returns the parse error unchanged.
  Status add_rule(std::string_view text);
  [[nodiscard]] std::size_t rule_count() const;

  /// Evaluates every rule against `samples` at time `now`. Rate rules
  /// yield 0 on their first sighting of a metric (no interval yet) and
  /// whenever now <= the previous stamp.
  [[nodiscard]] Report evaluate(const std::vector<telemetry::Sample>& samples,
                                Micros now);

 private:
  struct RateState {
    Micros at = 0;
    double value = 0.0;
  };

  mutable Mutex mutex_{"health::Engine::mutex_"};
  std::vector<Rule> rules_ TDP_GUARDED_BY(mutex_);
  std::map<std::string, RateState> previous_ TDP_GUARDED_BY(mutex_);
};

}  // namespace tdp::health
