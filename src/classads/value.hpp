// value.hpp - runtime values of the ClassAd-lite expression language.
//
// MiniCondor's matchmaker (Figure 4's match_maker entity) evaluates
// Requirements/Rank expressions over pairs of classified advertisements,
// following the semantics of Condor's ClassAd language in miniature:
// numbers, booleans, strings, plus the UNDEFINED and ERROR values that give
// ClassAds their three-valued logic (an attribute missing from either ad
// evaluates to UNDEFINED, not a crash — essential when heterogeneous
// machines advertise different attribute sets).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "util/status.hpp"

namespace tdp::classads {

enum class ValueKind : std::uint8_t {
  kUndefined = 0,
  kError,
  kBool,
  kInt,
  kReal,
  kString,
};

/// A ClassAd runtime value. Regular value type.
class Value {
 public:
  Value() : kind_(ValueKind::kUndefined) {}

  static Value undefined() { return Value(); }
  static Value error() {
    Value value;
    value.kind_ = ValueKind::kError;
    return value;
  }
  static Value boolean(bool b) {
    Value value;
    value.kind_ = ValueKind::kBool;
    value.data_ = b;
    return value;
  }
  static Value integer(std::int64_t i) {
    Value value;
    value.kind_ = ValueKind::kInt;
    value.data_ = i;
    return value;
  }
  static Value real(double d) {
    Value value;
    value.kind_ = ValueKind::kReal;
    value.data_ = d;
    return value;
  }
  static Value string(std::string s) {
    Value value;
    value.kind_ = ValueKind::kString;
    value.data_ = std::move(s);
    return value;
  }

  [[nodiscard]] ValueKind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_undefined() const noexcept {
    return kind_ == ValueKind::kUndefined;
  }
  [[nodiscard]] bool is_error() const noexcept { return kind_ == ValueKind::kError; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == ValueKind::kInt || kind_ == ValueKind::kReal;
  }

  /// Accessors; only valid for the matching kind.
  [[nodiscard]] bool as_bool() const { return std::get<bool>(data_); }
  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(data_); }
  [[nodiscard]] double as_real() const { return std::get<double>(data_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(data_);
  }

  /// Numeric view: ints promote to double; non-numbers are an error the
  /// caller must have excluded.
  [[nodiscard]] double to_double() const {
    return kind_ == ValueKind::kInt ? static_cast<double>(as_int()) : as_real();
  }

  /// Strict truth for Requirements evaluation: only TRUE matches. Integers
  /// follow Condor: non-zero is true. UNDEFINED/ERROR/strings are not true.
  [[nodiscard]] bool is_true() const noexcept {
    if (kind_ == ValueKind::kBool) return std::get<bool>(data_);
    if (kind_ == ValueKind::kInt) return std::get<std::int64_t>(data_) != 0;
    if (kind_ == ValueKind::kReal) return std::get<double>(data_) != 0.0;
    return false;
  }

  /// Literal rendering ("true", "42", "1.5", "\"str\"", "undefined", "error").
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.kind_ == b.kind_ && a.data_ == b.data_;
  }

 private:
  ValueKind kind_;
  std::variant<std::monostate, bool, std::int64_t, double, std::string> data_;
};

const char* value_kind_name(ValueKind kind) noexcept;

}  // namespace tdp::classads
