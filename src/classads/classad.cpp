#include "classads/classad.hpp"

#include "util/string_util.hpp"

namespace tdp::classads {

std::string ClassAd::canonical(const std::string& name) { return str::to_lower(name); }

Status ClassAd::insert(const std::string& name, const std::string& expression) {
  auto parsed = parse_expr(expression);
  if (!parsed.is_ok()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "attribute '" + name + "': " + parsed.status().message());
  }
  const std::string key = canonical(name);
  attributes_[key] = std::move(parsed).value();
  display_names_[key] = name;
  return Status::ok();
}

void ClassAd::insert_int(const std::string& name, std::int64_t value) {
  insert(name, std::to_string(value));
}

void ClassAd::insert_real(const std::string& name, double value) {
  insert(name, std::to_string(value));
}

void ClassAd::insert_bool(const std::string& name, bool value) {
  insert(name, value ? "true" : "false");
}

void ClassAd::insert_string(const std::string& name, const std::string& value) {
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"' || c == '\\') quoted += '\\';
    quoted += c;
  }
  quoted += '"';
  insert(name, quoted);
}

bool ClassAd::has(const std::string& name) const {
  return attributes_.find(canonical(name)) != attributes_.end();
}

void ClassAd::erase(const std::string& name) {
  attributes_.erase(canonical(name));
  display_names_.erase(canonical(name));
}

ExprPtr ClassAd::lookup(const std::string& name) const {
  auto it = attributes_.find(canonical(name));
  return it == attributes_.end() ? nullptr : it->second;
}

Value ClassAd::evaluate(const std::string& name, const ClassAd* target) const {
  ExprPtr expr = lookup(name);
  if (!expr) return Value::undefined();
  EvalContext context;
  context.my = this;
  context.target = target;
  return expr->evaluate(context);
}

Result<Value> ClassAd::evaluate_expression(const std::string& expression,
                                           const ClassAd* target) const {
  auto parsed = parse_expr(expression);
  if (!parsed.is_ok()) return parsed.status();
  EvalContext context;
  context.my = this;
  context.target = target;
  return parsed.value()->evaluate(context);
}

std::vector<std::string> ClassAd::names() const {
  std::vector<std::string> out;
  out.reserve(attributes_.size());
  for (const auto& [key, expr] : attributes_) out.push_back(key);
  return out;
}

std::string ClassAd::to_string() const {
  std::string out = "[ ";
  for (const auto& [key, expr] : attributes_) {
    auto display = display_names_.find(key);
    out += (display != display_names_.end() ? display->second : key);
    out += " = ";
    out += expr->to_string();
    out += "; ";
  }
  out += "]";
  return out;
}

Result<ClassAd> ClassAd::parse(const std::string& text) {
  std::string body = str::trim(text);
  if (body.size() < 2 || body.front() != '[' || body.back() != ']') {
    return make_error(ErrorCode::kInvalidArgument, "classad must be enclosed in [ ]");
  }
  body = body.substr(1, body.size() - 2);

  ClassAd ad;
  // Split on ';' at depth zero (strings may contain ';').
  std::string current;
  bool in_string = false;
  std::vector<std::string> entries;
  for (std::size_t i = 0; i < body.size(); ++i) {
    char c = body[i];
    if (c == '"' && (i == 0 || body[i - 1] != '\\')) in_string = !in_string;
    if (c == ';' && !in_string) {
      entries.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  entries.push_back(current);

  for (const std::string& raw : entries) {
    std::string entry = str::trim(raw);
    if (entry.empty()) continue;
    std::size_t eq = entry.find('=');
    // Avoid splitting on ==, =?=, =!=, <=, >=, != by requiring the '=' to
    // be a plain assignment: not followed by '=', '?', '!' and not preceded
    // by '<', '>', '!', '='.
    while (eq != std::string::npos) {
      bool ok = true;
      if (eq + 1 < entry.size() &&
          (entry[eq + 1] == '=' || entry[eq + 1] == '?' || entry[eq + 1] == '!')) {
        ok = false;
      }
      if (eq > 0 && (entry[eq - 1] == '<' || entry[eq - 1] == '>' ||
                     entry[eq - 1] == '!' || entry[eq - 1] == '=' ||
                     entry[eq - 1] == '?')) {
        ok = false;
      }
      if (ok) break;
      eq = entry.find('=', eq + 1);
    }
    if (eq == std::string::npos) {
      return make_error(ErrorCode::kInvalidArgument,
                        "classad entry missing '=': " + entry);
    }
    std::string name = str::trim(entry.substr(0, eq));
    std::string expression = str::trim(entry.substr(eq + 1));
    if (name.empty()) {
      return make_error(ErrorCode::kInvalidArgument, "empty attribute name");
    }
    TDP_RETURN_IF_ERROR(ad.insert(name, expression));
  }
  return ad;
}

bool symmetric_match(const ClassAd& left, const ClassAd& right) {
  auto requirement_holds = [](const ClassAd& my, const ClassAd& target) {
    if (!my.has(ads::kRequirements)) return true;  // absent = unconstrained
    return my.evaluate(ads::kRequirements, &target).is_true();
  };
  return requirement_holds(left, right) && requirement_holds(right, left);
}

double rank_of(const ClassAd& ranker, const ClassAd& candidate) {
  Value rank = ranker.evaluate(ads::kRank, &candidate);
  if (rank.is_number()) return rank.to_double();
  if (rank.kind() == ValueKind::kBool) return rank.as_bool() ? 1.0 : 0.0;
  return 0.0;
}

}  // namespace tdp::classads
