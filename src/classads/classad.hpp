// classad.hpp - the classified advertisement and the matchmaking kernel.
//
// Figure 4: "the match_maker ... is responsible for locating compatible
// resource requests with offers. When a compatible match is found, the
// matchmaker notifies the corresponding job and machine." A ClassAd is one
// side of that negotiation: job ads carry Requirements/Rank over machine
// attributes, machine ads carry Requirements/Rank over job attributes, and
// a match requires BOTH Requirements to evaluate true (the symmetric
// gangmatch Condor performs).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "classads/expr.hpp"

namespace tdp::classads {

/// An attribute table whose values are unevaluated expressions. Attribute
/// names are case-insensitive, as in Condor.
class ClassAd {
 public:
  ClassAd() = default;

  /// Inserts or replaces an attribute with a parsed expression.
  Status insert(const std::string& name, const std::string& expression);

  /// Typed conveniences that insert literal values.
  void insert_int(const std::string& name, std::int64_t value);
  void insert_real(const std::string& name, double value);
  void insert_bool(const std::string& name, bool value);
  void insert_string(const std::string& name, const std::string& value);

  [[nodiscard]] bool has(const std::string& name) const;
  void erase(const std::string& name);
  [[nodiscard]] std::size_t size() const noexcept { return attributes_.size(); }

  /// The raw expression bound to `name`, or nullptr.
  [[nodiscard]] ExprPtr lookup(const std::string& name) const;

  /// Evaluates attribute `name` with this ad as MY and `target` as TARGET.
  /// Missing attributes evaluate to UNDEFINED.
  [[nodiscard]] Value evaluate(const std::string& name,
                               const ClassAd* target = nullptr) const;

  /// Evaluates an arbitrary expression string against this ad.
  Result<Value> evaluate_expression(const std::string& expression,
                                    const ClassAd* target = nullptr) const;

  /// Sorted attribute names (canonical lower-case form).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Renders "[ a = 1; b = \"x\"; ]" in sorted order.
  [[nodiscard]] std::string to_string() const;

  /// Parses the to_string format back into an ad.
  static Result<ClassAd> parse(const std::string& text);

 private:
  static std::string canonical(const std::string& name);

  std::map<std::string, ExprPtr> attributes_;  // keys canonicalized
  std::map<std::string, std::string> display_names_;
};

/// Symmetric match: my.Requirements true against target AND vice versa.
/// A missing Requirements attribute counts as true (Condor's default).
bool symmetric_match(const ClassAd& left, const ClassAd& right);

/// Rank of `candidate` from `ranker`'s point of view; UNDEFINED/ERROR and
/// non-numeric ranks count as 0.0 (Condor semantics).
double rank_of(const ClassAd& ranker, const ClassAd& candidate);

/// Well-known attribute names used by MiniCondor ads.
namespace ads {
inline constexpr const char* kRequirements = "requirements";
inline constexpr const char* kRank = "rank";
inline constexpr const char* kMyType = "mytype";
inline constexpr const char* kName = "name";
inline constexpr const char* kMemory = "memory";
inline constexpr const char* kCpus = "cpus";
inline constexpr const char* kArch = "arch";
inline constexpr const char* kOpSys = "opsys";
inline constexpr const char* kState = "state";
inline constexpr const char* kLoadAvg = "loadavg";
}  // namespace ads

}  // namespace tdp::classads
