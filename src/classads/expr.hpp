// expr.hpp - AST, lexer and recursive-descent parser for ClassAd-lite.
//
// Grammar (precedence climbing, loosest first):
//   expr     := or ( '?' expr ':' expr )?
//   or       := and ( '||' and )*
//   and      := cmp ( '&&' cmp )*
//   cmp      := add ( ('=='|'!='|'<'|'<='|'>'|'>='|'=?='|'=!=') add )*
//   add      := mul ( ('+'|'-') mul )*
//   mul      := unary ( ('*'|'/'|'%') unary )*
//   unary    := ('!'|'-')* primary
//   primary  := NUMBER | STRING | 'true' | 'false' | 'undefined' | 'error'
//             | IDENT ('.' IDENT)? | '(' expr ')' | IDENT '(' args ')'
//
// Scoped references MY.x / TARGET.x select which advertisement an
// attribute resolves against during matchmaking; a bare name tries MY
// first, then TARGET (Condor's lookup order). '=?=' / '=!=' are the
// meta-(un)equal operators: they never yield UNDEFINED.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "classads/value.hpp"

namespace tdp::classads {

class ClassAd;

/// Evaluation environment: the ad being evaluated ("MY") and the candidate
/// it is matched against ("TARGET", may be null outside matchmaking).
struct EvalContext {
  const ClassAd* my = nullptr;
  const ClassAd* target = nullptr;
  /// Recursion guard against self-referential attribute definitions.
  mutable int depth = 0;
  static constexpr int kMaxDepth = 64;
};

/// Abstract expression node.
class Expr {
 public:
  virtual ~Expr() = default;
  [[nodiscard]] virtual Value evaluate(const EvalContext& context) const = 0;
  /// Unparses to (canonical) source form, for diagnostics and round trips.
  [[nodiscard]] virtual std::string to_string() const = 0;
};

using ExprPtr = std::shared_ptr<const Expr>;

/// Parses one expression. kInvalidArgument with a position-annotated
/// message on syntax errors.
Result<ExprPtr> parse_expr(const std::string& source);

/// Convenience: parse + evaluate without a target ad.
Result<Value> evaluate_standalone(const std::string& source);

/// One `attr == literal` conjunct from the top-level && spine of an
/// expression, usable as an index probe during matchmaking: if the whole
/// expression evaluates TRUE, every such conjunct evaluated TRUE (a false
/// or undefined conjunct can never be &&-ed into TRUE), so candidates can
/// be pruned to the ads whose `attr` equals `value` without changing any
/// match outcome.
struct IndexableEq {
  std::string attribute;       ///< canonical (lower-case) attribute name
  /// Written TARGET.attr — always resolves on the candidate ad. A bare
  /// name resolves MY-first: it only constrains the candidate when the
  /// evaluating ad lacks the attribute (the caller must check).
  bool target_scoped = false;
  Value value;                 ///< the literal compared against
};

/// Harvests every indexable equality from `expr` (empty for non-&& shapes,
/// MY.-scoped references, or non-literal operands — those just fall back
/// to a full scan).
[[nodiscard]] std::vector<IndexableEq> indexable_equalities(const ExprPtr& expr);

/// The value of a literal node (an attribute bound to a constant), or
/// nullopt for any computed expression. Index keys may only be built from
/// literals: a computed value could evaluate differently once a TARGET is
/// in scope.
[[nodiscard]] std::optional<Value> literal_value(const ExprPtr& expr);

}  // namespace tdp::classads
