// expr.hpp - AST, lexer and recursive-descent parser for ClassAd-lite.
//
// Grammar (precedence climbing, loosest first):
//   expr     := or ( '?' expr ':' expr )?
//   or       := and ( '||' and )*
//   and      := cmp ( '&&' cmp )*
//   cmp      := add ( ('=='|'!='|'<'|'<='|'>'|'>='|'=?='|'=!=') add )*
//   add      := mul ( ('+'|'-') mul )*
//   mul      := unary ( ('*'|'/'|'%') unary )*
//   unary    := ('!'|'-')* primary
//   primary  := NUMBER | STRING | 'true' | 'false' | 'undefined' | 'error'
//             | IDENT ('.' IDENT)? | '(' expr ')' | IDENT '(' args ')'
//
// Scoped references MY.x / TARGET.x select which advertisement an
// attribute resolves against during matchmaking; a bare name tries MY
// first, then TARGET (Condor's lookup order). '=?=' / '=!=' are the
// meta-(un)equal operators: they never yield UNDEFINED.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "classads/value.hpp"

namespace tdp::classads {

class ClassAd;

/// Evaluation environment: the ad being evaluated ("MY") and the candidate
/// it is matched against ("TARGET", may be null outside matchmaking).
struct EvalContext {
  const ClassAd* my = nullptr;
  const ClassAd* target = nullptr;
  /// Recursion guard against self-referential attribute definitions.
  mutable int depth = 0;
  static constexpr int kMaxDepth = 64;
};

/// Abstract expression node.
class Expr {
 public:
  virtual ~Expr() = default;
  [[nodiscard]] virtual Value evaluate(const EvalContext& context) const = 0;
  /// Unparses to (canonical) source form, for diagnostics and round trips.
  [[nodiscard]] virtual std::string to_string() const = 0;
};

using ExprPtr = std::shared_ptr<const Expr>;

/// Parses one expression. kInvalidArgument with a position-annotated
/// message on syntax errors.
Result<ExprPtr> parse_expr(const std::string& source);

/// Convenience: parse + evaluate without a target ad.
Result<Value> evaluate_standalone(const std::string& source);

}  // namespace tdp::classads
