#include "classads/expr.hpp"

#include <cctype>
#include <cmath>
#include <functional>

#include "classads/classad.hpp"
#include "util/string_util.hpp"

namespace tdp::classads {

const char* value_kind_name(ValueKind kind) noexcept {
  switch (kind) {
    case ValueKind::kUndefined: return "undefined";
    case ValueKind::kError: return "error";
    case ValueKind::kBool: return "bool";
    case ValueKind::kInt: return "int";
    case ValueKind::kReal: return "real";
    case ValueKind::kString: return "string";
  }
  return "?";
}

std::string Value::to_string() const {
  switch (kind_) {
    case ValueKind::kUndefined: return "undefined";
    case ValueKind::kError: return "error";
    case ValueKind::kBool: return as_bool() ? "true" : "false";
    case ValueKind::kInt: return std::to_string(as_int());
    case ValueKind::kReal: {
      std::string out = std::to_string(as_real());
      return out;
    }
    case ValueKind::kString: {
      std::string out = "\"";
      for (char c : as_string()) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
      return out;
    }
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

enum class Tok {
  kEnd, kNumber, kString, kIdent,
  kLParen, kRParen, kComma, kDot,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kLt, kLe, kGt, kGe, kEq, kNe, kMetaEq, kMetaNe,
  kAnd, kOr, kNot,
  kQuestion, kColon,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;      // ident / string body
  double number = 0;     // numeric literal
  bool is_integer = false;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> out;
    while (true) {
      skip_space();
      Token token;
      token.pos = pos_;
      if (pos_ >= src_.size()) {
        token.kind = Tok::kEnd;
        out.push_back(token);
        return out;
      }
      char c = src_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && pos_ + 1 < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
        TDP_RETURN_IF_ERROR(lex_number(&token));
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        token.kind = Tok::kIdent;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '_')) {
          token.text += src_[pos_++];
        }
      } else if (c == '"') {
        TDP_RETURN_IF_ERROR(lex_string(&token));
      } else {
        TDP_RETURN_IF_ERROR(lex_operator(&token));
      }
      out.push_back(std::move(token));
    }
  }

 private:
  void skip_space() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
  }

  Status lex_number(Token* token) {
    std::size_t start = pos_;
    bool real = false;
    while (pos_ < src_.size() &&
           (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '.' || src_[pos_] == 'e' || src_[pos_] == 'E' ||
            ((src_[pos_] == '+' || src_[pos_] == '-') && pos_ > start &&
             (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E')))) {
      if (src_[pos_] == '.' || src_[pos_] == 'e' || src_[pos_] == 'E') real = true;
      ++pos_;
    }
    try {
      token->number = std::stod(src_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      return make_error(ErrorCode::kInvalidArgument,
                        "bad numeric literal at position " + std::to_string(start));
    }
    token->kind = Tok::kNumber;
    token->is_integer = !real;
    return Status::ok();
  }

  Status lex_string(Token* token) {
    ++pos_;  // opening quote
    token->kind = Tok::kString;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      token->text += src_[pos_++];
    }
    if (pos_ >= src_.size()) {
      return make_error(ErrorCode::kInvalidArgument,
                        "unterminated string at position " + std::to_string(token->pos));
    }
    ++pos_;  // closing quote
    return Status::ok();
  }

  Status lex_operator(Token* token) {
    auto two = [&](char a, char b) {
      return pos_ + 1 < src_.size() && src_[pos_] == a && src_[pos_ + 1] == b;
    };
    auto three = [&](const char* s) {
      return pos_ + 2 < src_.size() && src_[pos_] == s[0] && src_[pos_ + 1] == s[1] &&
             src_[pos_ + 2] == s[2];
    };
    if (three("=?=")) { token->kind = Tok::kMetaEq; pos_ += 3; return Status::ok(); }
    if (three("=!=")) { token->kind = Tok::kMetaNe; pos_ += 3; return Status::ok(); }
    if (two('&', '&')) { token->kind = Tok::kAnd; pos_ += 2; return Status::ok(); }
    if (two('|', '|')) { token->kind = Tok::kOr; pos_ += 2; return Status::ok(); }
    if (two('=', '=')) { token->kind = Tok::kEq; pos_ += 2; return Status::ok(); }
    if (two('!', '=')) { token->kind = Tok::kNe; pos_ += 2; return Status::ok(); }
    if (two('<', '=')) { token->kind = Tok::kLe; pos_ += 2; return Status::ok(); }
    if (two('>', '=')) { token->kind = Tok::kGe; pos_ += 2; return Status::ok(); }
    switch (src_[pos_]) {
      case '(': token->kind = Tok::kLParen; break;
      case ')': token->kind = Tok::kRParen; break;
      case ',': token->kind = Tok::kComma; break;
      case '.': token->kind = Tok::kDot; break;
      case '+': token->kind = Tok::kPlus; break;
      case '-': token->kind = Tok::kMinus; break;
      case '*': token->kind = Tok::kStar; break;
      case '/': token->kind = Tok::kSlash; break;
      case '%': token->kind = Tok::kPercent; break;
      case '<': token->kind = Tok::kLt; break;
      case '>': token->kind = Tok::kGt; break;
      case '!': token->kind = Tok::kNot; break;
      case '?': token->kind = Tok::kQuestion; break;
      case ':': token->kind = Tok::kColon; break;
      default:
        return make_error(ErrorCode::kInvalidArgument,
                          std::string("unexpected character '") + src_[pos_] +
                              "' at position " + std::to_string(pos_));
    }
    ++pos_;
    return Status::ok();
  }

  const std::string& src_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// AST nodes
// ---------------------------------------------------------------------

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}
  Value evaluate(const EvalContext&) const override { return value_; }
  std::string to_string() const override { return value_.to_string(); }

  const Value& value() const noexcept { return value_; }

 private:
  Value value_;
};

enum class Scope { kAuto, kMy, kTarget };

class AttrRefExpr final : public Expr {
 public:
  AttrRefExpr(Scope scope, std::string name)
      : scope_(scope), name_(std::move(name)) {}

  Value evaluate(const EvalContext& context) const override;

  std::string to_string() const override {
    switch (scope_) {
      case Scope::kMy: return "MY." + name_;
      case Scope::kTarget: return "TARGET." + name_;
      case Scope::kAuto: return name_;
    }
    return name_;
  }

  Scope scope() const noexcept { return scope_; }
  const std::string& name() const noexcept { return name_; }

 private:
  Scope scope_;
  std::string name_;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(Tok op, ExprPtr operand) : op_(op), operand_(std::move(operand)) {}

  Value evaluate(const EvalContext& context) const override {
    Value value = operand_->evaluate(context);
    if (value.is_error()) return Value::error();
    if (op_ == Tok::kNot) {
      if (value.is_undefined()) return Value::undefined();
      if (value.kind() == ValueKind::kString) return Value::error();
      return Value::boolean(!value.is_true());
    }
    // Unary minus.
    if (value.is_undefined()) return Value::undefined();
    if (value.kind() == ValueKind::kInt) return Value::integer(-value.as_int());
    if (value.kind() == ValueKind::kReal) return Value::real(-value.as_real());
    return Value::error();
  }

  std::string to_string() const override {
    return std::string(op_ == Tok::kNot ? "!" : "-") + operand_->to_string();
  }

 private:
  Tok op_;
  ExprPtr operand_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(Tok op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Value evaluate(const EvalContext& context) const override;

  std::string to_string() const override {
    return "(" + lhs_->to_string() + " " + op_name() + " " + rhs_->to_string() + ")";
  }

  Tok op() const noexcept { return op_; }
  const ExprPtr& lhs() const noexcept { return lhs_; }
  const ExprPtr& rhs() const noexcept { return rhs_; }

 private:
  const char* op_name() const {
    switch (op_) {
      case Tok::kPlus: return "+";
      case Tok::kMinus: return "-";
      case Tok::kStar: return "*";
      case Tok::kSlash: return "/";
      case Tok::kPercent: return "%";
      case Tok::kLt: return "<";
      case Tok::kLe: return "<=";
      case Tok::kGt: return ">";
      case Tok::kGe: return ">=";
      case Tok::kEq: return "==";
      case Tok::kNe: return "!=";
      case Tok::kMetaEq: return "=?=";
      case Tok::kMetaNe: return "=!=";
      case Tok::kAnd: return "&&";
      case Tok::kOr: return "||";
      default: return "?";
    }
  }

  Tok op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class TernaryExpr final : public Expr {
 public:
  TernaryExpr(ExprPtr cond, ExprPtr then_branch, ExprPtr else_branch)
      : cond_(std::move(cond)), then_(std::move(then_branch)),
        else_(std::move(else_branch)) {}

  Value evaluate(const EvalContext& context) const override {
    Value cond = cond_->evaluate(context);
    if (cond.is_error()) return Value::error();
    if (cond.is_undefined()) return Value::undefined();
    return cond.is_true() ? then_->evaluate(context) : else_->evaluate(context);
  }

  std::string to_string() const override {
    return "(" + cond_->to_string() + " ? " + then_->to_string() + " : " +
           else_->to_string() + ")";
  }

 private:
  ExprPtr cond_;
  ExprPtr then_;
  ExprPtr else_;
};

class CallExpr final : public Expr {
 public:
  CallExpr(std::string name, std::vector<ExprPtr> args)
      : name_(str::to_lower(name)), args_(std::move(args)) {}

  Value evaluate(const EvalContext& context) const override;

  std::string to_string() const override {
    std::string out = name_ + "(";
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (i != 0) out += ", ";
      out += args_[i]->to_string();
    }
    out += ")";
    return out;
  }

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

// ---------------------------------------------------------------------
// Evaluation semantics
// ---------------------------------------------------------------------

Value AttrRefExpr::evaluate(const EvalContext& context) const {
  if (context.depth >= EvalContext::kMaxDepth) return Value::error();

  auto eval_in = [&](const ClassAd* owner, const ClassAd* other) -> Value {
    if (owner == nullptr) return Value::undefined();
    ExprPtr expr = owner->lookup(name_);
    if (!expr) return Value::undefined();
    // An attribute evaluates in the scope of the ad it was found in: MY
    // becomes the owner, TARGET the other ad.
    EvalContext inner;
    inner.my = owner;
    inner.target = other;
    inner.depth = context.depth + 1;
    return expr->evaluate(inner);
  };

  switch (scope_) {
    case Scope::kMy:
      return eval_in(context.my, context.target);
    case Scope::kTarget:
      return eval_in(context.target, context.my);
    case Scope::kAuto: {
      if (context.my != nullptr && context.my->lookup(name_)) {
        return eval_in(context.my, context.target);
      }
      if (context.target != nullptr && context.target->lookup(name_)) {
        return eval_in(context.target, context.my);
      }
      return Value::undefined();
    }
  }
  return Value::undefined();
}

/// Three-valued comparison core: returns BOOL, UNDEFINED or ERROR.
Value compare(Tok op, const Value& lhs, const Value& rhs) {
  if (lhs.is_error() || rhs.is_error()) return Value::error();
  if (lhs.is_undefined() || rhs.is_undefined()) return Value::undefined();

  bool result;
  if (lhs.is_number() && rhs.is_number()) {
    double a = lhs.to_double(), b = rhs.to_double();
    switch (op) {
      case Tok::kEq: result = a == b; break;
      case Tok::kNe: result = a != b; break;
      case Tok::kLt: result = a < b; break;
      case Tok::kLe: result = a <= b; break;
      case Tok::kGt: result = a > b; break;
      case Tok::kGe: result = a >= b; break;
      default: return Value::error();
    }
    return Value::boolean(result);
  }
  if (lhs.kind() == ValueKind::kString && rhs.kind() == ValueKind::kString) {
    // Condor compares strings case-insensitively with ==/!=/<...
    int cmp = str::to_lower(lhs.as_string()).compare(str::to_lower(rhs.as_string()));
    switch (op) {
      case Tok::kEq: result = cmp == 0; break;
      case Tok::kNe: result = cmp != 0; break;
      case Tok::kLt: result = cmp < 0; break;
      case Tok::kLe: result = cmp <= 0; break;
      case Tok::kGt: result = cmp > 0; break;
      case Tok::kGe: result = cmp >= 0; break;
      default: return Value::error();
    }
    return Value::boolean(result);
  }
  if (lhs.kind() == ValueKind::kBool && rhs.kind() == ValueKind::kBool) {
    switch (op) {
      case Tok::kEq: return Value::boolean(lhs.as_bool() == rhs.as_bool());
      case Tok::kNe: return Value::boolean(lhs.as_bool() != rhs.as_bool());
      default: return Value::error();
    }
  }
  return Value::error();  // mixed incomparable types
}

Value BinaryExpr::evaluate(const EvalContext& context) const {
  // Short-circuit logic with ClassAd three-valued semantics:
  //   FALSE && X == FALSE   TRUE || X == TRUE   (even for X = error)
  //   UNDEFINED absorbs unless the other operand decides the result.
  if (op_ == Tok::kAnd || op_ == Tok::kOr) {
    Value lhs = lhs_->evaluate(context);
    if (lhs.kind() == ValueKind::kString) return Value::error();
    const bool lhs_decided = !lhs.is_error() && !lhs.is_undefined();
    if (op_ == Tok::kAnd && lhs_decided && !lhs.is_true()) {
      return Value::boolean(false);
    }
    if (op_ == Tok::kOr && lhs_decided && lhs.is_true()) {
      return Value::boolean(true);
    }
    Value rhs = rhs_->evaluate(context);
    if (rhs.kind() == ValueKind::kString) return Value::error();
    const bool rhs_decided = !rhs.is_error() && !rhs.is_undefined();
    if (op_ == Tok::kAnd && rhs_decided && !rhs.is_true()) {
      return Value::boolean(false);
    }
    if (op_ == Tok::kOr && rhs_decided && rhs.is_true()) {
      return Value::boolean(true);
    }
    if (lhs.is_error() || rhs.is_error()) return Value::error();
    if (lhs.is_undefined() || rhs.is_undefined()) return Value::undefined();
    return Value::boolean(op_ == Tok::kAnd);
  }

  Value lhs = lhs_->evaluate(context);
  Value rhs = rhs_->evaluate(context);

  // Meta-equality never yields UNDEFINED: it tests identity of value kind
  // and content, making it the tool for "is this attribute defined?" tests.
  if (op_ == Tok::kMetaEq || op_ == Tok::kMetaNe) {
    bool same;
    if (lhs.kind() != rhs.kind()) {
      // Numeric kinds compare by value across int/real.
      same = lhs.is_number() && rhs.is_number() && lhs.to_double() == rhs.to_double();
    } else {
      same = lhs == rhs;
    }
    return Value::boolean(op_ == Tok::kMetaEq ? same : !same);
  }

  if (op_ == Tok::kEq || op_ == Tok::kNe || op_ == Tok::kLt || op_ == Tok::kLe ||
      op_ == Tok::kGt || op_ == Tok::kGe) {
    return compare(op_, lhs, rhs);
  }

  // Arithmetic.
  if (lhs.is_error() || rhs.is_error()) return Value::error();
  if (lhs.is_undefined() || rhs.is_undefined()) return Value::undefined();
  if (!lhs.is_number() || !rhs.is_number()) return Value::error();

  const bool both_int =
      lhs.kind() == ValueKind::kInt && rhs.kind() == ValueKind::kInt;
  switch (op_) {
    case Tok::kPlus:
      return both_int ? Value::integer(lhs.as_int() + rhs.as_int())
                      : Value::real(lhs.to_double() + rhs.to_double());
    case Tok::kMinus:
      return both_int ? Value::integer(lhs.as_int() - rhs.as_int())
                      : Value::real(lhs.to_double() - rhs.to_double());
    case Tok::kStar:
      return both_int ? Value::integer(lhs.as_int() * rhs.as_int())
                      : Value::real(lhs.to_double() * rhs.to_double());
    case Tok::kSlash:
      if (both_int) {
        if (rhs.as_int() == 0) return Value::error();
        return Value::integer(lhs.as_int() / rhs.as_int());
      }
      if (rhs.to_double() == 0.0) return Value::error();
      return Value::real(lhs.to_double() / rhs.to_double());
    case Tok::kPercent:
      if (!both_int || rhs.as_int() == 0) return Value::error();
      return Value::integer(lhs.as_int() % rhs.as_int());
    default:
      return Value::error();
  }
}

Value CallExpr::evaluate(const EvalContext& context) const {
  std::vector<Value> args;
  args.reserve(args_.size());
  for (const auto& arg : args_) args.push_back(arg->evaluate(context));

  auto want = [&](std::size_t n) { return args.size() == n; };
  auto any_error = [&] {
    for (const auto& value : args) {
      if (value.is_error()) return true;
    }
    return false;
  };

  if (name_ == "isundefined") {
    if (!want(1)) return Value::error();
    return Value::boolean(args[0].is_undefined());
  }
  if (name_ == "iserror") {
    if (!want(1)) return Value::error();
    return Value::boolean(args[0].is_error());
  }
  if (any_error()) return Value::error();

  if (name_ == "floor" || name_ == "ceiling" || name_ == "round") {
    if (!want(1)) return Value::error();
    if (args[0].is_undefined()) return Value::undefined();
    if (!args[0].is_number()) return Value::error();
    double x = args[0].to_double();
    double y = name_ == "floor" ? std::floor(x)
                                : (name_ == "ceiling" ? std::ceil(x) : std::round(x));
    return Value::integer(static_cast<std::int64_t>(y));
  }
  if (name_ == "int" || name_ == "real") {
    if (!want(1)) return Value::error();
    if (args[0].is_undefined()) return Value::undefined();
    if (args[0].kind() == ValueKind::kString) {
      try {
        double parsed = std::stod(args[0].as_string());
        return name_ == "int" ? Value::integer(static_cast<std::int64_t>(parsed))
                              : Value::real(parsed);
      } catch (const std::exception&) {
        return Value::error();
      }
    }
    if (args[0].kind() == ValueKind::kBool) {
      return name_ == "int" ? Value::integer(args[0].as_bool() ? 1 : 0)
                            : Value::real(args[0].as_bool() ? 1.0 : 0.0);
    }
    if (!args[0].is_number()) return Value::error();
    return name_ == "int"
               ? Value::integer(static_cast<std::int64_t>(args[0].to_double()))
               : Value::real(args[0].to_double());
  }
  if (name_ == "string") {
    if (!want(1)) return Value::error();
    if (args[0].is_undefined()) return Value::undefined();
    if (args[0].kind() == ValueKind::kString) return args[0];
    return Value::string(args[0].to_string());
  }
  if (name_ == "strcat") {
    std::string out;
    for (const auto& value : args) {
      if (value.is_undefined()) return Value::undefined();
      out += value.kind() == ValueKind::kString ? value.as_string() : value.to_string();
    }
    return Value::string(out);
  }
  if (name_ == "tolower" || name_ == "toupper") {
    if (!want(1)) return Value::error();
    if (args[0].is_undefined()) return Value::undefined();
    if (args[0].kind() != ValueKind::kString) return Value::error();
    std::string out = args[0].as_string();
    for (char& c : out) {
      c = name_ == "tolower" ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
                             : static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    return Value::string(out);
  }
  if (name_ == "size") {
    if (!want(1)) return Value::error();
    if (args[0].is_undefined()) return Value::undefined();
    if (args[0].kind() != ValueKind::kString) return Value::error();
    return Value::integer(static_cast<std::int64_t>(args[0].as_string().size()));
  }
  if (name_ == "min" || name_ == "max") {
    if (args.empty()) return Value::error();
    bool all_int = true;
    double best = 0;
    bool first = true;
    for (const auto& value : args) {
      if (value.is_undefined()) return Value::undefined();
      if (!value.is_number()) return Value::error();
      if (value.kind() != ValueKind::kInt) all_int = false;
      double x = value.to_double();
      if (first || (name_ == "min" ? x < best : x > best)) best = x;
      first = false;
    }
    return all_int ? Value::integer(static_cast<std::int64_t>(best))
                   : Value::real(best);
  }
  return Value::error();  // unknown function
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ExprPtr> run() {
    auto expr = parse_ternary();
    if (!expr.is_ok()) return expr;
    if (peek().kind != Tok::kEnd) {
      return fail("trailing input");
    }
    return expr;
  }

 private:
  const Token& peek() const { return tokens_[index_]; }
  Token take() { return tokens_[index_++]; }
  bool accept(Tok kind) {
    if (peek().kind == kind) {
      ++index_;
      return true;
    }
    return false;
  }

  Status expect(Tok kind, const char* what) {
    if (!accept(kind)) {
      return make_error(ErrorCode::kInvalidArgument,
                        std::string("expected ") + what + " at position " +
                            std::to_string(peek().pos));
    }
    return Status::ok();
  }

  Result<ExprPtr> fail(const std::string& what) {
    return make_error(ErrorCode::kInvalidArgument,
                      what + " at position " + std::to_string(peek().pos));
  }

  Result<ExprPtr> parse_ternary() {
    auto cond = parse_or();
    if (!cond.is_ok()) return cond;
    if (!accept(Tok::kQuestion)) return cond;
    auto then_branch = parse_ternary();
    if (!then_branch.is_ok()) return then_branch;
    TDP_RETURN_IF_ERROR(expect(Tok::kColon, "':'"));
    auto else_branch = parse_ternary();
    if (!else_branch.is_ok()) return else_branch;
    return ExprPtr(std::make_shared<TernaryExpr>(std::move(cond).value(),
                                                 std::move(then_branch).value(),
                                                 std::move(else_branch).value()));
  }

  Result<ExprPtr> parse_or() {
    auto lhs = parse_and();
    if (!lhs.is_ok()) return lhs;
    ExprPtr expr = std::move(lhs).value();
    while (accept(Tok::kOr)) {
      auto rhs = parse_and();
      if (!rhs.is_ok()) return rhs;
      expr = std::make_shared<BinaryExpr>(Tok::kOr, expr, std::move(rhs).value());
    }
    return expr;
  }

  Result<ExprPtr> parse_and() {
    auto lhs = parse_cmp();
    if (!lhs.is_ok()) return lhs;
    ExprPtr expr = std::move(lhs).value();
    while (accept(Tok::kAnd)) {
      auto rhs = parse_cmp();
      if (!rhs.is_ok()) return rhs;
      expr = std::make_shared<BinaryExpr>(Tok::kAnd, expr, std::move(rhs).value());
    }
    return expr;
  }

  Result<ExprPtr> parse_cmp() {
    auto lhs = parse_add();
    if (!lhs.is_ok()) return lhs;
    ExprPtr expr = std::move(lhs).value();
    while (true) {
      Tok op = peek().kind;
      if (op != Tok::kEq && op != Tok::kNe && op != Tok::kLt && op != Tok::kLe &&
          op != Tok::kGt && op != Tok::kGe && op != Tok::kMetaEq &&
          op != Tok::kMetaNe) {
        return expr;
      }
      take();
      auto rhs = parse_add();
      if (!rhs.is_ok()) return rhs;
      expr = std::make_shared<BinaryExpr>(op, expr, std::move(rhs).value());
    }
  }

  Result<ExprPtr> parse_add() {
    auto lhs = parse_mul();
    if (!lhs.is_ok()) return lhs;
    ExprPtr expr = std::move(lhs).value();
    while (peek().kind == Tok::kPlus || peek().kind == Tok::kMinus) {
      Tok op = take().kind;
      auto rhs = parse_mul();
      if (!rhs.is_ok()) return rhs;
      expr = std::make_shared<BinaryExpr>(op, expr, std::move(rhs).value());
    }
    return expr;
  }

  Result<ExprPtr> parse_mul() {
    auto lhs = parse_unary();
    if (!lhs.is_ok()) return lhs;
    ExprPtr expr = std::move(lhs).value();
    while (peek().kind == Tok::kStar || peek().kind == Tok::kSlash ||
           peek().kind == Tok::kPercent) {
      Tok op = take().kind;
      auto rhs = parse_unary();
      if (!rhs.is_ok()) return rhs;
      expr = std::make_shared<BinaryExpr>(op, expr, std::move(rhs).value());
    }
    return expr;
  }

  Result<ExprPtr> parse_unary() {
    if (peek().kind == Tok::kNot || peek().kind == Tok::kMinus) {
      Tok op = take().kind;
      auto operand = parse_unary();
      if (!operand.is_ok()) return operand;
      return ExprPtr(std::make_shared<UnaryExpr>(op, std::move(operand).value()));
    }
    return parse_primary();
  }

  Result<ExprPtr> parse_primary() {
    const Token& token = peek();
    switch (token.kind) {
      case Tok::kNumber: {
        Token t = take();
        return ExprPtr(std::make_shared<LiteralExpr>(
            t.is_integer ? Value::integer(static_cast<std::int64_t>(t.number))
                         : Value::real(t.number)));
      }
      case Tok::kString: {
        Token t = take();
        return ExprPtr(std::make_shared<LiteralExpr>(Value::string(t.text)));
      }
      case Tok::kLParen: {
        take();
        auto inner = parse_ternary();
        if (!inner.is_ok()) return inner;
        TDP_RETURN_IF_ERROR(expect(Tok::kRParen, "')'"));
        return inner;
      }
      case Tok::kIdent: {
        Token t = take();
        std::string lowered = str::to_lower(t.text);
        if (lowered == "true") {
          return ExprPtr(std::make_shared<LiteralExpr>(Value::boolean(true)));
        }
        if (lowered == "false") {
          return ExprPtr(std::make_shared<LiteralExpr>(Value::boolean(false)));
        }
        if (lowered == "undefined") {
          return ExprPtr(std::make_shared<LiteralExpr>(Value::undefined()));
        }
        if (lowered == "error") {
          return ExprPtr(std::make_shared<LiteralExpr>(Value::error()));
        }
        // Scoped reference?
        if ((lowered == "my" || lowered == "target") && accept(Tok::kDot)) {
          if (peek().kind != Tok::kIdent) return fail("expected attribute name");
          Token attr = take();
          Scope scope = lowered == "my" ? Scope::kMy : Scope::kTarget;
          return ExprPtr(
              std::make_shared<AttrRefExpr>(scope, str::to_lower(attr.text)));
        }
        // Function call?
        if (accept(Tok::kLParen)) {
          std::vector<ExprPtr> args;
          if (!accept(Tok::kRParen)) {
            while (true) {
              auto arg = parse_ternary();
              if (!arg.is_ok()) return arg;
              args.push_back(std::move(arg).value());
              if (accept(Tok::kRParen)) break;
              TDP_RETURN_IF_ERROR(expect(Tok::kComma, "','"));
            }
          }
          return ExprPtr(std::make_shared<CallExpr>(t.text, std::move(args)));
        }
        return ExprPtr(std::make_shared<AttrRefExpr>(Scope::kAuto, lowered));
      }
      default:
        return fail("expected expression");
    }
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
};

}  // namespace

Result<ExprPtr> parse_expr(const std::string& source) {
  Lexer lexer(source);
  auto tokens = lexer.run();
  if (!tokens.is_ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.run();
}

Result<Value> evaluate_standalone(const std::string& source) {
  auto expr = parse_expr(source);
  if (!expr.is_ok()) return expr.status();
  EvalContext context;
  return expr.value()->evaluate(context);
}

namespace {

/// Walks the top-level && spine; a node that is neither && nor an
/// extractable equality is simply skipped (it still gets evaluated by the
/// full symmetric_match — extraction only prunes, never decides).
void collect_equalities(const ExprPtr& expr, std::vector<IndexableEq>& out) {
  const auto* binary = dynamic_cast<const BinaryExpr*>(expr.get());
  if (binary == nullptr) return;
  if (binary->op() == Tok::kAnd) {
    collect_equalities(binary->lhs(), out);
    collect_equalities(binary->rhs(), out);
    return;
  }
  if (binary->op() != Tok::kEq) return;
  const auto* lhs_ref = dynamic_cast<const AttrRefExpr*>(binary->lhs().get());
  const auto* rhs_ref = dynamic_cast<const AttrRefExpr*>(binary->rhs().get());
  const auto* lhs_lit = dynamic_cast<const LiteralExpr*>(binary->lhs().get());
  const auto* rhs_lit = dynamic_cast<const LiteralExpr*>(binary->rhs().get());
  const AttrRefExpr* ref = nullptr;
  const LiteralExpr* lit = nullptr;
  if (lhs_ref != nullptr && rhs_lit != nullptr) {
    ref = lhs_ref;
    lit = rhs_lit;
  } else if (rhs_ref != nullptr && lhs_lit != nullptr) {
    ref = rhs_ref;
    lit = lhs_lit;
  } else {
    return;
  }
  // MY.attr always resolves on the evaluating ad — no candidate constraint.
  if (ref->scope() == Scope::kMy) return;
  if (lit->value().is_undefined() || lit->value().is_error()) return;
  IndexableEq eq;
  eq.attribute = str::to_lower(ref->name());
  eq.target_scoped = ref->scope() == Scope::kTarget;
  eq.value = lit->value();
  out.push_back(std::move(eq));
}

}  // namespace

std::vector<IndexableEq> indexable_equalities(const ExprPtr& expr) {
  std::vector<IndexableEq> out;
  if (expr != nullptr) collect_equalities(expr, out);
  return out;
}

std::optional<Value> literal_value(const ExprPtr& expr) {
  const auto* literal = dynamic_cast<const LiteralExpr*>(expr.get());
  if (literal == nullptr) return std::nullopt;
  return literal->value();
}

}  // namespace tdp::classads
