// engine.hpp - discrete-event simulation core.
//
// The scalability experiments (Figure 4 pipeline throughput vs pool size,
// MPI-universe startup vs rank count, MRNet reduction vs fan-out) cannot
// run thousands of real daemons on one core, so they run on a virtual
// cluster: daemons execute real protocol logic, but time advances through
// this engine instead of the wall clock. Determinism (stable event order
// for equal timestamps, seeded RNG) makes every bench reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/clock.hpp"
#include "util/rng.hpp"

namespace tdp::sim {

/// The event-driven virtual clock and scheduler.
class Engine {
 public:
  using Action = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time in microseconds.
  [[nodiscard]] Micros now() const noexcept { return now_; }

  /// Schedules `action` to run `delay_micros` from now (>= 0). Events with
  /// equal timestamps run in scheduling order (FIFO tie-break).
  void schedule(Micros delay_micros, Action action);

  /// Schedules at an absolute virtual time (clamped to now).
  void schedule_at(Micros time_micros, Action action);

  /// Runs events until the queue is empty. Returns the number executed.
  std::size_t run();

  /// Runs events with time <= `until_micros`; the clock ends at
  /// min(until_micros, time of last executed event). Returns count.
  std::size_t run_until(Micros until_micros);

  /// Executes exactly one event if available. Returns false when idle.
  bool step();

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// One executed event as the determinism tier sees it: (time, seq) is a
  /// total order over executions — two same-seed runs must produce
  /// byte-identical trace streams (tests/sim/test_scale_determinism.cpp).
  struct TraceEntry {
    Micros time;
    std::uint64_t seq;
  };
  using TraceFn = std::function<void(const TraceEntry&)>;

  /// Installs a sink called for every executed event, before its action
  /// runs. Pass nullptr to disable. Tracing is observational only: it must
  /// not schedule or mutate the engine.
  void set_trace(TraceFn trace) { trace_ = std::move(trace); }

  /// Total events executed over the engine's lifetime.
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    Micros time;
    std::uint64_t seq;  // FIFO tie-break
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Micros now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  TraceFn trace_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// Clock adapter: lets daemon code written against tdp::Clock run on
/// virtual time.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(const Engine& engine) : engine_(engine) {}
  [[nodiscard]] Micros now_micros() const override { return engine_.now(); }

 private:
  const Engine& engine_;
};

/// Sleep hook for fault-injection schedules (net::FaultPlan::sleep_fn):
/// injected delays and hangs advance virtual time instead of blocking the
/// wall clock, so a chaos schedule with seconds of injected latency still
/// runs in microseconds of real time. Only valid when the faulted
/// endpoints are driven from the engine's own (single) thread — the engine
/// is not thread-safe.
inline std::function<void(int)> virtual_sleep(Engine& engine) {
  return [&engine](int ms) {
    const Micros deadline = engine.now() + static_cast<Micros>(ms) * 1000;
    engine.schedule_at(deadline, [] {});  // pin the clock to the full delay
    engine.run_until(deadline);
  };
}

/// Network latency model for the virtual cluster: a fixed one-way base
/// latency per hop plus exponentially distributed jitter. Cross-site hops
/// (e.g. execution host -> front-end across the WAN, the CASS path of
/// Figure 2) take `wan_factor` times longer than LAN hops.
class LatencyModel {
 public:
  LatencyModel(Micros lan_base, double jitter_mean, double wan_factor,
               std::uint64_t seed)
      : lan_base_(lan_base), jitter_mean_(jitter_mean), wan_factor_(wan_factor),
        rng_(seed) {}

  /// One-way latency of a LAN hop (same pool).
  Micros lan_hop() { return lan_base_ + jitter(); }

  /// One-way latency of a WAN hop (submit site <-> execution site).
  Micros wan_hop() {
    return static_cast<Micros>(static_cast<double>(lan_base_) * wan_factor_) + jitter();
  }

 private:
  Micros jitter() {
    return static_cast<Micros>(rng_.next_exponential(jitter_mean_));
  }

  Micros lan_base_;
  double jitter_mean_;
  double wan_factor_;
  Rng rng_;
};

}  // namespace tdp::sim
