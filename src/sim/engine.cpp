#include "sim/engine.hpp"

#include <utility>

namespace tdp::sim {

void Engine::schedule(Micros delay_micros, Action action) {
  if (delay_micros < 0) delay_micros = 0;
  schedule_at(now_ + delay_micros, std::move(action));
}

void Engine::schedule_at(Micros time_micros, Action action) {
  if (time_micros < now_) time_micros = now_;
  queue_.push(Event{time_micros, next_seq_++, std::move(action)});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the action must be moved out via a
  // copy of the event before pop.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.time;
  ++executed_;
  if (trace_) trace_(TraceEntry{event.time, event.seq});
  event.action();
  return true;
}

std::size_t Engine::run() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

std::size_t Engine::run_until(Micros until_micros) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= until_micros) {
    step();
    ++executed;
  }
  if (now_ < until_micros && queue_.empty()) {
    // Nothing left before the horizon; the caller decides whether to jump.
  }
  return executed;
}

}  // namespace tdp::sim
