// consultant.hpp - the Performance Consultant: Paradyn's automated
// bottleneck search ("the ability to automatically search for performance
// bottlenecks", Section 4.2), in the W3-search style: a set of hypotheses
// (CPU bound / synchronization bound / I/O bound) is tested at the root
// focus and, wherever a hypothesis holds, refined down the resource
// hierarchy until the blame lands on the narrowest focus that still
// explains at least `threshold` of the program's activity.
#pragma once

#include <string>
#include <vector>

#include "paradyn/metrics.hpp"

namespace tdp::paradyn {

enum class Hypothesis : std::uint8_t {
  kCpuBound = 0,
  kSyncBound,
  kIoBound,
};

const char* hypothesis_name(Hypothesis hypothesis) noexcept;

/// Metric a hypothesis is judged on.
Metric hypothesis_metric(Hypothesis hypothesis) noexcept;

class PerformanceConsultant {
 public:
  struct Finding {
    Hypothesis hypothesis = Hypothesis::kCpuBound;
    std::string focus;
    /// Fraction of total cpu_time this focus's metric represents.
    double severity = 0.0;
    /// Depth in the refinement (1 = module, 2 = function).
    int depth = 0;
  };

  struct Options {
    /// A hypothesis holds at a focus when metric(focus) / cpu_time(/Code)
    /// exceeds this fraction.
    double threshold = 0.2;
    /// Stop refining below this depth (2 = down to functions).
    int max_depth = 2;
  };

  explicit PerformanceConsultant(const MetricStore& store)
      : PerformanceConsultant(store, Options{}) {}
  PerformanceConsultant(const MetricStore& store, Options options)
      : store_(store), options_(options) {}

  /// Runs the search; findings are the deepest foci where a hypothesis
  /// still holds, most severe first. Also records the tested-hypothesis
  /// count for the search-cost benches.
  std::vector<Finding> search();

  [[nodiscard]] std::size_t hypotheses_tested() const noexcept { return tested_; }

 private:
  /// Tests `hypothesis` at `focus`; recurses into children while true.
  void refine(Hypothesis hypothesis, const std::string& focus, int depth,
              double total_cpu, std::vector<Finding>* findings);

  const MetricStore& store_;
  Options options_;
  std::size_t tested_ = 0;
};

}  // namespace tdp::paradyn
