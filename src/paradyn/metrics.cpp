#include "paradyn/metrics.hpp"

#include "util/string_util.hpp"

namespace tdp::paradyn {

std::string code_focus() { return "/Code"; }

std::string module_focus(const std::string& module) { return "/Code/" + module; }

std::string function_focus(const std::string& module, const std::string& function) {
  return "/Code/" + module + "/" + function;
}

std::string process_focus(proc::Pid pid) {
  return "/Process/" + std::to_string(pid);
}

void MetricStore::record(const Sample& sample, proc::Pid pid) {
  LockGuard lock(mutex_);
  auto& per_focus = data_[sample.metric];
  per_focus[code_focus()] += sample.value;
  per_focus[module_focus(sample.module)] += sample.value;
  per_focus[function_focus(sample.module, sample.function)] += sample.value;
  if (pid != 0) per_focus[process_focus(pid)] += sample.value;
  ++samples_;
}

void MetricStore::record_all(const std::vector<Sample>& samples, proc::Pid pid) {
  for (const Sample& sample : samples) record(sample, pid);
}

double MetricStore::value(Metric metric, const std::string& focus) const {
  LockGuard lock(mutex_);
  auto metric_it = data_.find(metric);
  if (metric_it == data_.end()) return 0.0;
  auto focus_it = metric_it->second.find(focus);
  return focus_it == metric_it->second.end() ? 0.0 : focus_it->second;
}

std::vector<std::string> MetricStore::children(Metric metric,
                                               const std::string& focus) const {
  LockGuard lock(mutex_);
  std::vector<std::string> out;
  auto metric_it = data_.find(metric);
  if (metric_it == data_.end()) return out;
  const std::string prefix = focus + "/";
  for (const auto& [path, value] : metric_it->second) {
    if (!str::starts_with(path, prefix)) continue;
    // Direct children only: no further '/' past the prefix.
    if (path.find('/', prefix.size()) != std::string::npos) continue;
    out.push_back(path);
  }
  return out;  // map iteration order is already sorted
}

std::vector<std::string> MetricStore::foci(Metric metric) const {
  LockGuard lock(mutex_);
  std::vector<std::string> out;
  auto metric_it = data_.find(metric);
  if (metric_it == data_.end()) return out;
  out.reserve(metric_it->second.size());
  for (const auto& [path, value] : metric_it->second) out.push_back(path);
  return out;
}

std::size_t MetricStore::sample_count() const {
  LockGuard lock(mutex_);
  return samples_;
}

void MetricStore::clear() {
  LockGuard lock(mutex_);
  data_.clear();
  samples_ = 0;
}

}  // namespace tdp::paradyn
