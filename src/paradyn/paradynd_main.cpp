// paradynd_main.cpp - the paradynd executable: the RT launched by the
// starter via the +ToolDaemonCmd submit entry (Figure 5B).
//
// Argument conventions follow the paper's example:
//   -z<platform>   platform tag (accepted, informational)
//   -l<level>      log verbosity (0..4)
//   -m<host>       front-end host
//   -p<port>       front-end data port
//   -P<port>       front-end control port
//   -a<pid>        application pid for attach mode; the literal "-a%pid"
//                  (unexpanded placeholder) marks TDP create mode, exactly
//                  the paper's bootstrap hack ("This attribute is used by
//                  paradynd to know it is running under the TDP framework")
//
// The TDP environment itself arrives via TDP_LASS_ADDRESS, TDP_CONTEXT and
// TDP_PID_ATTRIBUTE, which the starter's ExecToolLauncher exports.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "net/tcp.hpp"
#include "paradyn/paradynd.hpp"
#include "util/log.hpp"
#include "util/string_util.hpp"

namespace {

const char* env_or(const char* name, const char* fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? value : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tdp;

  paradyn::ParadyndConfig config;
  config.lass_address = env_or("TDP_LASS_ADDRESS", "");
  config.context = env_or("TDP_CONTEXT", attr::kDefaultContext);
  config.pid_attribute = env_or("TDP_PID_ATTRIBUTE", "pid");
  config.transport = std::make_shared<net::TcpTransport>();

  std::string frontend_host;
  int frontend_port = 0;
  int log_level = 2;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "-z", 2) == 0) {
      // platform tag, informational
    } else if (std::strncmp(arg, "-l", 2) == 0) {
      log_level = std::atoi(arg + 2);
    } else if (std::strncmp(arg, "-m", 2) == 0) {
      frontend_host = arg + 2;
    } else if (std::strncmp(arg, "-p", 2) == 0) {
      frontend_port = std::atoi(arg + 2);
    } else if (std::strncmp(arg, "-P", 2) == 0) {
      // control port: same listener in this implementation
    } else if (std::strncmp(arg, "-a", 2) == 0) {
      std::string value = arg + 2;
      if (tdp::str::is_integer(value)) {
        config.attach_pid = std::stoll(value);  // attach mode
      }
      // "-a%pid" (unexpanded) or empty: TDP create mode — pid via LASS.
    } else {
      std::fprintf(stderr, "paradynd: unknown argument '%s'\n", arg);
      return 2;
    }
  }

  log::set_level(log_level >= 3 ? log::Level::kDebug
                                : (log_level >= 2 ? log::Level::kInfo
                                                  : log::Level::kWarn));

  if (config.lass_address.empty()) {
    std::fprintf(stderr,
                 "paradynd: TDP_LASS_ADDRESS not set; not running under a "
                 "TDP framework\n");
    return 2;
  }
  if (!frontend_host.empty() && frontend_port > 0) {
    config.frontend_address = str::format_host_port(frontend_host, frontend_port);
  }

  paradyn::Paradynd daemon(std::move(config));
  Status status = daemon.start();
  if (!status.is_ok()) {
    std::fprintf(stderr, "paradynd: startup failed: %s\n",
                 status.to_string().c_str());
    return 1;
  }
  std::printf("paradynd: monitoring pid %lld\n",
              static_cast<long long>(daemon.app_pid()));

  status = daemon.run(/*timeout_ms=*/10 * 60 * 1000);
  daemon.stop();
  if (!status.is_ok()) {
    std::fprintf(stderr, "paradynd: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("paradynd: application exited; %d reports sent\n",
              daemon.reports_sent());
  return 0;
}
