// frontend.hpp - the Paradyn front-end: "contains the user interface that
// allows the user to display performance data, use the Performance
// Consultant to automatically find bottlenecks, start or stop the
// application, and monitor the status of the application. The paradynds
// operate under the control of paradyn" (Section 4.2).
//
// The front-end publishes listener ports that paradynds connect back to
// (the -p/-P arguments of Figure 5B; Section 4.3: "port arguments should
// be published by the Paradyn front-end and disseminated to remote sites
// as attribute values"). We accept daemon connections on one data/control
// listener and expose both port numbers for fidelity with the submit-file
// interface.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "attrspace/attr_client.hpp"
#include "net/transport.hpp"
#include "paradyn/consultant.hpp"
#include "paradyn/metrics.hpp"
#include "util/sync.hpp"

namespace tdp::paradyn {

class Frontend {
 public:
  explicit Frontend(std::shared_ptr<net::Transport> transport);
  ~Frontend();

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// Binds and starts accepting paradynd connections. Returns the concrete
  /// address daemons should dial.
  Result<std::string> start(const std::string& listen_address);

  void stop();

  [[nodiscard]] std::string address() const { return address_; }

  /// Host / first port / second port, for publication into attribute
  /// spaces and submit files. For inproc transports host is the full
  /// address and the ports are 0.
  [[nodiscard]] std::string host() const;
  [[nodiscard]] int port() const;
  [[nodiscard]] int port2() const noexcept { return port(); }

  /// Aggregated performance data across all connected daemons.
  [[nodiscard]] MetricStore& metrics() noexcept { return metrics_; }

  /// Number of daemons that completed the hello handshake.
  [[nodiscard]] std::size_t daemon_count() const;

  /// Pids of applications whose daemons sent a final report.
  [[nodiscard]] std::vector<proc::Pid> finished_pids() const;

  /// Total reports received (benches).
  [[nodiscard]] std::size_t reports_received() const noexcept {
    return reports_.load(std::memory_order_relaxed);
  }

  /// Sends a command to the daemon monitoring `pid` ("pause", "continue",
  /// "kill", "instrument", "uninstrument"). Fire-and-forget; the reply is
  /// consumed by the receive loop.
  Status command(proc::Pid pid, const std::string& cmd,
                 const std::map<std::string, std::string>& fields = {});

  /// Broadcast to every connected daemon.
  Status command_all(const std::string& cmd,
                     const std::map<std::string, std::string>& fields = {});

  /// Runs the Performance Consultant over the aggregated data.
  std::vector<PerformanceConsultant::Finding> run_consultant(
      PerformanceConsultant::Options options = {});

  /// Publishes this front-end's contact information (host/ports) into the
  /// central attribute space so starters can disseminate it to remote
  /// LASSes — the paper's "in a complete TDP framework, port arguments
  /// should be published by the Paradyn front-end and disseminated to
  /// remote sites as attribute values" (Section 4.3), which the pilot
  /// left as manual submit-file entries. The CASS connection is kept for
  /// the front-end's lifetime (tdp_exit on stop()).
  Status publish_contact(const std::string& cass_address,
                         const std::string& context = "tdp");

 private:
  void accept_loop();
  void serve_daemon(std::shared_ptr<net::Endpoint> endpoint);

  std::shared_ptr<net::Transport> transport_;
  std::unique_ptr<net::Listener> listener_;
  std::string address_;
  MetricStore metrics_;

  mutable Mutex mutex_{"Frontend::mutex_"};
  std::map<proc::Pid, std::shared_ptr<net::Endpoint>> daemons_ TDP_GUARDED_BY(mutex_);
  std::vector<proc::Pid> finished_ TDP_GUARDED_BY(mutex_);
  std::vector<std::thread> threads_ TDP_GUARDED_BY(mutex_);

  std::atomic<bool> running_{false};
  std::atomic<std::size_t> reports_{0};
  /// Touched only from the user-facing thread (start/stop/publish_contact).
  std::unique_ptr<attr::AttrClient> cass_;
};

}  // namespace tdp::paradyn
