#include "paradyn/consultant.hpp"

#include <algorithm>

#include "util/telemetry.hpp"

namespace tdp::paradyn {

const char* hypothesis_name(Hypothesis hypothesis) noexcept {
  switch (hypothesis) {
    case Hypothesis::kCpuBound: return "ExcessiveCpuTime";
    case Hypothesis::kSyncBound: return "ExcessiveSyncWait";
    case Hypothesis::kIoBound: return "ExcessiveIoWait";
  }
  return "?";
}

Metric hypothesis_metric(Hypothesis hypothesis) noexcept {
  switch (hypothesis) {
    case Hypothesis::kCpuBound: return Metric::kCpuTime;
    case Hypothesis::kSyncBound: return Metric::kSyncWait;
    case Hypothesis::kIoBound: return Metric::kIoWait;
  }
  return Metric::kCpuTime;
}

std::vector<PerformanceConsultant::Finding> PerformanceConsultant::search() {
  std::vector<Finding> findings;
  tested_ = 0;

  // All severities are normalized by whole-program CPU time: "where does
  // the time go" is always relative to total activity.
  const double total_cpu = store_.value(Metric::kCpuTime, code_focus());
  if (total_cpu <= 0.0) return findings;

  for (Hypothesis hypothesis :
       {Hypothesis::kCpuBound, Hypothesis::kSyncBound, Hypothesis::kIoBound}) {
    ++tested_;
    const double root_value =
        store_.value(hypothesis_metric(hypothesis), code_focus());
    if (root_value / total_cpu < options_.threshold) continue;
    refine(hypothesis, code_focus(), 0, total_cpu, &findings);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.severity != b.severity) return a.severity > b.severity;
              return a.focus < b.focus;
            });
  static telemetry::Counter& steps =
      telemetry::Registry::instance().counter("consultant.search_steps");
  steps.add(static_cast<std::uint64_t>(tested_));
  return findings;
}

void PerformanceConsultant::refine(Hypothesis hypothesis, const std::string& focus,
                                   int depth, double total_cpu,
                                   std::vector<Finding>* findings) {
  const Metric metric = hypothesis_metric(hypothesis);
  bool any_child_held = false;
  if (depth < options_.max_depth) {
    for (const std::string& child : store_.children(metric, focus)) {
      ++tested_;
      const double child_value = store_.value(metric, child);
      if (child_value / total_cpu >= options_.threshold) {
        any_child_held = true;
        refine(hypothesis, child, depth + 1, total_cpu, findings);
      }
    }
  }
  // Report the narrowest focus at which the hypothesis still holds: a
  // parent is only interesting when no child localizes the problem.
  if (!any_child_held && depth > 0) {
    Finding finding;
    finding.hypothesis = hypothesis;
    finding.focus = focus;
    finding.severity = store_.value(metric, focus) / total_cpu;
    finding.depth = depth;
    findings->push_back(std::move(finding));
  }
}

}  // namespace tdp::paradyn
