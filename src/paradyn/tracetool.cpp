#include "paradyn/tracetool.hpp"

#include <chrono>
#include <fstream>
#include <thread>

#include "util/clock.hpp"
#include "util/log.hpp"
#include "util/string_util.hpp"

namespace tdp::paradyn {

namespace {
const log::Logger kLog("tracetool");
}

TraceTool::TraceTool(TraceToolConfig config) : config_(std::move(config)) {}

TraceTool::~TraceTool() { stop(); }

Status TraceTool::start() {
  if (started_) return make_error(ErrorCode::kInvalidState, "already started");

  InitOptions options;
  options.role = Role::kTool;
  options.lass_address = config_.lass_address;
  options.context = config_.context;
  options.transport = config_.transport;
  auto session = TdpSession::init(std::move(options));
  if (!session.is_ok()) return session.status();
  session_ = std::move(session).value();

  auto pid_value = session_->get(config_.pid_attribute, config_.pid_wait_timeout_ms);
  if (!pid_value.is_ok()) return pid_value.status();
  if (!str::is_integer(pid_value.value())) {
    return make_error(ErrorCode::kInternal,
                      "malformed pid attribute: " + pid_value.value());
  }
  app_pid_ = std::stoll(pid_value.value());

  TDP_RETURN_IF_ERROR(session_->attach(app_pid_));

  // The Vampir constraint: refuse anything that has already executed. The
  // RM publishes the process state stream; the blocking get parks until
  // the first state is known.
  auto state = session_->get(control::state_attr(app_pid_),
                             config_.state_wait_timeout_ms);
  if (!state.is_ok()) return state.status();
  if (state.value() != proc::process_state_name(proc::ProcessState::kPausedAtExec)) {
    session_->exit();
    return make_error(
        ErrorCode::kInvalidState,
        "trace tools must observe execution from the first instruction; the "
        "application is already '" + state.value() +
            "' (use create mode with +SuspendJobAtExec)");
  }

  auto exe = session_->try_get(attr::attrs::kExecutableName);
  symbols_ = std::make_unique<SymbolTable>(SymbolTable::synthesize(
      exe.is_ok() ? exe.value() : "traced-app", config_.nfuncs));

  TDP_RETURN_IF_ERROR(session_->continue_process(app_pid_));
  started_ = true;
  kLog.info("tracing pid ", app_pid_, " from its first instruction");
  return Status::ok();
}

void TraceTool::synthesize_events(std::int64_t quantum) {
  // The synthetic execution model: function invocations arrive in weight
  // proportion; each invocation contributes an ENTER/EXIT pair whose span
  // reflects the function's weight share of the quantum.
  const auto& functions = symbols_->functions();
  if (functions.empty()) return;
  const std::uint64_t total_weight = symbols_->total_weight();
  // ~4 call events per quantum keeps traces dense but bounded.
  for (int call = 0; call < 4; ++call) {
    std::uint64_t pick = rng_.next_below(total_weight);
    const FunctionSymbol* chosen = &functions.back();
    for (const FunctionSymbol& symbol : functions) {
      if (pick < symbol.weight) {
        chosen = &symbol;
        break;
      }
      pick -= symbol.weight;
    }
    const std::int64_t span =
        quantum * static_cast<std::int64_t>(chosen->weight) /
        (4 * static_cast<std::int64_t>(total_weight)) + 1;
    records_.push_back({TraceRecord::Kind::kEnter, virtual_time_, chosen->module,
                        chosen->name});
    virtual_time_ += span;
    records_.push_back({TraceRecord::Kind::kExit, virtual_time_, chosen->module,
                        chosen->name});
  }
}

bool TraceTool::poll_once() {
  if (!started_) return false;
  session_->service_events();

  auto info = session_->process_info(app_pid_);
  const bool rm_gone =
      !info.is_ok() && info.status().code() == ErrorCode::kConnectionError;
  const bool running = info.is_ok() && info->state == proc::ProcessState::kRunning;
  const bool terminal =
      (info.is_ok() && proc::is_terminal(info->state)) || rm_gone;

  if (running) synthesize_events(config_.quantum_micros);

  if (terminal && !app_exited_) {
    app_exited_ = true;
    if (!config_.trace_path.empty()) {
      Status written = write_trace(config_.trace_path);
      if (!written.is_ok()) {
        kLog.warn("trace file write failed: ", written.to_string());
      }
    }
    kLog.info("application exited; ", records_.size(), " trace records");
    return false;
  }
  return !app_exited_;
}

Status TraceTool::run(int timeout_ms) {
  const Clock& wall = RealClock::instance();
  const Micros deadline = wall.now_micros() + static_cast<Micros>(timeout_ms) * 1000;
  while (poll_once()) {
    if (wall.now_micros() >= deadline) {
      return make_error(ErrorCode::kTimeout, "application still running");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return Status::ok();
}

Status TraceTool::write_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return make_error(ErrorCode::kInternal, "cannot open trace file: " + path);
  }
  for (const TraceRecord& record : records_) {
    out << record.timestamp_micros << ' '
        << (record.kind == TraceRecord::Kind::kEnter ? "ENTER" : "EXIT") << ' '
        << record.module << ' ' << record.function << '\n';
  }
  return out.good() ? Status::ok()
                    : make_error(ErrorCode::kInternal, "trace write failed");
}

Status TraceTool::stop() {
  if (session_) return session_->exit();
  return Status::ok();
}

Result<proc::Pid> InProcTraceLauncher::launch(
    const condor::ToolDaemonSpec& spec, const std::vector<std::string>& argv,
    const std::string& lass_address, const std::string& context,
    const std::string& pid_attribute, TdpSession& rm_session) {
  (void)argv;
  (void)rm_session;
  TraceToolConfig config;
  config.lass_address = lass_address;
  config.context = context;
  config.pid_attribute = pid_attribute;
  config.transport = options_.transport;
  config.quantum_micros = options_.quantum_micros;
  if (!options_.trace_dir.empty()) {
    config.trace_path = options_.trace_dir + "/" + context + "." +
                        (spec.output.empty() ? "trace" : spec.output);
  }
  const int timeout_ms = options_.run_timeout_ms;
  LockGuard lock(mutex_);
  threads_.emplace_back([this, config = std::move(config), timeout_ms]() mutable {
    TraceTool tracer(std::move(config));
    Status status = tracer.start();
    if (status.is_ok()) status = tracer.run(timeout_ms);
    tracer.stop();
    LockGuard inner(mutex_);
    last_status_ = status;
    last_records_ = tracer.records().size();
  });
  const std::size_t count = launched_.fetch_add(1, std::memory_order_relaxed) + 1;
  return static_cast<proc::Pid>(-1000 - static_cast<std::int64_t>(count));
}

void InProcTraceLauncher::join_all() {
  while (true) {
    std::vector<std::thread> to_join;
    {
      LockGuard lock(mutex_);
      to_join.swap(threads_);
    }
    if (to_join.empty()) break;
    for (auto& thread : to_join) {
      if (thread.joinable()) thread.join();
    }
  }
}

Status InProcTraceLauncher::last_tracer_status() const {
  LockGuard lock(mutex_);
  return last_status_;
}

std::size_t InProcTraceLauncher::last_record_count() const {
  LockGuard lock(mutex_);
  return last_records_;
}

}  // namespace tdp::paradyn
