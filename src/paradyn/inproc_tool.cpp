#include "paradyn/inproc_tool.hpp"

#include "util/log.hpp"

namespace tdp::paradyn {

namespace {
const log::Logger kLog("inproc_tool");
}

Result<proc::Pid> InProcParadynLauncher::launch(
    const condor::ToolDaemonSpec& spec, const std::vector<std::string>& argv,
    const std::string& lass_address, const std::string& context,
    const std::string& pid_attribute, TdpSession& rm_session) {
  (void)argv;
  (void)rm_session;
  ParadyndConfig config;
  config.lass_address = lass_address;
  config.context = context;
  config.pid_attribute = pid_attribute;
  config.transport = options_.transport;
  config.frontend_address = options_.frontend_address;
  config.sample_quantum_micros = options_.sample_quantum_micros;
  config.nfuncs = options_.nfuncs;
  config.daemon_name = spec.cmd.empty() ? "paradynd" : spec.cmd;
  config.retry = options_.retry;

  const int timeout_ms = options_.run_timeout_ms;
  LockGuard lock(mutex_);
  threads_.emplace_back([this, config = std::move(config), timeout_ms]() mutable {
    Paradynd daemon(std::move(config));
    Status status = daemon.start();
    if (status.is_ok()) status = daemon.run(timeout_ms);
    daemon.stop();
    LockGuard inner(mutex_);
    last_status_ = status;
    if (!status.is_ok()) {
      kLog.warn("in-process paradynd finished with: ", status.to_string());
    }
  });
  const std::size_t count = launched_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Synthetic tool pid: negative ids cannot collide with real/sim pids.
  return static_cast<proc::Pid>(-static_cast<std::int64_t>(count));
}

void InProcParadynLauncher::join_all() {
  while (true) {
    std::vector<std::thread> to_join;
    {
      LockGuard lock(mutex_);
      to_join.swap(threads_);
    }
    if (to_join.empty()) break;
    for (auto& thread : to_join) {
      if (thread.joinable()) thread.join();
    }
  }
}

Status InProcParadynLauncher::last_daemon_status() const {
  LockGuard lock(mutex_);
  return last_status_;
}

}  // namespace tdp::paradyn
