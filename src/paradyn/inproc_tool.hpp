// inproc_tool.hpp - runs paradynd as an in-process thread instead of a
// separate executable. This is how the virtual-cluster benches and the
// single-binary tests co-locate a whole Parador deployment (Condor pool +
// Paradyn front-end + daemons) in one address space, while every protocol
// step — LASS handshake, attach routing, front-end reports — still flows
// through the real TDP code paths.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "condor/starter.hpp"
#include "paradyn/paradynd.hpp"
#include "util/sync.hpp"

namespace tdp::paradyn {

class InProcParadynLauncher final : public condor::ToolLauncher {
 public:
  struct Options {
    std::shared_ptr<net::Transport> transport;
    std::string frontend_address;  ///< empty = discover via attributes
    std::int64_t sample_quantum_micros = 10'000;
    int nfuncs = 24;
    /// Max wall-clock ms each daemon thread runs before giving up.
    int run_timeout_ms = 30'000;
    /// Failure-recovery policy for each daemon's LASS session.
    attr::RetryPolicy retry;
  };

  explicit InProcParadynLauncher(Options options) : options_(std::move(options)) {}
  ~InProcParadynLauncher() override { join_all(); }

  Result<proc::Pid> launch(const condor::ToolDaemonSpec& spec,
                           const std::vector<std::string>& argv,
                           const std::string& lass_address,
                           const std::string& context,
                           const std::string& pid_attribute,
                           TdpSession& rm_session) override;

  /// Waits for every launched daemon thread to finish.
  void join_all();

  [[nodiscard]] std::size_t daemons_launched() const {
    return launched_.load(std::memory_order_relaxed);
  }

  /// Status of the most recently finished daemon (tests).
  [[nodiscard]] Status last_daemon_status() const;

 private:
  Options options_;
  mutable Mutex mutex_{"InProcParadynLauncher::mutex_"};
  std::vector<std::thread> threads_ TDP_GUARDED_BY(mutex_);
  Status last_status_ TDP_GUARDED_BY(mutex_);

  std::atomic<std::size_t> launched_{0};
};

}  // namespace tdp::paradyn
