// tracetool.hpp - a second, different run-time tool built on TDP: a
// Vampir-style event tracer.
//
// Two reasons it exists in this reproduction:
//   * the m-tools argument needs m > 1: the tracer runs under the same
//     MiniCondor RM through exactly the same TDP calls as paradynd, with
//     zero RM-side changes — the m + n payoff, demonstrated;
//   * it embodies the launch-scheme distinction of Section 2.2/3.1: "Not
//     all tools have the ability to use this attach technique. For
//     example, the Vampir trace tool requires the tracing to be started
//     before the application starts execution." TraceTool therefore
//     REFUSES to operate on an application that has already run (attach
//     mode), accepting only the create-paused scheme.
//
// Output: an in-memory event trace (enter/exit records over the synthetic
// execution model) and, optionally, a trace file written at application
// exit — the paper's "trace files ... must be transferred from the
// execution nodes after the application completes" artifact.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include <atomic>
#include <thread>

#include "condor/starter.hpp"
#include "core/tdp.hpp"
#include "paradyn/dyninst.hpp"
#include "util/sync.hpp"

namespace tdp::paradyn {

struct TraceRecord {
  enum class Kind : std::uint8_t { kEnter = 0, kExit };
  Kind kind = Kind::kEnter;
  std::int64_t timestamp_micros = 0;  ///< virtual time since tracing began
  std::string module;
  std::string function;
};

struct TraceToolConfig {
  std::string lass_address;
  std::string context = attr::kDefaultContext;
  std::shared_ptr<net::Transport> transport;
  std::string pid_attribute = "pid";
  /// Virtual CPU micros attributed per poll turn while the app runs.
  std::int64_t quantum_micros = 10'000;
  /// Trace file written at application exit (empty = in-memory only).
  std::string trace_path;
  /// Synthesized symbol-table size.
  int nfuncs = 16;
  int pid_wait_timeout_ms = 10'000;
  /// Bound on the blocking wait for the initial paused state.
  int state_wait_timeout_ms = 10'000;
};

class TraceTool {
 public:
  explicit TraceTool(TraceToolConfig config);
  ~TraceTool();

  TraceTool(const TraceTool&) = delete;
  TraceTool& operator=(const TraceTool&) = delete;

  /// The create-mode handshake: tdp_init, blocking get of the pid,
  /// tdp_attach, then VERIFY the application is still paused at exec.
  /// kInvalidState when the application has already executed (the tracer
  /// cannot reconstruct events it never saw). On success the application
  /// is continued with tracing active.
  Status start();

  /// One poll turn; false once the application has exited (and the trace
  /// file, if configured, has been written).
  bool poll_once();

  /// Drives poll_once until exit or wall-clock timeout.
  Status run(int timeout_ms);

  [[nodiscard]] proc::Pid app_pid() const noexcept { return app_pid_; }
  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] bool app_exited() const noexcept { return app_exited_; }

  /// Serializes the trace ("<t> ENTER|EXIT <module> <function>" lines).
  Status write_trace(const std::string& path) const;

  Status stop();

 private:
  void synthesize_events(std::int64_t quantum);

  TraceToolConfig config_;
  std::unique_ptr<TdpSession> session_;
  std::unique_ptr<SymbolTable> symbols_;
  Rng rng_{12345};
  std::vector<TraceRecord> records_;
  proc::Pid app_pid_ = 0;
  std::int64_t virtual_time_ = 0;
  bool app_exited_ = false;
  bool started_ = false;
};

/// Runs TraceTool instances on threads as a MiniCondor ToolLauncher — the
/// second tool of the m-tools story, launched through the identical
/// +ToolDaemonCmd machinery with no RM-side change.
class InProcTraceLauncher final : public condor::ToolLauncher {
 public:
  struct Options {
    std::shared_ptr<net::Transport> transport;
    std::string trace_dir;  ///< where per-job trace files land (empty = none)
    std::int64_t quantum_micros = 10'000;
    int run_timeout_ms = 30'000;
  };

  explicit InProcTraceLauncher(Options options) : options_(std::move(options)) {}
  ~InProcTraceLauncher() override { join_all(); }

  Result<proc::Pid> launch(const condor::ToolDaemonSpec& spec,
                           const std::vector<std::string>& argv,
                           const std::string& lass_address,
                           const std::string& context,
                           const std::string& pid_attribute,
                           TdpSession& rm_session) override;

  void join_all();

  [[nodiscard]] std::size_t tracers_launched() const {
    return launched_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] Status last_tracer_status() const;
  [[nodiscard]] std::size_t last_record_count() const;

 private:
  Options options_;
  mutable Mutex mutex_{"InProcTraceLauncher::mutex_"};
  std::vector<std::thread> threads_ TDP_GUARDED_BY(mutex_);
  Status last_status_ TDP_GUARDED_BY(mutex_);
  std::size_t last_records_ TDP_GUARDED_BY(mutex_) = 0;

  std::atomic<std::size_t> launched_{0};
};

}  // namespace tdp::paradyn
