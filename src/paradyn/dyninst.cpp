#include "paradyn/dyninst.hpp"

#include <algorithm>

namespace tdp::paradyn {

const char* metric_name(Metric metric) noexcept {
  switch (metric) {
    case Metric::kCpuTime: return "cpu_time";
    case Metric::kCallCount: return "call_count";
    case Metric::kSyncWait: return "sync_wait";
    case Metric::kIoWait: return "io_wait";
  }
  return "?";
}

// ---------------------------------------------------------------------
// SymbolTable
// ---------------------------------------------------------------------

void SymbolTable::add(FunctionSymbol symbol) {
  total_weight_ += symbol.weight;
  functions_.push_back(std::move(symbol));
}

SymbolTable SymbolTable::synthesize(const std::string& executable, int nfuncs,
                                    std::uint64_t seed) {
  // Seed from the executable name so the same workload always has the same
  // profile (stable bench baselines).
  std::uint64_t hash = 1469598103934665603ULL ^ seed;
  for (char c : executable) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ULL;
  }
  Rng rng(hash);

  SymbolTable table;
  if (nfuncs < 1) nfuncs = 1;
  const char* modules[] = {"main.o", "compute.o", "io.o", "net.o"};

  // Regular functions with modest random weights.
  for (int i = 0; i < nfuncs - 1; ++i) {
    FunctionSymbol symbol;
    symbol.module = modules[rng.next_below(4)];
    symbol.name = "func_" + std::to_string(i);
    symbol.weight = 1 + rng.next_below(10);
    if (symbol.module == std::string("io.o")) {
      symbol.io_fraction = 0.3 + rng.next_double() * 0.4;
    }
    if (symbol.module == std::string("net.o")) {
      symbol.sync_fraction = 0.3 + rng.next_double() * 0.4;
    }
    table.add(std::move(symbol));
  }

  // The hot spot: roughly as heavy as everything else combined, so a
  // correct bottleneck search must converge on it.
  FunctionSymbol hot;
  hot.module = "compute.o";
  hot.name = "hot_spot";
  hot.weight = std::max<std::uint64_t>(1, table.total_weight());
  table.add(std::move(hot));
  return table;
}

const FunctionSymbol* SymbolTable::find(const std::string& module,
                                        const std::string& name) const {
  for (const FunctionSymbol& symbol : functions_) {
    if (symbol.module == module && symbol.name == name) return &symbol;
  }
  return nullptr;
}

std::vector<std::string> SymbolTable::modules() const {
  std::vector<std::string> out;
  for (const FunctionSymbol& symbol : functions_) {
    if (std::find(out.begin(), out.end(), symbol.module) == out.end()) {
      out.push_back(symbol.module);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------
// Inferior
// ---------------------------------------------------------------------

Inferior::Inferior(proc::Pid pid, SymbolTable symbols)
    : pid_(pid), symbols_(std::move(symbols)) {}

Status Inferior::insert_instrumentation(const std::string& module,
                                        const std::string& function, Metric metric) {
  if (symbols_.find(module, function) == nullptr) {
    return make_error(ErrorCode::kNotFound,
                      "no such instrumentation point: " + module + "/" + function);
  }
  auto [it, inserted] = points_.insert({module, function, metric});
  if (!inserted) {
    return make_error(ErrorCode::kAlreadyExists,
                      "already instrumented: " + module + "/" + function);
  }
  return Status::ok();
}

int Inferior::insert_matching(const std::string& module_pattern,
                              const std::string& function_pattern, Metric metric) {
  int inserted = 0;
  for (const FunctionSymbol& symbol : symbols_.functions()) {
    if (module_pattern != "*" && module_pattern != symbol.module) continue;
    if (function_pattern != "*" && function_pattern != symbol.name) continue;
    if (points_.insert({symbol.module, symbol.name, metric}).second) ++inserted;
  }
  return inserted;
}

Status Inferior::remove_instrumentation(const std::string& module,
                                        const std::string& function, Metric metric) {
  if (points_.erase({module, function, metric}) == 0) {
    return make_error(ErrorCode::kNotFound,
                      "not instrumented: " + module + "/" + function);
  }
  return Status::ok();
}

bool Inferior::is_instrumented(const std::string& module, const std::string& function,
                               Metric metric) const {
  return points_.count({module, function, metric}) != 0;
}

std::vector<Sample> Inferior::sample(std::int64_t cpu_micros) {
  total_sampled_ += cpu_micros;
  std::vector<Sample> samples;
  const double total_weight = static_cast<double>(symbols_.total_weight());
  if (total_weight <= 0) return samples;

  for (const InstrumentationPoint& point : points_) {
    const FunctionSymbol* symbol = symbols_.find(point.module, point.function);
    if (symbol == nullptr) continue;
    const double share =
        static_cast<double>(cpu_micros) * static_cast<double>(symbol->weight) /
        total_weight;
    Sample sample;
    sample.module = point.module;
    sample.function = point.function;
    sample.metric = point.metric;
    switch (point.metric) {
      case Metric::kCpuTime:
        sample.value = share * (1.0 - symbol->sync_fraction - symbol->io_fraction);
        break;
      case Metric::kCallCount:
        // ~1 call per 100us of attributed time, floor 1 if any time.
        sample.value = share > 0 ? std::max(1.0, share / 100.0) : 0.0;
        break;
      case Metric::kSyncWait:
        sample.value = share * symbol->sync_fraction;
        break;
      case Metric::kIoWait:
        sample.value = share * symbol->io_fraction;
        break;
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace tdp::paradyn
