#include "paradyn/frontend.hpp"

#include "attrspace/attr_protocol.hpp"
#include "net/wire.hpp"
#include "util/log.hpp"
#include "util/string_util.hpp"

namespace tdp::paradyn {

namespace {
const log::Logger kLog("paradyn_fe");
}

Frontend::Frontend(std::shared_ptr<net::Transport> transport)
    : transport_(std::move(transport)) {}

Frontend::~Frontend() { stop(); }

Result<std::string> Frontend::start(const std::string& listen_address) {
  auto listener = transport_->listen(listen_address);
  if (!listener.is_ok()) return listener.status();
  listener_ = std::move(listener).value();
  address_ = listener_->address();
  running_.store(true, std::memory_order_release);
  {
    LockGuard lock(mutex_);
    threads_.emplace_back([this] { accept_loop(); });
  }
  kLog.info("front-end listening on ", address_);
  return address_;
}

void Frontend::stop() {
  running_.store(false, std::memory_order_release);
  if (cass_) {
    cass_->exit();
    cass_.reset();
  }
  if (listener_) listener_->close();
  while (true) {
    std::vector<std::thread> to_join;
    std::map<proc::Pid, std::shared_ptr<net::Endpoint>> to_close;
    {
      LockGuard lock(mutex_);
      to_join.swap(threads_);
      to_close.swap(daemons_);
    }
    if (to_join.empty() && to_close.empty()) break;
    for (auto& [pid, endpoint] : to_close) endpoint->close();
    for (auto& thread : to_join) {
      if (thread.joinable()) thread.join();
    }
  }
}

std::string Frontend::host() const {
  std::string host_part;
  int port_part = 0;
  if (str::parse_host_port(address_, &host_part, &port_part)) return host_part;
  return address_;  // inproc-style address is its own "host"
}

int Frontend::port() const {
  std::string host_part;
  int port_part = 0;
  if (str::parse_host_port(address_, &host_part, &port_part)) return port_part;
  return 0;
}

std::size_t Frontend::daemon_count() const {
  LockGuard lock(mutex_);
  return daemons_.size();
}

std::vector<proc::Pid> Frontend::finished_pids() const {
  LockGuard lock(mutex_);
  return finished_;
}

void Frontend::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    auto accepted = listener_->accept(200);
    if (!accepted.is_ok()) {
      if (accepted.status().code() == ErrorCode::kTimeout) continue;
      break;
    }
    std::shared_ptr<net::Endpoint> endpoint(std::move(accepted).value().release());
    bool rejected = false;
    {
      LockGuard lock(mutex_);
      if (!running_.load(std::memory_order_acquire)) {
        rejected = true;  // closed below, outside the registry lock
      } else {
        threads_.emplace_back([this, endpoint] { serve_daemon(endpoint); });
      }
    }
    if (rejected) {
      endpoint->close();
      break;
    }
  }
}

void Frontend::serve_daemon(std::shared_ptr<net::Endpoint> endpoint) {
  proc::Pid pid = 0;
  while (running_.load(std::memory_order_acquire)) {
    auto received = endpoint->receive(200);
    if (!received.is_ok()) {
      if (received.status().code() == ErrorCode::kTimeout) continue;
      break;
    }
    const net::Message& msg = received.value();
    switch (msg.type()) {
      case net::MsgType::kParadynHello: {
        // A daemon's hello carries its wire-version advertisement; adopt it
        // so our replies speak the newest version both sides decode.
        net::adopt_advertised_wire_version(*endpoint, msg);
        pid = msg.get_int("pid");
        LockGuard lock(mutex_);
        daemons_[pid] = endpoint;
        kLog.info("daemon '", msg.get("daemon"), "' attached to pid ", pid,
                  " (", msg.get("executable"), ")");
        break;
      }
      case net::MsgType::kParadynReport: {
        reports_.fetch_add(1, std::memory_order_relaxed);
        const std::int64_t count = msg.get_int("count");
        const proc::Pid report_pid = msg.get_int("pid");
        for (std::int64_t i = 0; i < count; ++i) {
          const std::string n = std::to_string(i);
          Sample sample;
          const std::string metric = msg.get("m" + n);
          if (metric == "cpu_time") sample.metric = Metric::kCpuTime;
          else if (metric == "call_count") sample.metric = Metric::kCallCount;
          else if (metric == "sync_wait") sample.metric = Metric::kSyncWait;
          else if (metric == "io_wait") sample.metric = Metric::kIoWait;
          sample.module = msg.get("mod" + n);
          sample.function = msg.get("fn" + n);
          sample.value = std::stod(msg.get("v" + n, "0"));
          metrics_.record(sample, report_pid);
        }
        if (msg.get("final") == "1") {
          LockGuard lock(mutex_);
          finished_.push_back(report_pid);
        }
        break;
      }
      case net::MsgType::kParadynCommandReply:
        // Acknowledgements are informational; errors are logged.
        if (msg.get("status") != "ok") {
          kLog.warn("daemon command failed: ", msg.get("status"));
        }
        break;
      default:
        kLog.warn("unexpected daemon message: ", msg.to_string());
        break;
    }
  }
  if (pid != 0) {
    LockGuard lock(mutex_);
    daemons_.erase(pid);
  }
  endpoint->close();
}

Status Frontend::command(proc::Pid pid, const std::string& cmd,
                         const std::map<std::string, std::string>& fields) {
  std::shared_ptr<net::Endpoint> endpoint;
  {
    LockGuard lock(mutex_);
    auto it = daemons_.find(pid);
    if (it == daemons_.end()) {
      return make_error(ErrorCode::kNotFound,
                        "no daemon for pid " + std::to_string(pid));
    }
    endpoint = it->second;
  }
  net::Message msg(net::MsgType::kParadynCommand);
  msg.set("cmd", cmd);
  for (const auto& [key, value] : fields) msg.set(key, value);
  return endpoint->send(msg);
}

Status Frontend::command_all(const std::string& cmd,
                             const std::map<std::string, std::string>& fields) {
  std::vector<std::shared_ptr<net::Endpoint>> endpoints;
  {
    LockGuard lock(mutex_);
    endpoints.reserve(daemons_.size());
    for (auto& [pid, endpoint] : daemons_) endpoints.push_back(endpoint);
  }
  Status last = Status::ok();
  for (auto& endpoint : endpoints) {
    net::Message msg(net::MsgType::kParadynCommand);
    msg.set("cmd", cmd);
    for (const auto& [key, value] : fields) msg.set(key, value);
    Status sent = endpoint->send(msg);
    if (!sent.is_ok()) last = sent;
  }
  return last;
}

Status Frontend::publish_contact(const std::string& cass_address,
                                 const std::string& context) {
  auto client = attr::AttrClient::connect(*transport_, cass_address, context);
  if (!client.is_ok()) return client.status();
  cass_ = std::move(client).value();
  TDP_RETURN_IF_ERROR(cass_->put(attr::attrs::kFrontendHost, host()));
  TDP_RETURN_IF_ERROR(
      cass_->put(attr::attrs::kFrontendPort, std::to_string(port())));
  TDP_RETURN_IF_ERROR(
      cass_->put(attr::attrs::kFrontendPort2, std::to_string(port2())));
  kLog.info("contact info published to CASS at ", cass_address);
  return Status::ok();
}

std::vector<PerformanceConsultant::Finding> Frontend::run_consultant(
    PerformanceConsultant::Options options) {
  PerformanceConsultant consultant(metrics_, options);
  return consultant.search();
}

}  // namespace tdp::paradyn
