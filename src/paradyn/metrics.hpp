// metrics.hpp - metric aggregation over the resource hierarchy.
//
// Paradyn organizes performance data by (metric, focus) where a focus is a
// path in the resource hierarchy: /Code, /Code/<module>,
// /Code/<module>/<function>, and (for multi-process jobs) /Process/<pid>.
// The MetricStore aggregates daemon samples into that hierarchy; the
// Performance Consultant searches it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "paradyn/dyninst.hpp"
#include "util/sync.hpp"

namespace tdp::paradyn {

/// A focus path, e.g. "/Code/compute.o/hot_spot". The whole program is
/// "/Code".
std::string code_focus();
std::string module_focus(const std::string& module);
std::string function_focus(const std::string& module, const std::string& function);
std::string process_focus(proc::Pid pid);

class MetricStore {
 public:
  /// Folds one sample in: the value accrues at the function focus and
  /// rolls up to its module and /Code. `pid` additionally accrues at the
  /// process focus (0 = skip).
  void record(const Sample& sample, proc::Pid pid = 0);

  void record_all(const std::vector<Sample>& samples, proc::Pid pid = 0);

  /// Total accumulated value of `metric` at `focus` (0.0 when absent).
  [[nodiscard]] double value(Metric metric, const std::string& focus) const;

  /// Child foci of `focus` that carry any data for `metric`, sorted.
  [[nodiscard]] std::vector<std::string> children(Metric metric,
                                                  const std::string& focus) const;

  /// All foci with data for `metric`.
  [[nodiscard]] std::vector<std::string> foci(Metric metric) const;

  [[nodiscard]] std::size_t sample_count() const;

  void clear();

 private:
  mutable Mutex mutex_{"MetricStore::mutex_"};
  /// metric -> focus -> accumulated value.
  std::map<Metric, std::map<std::string, double>> data_ TDP_GUARDED_BY(mutex_);
  std::size_t samples_ TDP_GUARDED_BY(mutex_) = 0;
};

}  // namespace tdp::paradyn
