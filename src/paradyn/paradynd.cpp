#include "paradyn/paradynd.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include <optional>

#include "net/proxy.hpp"
#include "net/wire.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"
#include "util/string_util.hpp"
#include "util/telemetry.hpp"

namespace tdp::paradyn {

namespace {
const log::Logger kLog("paradynd");
}

Paradynd::Paradynd(ParadyndConfig config) : config_(std::move(config)) {}

Paradynd::~Paradynd() { stop(); }

Status Paradynd::start() {
  if (started_) return make_error(ErrorCode::kInvalidState, "already started");

  // Figure 6 step 3: tdp_init to contact the LASS.
  InitOptions options;
  options.role = Role::kTool;
  options.lass_address = config_.lass_address;
  options.context = config_.context;
  options.transport = config_.transport;
  options.retry = config_.retry;
  auto session = TdpSession::init(std::move(options));
  if (!session.is_ok()) return session.status();
  session_ = std::move(session).value();

  TDP_RETURN_IF_ERROR(discover_application());

  // The blocking get("pid") above adopted the WRITER's trace context (the
  // starter's app.create span) as this thread's ambient, so the attach leg
  // joins the same causal tree as the submit that launched the job - the
  // Figure 6 handoff, observable as one connected trace.
  std::optional<telemetry::Span> span;
  if (telemetry::current_context().valid()) {
    span.emplace("paradynd.attach", "paradynd");
  }
  telemetry::Registry::instance().counter("paradynd.attaches").inc();

  // tdp_attach: control is routed to the RM; the application ends up (or
  // stays) paused so instrumentation precedes the first user instruction.
  TDP_RETURN_IF_ERROR(session_->attach(app_pid_));

  TDP_RETURN_IF_ERROR(initialize_inferior());

  // Front-end link, possibly proxied (Section 2.4). A missing front-end
  // is not fatal: the daemon still profiles locally.
  Status frontend_status = connect_frontend();
  if (!frontend_status.is_ok()) {
    kLog.warn("no front-end connection: ", frontend_status.to_string());
  }

  // Figure 6 step 4 end: run the application from the very beginning.
  TDP_RETURN_IF_ERROR(session_->continue_process(app_pid_));

  // Self-hosted telemetry: the RT exports its registry into the job's
  // LASS over its own session, batched per interval.
  attr::TelemetryPublisher::Options pub_options;
  pub_options.role = "paradynd";
  pub_options.host = config_.daemon_name;
  telemetry_pub_ = std::make_unique<attr::TelemetryPublisher>(
      std::move(pub_options),
      [this](const std::vector<std::pair<std::string, std::string>>& pairs) {
        return session_->put_batch(pairs);
      });

  // Liveness lease: first beat immediately (the starter may already be
  // watching for the replacement daemon after a crash), then paced.
  if (config_.publish_liveness) {
    heartbeat_ = std::make_unique<lease::HeartbeatPublisher>(
        lease::liveness_attr("paradynd", config_.pid_attribute), config_.liveness,
        config_.clock, [this](const std::string& attribute, const std::string& value) {
          if (config_.recorder) config_.recorder->lease("beat", value);
          return session_->put(attribute, value);
        });
    heartbeat_->beat_now();
  }

  started_ = true;
  if (config_.recorder) {
    config_.recorder->state("start", "pid=" + std::to_string(app_pid_));
  }
  return Status::ok();
}

Status Paradynd::discover_application() {
  if (config_.attach_pid != 0) {
    // Attach mode (Figure 3B): pid was supplied by the user/front-end.
    app_pid_ = config_.attach_pid;
  } else {
    // Create mode: "paradynd is blocked until the starter stores in the
    // LASS the corresponding application pid using tdp_put."
    auto pid_value =
        session_->get(config_.pid_attribute, config_.pid_wait_timeout_ms);
    if (!pid_value.is_ok()) return pid_value.status();
    if (!str::is_integer(pid_value.value())) {
      return make_error(ErrorCode::kInternal,
                        "malformed pid attribute: " + pid_value.value());
    }
    app_pid_ = std::stoll(pid_value.value());
  }
  auto exe = session_->try_get(attr::attrs::kExecutableName);
  executable_ = exe.is_ok() ? exe.value() : "unknown-app";
  return Status::ok();
}

Status Paradynd::initialize_inferior() {
  // "the paradyn run-time library is loaded into the application process,
  // paradynd parses the executable to discover symbols and find potential
  // instrumentation points" (Section 4.2).
  inferior_ = std::make_unique<Inferior>(
      app_pid_, SymbolTable::synthesize(executable_, config_.nfuncs));
  // Default configuration: whole-program timing plus blocking metrics, the
  // data the Performance Consultant's root hypotheses need.
  inferior_->insert_matching("*", "*", Metric::kCpuTime);
  inferior_->insert_matching("*", "*", Metric::kSyncWait);
  inferior_->insert_matching("*", "*", Metric::kIoWait);
  return Status::ok();
}

Status Paradynd::connect_frontend() {
  std::string address = config_.frontend_address;
  if (address.empty()) {
    auto host = session_->try_get(attr::attrs::kFrontendHost);
    auto port = session_->try_get(attr::attrs::kFrontendPort);
    if (!host.is_ok() || !port.is_ok()) {
      return make_error(ErrorCode::kNotFound,
                        "front-end address not published in the LASS");
    }
    // An inproc-style published "host" is already a full address.
    if (str::starts_with(host.value(), "inproc://")) {
      address = host.value();
    } else {
      address = str::format_host_port(host.value(), std::stoi(port.value()));
    }
  }
  // Section 2.4: when the direct route is blocked, "the host/port number
  // will be that of the RM's proxy". The starter publishes that proxy
  // address into the LASS; pick it up and fall back through it.
  std::string proxy_address;
  auto proxy = session_->try_get(attr::attrs::kProxyAddress);
  if (proxy.is_ok()) proxy_address = proxy.value();
  auto endpoint = net::connect_direct_or_proxied(*config_.transport, address,
                                                 proxy_address, "paradyn-frontend");
  if (!endpoint.is_ok()) return endpoint.status();
  frontend_ = std::move(endpoint).value();

  net::Message hello(net::MsgType::kParadynHello);
  net::advertise_wire_version(*frontend_, hello);
  hello.set("daemon", config_.daemon_name);
  hello.set_int("pid", app_pid_);
  hello.set("executable", executable_);
  auto job = session_->try_get(attr::attrs::kJobId);
  if (job.is_ok()) hello.set("job_id", job.value());
  return frontend_->send(hello);
}

bool Paradynd::poll_once() {
  if (!started_) return false;
  session_->service_events();
  if (telemetry_pub_) telemetry_pub_->maybe_publish();
  if (heartbeat_) heartbeat_->maybe_beat();

  // Drain front-end commands (non-blocking). Any non-timeout failure means
  // the link is unusable (peer gone, stream desynced): drop it cleanly and
  // keep profiling locally — a lost front-end must not take the daemon
  // down (the paper's independent-failure requirement).
  if (frontend_) {
    while (frontend_) {
      auto msg = frontend_->receive(0);
      if (!msg.is_ok()) {
        if (msg.status().code() != ErrorCode::kTimeout) {
          kLog.info("front-end link lost (", msg.status().to_string(),
                    "); continuing without a front-end");
          frontend_.reset();
        }
        break;
      }
      handle_frontend_command(msg.value());
    }
  }

  // Observe the application's state as published by the RM. Losing the
  // LASS connection means the RM itself is gone — under the paper's fault
  // model the job is over from this daemon's point of view, so treat it
  // as termination rather than spinning forever.
  auto info = session_->process_info(app_pid_);
  const bool rm_gone =
      !info.is_ok() && info.status().code() == ErrorCode::kConnectionError;
  const bool running =
      info.is_ok() && info->state == proc::ProcessState::kRunning;
  const bool terminal =
      (info.is_ok() && proc::is_terminal(info->state)) || rm_gone;

  if (running) {
    auto samples = inferior_->sample(config_.sample_quantum_micros);
    metrics_.record_all(samples, app_pid_);
    unreported_.insert(unreported_.end(), samples.begin(), samples.end());
  }
  ++polls_;

  if (terminal && !app_exited_) {
    app_exited_ = true;
    send_report(/*final_report=*/true);
    kLog.info("application ", app_pid_, " exited; final report sent");
    return false;
  }
  if (polls_ % config_.report_every == 0 && !unreported_.empty()) {
    send_report(/*final_report=*/false);
  }
  return !app_exited_;
}

Status Paradynd::send_report(bool final_report) {
  static telemetry::Counter& rollups_counter =
      telemetry::Registry::instance().counter("paradynd.rollups");
  rollups_counter.inc();
  // Publish the whole-program rollup of every metric seen in this batch to
  // the attribute space in one batched round trip, so other daemons (and
  // the RM) can observe progress without talking to the front-end.
  if (session_ && !unreported_.empty()) {
    std::vector<std::pair<std::string, std::string>> rollup;
    for (const Sample& sample : unreported_) {
      const std::string attribute = "perf." + std::string(metric_name(sample.metric));
      if (std::none_of(rollup.begin(), rollup.end(),
                       [&](const auto& pair) { return pair.first == attribute; })) {
        rollup.emplace_back(attribute,
                            std::to_string(metrics_.value(sample.metric, code_focus())));
      }
    }
    Status published = session_->put_batch(rollup);
    if (!published.is_ok()) {
      kLog.warn("metric rollup publish failed: ", published.to_string());
    }
  }

  if (!frontend_) {
    unreported_.clear();
    return Status::ok();
  }
  net::Message report(net::MsgType::kParadynReport);
  report.reserve_fields(3 + 4 * unreported_.size());
  report.set_int("pid", app_pid_);
  report.set_int("count", static_cast<std::int64_t>(unreported_.size()));
  report.set("final", final_report ? "1" : "0");
  for (std::size_t i = 0; i < unreported_.size(); ++i) {
    const Sample& sample = unreported_[i];
    const std::string n = std::to_string(i);
    // add() appends without the duplicate-key scan; the indexed naming
    // scheme keeps keys unique, so a large report builds in O(N).
    report.add("m" + n, metric_name(sample.metric));
    report.add("mod" + n, sample.module);
    report.add("fn" + n, sample.function);
    report.add("v" + n, std::to_string(sample.value));
  }
  unreported_.clear();
  Status sent = frontend_->send(std::move(report));
  if (sent.is_ok()) {
    ++reports_sent_;
  } else {
    // A dead link would otherwise fail every future report; treat it as
    // the front-end having exited.
    kLog.info("front-end link lost on report (", sent.to_string(),
              "); continuing without a front-end");
    frontend_.reset();
  }
  return sent;
}

void Paradynd::handle_frontend_command(const net::Message& command) {
  if (command.type() != net::MsgType::kParadynCommand) return;
  const std::string kind = command.get("cmd");
  Status status;
  if (kind == "pause") {
    status = session_->pause_process(app_pid_);
  } else if (kind == "continue") {
    status = session_->continue_process(app_pid_);
  } else if (kind == "kill") {
    status = session_->kill_process(app_pid_);
  } else if (kind == "instrument") {
    status = inferior_->insert_instrumentation(
        command.get("module"), command.get("function"), Metric::kCpuTime);
  } else if (kind == "uninstrument") {
    status = inferior_->remove_instrumentation(
        command.get("module"), command.get("function"), Metric::kCpuTime);
  } else {
    status = make_error(ErrorCode::kInvalidArgument, "unknown command: " + kind);
  }
  if (frontend_) {
    net::Message reply(net::MsgType::kParadynCommandReply);
    reply.set_seq(command.seq());
    reply.set("status", status.is_ok() ? "ok" : status.to_string());
    frontend_->send(reply);
  }
}

Status Paradynd::run(int timeout_ms) {
  const Clock& wall = RealClock::instance();
  const Micros deadline = wall.now_micros() + static_cast<Micros>(timeout_ms) * 1000;
  while (poll_once()) {
    if (wall.now_micros() >= deadline) {
      return make_error(ErrorCode::kTimeout, "application still running");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return Status::ok();
}

Status Paradynd::stop() {
  if (frontend_) {
    frontend_->close();
    frontend_.reset();
  }
  if (session_) return session_->exit();
  return Status::ok();
}

void Paradynd::abandon() {
  kLog.warn(config_.daemon_name, ": simulated crash (connections severed, "
            "application left running)");
  heartbeat_.reset();  // beats stop: the lease will expire
  if (frontend_) {
    frontend_->close();
    frontend_.reset();
  }
  if (session_) session_->abandon();
  started_ = false;
  // The last entry in the victim's ring: everything after this silence is
  // the detector's story, not the daemon's.
  if (config_.recorder) config_.recorder->state("abandon", "");
}

}  // namespace tdp::paradyn
