// dyninst.hpp - DynInst-lite: the dynamic-instrumentation model MiniParadyn
// operates with.
//
// Paradyn's two major technologies are "the ability to automatically search
// for performance bottlenecks (Performance Consultant) and dynamically
// inserting and removing instrumentation in the application program at run
// time (Dyninst)" (Section 4.2). Real DynInst rewrites machine code; our
// inferior model keeps the same *interface* — parse the executable's
// symbols, choose instrumentation points, patch/unpatch them at run time,
// pay overhead proportional to active instrumentation — over a synthetic
// execution model: each function has a deterministic weight (seeded by its
// name), and sampling distributes elapsed virtual CPU time across
// functions by weight. One function per workload is "hot", which gives the
// Performance Consultant something real to find.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "proc/process.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace tdp::paradyn {

/// Metrics DynInst-lite instrumentation can collect.
enum class Metric : std::uint8_t {
  kCpuTime = 0,   ///< virtual CPU seconds attributed to the function
  kCallCount,     ///< number of invocations
  kSyncWait,      ///< time blocked on synchronization
  kIoWait,        ///< time blocked on I/O
};

const char* metric_name(Metric metric) noexcept;

/// One function in the inferior's symbol table.
struct FunctionSymbol {
  std::string module;
  std::string name;
  /// Relative execution weight (synthetic workload model).
  std::uint64_t weight = 1;
  /// Fraction of this function's time that is sync / io blocking.
  double sync_fraction = 0.0;
  double io_fraction = 0.0;
};

/// The parsed executable image ("paradynd parses the executable to
/// discover symbols and find potential instrumentation points").
class SymbolTable {
 public:
  /// Synthesizes a deterministic symbol table for `executable`: `nfuncs`
  /// functions across a few modules, weights seeded by executable name so
  /// every run of the same workload sees the same profile. One function
  /// ("hot_spot") receives ~half the total weight, and designated
  /// functions have sync/io-bound character.
  static SymbolTable synthesize(const std::string& executable, int nfuncs,
                                std::uint64_t seed = 0);

  [[nodiscard]] const std::vector<FunctionSymbol>& functions() const noexcept {
    return functions_;
  }
  [[nodiscard]] const FunctionSymbol* find(const std::string& module,
                                           const std::string& name) const;
  [[nodiscard]] std::vector<std::string> modules() const;
  [[nodiscard]] std::uint64_t total_weight() const noexcept { return total_weight_; }

  void add(FunctionSymbol symbol);

 private:
  std::vector<FunctionSymbol> functions_;
  std::uint64_t total_weight_ = 0;
};

/// One collected sample.
struct Sample {
  Metric metric = Metric::kCpuTime;
  std::string module;
  std::string function;
  double value = 0.0;
};

/// A point that has been patched into the inferior.
struct InstrumentationPoint {
  std::string module;
  std::string function;
  Metric metric = Metric::kCpuTime;

  bool operator<(const InstrumentationPoint& other) const {
    return std::tie(module, function, metric) <
           std::tie(other.module, other.function, other.metric);
  }
};

/// The attached, instrumentable process image.
class Inferior {
 public:
  /// `pid` is the application process (control stays with the RM per
  /// Section 2.3; the inferior only reads/instrumentes the image).
  Inferior(proc::Pid pid, SymbolTable symbols);

  [[nodiscard]] proc::Pid pid() const noexcept { return pid_; }
  [[nodiscard]] const SymbolTable& symbols() const noexcept { return symbols_; }

  /// Patches an instrumentation point. kNotFound for unknown functions,
  /// kAlreadyExists when the point is already active.
  Status insert_instrumentation(const std::string& module,
                                const std::string& function, Metric metric);

  /// "*" as module/function instruments every matching symbol (whole-
  /// program instrumentation, Paradyn's initial configuration).
  int insert_matching(const std::string& module_pattern,
                      const std::string& function_pattern, Metric metric);

  /// Unpatches a point (Paradyn removes instrumentation it no longer
  /// needs to keep overhead down).
  Status remove_instrumentation(const std::string& module,
                                const std::string& function, Metric metric);

  [[nodiscard]] bool is_instrumented(const std::string& module,
                                     const std::string& function,
                                     Metric metric) const;
  [[nodiscard]] std::size_t active_points() const noexcept {
    return points_.size();
  }

  /// Advances the synthetic execution model by `cpu_micros` of virtual CPU
  /// time and returns samples for the ACTIVE instrumentation points only
  /// (uninstrumented functions cost nothing and report nothing).
  std::vector<Sample> sample(std::int64_t cpu_micros);

  /// Fractional slowdown imposed by active instrumentation: each active
  /// point costs kOverheadPerPoint. This is what the instrumentation-
  /// overhead ablation bench measures.
  [[nodiscard]] double overhead_fraction() const noexcept {
    return static_cast<double>(points_.size()) * kOverheadPerPoint;
  }

  static constexpr double kOverheadPerPoint = 0.001;  // 0.1% per point

  /// Total virtual CPU time sampled so far (micros).
  [[nodiscard]] std::int64_t total_sampled_micros() const noexcept {
    return total_sampled_;
  }

 private:
  proc::Pid pid_;
  SymbolTable symbols_;
  std::set<InstrumentationPoint> points_;
  std::int64_t total_sampled_ = 0;
};

}  // namespace tdp::paradyn
