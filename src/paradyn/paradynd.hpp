// paradynd.hpp - the Paradyn daemon, "the agent that runs on each remote
// host where the application program is running ... In TDP terminology,
// paradynd is the RT" (Section 4.2).
//
// Under TDP the daemon's startup is exactly Figure 6 steps 3-4:
//   * tdp_init against the LASS the starter created,
//   * a blocking tdp_get("pid") that parks until the starter's tdp_put,
//   * tdp_attach (routed to the RM, which owns process control),
//   * initialization: load the runtime library, parse the executable for
//     symbols and instrumentation points, connect to the front-end
//     (directly, or through the RM's proxy when a firewall intervenes),
//   * tdp_continue_process to let the application run from its very first
//     instruction — the whole point of create-paused.
//
// After startup the daemon runs the canonical Section 3.3 poll loop:
// service TDP events, drain front-end commands, sample instrumentation,
// ship kParadynReport batches, and watch for application exit.
#pragma once

#include <memory>
#include <string>

#include "attrspace/telemetry_export.hpp"
#include "core/tdp.hpp"
#include "paradyn/dyninst.hpp"
#include "paradyn/metrics.hpp"
#include "util/flightrec.hpp"
#include "util/lease.hpp"

namespace tdp::paradyn {

struct ParadyndConfig {
  /// LASS address; a real daemon binary takes it from TDP_LASS_ADDRESS.
  std::string lass_address;
  std::string context = attr::kDefaultContext;
  std::shared_ptr<net::Transport> transport;

  /// Attach mode (Figure 3B): operate on this already-known pid. 0 selects
  /// create mode: block on tdp_get(pid_attribute).
  proc::Pid attach_pid = 0;

  /// LASS attribute carrying the application pid. Vanilla/rank-0 daemons
  /// use "pid"; per-rank MPI daemons use "pid.<r>" (set by the starter via
  /// TDP_PID_ATTRIBUTE).
  std::string pid_attribute = "pid";

  /// Explicit front-end address; empty = discover via the frontend_host /
  /// frontend_port attributes the starter published (may be absent: the
  /// daemon then runs detached and only aggregates locally).
  std::string frontend_address;

  /// Virtual CPU micros attributed to the app per poll turn while running.
  std::int64_t sample_quantum_micros = 10'000;

  /// Ship a report to the front-end every N poll turns.
  int report_every = 5;

  /// Synthesized symbol-table size.
  int nfuncs = 24;

  /// Timeout for the blocking pid get (create mode), ms.
  int pid_wait_timeout_ms = 10'000;

  std::string daemon_name = "paradynd";

  /// Failure-recovery policy for the daemon's LASS session.
  attr::RetryPolicy retry;

  /// Liveness lease: the daemon publishes heartbeats under
  /// tdp.liveness.paradynd.<pid_attribute> so the starter can tell a dead
  /// tool daemon (restartable) from a dead application (job over). In-proc
  /// tools get synthetic pids, so process-table liveness cannot see them;
  /// the lease is the only death signal that works for every launcher.
  bool publish_liveness = true;
  lease::Config liveness;

  /// Clock driving heartbeat pacing (tests inject a ManualClock).
  const Clock* clock = &RealClock::instance();

  /// Optional black-box flight recorder (PR 9), shared with the launcher
  /// so the ring survives abandon(): beats, startup and abandonment land
  /// in it and the peer that detects the death dumps the capsule.
  std::shared_ptr<flightrec::Recorder> recorder;
};

class Paradynd {
 public:
  explicit Paradynd(ParadyndConfig config);
  ~Paradynd();

  Paradynd(const Paradynd&) = delete;
  Paradynd& operator=(const Paradynd&) = delete;

  /// Runs the full startup handshake described above. On return the
  /// application is running with instrumentation in place.
  Status start();

  /// One poll-loop turn. Returns false once the application has exited
  /// (the final report has been sent).
  bool poll_once();

  /// Drives poll_once until app exit or timeout (wall clock).
  Status run(int timeout_ms);

  // --- observability ---
  [[nodiscard]] proc::Pid app_pid() const noexcept { return app_pid_; }
  [[nodiscard]] bool connected_to_frontend() const noexcept {
    return frontend_ != nullptr;
  }
  [[nodiscard]] Inferior* inferior() { return inferior_.get(); }
  [[nodiscard]] const MetricStore& local_metrics() const { return metrics_; }
  [[nodiscard]] TdpSession& session() { return *session_; }
  [[nodiscard]] int reports_sent() const noexcept { return reports_sent_; }
  [[nodiscard]] bool app_exited() const noexcept { return app_exited_; }

  /// Detaches cleanly: tdp_exit and front-end disconnect.
  Status stop();

  /// Simulates daemon death: every connection is severed without protocol,
  /// heartbeats stop, the application keeps running (Section 2.3: the RM,
  /// not the RT, owns the processes). A replacement daemon reattaches via
  /// the normal Figure 6 handshake - the pid is still in the LASS.
  void abandon();

  /// Heartbeats published so far (tests).
  [[nodiscard]] std::uint64_t beats_sent() const {
    return heartbeat_ ? heartbeat_->beats_sent() : 0;
  }

 private:
  Status discover_application();
  Status initialize_inferior();
  Status connect_frontend();
  void handle_frontend_command(const net::Message& command);
  Status send_report(bool final_report);

  ParadyndConfig config_;
  std::unique_ptr<TdpSession> session_;
  /// Publishes this RT's metrics into the LASS (tdp.telemetry.paradynd.*)
  /// over the session, one batched round trip per interval.
  std::unique_ptr<attr::TelemetryPublisher> telemetry_pub_;
  /// Beats tdp.liveness.paradynd.<pid_attribute> into the LASS.
  std::unique_ptr<lease::HeartbeatPublisher> heartbeat_;
  std::unique_ptr<net::Endpoint> frontend_;
  std::unique_ptr<Inferior> inferior_;
  MetricStore metrics_;
  std::vector<Sample> unreported_;
  proc::Pid app_pid_ = 0;
  std::string executable_;
  int polls_ = 0;
  int reports_sent_ = 0;
  bool app_exited_ = false;
  bool started_ = false;
};

}  // namespace tdp::paradyn
