#include "net/message.hpp"

#include <charconv>
#include <cstring>

namespace tdp::net {

namespace {

/// Little-endian writers over a raw output cursor. The frame size is known
/// before writing, so encoding is a single resize + sequential stores.
inline std::uint8_t* put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v & 0xff);
  p[1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  return p + 2;
}

inline std::uint8_t* put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
  return p + 4;
}

inline std::uint8_t* put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
  return p + 8;
}

inline std::uint8_t* put_bytes(std::uint8_t* p, const void* data, std::size_t n) {
  if (n != 0) std::memcpy(p, data, n);
  return p + n;
}

/// Bounds-checked little-endian reader over a byte span.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  bool read_u16(std::uint16_t* v) {
    if (size_ - pos_ < 2) return false;
    *v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }

  bool read_u32(std::uint32_t* v) {
    if (size_ - pos_ < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return true;
  }

  bool read_u64(std::uint64_t* v) {
    if (size_ - pos_ < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return true;
  }

  bool read_view(std::size_t n, std::string_view* out) {
    if (size_ - pos_ < n) return false;
    *out = std::string_view(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::int64_t parse_int(std::string_view text, std::int64_t fallback) {
  std::int64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return fallback;
  return value;
}

/// Shared frame-header validation; on success positions a ByteReader over
/// the payload and returns the field count.
Status parse_header(const std::uint8_t* data, std::size_t size, ByteReader* reader_out,
                    std::uint16_t* type_out, std::uint64_t* seq_out,
                    std::uint16_t* nfields_out) {
  if (size < Message::kLenPrefixSize) {
    return make_error(ErrorCode::kInvalidArgument, "frame shorter than length prefix");
  }
  const std::uint32_t payload = Message::peek_length(data);
  if (payload > Message::kMaxPayload) {
    return make_error(ErrorCode::kInvalidArgument, "payload length exceeds kMaxPayload");
  }
  if (size != Message::kLenPrefixSize + payload) {
    return make_error(ErrorCode::kInvalidArgument, "frame size does not match prefix");
  }
  ByteReader reader(data + Message::kLenPrefixSize, payload);
  if (!reader.read_u16(type_out) || !reader.read_u64(seq_out) ||
      !reader.read_u16(nfields_out)) {
    return make_error(ErrorCode::kInvalidArgument, "truncated message header");
  }
  *reader_out = reader;
  return Status::ok();
}

}  // namespace

Message& Message::set(std::string key, std::string value) {
  for (Field& field : fields_) {
    if (field.key == key) {
      field.value = std::move(value);
      return *this;
    }
  }
  fields_.push_back({std::move(key), std::move(value)});
  return *this;
}

Message& Message::set_int(std::string key, std::int64_t value) {
  return set(std::move(key), std::to_string(value));
}

Message& Message::add(std::string key, std::string value) {
  fields_.push_back({std::move(key), std::move(value)});
  return *this;
}

bool Message::has(std::string_view key) const {
  for (const Field& field : fields_) {
    if (field.key == key) return true;
  }
  return false;
}

std::string Message::get(std::string_view key, std::string_view fallback) const {
  return std::string(get_view(key, fallback));
}

std::string_view Message::get_view(std::string_view key,
                                   std::string_view fallback) const {
  for (const Field& field : fields_) {
    if (field.key == key) return field.value;
  }
  return fallback;
}

std::int64_t Message::get_int(std::string_view key, std::int64_t fallback) const {
  for (const Field& field : fields_) {
    if (field.key == key) return parse_int(field.value, fallback);
  }
  return fallback;
}

std::size_t Message::encoded_size() const noexcept {
  std::size_t size = kLenPrefixSize + 2 + 8 + 2;
  for (const Field& field : fields_) {
    size += 2 + field.key.size() + 4 + field.value.size();
  }
  return size;
}

void Message::encode_into(std::vector<std::uint8_t>& out) const {
  const std::size_t total = encoded_size();
  out.resize(total);
  std::uint8_t* p = out.data();
  p = put_u32(p, static_cast<std::uint32_t>(total - kLenPrefixSize));
  p = put_u16(p, static_cast<std::uint16_t>(type_));
  p = put_u64(p, seq_);
  p = put_u16(p, static_cast<std::uint16_t>(fields_.size()));
  for (const Field& field : fields_) {
    p = put_u16(p, static_cast<std::uint16_t>(field.key.size()));
    p = put_bytes(p, field.key.data(), field.key.size());
    p = put_u32(p, static_cast<std::uint32_t>(field.value.size()));
    p = put_bytes(p, field.value.data(), field.value.size());
  }
}

std::vector<std::uint8_t> Message::encode() const {
  std::vector<std::uint8_t> out;
  encode_into(out);
  return out;
}

std::uint32_t Message::peek_length(const std::uint8_t* prefix) noexcept {
  return static_cast<std::uint32_t>(prefix[0]) |
         (static_cast<std::uint32_t>(prefix[1]) << 8) |
         (static_cast<std::uint32_t>(prefix[2]) << 16) |
         (static_cast<std::uint32_t>(prefix[3]) << 24);
}

Result<Message> Message::decode(const std::uint8_t* data, std::size_t size) {
  ByteReader reader(nullptr, 0);
  std::uint16_t type_raw = 0;
  std::uint16_t nfields = 0;
  std::uint64_t seq = 0;
  TDP_RETURN_IF_ERROR(parse_header(data, size, &reader, &type_raw, &seq, &nfields));
  Message msg(static_cast<MsgType>(type_raw));
  msg.set_seq(seq);
  msg.fields_.reserve(nfields);
  for (std::uint16_t i = 0; i < nfields; ++i) {
    std::uint16_t klen = 0;
    std::uint32_t vlen = 0;
    std::string_view key, value;
    if (!reader.read_u16(&klen) || !reader.read_view(klen, &key) ||
        !reader.read_u32(&vlen) || !reader.read_view(vlen, &value)) {
      return make_error(ErrorCode::kInvalidArgument, "truncated message field");
    }
    // set() keeps keys unique: duplicate wire keys merge, last wins.
    msg.set(std::string(key), std::string(value));
  }
  if (!reader.exhausted()) {
    return make_error(ErrorCode::kInvalidArgument, "trailing bytes after last field");
  }
  return msg;
}

bool operator==(const Message& a, const Message& b) {
  if (a.type_ != b.type_ || a.seq_ != b.seq_ ||
      a.fields_.size() != b.fields_.size()) {
    return false;
  }
  // Keys are unique per message, so order-insensitive containment one way
  // plus equal sizes is full equality.
  for (const Message::Field& field : a.fields_) {
    bool matched = false;
    for (const Message::Field& other : b.fields_) {
      if (other.key == field.key) {
        matched = other.value == field.value;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

Status MessageView::parse(const std::uint8_t* data, std::size_t size) {
  ByteReader reader(nullptr, 0);
  std::uint16_t type_raw = 0;
  std::uint16_t nfields = 0;
  std::uint64_t seq = 0;
  TDP_RETURN_IF_ERROR(parse_header(data, size, &reader, &type_raw, &seq, &nfields));
  fields_.clear();
  owned_ = Message();
  fields_.reserve(nfields);
  for (std::uint16_t i = 0; i < nfields; ++i) {
    std::uint16_t klen = 0;
    std::uint32_t vlen = 0;
    FieldView field;
    if (!reader.read_u16(&klen) || !reader.read_view(klen, &field.key) ||
        !reader.read_u32(&vlen) || !reader.read_view(vlen, &field.value)) {
      return make_error(ErrorCode::kInvalidArgument, "truncated message field");
    }
    fields_.push_back(field);
  }
  if (!reader.exhausted()) {
    return make_error(ErrorCode::kInvalidArgument, "trailing bytes after last field");
  }
  type_ = static_cast<MsgType>(type_raw);
  seq_ = seq;
  return Status::ok();
}

void MessageView::adopt(Message msg) {
  owned_ = std::move(msg);
  type_ = owned_.type();
  seq_ = owned_.seq();
  fields_.clear();
  fields_.reserve(owned_.fields().size());
  for (const Message::Field& field : owned_.fields()) {
    fields_.push_back({field.key, field.value});
  }
}

bool MessageView::has(std::string_view key) const {
  for (const FieldView& field : fields_) {
    if (field.key == key) return true;
  }
  return false;
}

std::string_view MessageView::get(std::string_view key,
                                  std::string_view fallback) const {
  // Reverse scan: wire duplicates resolve last-wins, matching decode().
  for (auto it = fields_.rbegin(); it != fields_.rend(); ++it) {
    if (it->key == key) return it->value;
  }
  return fallback;
}

std::int64_t MessageView::get_int(std::string_view key, std::int64_t fallback) const {
  for (auto it = fields_.rbegin(); it != fields_.rend(); ++it) {
    if (it->key == key) return parse_int(it->value, fallback);
  }
  return fallback;
}

Message MessageView::to_message() const {
  Message msg(type_);
  msg.set_seq(seq_);
  msg.reserve_fields(fields_.size());
  for (const FieldView& field : fields_) {
    msg.set(std::string(field.key), std::string(field.value));
  }
  return msg;
}

std::string Message::to_string() const {
  std::string out = msg_type_name(type_);
  out += "{seq=";
  out += std::to_string(seq_);
  for (const Field& field : fields_) {
    out += ", ";
    out += field.key;
    out += '=';
    out += field.value.size() > 64 ? field.value.substr(0, 61) + "..." : field.value;
  }
  out += '}';
  return out;
}

const char* msg_type_name(MsgType type) noexcept {
  switch (type) {
    case MsgType::kInvalid: return "Invalid";
    case MsgType::kAttrPut: return "AttrPut";
    case MsgType::kAttrPutReply: return "AttrPutReply";
    case MsgType::kAttrGet: return "AttrGet";
    case MsgType::kAttrGetReply: return "AttrGetReply";
    case MsgType::kAttrAsyncGet: return "AttrAsyncGet";
    case MsgType::kAttrSubscribe: return "AttrSubscribe";
    case MsgType::kAttrNotify: return "AttrNotify";
    case MsgType::kAttrExit: return "AttrExit";
    case MsgType::kAttrRemove: return "AttrRemove";
    case MsgType::kAttrList: return "AttrList";
    case MsgType::kAttrListReply: return "AttrListReply";
    case MsgType::kAttrInit: return "AttrInit";
    case MsgType::kAttrInitReply: return "AttrInitReply";
    case MsgType::kAttrPutBatch: return "AttrPutBatch";
    case MsgType::kProcRequest: return "ProcRequest";
    case MsgType::kProcReply: return "ProcReply";
    case MsgType::kProcStatusEvent: return "ProcStatusEvent";
    case MsgType::kProxyConnect: return "ProxyConnect";
    case MsgType::kProxyConnectReply: return "ProxyConnectReply";
    case MsgType::kProxyData: return "ProxyData";
    case MsgType::kCondorSubmit: return "CondorSubmit";
    case MsgType::kCondorSubmitReply: return "CondorSubmitReply";
    case MsgType::kCondorMatch: return "CondorMatch";
    case MsgType::kCondorClaim: return "CondorClaim";
    case MsgType::kCondorClaimReply: return "CondorClaimReply";
    case MsgType::kCondorActivate: return "CondorActivate";
    case MsgType::kCondorJobStatus: return "CondorJobStatus";
    case MsgType::kCondorRemoteSyscall: return "CondorRemoteSyscall";
    case MsgType::kCondorRemoteSyscallReply: return "CondorRemoteSyscallReply";
    case MsgType::kParadynReport: return "ParadynReport";
    case MsgType::kParadynCommand: return "ParadynCommand";
    case MsgType::kParadynCommandReply: return "ParadynCommandReply";
    case MsgType::kParadynHello: return "ParadynHello";
    case MsgType::kMrnetBroadcast: return "MrnetBroadcast";
    case MsgType::kMrnetReduce: return "MrnetReduce";
    case MsgType::kMrnetReduceReply: return "MrnetReduceReply";
    case MsgType::kPing: return "Ping";
    case MsgType::kPong: return "Pong";
    case MsgType::kShutdown: return "Shutdown";
  }
  return "Unknown";
}

}  // namespace tdp::net
