#include "net/message.hpp"

#include <charconv>
#include <cstring>

namespace tdp::net {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

/// Bounds-checked little-endian reader over a byte span.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  bool read_u16(std::uint16_t* v) {
    if (pos_ + 2 > size_) return false;
    *v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }

  bool read_u32(std::uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return true;
  }

  bool read_u64(std::uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return true;
  }

  bool read_bytes(std::size_t n, std::string* out) {
    if (pos_ + n > size_) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

Message& Message::set(std::string key, std::string value) {
  fields_[std::move(key)] = std::move(value);
  return *this;
}

Message& Message::set_int(std::string key, std::int64_t value) {
  return set(std::move(key), std::to_string(value));
}

bool Message::has(std::string_view key) const {
  return fields_.find(std::string(key)) != fields_.end();
}

std::string Message::get(std::string_view key, std::string_view fallback) const {
  auto it = fields_.find(std::string(key));
  return it == fields_.end() ? std::string(fallback) : it->second;
}

std::int64_t Message::get_int(std::string_view key, std::int64_t fallback) const {
  auto it = fields_.find(std::string(key));
  if (it == fields_.end()) return fallback;
  std::int64_t value = 0;
  const char* begin = it->second.data();
  const char* end = begin + it->second.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return fallback;
  return value;
}

std::vector<std::uint8_t> Message::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(64);
  put_u32(out, 0);  // length placeholder
  put_u16(out, static_cast<std::uint16_t>(type_));
  put_u64(out, seq_);
  put_u16(out, static_cast<std::uint16_t>(fields_.size()));
  for (const auto& [key, value] : fields_) {
    put_u16(out, static_cast<std::uint16_t>(key.size()));
    out.insert(out.end(), key.begin(), key.end());
    put_u32(out, static_cast<std::uint32_t>(value.size()));
    out.insert(out.end(), value.begin(), value.end());
  }
  const std::uint32_t payload = static_cast<std::uint32_t>(out.size() - kLenPrefixSize);
  std::memcpy(out.data(), &payload, sizeof(payload));  // little-endian host assumed (x86)
  out[0] = static_cast<std::uint8_t>(payload & 0xff);
  out[1] = static_cast<std::uint8_t>((payload >> 8) & 0xff);
  out[2] = static_cast<std::uint8_t>((payload >> 16) & 0xff);
  out[3] = static_cast<std::uint8_t>((payload >> 24) & 0xff);
  return out;
}

std::uint32_t Message::peek_length(const std::uint8_t* prefix) noexcept {
  return static_cast<std::uint32_t>(prefix[0]) |
         (static_cast<std::uint32_t>(prefix[1]) << 8) |
         (static_cast<std::uint32_t>(prefix[2]) << 16) |
         (static_cast<std::uint32_t>(prefix[3]) << 24);
}

Result<Message> Message::decode(const std::uint8_t* data, std::size_t size) {
  if (size < kLenPrefixSize) {
    return make_error(ErrorCode::kInvalidArgument, "frame shorter than length prefix");
  }
  const std::uint32_t payload = peek_length(data);
  if (payload > kMaxPayload) {
    return make_error(ErrorCode::kInvalidArgument, "payload length exceeds kMaxPayload");
  }
  if (size != kLenPrefixSize + payload) {
    return make_error(ErrorCode::kInvalidArgument, "frame size does not match prefix");
  }
  ByteReader reader(data + kLenPrefixSize, payload);
  std::uint16_t type_raw = 0;
  std::uint64_t seq = 0;
  std::uint16_t nfields = 0;
  if (!reader.read_u16(&type_raw) || !reader.read_u64(&seq) || !reader.read_u16(&nfields)) {
    return make_error(ErrorCode::kInvalidArgument, "truncated message header");
  }
  Message msg(static_cast<MsgType>(type_raw));
  msg.set_seq(seq);
  for (std::uint16_t i = 0; i < nfields; ++i) {
    std::uint16_t klen = 0;
    std::uint32_t vlen = 0;
    std::string key, value;
    if (!reader.read_u16(&klen) || !reader.read_bytes(klen, &key) ||
        !reader.read_u32(&vlen) || !reader.read_bytes(vlen, &value)) {
      return make_error(ErrorCode::kInvalidArgument, "truncated message field");
    }
    msg.set(std::move(key), std::move(value));
  }
  if (!reader.exhausted()) {
    return make_error(ErrorCode::kInvalidArgument, "trailing bytes after last field");
  }
  return msg;
}

std::string Message::to_string() const {
  std::string out = msg_type_name(type_);
  out += "{seq=";
  out += std::to_string(seq_);
  for (const auto& [key, value] : fields_) {
    out += ", ";
    out += key;
    out += '=';
    out += value.size() > 64 ? value.substr(0, 61) + "..." : value;
  }
  out += '}';
  return out;
}

const char* msg_type_name(MsgType type) noexcept {
  switch (type) {
    case MsgType::kInvalid: return "Invalid";
    case MsgType::kAttrPut: return "AttrPut";
    case MsgType::kAttrPutReply: return "AttrPutReply";
    case MsgType::kAttrGet: return "AttrGet";
    case MsgType::kAttrGetReply: return "AttrGetReply";
    case MsgType::kAttrAsyncGet: return "AttrAsyncGet";
    case MsgType::kAttrSubscribe: return "AttrSubscribe";
    case MsgType::kAttrNotify: return "AttrNotify";
    case MsgType::kAttrExit: return "AttrExit";
    case MsgType::kAttrRemove: return "AttrRemove";
    case MsgType::kAttrList: return "AttrList";
    case MsgType::kAttrListReply: return "AttrListReply";
    case MsgType::kAttrInit: return "AttrInit";
    case MsgType::kAttrInitReply: return "AttrInitReply";
    case MsgType::kProcRequest: return "ProcRequest";
    case MsgType::kProcReply: return "ProcReply";
    case MsgType::kProcStatusEvent: return "ProcStatusEvent";
    case MsgType::kProxyConnect: return "ProxyConnect";
    case MsgType::kProxyConnectReply: return "ProxyConnectReply";
    case MsgType::kProxyData: return "ProxyData";
    case MsgType::kCondorSubmit: return "CondorSubmit";
    case MsgType::kCondorSubmitReply: return "CondorSubmitReply";
    case MsgType::kCondorMatch: return "CondorMatch";
    case MsgType::kCondorClaim: return "CondorClaim";
    case MsgType::kCondorClaimReply: return "CondorClaimReply";
    case MsgType::kCondorActivate: return "CondorActivate";
    case MsgType::kCondorJobStatus: return "CondorJobStatus";
    case MsgType::kCondorRemoteSyscall: return "CondorRemoteSyscall";
    case MsgType::kCondorRemoteSyscallReply: return "CondorRemoteSyscallReply";
    case MsgType::kParadynReport: return "ParadynReport";
    case MsgType::kParadynCommand: return "ParadynCommand";
    case MsgType::kParadynCommandReply: return "ParadynCommandReply";
    case MsgType::kParadynHello: return "ParadynHello";
    case MsgType::kMrnetBroadcast: return "MrnetBroadcast";
    case MsgType::kMrnetReduce: return "MrnetReduce";
    case MsgType::kMrnetReduceReply: return "MrnetReduceReply";
    case MsgType::kPing: return "Ping";
    case MsgType::kPong: return "Pong";
    case MsgType::kShutdown: return "Shutdown";
  }
  return "Unknown";
}

}  // namespace tdp::net
