#include "net/message.hpp"

#include <charconv>
#include <cstring>

namespace tdp::net {

namespace {

/// Little-endian writers over a raw output cursor. The frame size is known
/// before writing, so encoding is a single resize + sequential stores.
inline std::uint8_t* put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v & 0xff);
  p[1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  return p + 2;
}

inline std::uint8_t* put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
  return p + 4;
}

inline std::uint8_t* put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
  return p + 8;
}

inline std::uint8_t* put_bytes(std::uint8_t* p, const void* data, std::size_t n) {
  if (n != 0) std::memcpy(p, data, n);
  return p + n;
}

/// LEB128 varint (v2 layout). Sizes and writes agree byte-for-byte so the
/// two-pass encode (size, then fill) never reallocates.
inline std::size_t varint_size(std::uint64_t v) noexcept {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

inline std::uint8_t* put_varint(std::uint8_t* p, std::uint64_t v) {
  while (v >= 0x80) {
    *p++ = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  *p++ = static_cast<std::uint8_t>(v);
  return p;
}

/// v2 field tags. Unknown tags are skipped via their body_len - the
/// forward-compatibility rule.
constexpr std::uint8_t kTagInterned = 0x01;
constexpr std::uint8_t kTagNamed = 0x02;

/// Bounds-checked little-endian reader over a byte span.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  bool read_u16(std::uint16_t* v) {
    if (size_ - pos_ < 2) return false;
    *v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }

  bool read_u32(std::uint32_t* v) {
    if (size_ - pos_ < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return true;
  }

  bool read_u64(std::uint64_t* v) {
    if (size_ - pos_ < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return true;
  }

  bool read_view(std::size_t n, std::string_view* out) {
    if (size_ - pos_ < n) return false;
    *out = std::string_view(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  bool read_u8(std::uint8_t* v) {
    if (size_ - pos_ < 1) return false;
    *v = data_[pos_++];
    return true;
  }

  /// LEB128, capped at 10 bytes; rejects non-canonical over-length runs.
  bool read_varint(std::uint64_t* v) {
    *v = 0;
    int shift = 0;
    while (pos_ < size_ && shift < 64) {
      const std::uint8_t byte = data_[pos_++];
      *v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return true;
      shift += 7;
    }
    return false;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::int64_t parse_int(std::string_view text, std::int64_t fallback) {
  std::int64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return fallback;
  return value;
}

/// Validates the length prefix against the actual frame size and positions
/// a ByteReader over the payload. Shared by both wire versions.
Status validate_frame(const std::uint8_t* data, std::size_t size,
                      ByteReader* reader_out) {
  if (size < Message::kLenPrefixSize) {
    return make_error(ErrorCode::kInvalidArgument, "frame shorter than length prefix");
  }
  const std::uint32_t payload = Message::peek_length(data);
  if (payload > Message::kMaxPayload) {
    return make_error(ErrorCode::kInvalidArgument, "payload length exceeds kMaxPayload");
  }
  if (size != Message::kLenPrefixSize + payload) {
    return make_error(ErrorCode::kInvalidArgument, "frame size does not match prefix");
  }
  *reader_out = ByteReader(data + Message::kLenPrefixSize, payload);
  return Status::ok();
}

/// v1 payload header: u16 type | u64 seq | u16 nfields.
Status parse_v1_header(ByteReader& reader, std::uint16_t* type_out,
                       std::uint64_t* seq_out, std::uint64_t* nfields_out) {
  std::uint16_t nfields = 0;
  if (!reader.read_u16(type_out) || !reader.read_u64(seq_out) ||
      !reader.read_u16(&nfields)) {
    return make_error(ErrorCode::kInvalidArgument, "truncated message header");
  }
  *nfields_out = nfields;
  return Status::ok();
}

/// v2 payload header: u8 marker | u8 version | u8 flags | u16 type |
/// varint seq | varint nfields.
Status parse_v2_header(ByteReader& reader, std::uint16_t* type_out,
                       std::uint64_t* seq_out, std::uint64_t* nfields_out) {
  std::uint8_t marker = 0;
  std::uint8_t version = 0;
  std::uint8_t flags = 0;
  if (!reader.read_u8(&marker) || !reader.read_u8(&version) ||
      !reader.read_u8(&flags)) {
    return make_error(ErrorCode::kInvalidArgument, "truncated v2 header");
  }
  if (marker != kV2Marker) {
    return make_error(ErrorCode::kInvalidArgument, "missing v2 marker");
  }
  if (version != static_cast<std::uint8_t>(WireVersion::kV2)) {
    return make_error(ErrorCode::kInvalidArgument, "unsupported wire version");
  }
  if (flags != 0) {
    return make_error(ErrorCode::kInvalidArgument, "reserved wire flags set");
  }
  if (!reader.read_u16(type_out) || !reader.read_varint(seq_out) ||
      !reader.read_varint(nfields_out)) {
    return make_error(ErrorCode::kInvalidArgument, "truncated v2 header");
  }
  // The 0xFD row of the type space is reserved so payload[0] can mark v2
  // frames; a type from that row could never re-encode as v1.
  if ((*type_out & 0xFF) == kV2Marker) {
    return make_error(ErrorCode::kInvalidArgument, "reserved message type");
  }
  // Each encoded field is at least tag + body_len = 2 bytes, so a count
  // exceeding the remaining payload is corrupt (guards reserve() against
  // a hostile varint).
  if (*nfields_out > reader.remaining()) {
    return make_error(ErrorCode::kInvalidArgument, "v2 field count exceeds payload");
  }
  return Status::ok();
}

/// Parses one v2 field. On success either yields key/value views or sets
/// `skipped` (unknown tag or unregistered interned id - the
/// skip-unknown-fields rule). Interned keys view the static registry, so
/// they outlive any buffer.
Status parse_v2_field(ByteReader& reader, std::string_view* key,
                      std::string_view* value, bool* skipped) {
  std::uint8_t tag = 0;
  std::uint64_t body_len = 0;
  if (!reader.read_u8(&tag) || !reader.read_varint(&body_len)) {
    return make_error(ErrorCode::kInvalidArgument, "truncated v2 field header");
  }
  std::string_view body;
  if (body_len > reader.remaining() ||
      !reader.read_view(static_cast<std::size_t>(body_len), &body)) {
    return make_error(ErrorCode::kInvalidArgument, "truncated v2 field body");
  }
  ByteReader body_reader(reinterpret_cast<const std::uint8_t*>(body.data()),
                         body.size());
  *skipped = false;
  if (tag == kTagInterned) {
    std::uint16_t id = 0;
    if (!body_reader.read_u16(&id)) {
      return make_error(ErrorCode::kInvalidArgument, "truncated interned field id");
    }
    const std::string_view name = wire_field_name(id);
    if (name.empty()) {
      *skipped = true;  // id from a newer registry than ours
      return Status::ok();
    }
    *key = name;
    body_reader.read_view(body_reader.remaining(), value);
    return Status::ok();
  }
  if (tag == kTagNamed) {
    std::uint64_t klen = 0;
    if (!body_reader.read_varint(&klen) || klen > body_reader.remaining() ||
        !body_reader.read_view(static_cast<std::size_t>(klen), key)) {
      return make_error(ErrorCode::kInvalidArgument, "truncated named field key");
    }
    body_reader.read_view(body_reader.remaining(), value);
    return Status::ok();
  }
  *skipped = true;  // unknown tag, body_len already consumed
  return Status::ok();
}

}  // namespace

Message& Message::set(std::string key, std::string value) {
  for (Field& field : fields_) {
    if (field.key == key) {
      field.value = std::move(value);
      return *this;
    }
  }
  fields_.push_back({std::move(key), std::move(value)});
  return *this;
}

Message& Message::set_int(std::string key, std::int64_t value) {
  return set(std::move(key), std::to_string(value));
}

Message& Message::add(std::string key, std::string value) {
  fields_.push_back({std::move(key), std::move(value)});
  return *this;
}

bool Message::has(std::string_view key) const {
  for (const Field& field : fields_) {
    if (field.key == key) return true;
  }
  return false;
}

std::string Message::get(std::string_view key, std::string_view fallback) const {
  return std::string(get_view(key, fallback));
}

std::string_view Message::get_view(std::string_view key,
                                   std::string_view fallback) const {
  for (const Field& field : fields_) {
    if (field.key == key) return field.value;
  }
  return fallback;
}

std::int64_t Message::get_int(std::string_view key, std::int64_t fallback) const {
  for (const Field& field : fields_) {
    if (field.key == key) return parse_int(field.value, fallback);
  }
  return fallback;
}

namespace {

/// Size of one v2 field body (without tag and body_len prefix). Sets
/// `interned_id` when the key is in the registry.
inline std::size_t v2_field_body_size(const Message::Field& field,
                                      std::uint16_t* interned_id) {
  if (wire_field_id(field.key, interned_id)) {
    return 2 + field.value.size();
  }
  *interned_id = 0;
  return varint_size(field.key.size()) + field.key.size() + field.value.size();
}

}  // namespace

std::size_t Message::encoded_size(WireVersion version) const noexcept {
  if (version == WireVersion::kV1) {
    std::size_t size = kLenPrefixSize + 2 + 8 + 2;
    for (const Field& field : fields_) {
      size += 2 + field.key.size() + 4 + field.value.size();
    }
    return size;
  }
  std::size_t size = kLenPrefixSize + 3 + 2 + varint_size(seq_) +
                     varint_size(fields_.size());
  for (const Field& field : fields_) {
    std::uint16_t id = 0;
    const std::size_t body = v2_field_body_size(field, &id);
    size += 1 + varint_size(body) + body;
  }
  return size;
}

void Message::encode_into(std::vector<std::uint8_t>& out, WireVersion version) const {
  const std::size_t total = encoded_size(version);
  out.resize(total);
  std::uint8_t* p = out.data();
  p = put_u32(p, static_cast<std::uint32_t>(total - kLenPrefixSize));
  if (version == WireVersion::kV1) {
    p = put_u16(p, static_cast<std::uint16_t>(type_));
    p = put_u64(p, seq_);
    p = put_u16(p, static_cast<std::uint16_t>(fields_.size()));
    for (const Field& field : fields_) {
      p = put_u16(p, static_cast<std::uint16_t>(field.key.size()));
      p = put_bytes(p, field.key.data(), field.key.size());
      p = put_u32(p, static_cast<std::uint32_t>(field.value.size()));
      p = put_bytes(p, field.value.data(), field.value.size());
    }
    return;
  }
  *p++ = kV2Marker;
  *p++ = static_cast<std::uint8_t>(WireVersion::kV2);
  *p++ = 0;  // flags, reserved
  p = put_u16(p, static_cast<std::uint16_t>(type_));
  p = put_varint(p, seq_);
  p = put_varint(p, fields_.size());
  for (const Field& field : fields_) {
    std::uint16_t id = 0;
    const std::size_t body = v2_field_body_size(field, &id);
    if (id != 0) {
      *p++ = kTagInterned;
      p = put_varint(p, body);
      p = put_u16(p, id);
    } else {
      *p++ = kTagNamed;
      p = put_varint(p, body);
      p = put_varint(p, field.key.size());
      p = put_bytes(p, field.key.data(), field.key.size());
    }
    p = put_bytes(p, field.value.data(), field.value.size());
  }
}

std::vector<std::uint8_t> Message::encode(WireVersion version) const {
  std::vector<std::uint8_t> out;
  encode_into(out, version);
  return out;
}

std::uint32_t Message::peek_length(const std::uint8_t* prefix) noexcept {
  return static_cast<std::uint32_t>(prefix[0]) |
         (static_cast<std::uint32_t>(prefix[1]) << 8) |
         (static_cast<std::uint32_t>(prefix[2]) << 16) |
         (static_cast<std::uint32_t>(prefix[3]) << 24);
}

WireVersion Message::detect_version(const std::uint8_t* data,
                                    std::size_t size) noexcept {
  if (size <= kLenPrefixSize) return WireVersion::kV1;
  return data[kLenPrefixSize] == kV2Marker ? WireVersion::kV2 : WireVersion::kV1;
}

Result<Message> Message::decode(const std::uint8_t* data, std::size_t size) {
  ByteReader reader(nullptr, 0);
  TDP_RETURN_IF_ERROR(validate_frame(data, size, &reader));
  const WireVersion version = detect_version(data, size);
  std::uint16_t type_raw = 0;
  std::uint64_t seq = 0;
  std::uint64_t nfields = 0;
  if (version == WireVersion::kV1) {
    TDP_RETURN_IF_ERROR(parse_v1_header(reader, &type_raw, &seq, &nfields));
  } else {
    TDP_RETURN_IF_ERROR(parse_v2_header(reader, &type_raw, &seq, &nfields));
  }
  Message msg(static_cast<MsgType>(type_raw));
  msg.set_seq(seq);
  msg.fields_.reserve(static_cast<std::size_t>(nfields));
  for (std::uint64_t i = 0; i < nfields; ++i) {
    std::string_view key, value;
    if (version == WireVersion::kV1) {
      std::uint16_t klen = 0;
      std::uint32_t vlen = 0;
      if (!reader.read_u16(&klen) || !reader.read_view(klen, &key) ||
          !reader.read_u32(&vlen) || !reader.read_view(vlen, &value)) {
        return make_error(ErrorCode::kInvalidArgument, "truncated message field");
      }
    } else {
      bool skipped = false;
      TDP_RETURN_IF_ERROR(parse_v2_field(reader, &key, &value, &skipped));
      if (skipped) continue;
    }
    // set() keeps keys unique: duplicate wire keys merge, last wins.
    msg.set(std::string(key), std::string(value));
  }
  if (!reader.exhausted()) {
    return make_error(ErrorCode::kInvalidArgument, "trailing bytes after last field");
  }
  return msg;
}

bool operator==(const Message& a, const Message& b) {
  if (a.type_ != b.type_ || a.seq_ != b.seq_ ||
      a.fields_.size() != b.fields_.size()) {
    return false;
  }
  // Keys are unique per message, so order-insensitive containment one way
  // plus equal sizes is full equality.
  for (const Message::Field& field : a.fields_) {
    bool matched = false;
    for (const Message::Field& other : b.fields_) {
      if (other.key == field.key) {
        matched = other.value == field.value;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

Status MessageView::parse(const std::uint8_t* data, std::size_t size) {
  ByteReader reader(nullptr, 0);
  TDP_RETURN_IF_ERROR(validate_frame(data, size, &reader));
  const WireVersion version = Message::detect_version(data, size);
  std::uint16_t type_raw = 0;
  std::uint64_t seq = 0;
  std::uint64_t nfields = 0;
  if (version == WireVersion::kV1) {
    TDP_RETURN_IF_ERROR(parse_v1_header(reader, &type_raw, &seq, &nfields));
  } else {
    TDP_RETURN_IF_ERROR(parse_v2_header(reader, &type_raw, &seq, &nfields));
  }
  fields_.clear();
  owned_ = Message();
  fields_.reserve(static_cast<std::size_t>(nfields));
  for (std::uint64_t i = 0; i < nfields; ++i) {
    FieldView field;
    if (version == WireVersion::kV1) {
      std::uint16_t klen = 0;
      std::uint32_t vlen = 0;
      if (!reader.read_u16(&klen) || !reader.read_view(klen, &field.key) ||
          !reader.read_u32(&vlen) || !reader.read_view(vlen, &field.value)) {
        return make_error(ErrorCode::kInvalidArgument, "truncated message field");
      }
    } else {
      bool skipped = false;
      TDP_RETURN_IF_ERROR(parse_v2_field(reader, &field.key, &field.value, &skipped));
      if (skipped) continue;
    }
    fields_.push_back(field);
  }
  if (!reader.exhausted()) {
    return make_error(ErrorCode::kInvalidArgument, "trailing bytes after last field");
  }
  type_ = static_cast<MsgType>(type_raw);
  seq_ = seq;
  wire_version_ = version;
  return Status::ok();
}

void MessageView::adopt(Message msg) {
  owned_ = std::move(msg);
  type_ = owned_.type();
  seq_ = owned_.seq();
  wire_version_ = WireVersion::kV1;
  fields_.clear();
  fields_.reserve(owned_.fields().size());
  for (const Message::Field& field : owned_.fields()) {
    fields_.push_back({field.key, field.value});
  }
}

bool MessageView::has(std::string_view key) const {
  for (const FieldView& field : fields_) {
    if (field.key == key) return true;
  }
  return false;
}

std::string_view MessageView::get(std::string_view key,
                                  std::string_view fallback) const {
  // Reverse scan: wire duplicates resolve last-wins, matching decode().
  for (auto it = fields_.rbegin(); it != fields_.rend(); ++it) {
    if (it->key == key) return it->value;
  }
  return fallback;
}

std::int64_t MessageView::get_int(std::string_view key, std::int64_t fallback) const {
  for (auto it = fields_.rbegin(); it != fields_.rend(); ++it) {
    if (it->key == key) return parse_int(it->value, fallback);
  }
  return fallback;
}

Message MessageView::to_message() const {
  Message msg(type_);
  msg.set_seq(seq_);
  msg.reserve_fields(fields_.size());
  for (const FieldView& field : fields_) {
    msg.set(std::string(field.key), std::string(field.value));
  }
  return msg;
}

std::string Message::to_string() const {
  std::string out = msg_type_name(type_);
  out += "{seq=";
  out += std::to_string(seq_);
  for (const Field& field : fields_) {
    out += ", ";
    out += field.key;
    out += '=';
    out += field.value.size() > 64 ? field.value.substr(0, 61) + "..." : field.value;
  }
  out += '}';
  return out;
}

const char* msg_type_name(MsgType type) noexcept {
  switch (type) {
    case MsgType::kInvalid: return "Invalid";
    case MsgType::kAttrPut: return "AttrPut";
    case MsgType::kAttrPutReply: return "AttrPutReply";
    case MsgType::kAttrGet: return "AttrGet";
    case MsgType::kAttrGetReply: return "AttrGetReply";
    case MsgType::kAttrAsyncGet: return "AttrAsyncGet";
    case MsgType::kAttrSubscribe: return "AttrSubscribe";
    case MsgType::kAttrNotify: return "AttrNotify";
    case MsgType::kAttrExit: return "AttrExit";
    case MsgType::kAttrRemove: return "AttrRemove";
    case MsgType::kAttrList: return "AttrList";
    case MsgType::kAttrListReply: return "AttrListReply";
    case MsgType::kAttrInit: return "AttrInit";
    case MsgType::kAttrInitReply: return "AttrInitReply";
    case MsgType::kAttrPutBatch: return "AttrPutBatch";
    case MsgType::kProcRequest: return "ProcRequest";
    case MsgType::kProcReply: return "ProcReply";
    case MsgType::kProcStatusEvent: return "ProcStatusEvent";
    case MsgType::kProxyConnect: return "ProxyConnect";
    case MsgType::kProxyConnectReply: return "ProxyConnectReply";
    case MsgType::kProxyData: return "ProxyData";
    case MsgType::kCondorSubmit: return "CondorSubmit";
    case MsgType::kCondorSubmitReply: return "CondorSubmitReply";
    case MsgType::kCondorMatch: return "CondorMatch";
    case MsgType::kCondorClaim: return "CondorClaim";
    case MsgType::kCondorClaimReply: return "CondorClaimReply";
    case MsgType::kCondorActivate: return "CondorActivate";
    case MsgType::kCondorJobStatus: return "CondorJobStatus";
    case MsgType::kCondorRemoteSyscall: return "CondorRemoteSyscall";
    case MsgType::kCondorRemoteSyscallReply: return "CondorRemoteSyscallReply";
    case MsgType::kParadynReport: return "ParadynReport";
    case MsgType::kParadynCommand: return "ParadynCommand";
    case MsgType::kParadynCommandReply: return "ParadynCommandReply";
    case MsgType::kParadynHello: return "ParadynHello";
    case MsgType::kMrnetBroadcast: return "MrnetBroadcast";
    case MsgType::kMrnetReduce: return "MrnetReduce";
    case MsgType::kMrnetReduceReply: return "MrnetReduceReply";
    case MsgType::kPing: return "Ping";
    case MsgType::kPong: return "Pong";
    case MsgType::kShutdown: return "Shutdown";
  }
  return "Unknown";
}

}  // namespace tdp::net
