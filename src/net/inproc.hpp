// inproc.hpp - in-process transport: message queues between "daemons"
// living in one OS process. This is the deterministic substrate that lets
// a whole Condor pool plus Paradyn front-end and daemons run inside one
// test binary. Addresses use the scheme "inproc://<name>".
//
// Endpoints still expose a real pipe descriptor via readable_fd() so the
// paper's poll-loop event model (Section 3.3) works identically over both
// transports.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>

#include "net/transport.hpp"
#include "util/sync.hpp"

namespace tdp::net {

namespace detail {
class InProcQueue;
struct InProcChannel;
class InProcListenerState;
}  // namespace detail

/// Transport whose listeners live in an instance-scoped registry; creating
/// separate InProcTransport objects yields fully isolated "networks".
class InProcTransport final : public Transport,
                              public std::enable_shared_from_this<InProcTransport> {
 public:
  /// Use create(); the registry hands out shared_from_this to listeners.
  static std::shared_ptr<InProcTransport> create();

  Result<std::unique_ptr<Listener>> listen(const std::string& address) override;
  Result<std::unique_ptr<Endpoint>> connect(const std::string& address) override;

  /// Number of currently bound listeners (diagnostics/tests).
  [[nodiscard]] std::size_t listener_count() const;

  /// Removes a closed listener from the registry (called by the listener's
  /// own close(); harmless if already removed).
  void unregister(const std::string& name);

 private:
  InProcTransport() = default;

  mutable Mutex mutex_{"InProcTransport::mutex_"};
  std::map<std::string, std::shared_ptr<detail::InProcListenerState>> listeners_
      TDP_GUARDED_BY(mutex_);
};

/// True when `address` uses the inproc:// scheme.
bool is_inproc_address(const std::string& address);

}  // namespace tdp::net
