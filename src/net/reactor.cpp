#include "net/reactor.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>

namespace tdp::net {

Reactor::Reactor() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    wake_r_ = fds[0];
    wake_w_ = fds[1];
    ::fcntl(wake_r_, F_SETFL, O_NONBLOCK);
    ::fcntl(wake_w_, F_SETFL, O_NONBLOCK);
    ::fcntl(wake_r_, F_SETFD, FD_CLOEXEC);
    ::fcntl(wake_w_, F_SETFD, FD_CLOEXEC);
  }
}

Reactor::~Reactor() {
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
}

void Reactor::add_readable(int fd, Handler handler) {
  {
    LockGuard lock(mutex_);
    handlers_[fd] = std::move(handler);
    ++generation_;
  }
  // Wake a poll blocked on the stale set so the new fd is watched promptly.
  if (wake_w_ >= 0) {
    const char byte = 'w';
    [[maybe_unused]] ssize_t n = ::write(wake_w_, &byte, 1);
  }
}

void Reactor::remove(int fd) {
  LockGuard lock(mutex_);
  if (handlers_.erase(fd) != 0) ++generation_;
  // No wake needed: a removed fd at worst causes one spurious-but-ignored
  // dispatch attempt (the handler lookup below misses).
}

void Reactor::refresh_cache_locked() {
  if (cache_generation_ == generation_) {
    // Watch set unchanged: just clear stale revents.
    for (auto& pfd : pfds_) pfd.revents = 0;
    return;
  }
  pfds_.clear();
  pfd_fds_.clear();
  pfds_.reserve(handlers_.size() + 1);
  pfd_fds_.reserve(handlers_.size());
  for (const auto& [fd, handler] : handlers_) {
    pfds_.push_back({fd, POLLIN, 0});
    pfd_fds_.push_back(fd);
  }
  pfds_.push_back({wake_r_, POLLIN, 0});
  cache_generation_ = generation_;
}

int Reactor::run_once(int timeout_ms) {
  {
    LockGuard lock(mutex_);
    refresh_cache_locked();
  }

  int rc;
  do {
    rc = ::poll(pfds_.data(), pfds_.size(), timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc <= 0) return 0;

  // Drain wakeup bytes first so stop() is observed promptly.
  if (pfds_.back().revents & (POLLIN | POLLHUP | POLLERR)) {
    char buf[64];
    while (::read(wake_r_, buf, sizeof(buf)) > 0) {
    }
  }

  int dispatched = 0;
  for (std::size_t i = 0; i + 1 < pfds_.size(); ++i) {
    if ((pfds_[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    Handler handler;
    {
      LockGuard lock(mutex_);
      auto it = handlers_.find(pfd_fds_[i]);
      if (it == handlers_.end()) continue;  // removed by an earlier handler
      handler = it->second;                 // copy so handlers may remove(fd)
    }
    // Handlers run with the reactor unlocked so they may re-enter
    // add_readable/remove without deadlocking.
    mutex_.assert_not_held();
    handler();
    ++dispatched;
  }
  return dispatched;
}

void Reactor::run() {
  stop_requested_.store(false, std::memory_order_release);
  while (!stop_requested_.load(std::memory_order_acquire)) {
    run_once(-1);
  }
}

void Reactor::stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_w_ >= 0) {
    const char byte = 'w';
    [[maybe_unused]] ssize_t n = ::write(wake_w_, &byte, 1);
  }
}

std::size_t Reactor::watch_count() const {
  LockGuard lock(mutex_);
  return handlers_.size();
}

}  // namespace tdp::net
