#include "net/reactor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <vector>

namespace tdp::net {

Reactor::Reactor() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    wake_r_ = fds[0];
    wake_w_ = fds[1];
    ::fcntl(wake_r_, F_SETFL, O_NONBLOCK);
    ::fcntl(wake_w_, F_SETFL, O_NONBLOCK);
    ::fcntl(wake_r_, F_SETFD, FD_CLOEXEC);
    ::fcntl(wake_w_, F_SETFD, FD_CLOEXEC);
  }
}

Reactor::~Reactor() {
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
}

void Reactor::add_readable(int fd, Handler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  handlers_[fd] = std::move(handler);
}

void Reactor::remove(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  handlers_.erase(fd);
}

int Reactor::run_once(int timeout_ms) {
  std::vector<struct pollfd> pfds;
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pfds.reserve(handlers_.size() + 1);
    fds.reserve(handlers_.size());
    for (const auto& [fd, handler] : handlers_) {
      pfds.push_back({fd, POLLIN, 0});
      fds.push_back(fd);
    }
  }
  pfds.push_back({wake_r_, POLLIN, 0});

  int rc;
  do {
    rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc <= 0) return 0;

  // Drain wakeup bytes first so stop() is observed promptly.
  if (pfds.back().revents & (POLLIN | POLLHUP | POLLERR)) {
    char buf[64];
    while (::read(wake_r_, buf, sizeof(buf)) > 0) {
    }
  }

  int dispatched = 0;
  for (std::size_t i = 0; i + 1 < pfds.size(); ++i) {
    if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    Handler handler;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = handlers_.find(fds[i]);
      if (it == handlers_.end()) continue;  // removed by an earlier handler
      handler = it->second;                 // copy so handlers may remove(fd)
    }
    handler();
    ++dispatched;
  }
  return dispatched;
}

void Reactor::run() {
  stop_requested_.store(false, std::memory_order_release);
  while (!stop_requested_.load(std::memory_order_acquire)) {
    run_once(-1);
  }
}

void Reactor::stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_w_ >= 0) {
    const char byte = 'w';
    [[maybe_unused]] ssize_t n = ::write(wake_w_, &byte, 1);
  }
}

std::size_t Reactor::watch_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return handlers_.size();
}

}  // namespace tdp::net
