#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <vector>

#include "util/clock.hpp"
#include "util/string_util.hpp"
#include "util/sync.hpp"

namespace tdp::net {

void UniqueFd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

namespace {

Status errno_status(ErrorCode code, const char* what) {
  return make_error(code, std::string(what) + ": " + std::strerror(errno));
}

/// Remaining milliseconds until `deadline` (util/clock micros); -1 means
/// "no deadline".
int remaining_ms(Micros deadline, bool has_deadline) {
  if (!has_deadline) return -1;
  const Micros now = RealClock::instance().now_micros();
  if (now >= deadline) return 0;
  return static_cast<int>((deadline - now) / 1000 + 1);
}

/// Waits for events on fd. Returns kOk when ready, kTimeout otherwise.
Status poll_fd(int fd, short events, int timeout_ms) {
  struct pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  while (true) {
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::ok();
    if (rc == 0) return make_error(ErrorCode::kTimeout, "poll timed out");
    if (errno == EINTR) continue;
    return errno_status(ErrorCode::kConnectionError, "poll");
  }
}

bool parse_address(const std::string& address, sockaddr_in* out) {
  std::string host;
  int port = 0;
  if (!str::parse_host_port(address, &host, &port)) {
    // Accept ":port" form.
    if (!address.empty() && address[0] == ':' && str::is_integer(address.substr(1))) {
      host = "127.0.0.1";
      port = std::stoi(address.substr(1));
    } else {
      return false;
    }
  }
  if (host.empty() || host == "localhost") host = "127.0.0.1";
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &out->sin_addr) != 1) return false;
  return true;
}

std::string address_of(const sockaddr_in& sa) {
  char buf[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &sa.sin_addr, buf, sizeof(buf));
  return str::format_host_port(buf, ntohs(sa.sin_port));
}

/// A connected stream socket speaking the Message framing.
class TcpEndpoint final : public Endpoint {
 public:
  explicit TcpEndpoint(UniqueFd fd) : fd_(std::move(fd)) {
    int one = 1;
    ::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    if (::getpeername(fd_.get(), reinterpret_cast<sockaddr*>(&peer), &len) == 0) {
      peer_ = address_of(peer);
    }
  }

  ~TcpEndpoint() override { TcpEndpoint::close(); }

  using Endpoint::send;

  Status send(const Message& msg) override {
    LockGuard lock(send_mutex_);
    // Encode into the reused per-endpoint buffer: steady-state senders pay
    // one resize into warm capacity instead of an allocation per message.
    // The version is whatever negotiation has established by now.
    msg.encode_into(send_buf_, wire_version());
    return send_bytes_locked(send_buf_.data(), send_buf_.size());
  }

  Status send_frame(const std::uint8_t* data, std::size_t size) override {
    LockGuard lock(send_mutex_);
    // Relay fast path: the frame is already encoded (in whatever version
    // its original sender chose); write it through verbatim.
    return send_bytes_locked(data, size);
  }

  Result<Message> receive(int timeout_ms) override {
    LockGuard lock(recv_mutex_);
    auto frame_size = await_frame(timeout_ms);
    if (!frame_size.is_ok()) return frame_size.status();
    // Mark consumed before validating: a rejected frame must not be
    // re-delivered to the next receive call (consumption is lazy, so the
    // bytes stay readable through this call).
    consume_ = frame_size.value();
    TDP_RETURN_IF_ERROR(note_frame_version(buffer_.data(), consume_));
    return Message::decode(buffer_.data(), consume_);
  }

  Status receive_view(int timeout_ms, MessageView* view) override {
    LockGuard lock(recv_mutex_);
    auto frame_size = await_frame(timeout_ms);
    if (!frame_size.is_ok()) return frame_size.status();
    consume_ = frame_size.value();
    TDP_RETURN_IF_ERROR(note_frame_version(buffer_.data(), consume_));
    // The view borrows buffer_; the frame is consumed lazily at the next
    // receive call, which is what keeps this zero-copy.
    return view->parse(buffer_.data(), consume_);
  }

  Status receive_frame(int timeout_ms, std::vector<std::uint8_t>* frame) override {
    LockGuard lock(recv_mutex_);
    auto frame_size = await_frame(timeout_ms);
    if (!frame_size.is_ok()) return frame_size.status();
    frame->assign(buffer_.data(), buffer_.data() + frame_size.value());
    consume_ = frame_size.value();
    return Status::ok();
  }

  Status receive_frames(int timeout_ms, std::vector<std::uint8_t>* frames) override {
    LockGuard lock(recv_mutex_);
    auto frame_size = await_frame(timeout_ms);
    if (!frame_size.is_ok()) return frame_size.status();
    // Coalesce: one recv() typically lands a burst of pipelined frames in
    // buffer_; hand the relay every complete one so it forwards the burst
    // with a single write. An oversized length here is left for the next
    // receive call to reject - this path never consumes a partial frame.
    std::size_t take = frame_size.value();
    while (buffer_.size() - take >= Message::kLenPrefixSize) {
      const std::uint32_t payload = Message::peek_length(buffer_.data() + take);
      if (payload > Message::kMaxPayload) break;
      const std::size_t next = Message::kLenPrefixSize + payload;
      if (buffer_.size() - take < next) break;
      take += next;
    }
    frames->assign(buffer_.data(), buffer_.data() + take);
    consume_ = take;
    return Status::ok();
  }

  [[nodiscard]] int readable_fd() const override { return fd_.get(); }

  [[nodiscard]] bool is_open() const override {
    return !closed_.load(std::memory_order_acquire);
  }

  /// Thread-safe against concurrent send/receive: the fd is only marked
  /// closed and shut down (which wakes blocked peers); the descriptor
  /// itself stays allocated until destruction, so no thread ever polls a
  /// reused fd number.
  void close() override {
    if (!closed_.exchange(true, std::memory_order_acq_rel)) {
      ::shutdown(fd_.get(), SHUT_RDWR);
    }
  }

  [[nodiscard]] std::string peer_address() const override { return peer_; }

 private:
  Status send_bytes_locked(const std::uint8_t* data, std::size_t size)
      TDP_REQUIRES(send_mutex_) {
    if (closed_.load(std::memory_order_acquire)) {
      return make_error(ErrorCode::kConnectionError, "endpoint closed");
    }
    std::size_t sent = 0;
    while (sent < size) {
      ssize_t n = ::send(fd_.get(), data + sent, size - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        TDP_RETURN_IF_ERROR(poll_fd(fd_.get(), POLLOUT, -1));
        continue;
      }
      return errno_status(ErrorCode::kConnectionError, "send");
    }
    return Status::ok();
  }

  /// A received v2 frame is proof the peer speaks v2: upgrade our send
  /// side. A pinned-v1 endpoint emulates a genuine old daemon, which would
  /// misparse the frame - reject it the way that daemon's decoder would.
  Status note_frame_version(const std::uint8_t* data, std::size_t size) {
    if (Message::detect_version(data, size) != WireVersion::kV2) {
      return Status::ok();
    }
    if (wire_version_pinned() && wire_version() == WireVersion::kV1) {
      return make_error(ErrorCode::kInvalidArgument,
                        "v2 frame received by a v1-only endpoint");
    }
    note_peer_wire_version(WireVersion::kV2);
    return Status::ok();
  }

  /// Waits until buffer_ holds one complete frame and returns its size.
  /// Consumes the previously returned frame first.
  Result<std::size_t> await_frame(int timeout_ms) TDP_REQUIRES(recv_mutex_) {
    if (closed_.load(std::memory_order_acquire)) {
      return make_error(ErrorCode::kConnectionError, "endpoint closed");
    }
    if (consume_ > 0) {
      buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consume_));
      consume_ = 0;
    }

    const bool has_deadline = timeout_ms >= 0;
    const Micros deadline = RealClock::instance().now_micros() +
                            static_cast<Micros>(timeout_ms) * 1000;

    while (true) {
      if (buffer_.size() >= Message::kLenPrefixSize) {
        const std::uint32_t payload = Message::peek_length(buffer_.data());
        if (payload > Message::kMaxPayload) {
          close();
          return make_error(ErrorCode::kInvalidArgument, "oversized frame from peer");
        }
        const std::size_t frame_size = Message::kLenPrefixSize + payload;
        if (buffer_.size() >= frame_size) return frame_size;
      }

      int wait = remaining_ms(deadline, has_deadline);
      if (has_deadline && wait == 0 && timeout_ms != 0) {
        return make_error(ErrorCode::kTimeout, "receive timed out");
      }
      if (timeout_ms == 0) wait = 0;
      Status ready = poll_fd(fd_.get(), POLLIN, wait);
      if (!ready.is_ok()) return ready;

      std::uint8_t chunk[16 * 1024];
      ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
      if (n > 0) {
        buffer_.insert(buffer_.end(), chunk, chunk + n);
        continue;
      }
      if (n == 0) {
        return make_error(ErrorCode::kConnectionError, "peer closed connection");
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (timeout_ms == 0) return make_error(ErrorCode::kTimeout, "no data available");
        continue;
      }
      return errno_status(ErrorCode::kConnectionError, "recv");
    }
  }

  UniqueFd fd_;
  std::string peer_;
  std::atomic<bool> closed_{false};
  Mutex send_mutex_{"TcpEndpoint::send_mutex_"};
  std::vector<std::uint8_t> send_buf_ TDP_GUARDED_BY(send_mutex_);
  Mutex recv_mutex_{"TcpEndpoint::recv_mutex_"};
  std::vector<std::uint8_t> buffer_ TDP_GUARDED_BY(recv_mutex_);
  /// Bytes of buffer_ handed out as the last frame.
  std::size_t consume_ TDP_GUARDED_BY(recv_mutex_) = 0;
};

class TcpListener final : public Listener {
 public:
  TcpListener(UniqueFd fd, std::string address)
      : fd_(std::move(fd)), address_(std::move(address)) {}

  ~TcpListener() override { TcpListener::close(); }

  Result<std::unique_ptr<Endpoint>> accept(int timeout_ms) override {
    if (closed_.load(std::memory_order_acquire)) {
      return make_error(ErrorCode::kCancelled, "listener closed");
    }
    Status ready = poll_fd(fd_.get(), POLLIN, timeout_ms);
    if (!ready.is_ok()) return ready;
    while (true) {
      if (closed_.load(std::memory_order_acquire)) {
        return make_error(ErrorCode::kCancelled, "listener closed");
      }
      int client = ::accept(fd_.get(), nullptr, nullptr);
      if (client >= 0) {
        return std::unique_ptr<Endpoint>(new TcpEndpoint(UniqueFd(client)));
      }
      if (errno == EINTR) continue;
      return errno_status(ErrorCode::kConnectionError, "accept");
    }
  }

  [[nodiscard]] std::string address() const override { return address_; }

  [[nodiscard]] int readable_fd() const override { return fd_.get(); }

  /// Marks closed without releasing the descriptor: an accept loop blocked
  /// in poll (always with a bounded timeout) re-checks the flag on its next
  /// pass, and no thread can ever race a reused fd number. The socket is
  /// actually closed at destruction.
  void close() override { closed_.store(true, std::memory_order_release); }

 private:
  UniqueFd fd_;
  std::string address_;
  std::atomic<bool> closed_{false};
};

}  // namespace

Result<std::unique_ptr<Listener>> TcpTransport::listen(const std::string& address) {
  sockaddr_in sa{};
  if (!parse_address(address, &sa)) {
    return make_error(ErrorCode::kInvalidArgument, "bad TCP listen address: " + address);
  }
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return errno_status(ErrorCode::kInternal, "socket");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    return errno_status(ErrorCode::kConnectionError, "bind");
  }
  if (::listen(fd.get(), 128) != 0) {
    return errno_status(ErrorCode::kConnectionError, "listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return errno_status(ErrorCode::kInternal, "getsockname");
  }
  return std::unique_ptr<Listener>(new TcpListener(std::move(fd), address_of(bound)));
}

Result<std::unique_ptr<Endpoint>> TcpTransport::connect(const std::string& address) {
  sockaddr_in sa{};
  if (!parse_address(address, &sa)) {
    return make_error(ErrorCode::kInvalidArgument, "bad TCP connect address: " + address);
  }
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return errno_status(ErrorCode::kInternal, "socket");
  while (::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    if (errno == EINTR) continue;
    return errno_status(ErrorCode::kConnectionError, "connect");
  }
  return std::unique_ptr<Endpoint>(new TcpEndpoint(std::move(fd)));
}

}  // namespace tdp::net
