// faulty.hpp - fault-injecting decorators over any Transport/Endpoint.
//
// TDP's premise (Section 2.3) is that the RM, the tool daemon and the
// application fail independently and the protocol must survive partial
// failure. Nothing in a clean transport exercises those paths, so this
// layer wraps an existing transport (inproc or TCP) and misbehaves on a
// seeded, deterministic schedule:
//
//   * drop        - a sent message silently never arrives (lossy link),
//   * delay       - a sent message is held up to max_delay_ms,
//   * duplicate   - a sent message arrives twice (retransmit storm),
//   * corrupt     - a received frame has bytes flipped or truncated; if it
//                   no longer decodes the stream is desynced and the
//                   endpoint dies (what a framing error does to real TCP),
//   * disconnect  - after N messages the endpoint hangs for
//                   hang_before_die_ms, then dies one-sidedly
//                   (kill -9 of the peer daemon),
//   * refused     - the first N connect() dials fail (peer not up yet).
//
// Every decision comes from a tdp::Rng stream derived from FaultPlan::seed
// and the endpoint's connection index, so a failing schedule is replayable
// from its seed alone. Time is injected through FaultPlan::sleep_fn so the
// sim tier (src/sim VirtualClock) can drive delays without wall-clock
// sleeps. Counters in FaultStats let tests assert that injection really
// happened (a chaos test that never saw a fault proves nothing).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/transport.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace tdp::net {

/// The seeded fault schedule applied to every endpoint a FaultyTransport
/// creates. Probabilities are per message; all default to "no faults".
struct FaultPlan {
  std::uint64_t seed = 1;

  double drop_prob = 0.0;     ///< P(sent message is lost)
  double delay_prob = 0.0;    ///< P(sent message is held)
  int max_delay_ms = 0;       ///< uniform delay bound when held
  double dup_prob = 0.0;      ///< P(sent message is delivered twice)
  double corrupt_prob = 0.0;  ///< P(received frame is bit-flipped/truncated)

  /// >0: an endpoint dies one-sidedly after this many messages (sends +
  /// receives), consuming one transport-wide disconnect token.
  int disconnect_after_msgs = 0;
  /// Transport-wide budget of forced disconnects; <0 means unlimited.
  int max_disconnects = 1;
  /// Dwell before the forced disconnect surfaces ("hang then die").
  int hang_before_die_ms = 0;

  /// Fail the first N connect() dials with kConnectionError.
  int connect_failures = 0;

  /// When false, accepted (listener-side) endpoints pass through clean and
  /// only dialed endpoints inject faults — for tests that need one side of
  /// a relay chaotic and the other deterministic.
  bool fault_accepted = true;

  /// Sleep hook for delays and hangs; defaults to a real sleep. The sim
  /// tier points this at its engine so virtual time advances instead.
  std::function<void(int ms)> sleep_fn;

  /// The acceptance-criteria schedule: drop 10%, delay up to 50 ms, one
  /// forced disconnect per transport, everything driven by `seed`.
  static FaultPlan chaos(std::uint64_t seed);
};

/// Injection counters shared by all endpoints of one FaultyTransport.
struct FaultStats {
  std::atomic<std::uint64_t> connects{0};
  std::atomic<std::uint64_t> connects_refused{0};
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> delayed{0};
  std::atomic<std::uint64_t> duplicated{0};
  std::atomic<std::uint64_t> corrupted{0};
  std::atomic<std::uint64_t> desyncs{0};  ///< corruptions that killed the stream
  std::atomic<std::uint64_t> forced_disconnects{0};

  [[nodiscard]] std::uint64_t faults_injected() const {
    return dropped.load() + delayed.load() + duplicated.load() +
           corrupted.load() + forced_disconnects.load() + connects_refused.load();
  }
};

/// Process-wide observer for injected faults, fired once per injection
/// with no injector lock held: (kind, detail) where kind is one of
/// "drop", "delay", "duplicate", "corrupt", "desync", "disconnect",
/// "connect-refused" and detail names the peer where known. The flight
/// recorder (util/flightrec.hpp) mirrors injections into per-daemon rings
/// through this. nullptr removes the observer.
using FaultObserver =
    std::function<void(std::string_view kind, std::string_view detail)>;
void set_fault_observer(FaultObserver observer);

/// Mangles an encoded frame in place the way the injector does: flips a
/// few bytes, truncates the tail, or scribbles on the length prefix.
/// Exposed so fuzz tests can feed identical garbage straight into
/// MessageView::parse / Message::decode.
void corrupt_frame(std::vector<std::uint8_t>& frame, Rng& rng);

/// One faulty side of a connection. Wraps any Endpoint; thread-safety is
/// the inner endpoint's (decision state is internally locked).
class FaultyEndpoint final : public Endpoint {
 public:
  FaultyEndpoint(std::unique_ptr<Endpoint> inner, const FaultPlan& plan,
                 std::shared_ptr<FaultStats> stats,
                 std::shared_ptr<std::atomic<int>> disconnect_tokens,
                 std::uint64_t endpoint_index);

  using Endpoint::send;
  Status send(const Message& msg) override;
  Result<Message> receive(int timeout_ms) override;
  [[nodiscard]] int readable_fd() const override { return inner_->readable_fd(); }
  [[nodiscard]] bool is_open() const override;
  void close() override { inner_->close(); }
  [[nodiscard]] std::string peer_address() const override {
    return inner_->peer_address();
  }

  // Wire-version state lives on the wrapped endpoint: the inner transport
  // is what actually encodes sends and observes received frames, so the
  // wrapper must not shadow its negotiation.
  [[nodiscard]] WireVersion wire_version() const noexcept override {
    return inner_->wire_version();
  }
  [[nodiscard]] bool wire_version_pinned() const noexcept override {
    return inner_->wire_version_pinned();
  }
  void pin_wire_version(WireVersion version) noexcept override {
    inner_->pin_wire_version(version);
  }
  void note_peer_wire_version(WireVersion version) noexcept override {
    inner_->note_peer_wire_version(version);
  }

 private:
  /// Rolls the schedule forward one message; returns false when this
  /// message triggers the forced disconnect.
  bool account_message() TDP_REQUIRES(mutex_);
  bool roll(double prob) TDP_REQUIRES(mutex_);
  void sleep_ms(int ms) const;

  std::unique_ptr<Endpoint> inner_;
  FaultPlan plan_;
  std::shared_ptr<FaultStats> stats_;
  std::shared_ptr<std::atomic<int>> disconnect_tokens_;

  mutable Mutex mutex_{"FaultyEndpoint::mutex_"};
  Rng rng_ TDP_GUARDED_BY(mutex_);
  int msgs_ TDP_GUARDED_BY(mutex_) = 0;

  std::atomic<bool> killed_{false};
};

/// Listener whose accepted endpoints are fault-wrapped.
class FaultyListener final : public Listener {
 public:
  FaultyListener(std::unique_ptr<Listener> inner, const FaultPlan& plan,
                 std::shared_ptr<FaultStats> stats,
                 std::shared_ptr<std::atomic<int>> disconnect_tokens,
                 std::shared_ptr<std::atomic<std::uint64_t>> next_index);

  Result<std::unique_ptr<Endpoint>> accept(int timeout_ms) override;
  [[nodiscard]] std::string address() const override { return inner_->address(); }
  [[nodiscard]] int readable_fd() const override { return inner_->readable_fd(); }
  void close() override { inner_->close(); }

 private:
  std::unique_ptr<Listener> inner_;
  FaultPlan plan_;
  std::shared_ptr<FaultStats> stats_;
  std::shared_ptr<std::atomic<int>> disconnect_tokens_;
  std::shared_ptr<std::atomic<std::uint64_t>> next_index_;
};

/// Transport decorator: every endpoint it hands out (dialed or accepted)
/// injects faults from `plan`. Wrap both the server's and the client's
/// transport with the same FaultyTransport to fault both directions.
class FaultyTransport final : public Transport {
 public:
  FaultyTransport(std::shared_ptr<Transport> inner, FaultPlan plan);

  Result<std::unique_ptr<Listener>> listen(const std::string& address) override;
  Result<std::unique_ptr<Endpoint>> connect(const std::string& address) override;

  [[nodiscard]] const FaultStats& stats() const { return *stats_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  std::shared_ptr<Transport> inner_;
  FaultPlan plan_;
  std::shared_ptr<FaultStats> stats_;
  std::shared_ptr<std::atomic<int>> disconnect_tokens_;
  std::shared_ptr<std::atomic<std::uint64_t>> next_index_;
  std::atomic<int> connect_refusals_left_;
};

}  // namespace tdp::net
