#include "net/inproc.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>

#include "util/string_util.hpp"

namespace tdp::net {

namespace detail {

/// A bounded-unbounded MPSC message queue with a self-pipe mirroring its
/// fill level, so poll() on the read end is level-triggered w.r.t. queue
/// non-emptiness.
class InProcQueue {
 public:
  InProcQueue() {
    int fds[2] = {-1, -1};
    if (::pipe(fds) == 0) {
      pipe_r_ = fds[0];
      pipe_w_ = fds[1];
      ::fcntl(pipe_r_, F_SETFL, O_NONBLOCK);
      ::fcntl(pipe_w_, F_SETFL, O_NONBLOCK);
      ::fcntl(pipe_r_, F_SETFD, FD_CLOEXEC);
      ::fcntl(pipe_w_, F_SETFD, FD_CLOEXEC);
    }
  }

  ~InProcQueue() {
    if (pipe_r_ >= 0) ::close(pipe_r_);
    if (pipe_w_ >= 0) ::close(pipe_w_);
  }

  InProcQueue(const InProcQueue&) = delete;
  InProcQueue& operator=(const InProcQueue&) = delete;

  void push(Message msg) {
    bool signal;
    {
      LockGuard lock(mutex_);
      queue_.push_back(std::move(msg));
      signal = fd_exported_;
    }
    if (signal) signal_pipe();
    cv_.notify_one();
  }

  /// Pops the next message. timeout_ms: <0 block, 0 poll, >0 bounded.
  Result<Message> pop(int timeout_ms) {
    LockGuard lock(mutex_);
    auto ready = [this]() TDP_REQUIRES(mutex_) { return !queue_.empty() || closed_; };
    if (timeout_ms < 0) {
      cv_.wait(lock, ready);
    } else if (timeout_ms > 0) {
      if (!cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready)) {
        return make_error(ErrorCode::kTimeout, "inproc receive timed out");
      }
    }
    if (!queue_.empty()) {
      Message msg = std::move(queue_.front());
      queue_.pop_front();
      if (fd_exported_) drain_pipe_one();
      return msg;
    }
    if (closed_) {
      return make_error(ErrorCode::kConnectionError, "inproc peer closed");
    }
    return make_error(ErrorCode::kTimeout, "inproc queue empty");
  }

  void close() {
    bool signal;
    {
      LockGuard lock(mutex_);
      if (closed_) return;
      closed_ = true;
      signal = fd_exported_;
    }
    if (signal) signal_pipe();  // wake fd-based pollers; not drained
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    LockGuard lock(mutex_);
    return closed_;
  }

  /// Exporting the descriptor switches the queue into fd-mirrored mode:
  /// from then on every push/close writes a pipe byte. Queues nobody polls
  /// (a blocking client's reply queue) never pay the two syscalls per
  /// message that keep the mirror level-triggered.
  [[nodiscard]] int read_fd() const {
    LockGuard lock(mutex_);
    if (!fd_exported_) {
      fd_exported_ = true;
      // Mirror the current fill level (plus the close marker) so the fd is
      // immediately level-consistent with the queue.
      std::size_t level = queue_.size() + (closed_ ? 1 : 0);
      for (std::size_t i = 0; i < level; ++i) signal_pipe();
    }
    return pipe_r_;
  }

 private:
  void signal_pipe() const {
    if (pipe_w_ >= 0) {
      const char byte = 'x';
      [[maybe_unused]] ssize_t n = ::write(pipe_w_, &byte, 1);
      // A full pipe is fine: poll already reports readable.
    }
  }

  void drain_pipe_one() const {
    if (pipe_r_ >= 0) {
      char byte;
      [[maybe_unused]] ssize_t n = ::read(pipe_r_, &byte, 1);
    }
  }

  CondVar cv_;
  mutable Mutex mutex_{"InProcQueue::mutex_"};
  std::deque<Message> queue_ TDP_GUARDED_BY(mutex_);
  bool closed_ TDP_GUARDED_BY(mutex_) = false;
  mutable bool fd_exported_ TDP_GUARDED_BY(mutex_) = false;

  int pipe_r_ = -1;  ///< immutable after the ctor
  int pipe_w_ = -1;  ///< immutable after the ctor
};

/// Shared state of one connection: two directed queues.
struct InProcChannel {
  InProcQueue client_to_server;
  InProcQueue server_to_client;
};

/// One endpoint view over a channel: sends into one queue, receives from
/// the other.
class InProcEndpoint final : public Endpoint {
 public:
  InProcEndpoint(std::shared_ptr<InProcChannel> channel, bool is_server,
                 std::string peer)
      : channel_(std::move(channel)), is_server_(is_server), peer_(std::move(peer)) {}

  ~InProcEndpoint() override { InProcEndpoint::close(); }

  using Endpoint::send;

  Status send(const Message& msg) override { return send(Message(msg)); }

  /// Move send: the queued message is handed to the peer without copying
  /// its field table — the inproc fast path.
  Status send(Message&& msg) override {
    if (closed_.load(std::memory_order_acquire)) {
      return make_error(ErrorCode::kConnectionError, "endpoint closed");
    }
    if (recv_queue().closed()) {
      return make_error(ErrorCode::kConnectionError, "peer closed");
    }
    send_queue().push(std::move(msg));
    return Status::ok();
  }

  Result<Message> receive(int timeout_ms) override {
    if (closed_.load(std::memory_order_acquire)) {
      return make_error(ErrorCode::kConnectionError, "endpoint closed");
    }
    return recv_queue().pop(timeout_ms);
  }

  [[nodiscard]] int readable_fd() const override { return recv_queue().read_fd(); }

  [[nodiscard]] bool is_open() const override {
    return !closed_.load(std::memory_order_acquire) && !recv_queue().closed();
  }

  void close() override {
    bool expected = false;
    if (!closed_.compare_exchange_strong(expected, true)) return;
    // Closing both directions lets the peer observe disconnect after it
    // drains queued messages.
    channel_->client_to_server.close();
    channel_->server_to_client.close();
  }

  [[nodiscard]] std::string peer_address() const override { return peer_; }

 private:
  InProcQueue& send_queue() const {
    return is_server_ ? channel_->server_to_client : channel_->client_to_server;
  }
  InProcQueue& recv_queue() const {
    return is_server_ ? channel_->client_to_server : channel_->server_to_client;
  }

  std::shared_ptr<InProcChannel> channel_;
  bool is_server_;
  std::string peer_;
  std::atomic<bool> closed_{false};
};

/// Accept queue shared between the registry and the listener object.
class InProcListenerState {
 public:
  void enqueue(std::unique_ptr<Endpoint> endpoint) {
    {
      LockGuard lock(mutex_);
      pending_.push_back(std::move(endpoint));
    }
    signal_pipe();
    cv_.notify_one();
  }

  Result<std::unique_ptr<Endpoint>> dequeue(int timeout_ms) {
    LockGuard lock(mutex_);
    auto ready = [this]() TDP_REQUIRES(mutex_) { return !pending_.empty() || closed_; };
    if (timeout_ms < 0) {
      cv_.wait(lock, ready);
    } else if (timeout_ms > 0) {
      if (!cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready)) {
        return make_error(ErrorCode::kTimeout, "accept timed out");
      }
    }
    if (!pending_.empty()) {
      auto endpoint = std::move(pending_.front());
      pending_.pop_front();
      drain_pipe_one();
      return endpoint;
    }
    if (closed_) return make_error(ErrorCode::kCancelled, "listener closed");
    return make_error(ErrorCode::kTimeout, "no pending connection");
  }

  void close() {
    {
      LockGuard lock(mutex_);
      closed_ = true;
    }
    signal_pipe();
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    LockGuard lock(mutex_);
    return closed_;
  }

  InProcListenerState() {
    int fds[2] = {-1, -1};
    if (::pipe(fds) == 0) {
      pipe_r_ = fds[0];
      pipe_w_ = fds[1];
      ::fcntl(pipe_r_, F_SETFL, O_NONBLOCK);
      ::fcntl(pipe_w_, F_SETFL, O_NONBLOCK);
    }
  }

  ~InProcListenerState() {
    if (pipe_r_ >= 0) ::close(pipe_r_);
    if (pipe_w_ >= 0) ::close(pipe_w_);
  }

  [[nodiscard]] int read_fd() const noexcept { return pipe_r_; }

 private:
  void signal_pipe() {
    if (pipe_w_ >= 0) {
      const char byte = 'x';
      [[maybe_unused]] ssize_t n = ::write(pipe_w_, &byte, 1);
    }
  }
  void drain_pipe_one() {
    if (pipe_r_ >= 0) {
      char byte;
      [[maybe_unused]] ssize_t n = ::read(pipe_r_, &byte, 1);
    }
  }

  CondVar cv_;
  mutable Mutex mutex_{"InProcListenerState::mutex_"};
  std::deque<std::unique_ptr<Endpoint>> pending_ TDP_GUARDED_BY(mutex_);
  bool closed_ TDP_GUARDED_BY(mutex_) = false;

  int pipe_r_ = -1;  ///< immutable after the ctor
  int pipe_w_ = -1;  ///< immutable after the ctor
};

}  // namespace detail

namespace {

class InProcListener final : public Listener {
 public:
  InProcListener(std::shared_ptr<InProcTransport> transport,
                 std::shared_ptr<detail::InProcListenerState> state, std::string name)
      : transport_(std::move(transport)), state_(std::move(state)),
        name_(std::move(name)) {}

  ~InProcListener() override { InProcListener::close(); }

  Result<std::unique_ptr<Endpoint>> accept(int timeout_ms) override {
    return state_->dequeue(timeout_ms);
  }

  [[nodiscard]] std::string address() const override { return "inproc://" + name_; }

  [[nodiscard]] int readable_fd() const override { return state_->read_fd(); }

  void close() override {
    if (closed_) return;
    closed_ = true;
    state_->close();
    if (auto transport = transport_.lock()) transport->unregister(name_);
  }

 private:
  std::weak_ptr<InProcTransport> transport_;
  std::shared_ptr<detail::InProcListenerState> state_;
  std::string name_;
  bool closed_ = false;
};

}  // namespace

bool is_inproc_address(const std::string& address) {
  return str::starts_with(address, "inproc://");
}

std::shared_ptr<InProcTransport> InProcTransport::create() {
  return std::shared_ptr<InProcTransport>(new InProcTransport());
}

Result<std::unique_ptr<Listener>> InProcTransport::listen(const std::string& address) {
  if (!is_inproc_address(address)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "inproc listen address must start with inproc://: " + address);
  }
  std::string name = address.substr(9);
  if (name.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "empty inproc listener name");
  }
  LockGuard lock(mutex_);
  if (listeners_.count(name) != 0) {
    return make_error(ErrorCode::kAlreadyExists, "inproc name already bound: " + name);
  }
  auto state = std::make_shared<detail::InProcListenerState>();
  listeners_[name] = state;
  return std::unique_ptr<Listener>(
      new InProcListener(shared_from_this(), std::move(state), std::move(name)));
}

Result<std::unique_ptr<Endpoint>> InProcTransport::connect(const std::string& address) {
  if (!is_inproc_address(address)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "inproc connect address must start with inproc://: " + address);
  }
  const std::string name = address.substr(9);
  std::shared_ptr<detail::InProcListenerState> state;
  {
    LockGuard lock(mutex_);
    auto it = listeners_.find(name);
    if (it == listeners_.end()) {
      return make_error(ErrorCode::kConnectionError, "no inproc listener: " + name);
    }
    state = it->second;
  }
  if (state->closed()) {
    return make_error(ErrorCode::kConnectionError, "inproc listener closed: " + name);
  }
  auto channel = std::make_shared<detail::InProcChannel>();
  auto server_side = std::make_unique<detail::InProcEndpoint>(channel, /*is_server=*/true,
                                                              "inproc://client");
  auto client_side = std::make_unique<detail::InProcEndpoint>(channel, /*is_server=*/false,
                                                              address);
  state->enqueue(std::move(server_side));
  return std::unique_ptr<Endpoint>(std::move(client_side));
}

std::size_t InProcTransport::listener_count() const {
  LockGuard lock(mutex_);
  return listeners_.size();
}

void InProcTransport::unregister(const std::string& name) {
  LockGuard lock(mutex_);
  listeners_.erase(name);
}

}  // namespace tdp::net
