// transport.hpp - duplex message endpoints over pluggable transports.
//
// TDP daemons never touch sockets directly; they speak Message over an
// Endpoint. Two transports implement the interface:
//   * InProcTransport  - lock-protected queues inside one process; used by
//     unit tests and by the virtual-cluster benches (address scheme
//     "inproc://name").
//   * TcpTransport     - real localhost TCP with length-prefixed framing;
//     used by the examples and the integration tests (address scheme
//     "host:port").
//
// Every Endpoint exposes readable_fd(): a descriptor that becomes readable
// when a message may be pending. This is the mechanism Section 3.3 of the
// paper builds tdp_service_event on: "asynchronous events simply cause
// activity on a descriptor, so the daemon would return from the poll".
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "util/status.hpp"

namespace tdp::net {

/// One side of an established, bidirectional message channel.
///
/// Wire-version negotiation (DESIGN.md §13): every endpoint starts sending
/// v1 and always accepts both versions on receive. When the peer proves v2
/// support - by sending a v2 frame, or via the _wv advertisement riding its
/// first v1 message - note_peer_wire_version() flips the send side to v2.
/// pin_wire_version(kV1) freezes an endpoint as a genuine old daemon for
/// rolling-upgrade interop tests: it never advertises, never upgrades, and
/// rejects inbound v2 frames the way a real v1 build would.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  Endpoint() = default;
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Version this endpoint currently encodes outbound messages with.
  /// Virtual so decorating transports (fault injection) can delegate the
  /// negotiation state to the endpoint they wrap.
  [[nodiscard]] virtual WireVersion wire_version() const noexcept {
    return static_cast<WireVersion>(send_version_.load(std::memory_order_relaxed));
  }

  /// True when the version was pinned and negotiation is disabled.
  [[nodiscard]] virtual bool wire_version_pinned() const noexcept {
    return pinned_.load(std::memory_order_relaxed);
  }

  /// Forces the send version and disables negotiation (tests, rollback).
  virtual void pin_wire_version(WireVersion version) noexcept {
    send_version_.store(static_cast<std::uint8_t>(version),
                        std::memory_order_relaxed);
    pinned_.store(true, std::memory_order_relaxed);
  }

  /// Records proof that the peer decodes `version`; upgrades the send side
  /// unless pinned. Called by transports on inbound v2 frames and by
  /// adopt_advertised_wire_version().
  virtual void note_peer_wire_version(WireVersion version) noexcept {
    if (pinned_.load(std::memory_order_relaxed)) return;
    const auto v = static_cast<std::uint8_t>(version);
    std::uint8_t cur = send_version_.load(std::memory_order_relaxed);
    while (cur < v &&
           !send_version_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  /// Sends a message; blocks only for transient flow control.
  virtual Status send(const Message& msg) = 0;

  /// Move-aware send: transports that queue Message objects (inproc) take
  /// ownership without copying. Default forwards to the copying overload.
  virtual Status send(Message&& msg) { return send(msg); }

  /// Receives the next message. timeout_ms semantics:
  ///   <0 block until a message or disconnect, 0 poll, >0 bounded wait.
  /// Returns kTimeout when the deadline passes, kConnectionError when the
  /// peer is gone and no queued message remains.
  virtual Result<Message> receive(int timeout_ms) = 0;

  /// Zero-copy receive: parses the next frame in place when the transport
  /// buffers encoded bytes (TCP), falling back to receive()+adopt for
  /// transports that queue Message objects. `view` is valid until the next
  /// receive()/receive_view()/close() on this endpoint; reusing one view
  /// across calls amortizes its field-table allocation to zero. Single
  /// reader per endpoint assumed (same as receive()).
  virtual Status receive_view(int timeout_ms, MessageView* view) {
    auto msg = receive(timeout_ms);
    if (!msg.is_ok()) return msg.status();
    view->adopt(std::move(msg).value());
    return Status::ok();
  }

  /// Relays one already-encoded frame (length prefix included) without
  /// re-encoding. Byte-oriented transports (TCP) write the buffer verbatim;
  /// the default decodes and forwards through send() so message-queue
  /// transports (inproc) stay correct. This is the proxy fast path: a relay
  /// moves frames without touching the field table.
  virtual Status send_frame(const std::uint8_t* data, std::size_t size) {
    auto msg = Message::decode(data, size);
    if (!msg.is_ok()) return msg.status();
    return send(std::move(msg).value());
  }

  /// Receives the next frame as raw bytes (length prefix included) into
  /// `frame`, reusing its capacity. The default re-encodes a received
  /// Message, preserving its wire version when the transport saw bytes.
  /// Same timeout semantics and single-reader assumption as receive().
  virtual Status receive_frame(int timeout_ms, std::vector<std::uint8_t>* frame) {
    auto msg = receive(timeout_ms);
    if (!msg.is_ok()) return msg.status();
    msg.value().encode_into(*frame, wire_version());
    return Status::ok();
  }

  /// Receives one or more already-encoded frames into `frames`: blocks for
  /// the first (same timeout semantics as receive()), then greedily appends
  /// every further complete frame the transport has already buffered - no
  /// extra wait - so a relay can forward a pipelined burst with one write
  /// instead of one per frame. Default: exactly one frame.
  virtual Status receive_frames(int timeout_ms, std::vector<std::uint8_t>* frames) {
    return receive_frame(timeout_ms, frames);
  }

  /// Descriptor that poll()s readable when receive() would not block
  /// (level-triggered), or -1 if the transport cannot provide one.
  [[nodiscard]] virtual int readable_fd() const = 0;

  [[nodiscard]] virtual bool is_open() const = 0;
  virtual void close() = 0;

  /// Address of the remote side, for diagnostics.
  [[nodiscard]] virtual std::string peer_address() const = 0;

 private:
  std::atomic<std::uint8_t> send_version_{
      static_cast<std::uint8_t>(WireVersion::kV1)};
  std::atomic<bool> pinned_{false};
};

/// A bound, accepting server socket.
class Listener {
 public:
  virtual ~Listener() = default;

  Listener() = default;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Accepts one inbound connection (same timeout semantics as receive).
  virtual Result<std::unique_ptr<Endpoint>> accept(int timeout_ms) = 0;

  /// The concrete address clients should connect to. For TCP listeners
  /// bound to port 0 this reports the kernel-assigned port.
  [[nodiscard]] virtual std::string address() const = 0;

  /// Descriptor readable when accept() would not block, or -1.
  [[nodiscard]] virtual int readable_fd() const = 0;

  virtual void close() = 0;
};

/// Factory for listeners and client connections.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual Result<std::unique_ptr<Listener>> listen(const std::string& address) = 0;
  virtual Result<std::unique_ptr<Endpoint>> connect(const std::string& address) = 0;
};

}  // namespace tdp::net
