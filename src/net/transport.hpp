// transport.hpp - duplex message endpoints over pluggable transports.
//
// TDP daemons never touch sockets directly; they speak Message over an
// Endpoint. Two transports implement the interface:
//   * InProcTransport  - lock-protected queues inside one process; used by
//     unit tests and by the virtual-cluster benches (address scheme
//     "inproc://name").
//   * TcpTransport     - real localhost TCP with length-prefixed framing;
//     used by the examples and the integration tests (address scheme
//     "host:port").
//
// Every Endpoint exposes readable_fd(): a descriptor that becomes readable
// when a message may be pending. This is the mechanism Section 3.3 of the
// paper builds tdp_service_event on: "asynchronous events simply cause
// activity on a descriptor, so the daemon would return from the poll".
#pragma once

#include <memory>
#include <string>

#include "net/message.hpp"
#include "util/status.hpp"

namespace tdp::net {

/// One side of an established, bidirectional message channel.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  Endpoint() = default;
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Sends a message; blocks only for transient flow control.
  virtual Status send(const Message& msg) = 0;

  /// Move-aware send: transports that queue Message objects (inproc) take
  /// ownership without copying. Default forwards to the copying overload.
  virtual Status send(Message&& msg) { return send(msg); }

  /// Receives the next message. timeout_ms semantics:
  ///   <0 block until a message or disconnect, 0 poll, >0 bounded wait.
  /// Returns kTimeout when the deadline passes, kConnectionError when the
  /// peer is gone and no queued message remains.
  virtual Result<Message> receive(int timeout_ms) = 0;

  /// Zero-copy receive: parses the next frame in place when the transport
  /// buffers encoded bytes (TCP), falling back to receive()+adopt for
  /// transports that queue Message objects. `view` is valid until the next
  /// receive()/receive_view()/close() on this endpoint; reusing one view
  /// across calls amortizes its field-table allocation to zero. Single
  /// reader per endpoint assumed (same as receive()).
  virtual Status receive_view(int timeout_ms, MessageView* view) {
    auto msg = receive(timeout_ms);
    if (!msg.is_ok()) return msg.status();
    view->adopt(std::move(msg).value());
    return Status::ok();
  }

  /// Descriptor that poll()s readable when receive() would not block
  /// (level-triggered), or -1 if the transport cannot provide one.
  [[nodiscard]] virtual int readable_fd() const = 0;

  [[nodiscard]] virtual bool is_open() const = 0;
  virtual void close() = 0;

  /// Address of the remote side, for diagnostics.
  [[nodiscard]] virtual std::string peer_address() const = 0;
};

/// A bound, accepting server socket.
class Listener {
 public:
  virtual ~Listener() = default;

  Listener() = default;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Accepts one inbound connection (same timeout semantics as receive).
  virtual Result<std::unique_ptr<Endpoint>> accept(int timeout_ms) = 0;

  /// The concrete address clients should connect to. For TCP listeners
  /// bound to port 0 this reports the kernel-assigned port.
  [[nodiscard]] virtual std::string address() const = 0;

  /// Descriptor readable when accept() would not block, or -1.
  [[nodiscard]] virtual int readable_fd() const = 0;

  virtual void close() = 0;
};

/// Factory for listeners and client connections.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual Result<std::unique_ptr<Listener>> listen(const std::string& address) = 0;
  virtual Result<std::unique_ptr<Endpoint>> connect(const std::string& address) = 0;
};

}  // namespace tdp::net
