// reactor.hpp - the central poll loop every TDP daemon runs.
//
// Section 3.3 of the paper: "Most RTs and RMs have a central polling loop
// where they use an operation such as the Unix poll or select to wait for
// the next event to process." The Reactor is that loop, factored out so the
// starter, paradynd, LASS/CASS servers, proxy and examples all share one
// implementation. Handlers are invoked on the thread that calls run_once /
// run, which is the paper's "callback at a well-known and safe point"
// design.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <mutex>

#include "util/status.hpp"

namespace tdp::net {

class Reactor {
 public:
  using Handler = std::function<void()>;

  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Registers `handler` to run whenever `fd` polls readable. Replaces any
  /// existing handler for the same descriptor.
  void add_readable(int fd, Handler handler);

  /// Stops watching `fd`; safe to call from inside a handler.
  void remove(int fd);

  /// Polls all registered descriptors once and dispatches ready handlers.
  /// Returns the number of handlers invoked; 0 on timeout.
  /// timeout_ms: <0 block until an event or stop(), 0 poll, >0 bounded.
  int run_once(int timeout_ms);

  /// Loops run_once until stop() is called.
  void run();

  /// Wakes any blocked run_once and makes run() return. Thread-safe.
  void stop();

  /// True after stop() until the next run().
  [[nodiscard]] bool stopped() const noexcept {
    return stop_requested_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t watch_count() const;

 private:
  mutable std::mutex mutex_;
  std::map<int, Handler> handlers_;
  std::atomic<bool> stop_requested_{false};
  int wake_r_ = -1;
  int wake_w_ = -1;
};

}  // namespace tdp::net
