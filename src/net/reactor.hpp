// reactor.hpp - the central poll loop every TDP daemon runs.
//
// Section 3.3 of the paper: "Most RTs and RMs have a central polling loop
// where they use an operation such as the Unix poll or select to wait for
// the next event to process." The Reactor is that loop, factored out so the
// starter, paradynd, LASS/CASS servers, proxy and examples all share one
// implementation. Handlers are invoked on the thread that calls run_once /
// run, which is the paper's "callback at a well-known and safe point"
// design.
//
// run_once caches the pollfd array and rebuilds it only when the watch set
// changes (add_readable/remove bump a generation counter), so a server
// multiplexing hundreds of idle connections does not re-copy the handler
// map on every loop iteration. One thread drives run()/run_once at a time;
// add_readable/remove/stop may be called from any thread and wake a
// blocked poll.
#pragma once

#include <poll.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "util/status.hpp"
#include "util/sync.hpp"

namespace tdp::net {

class Reactor {
 public:
  using Handler = std::function<void()>;

  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Registers `handler` to run whenever `fd` polls readable. Replaces any
  /// existing handler for the same descriptor. Wakes a blocked run_once so
  /// the new descriptor is watched promptly.
  void add_readable(int fd, Handler handler);

  /// Stops watching `fd`; safe to call from inside a handler.
  void remove(int fd);

  /// Polls all registered descriptors once and dispatches ready handlers.
  /// Returns the number of handlers invoked; 0 on timeout.
  /// timeout_ms: <0 block until an event or stop(), 0 poll, >0 bounded.
  int run_once(int timeout_ms);

  /// Loops run_once until stop() is called.
  void run();

  /// Wakes any blocked run_once and makes run() return. Thread-safe.
  void stop();

  /// True after stop() until the next run().
  [[nodiscard]] bool stopped() const noexcept {
    return stop_requested_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t watch_count() const;

 private:
  /// Rebuilds pfds_/pfd_fds_ from handlers_ when generation_ moved.
  void refresh_cache_locked() TDP_REQUIRES(mutex_);

  mutable Mutex mutex_{"Reactor::mutex_"};
  std::map<int, Handler> handlers_ TDP_GUARDED_BY(mutex_);
  /// Bumped by add_readable/remove.
  std::uint64_t generation_ TDP_GUARDED_BY(mutex_) = 1;
  /// Generation pfds_ was built from.
  std::uint64_t cache_generation_ TDP_GUARDED_BY(mutex_) = 0;

  /// Cached poll set (wake pipe appended last). Owned by the loop thread
  /// between run_once calls; rebuilt under mutex_ when stale.
  std::vector<struct pollfd> pfds_;
  std::vector<int> pfd_fds_;

  std::atomic<bool> stop_requested_{false};
  int wake_r_ = -1;
  int wake_w_ = -1;
};

}  // namespace tdp::net
