#include "net/faulty.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace tdp::net {

namespace {
const log::Logger kLog("faulty");

constexpr std::uint64_t kIndexSalt = 0x9e3779b97f4a7c15ULL;

// Process-wide mirrors of the per-transport FaultStats, so injected faults
// show up in tdptop next to the retry/replay counters they provoke.
telemetry::Counter& injected_counter(const char* what) {
  return telemetry::Registry::instance().counter(std::string("faulty.") + what);
}

tdp::Mutex& observer_mutex() {
  static tdp::Mutex m{"net::fault_observer_mutex"};
  return m;
}

FaultObserver& observer_ref() {
  static FaultObserver o;
  return o;
}

/// Copies the observer under its leaf lock, invokes outside all locks —
/// every call site below runs with FaultyEndpoint::mutex_ released.
void notify_fault(std::string_view kind, std::string_view detail) {
  FaultObserver observer;
  {
    LockGuard lock(observer_mutex());
    observer = observer_ref();
  }
  if (observer) observer(kind, detail);
}
}  // namespace

void set_fault_observer(FaultObserver observer) {
  LockGuard lock(observer_mutex());
  observer_ref() = std::move(observer);
}

FaultPlan FaultPlan::chaos(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_prob = 0.10;
  plan.delay_prob = 0.20;
  plan.max_delay_ms = 50;
  plan.dup_prob = 0.05;
  plan.disconnect_after_msgs = 8;
  plan.max_disconnects = 1;
  return plan;
}

void corrupt_frame(std::vector<std::uint8_t>& frame, Rng& rng) {
  if (frame.empty()) return;
  switch (rng.next_below(3)) {
    case 0: {  // flip 1..4 bytes anywhere in the frame
      const std::uint64_t flips = 1 + rng.next_below(4);
      for (std::uint64_t i = 0; i < flips; ++i) {
        frame[rng.next_below(frame.size())] ^=
            static_cast<std::uint8_t>(1u << rng.next_below(8));
      }
      break;
    }
    case 1: {  // truncate the tail (partial frame on the wire)
      frame.resize(1 + rng.next_below(frame.size()));
      break;
    }
    default: {  // scribble on the length prefix (classic desync)
      const std::size_t n = std::min<std::size_t>(frame.size(), Message::kLenPrefixSize);
      for (std::size_t i = 0; i < n; ++i) {
        frame[i] = static_cast<std::uint8_t>(rng.next_u64());
      }
      break;
    }
  }
}

FaultyEndpoint::FaultyEndpoint(std::unique_ptr<Endpoint> inner, const FaultPlan& plan,
                               std::shared_ptr<FaultStats> stats,
                               std::shared_ptr<std::atomic<int>> disconnect_tokens,
                               std::uint64_t endpoint_index)
    : inner_(std::move(inner)),
      plan_(plan),
      stats_(std::move(stats)),
      disconnect_tokens_(std::move(disconnect_tokens)),
      rng_(plan.seed ^ ((endpoint_index + 1) * kIndexSalt)) {}

bool FaultyEndpoint::roll(double prob) {
  if (prob <= 0.0) return false;
  return rng_.next_double() < prob;
}

void FaultyEndpoint::sleep_ms(int ms) const {
  if (ms <= 0) return;
  if (plan_.sleep_fn) {
    plan_.sleep_fn(ms);
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

bool FaultyEndpoint::account_message() {
  // One forced disconnect consumes a transport-wide token so "one
  // disconnect per client" schedules stay bounded.
  ++msgs_;
  if (plan_.disconnect_after_msgs <= 0 || msgs_ < plan_.disconnect_after_msgs) {
    return true;
  }
  if (killed_.load(std::memory_order_acquire)) return false;
  int tokens = disconnect_tokens_->load(std::memory_order_acquire);
  while (tokens != 0) {  // negative budget = unlimited
    if (tokens < 0 ||
        disconnect_tokens_->compare_exchange_weak(tokens, tokens - 1,
                                                  std::memory_order_acq_rel)) {
      killed_.store(true, std::memory_order_release);
      stats_->forced_disconnects.fetch_add(1, std::memory_order_relaxed);
      static telemetry::Counter& disconnects = injected_counter("disconnects");
      disconnects.inc();
      return false;
    }
  }
  return true;
}

Status FaultyEndpoint::send(const Message& msg) {
  bool drop = false;
  bool dup = false;
  int delay = 0;
  bool die = false;
  {
    LockGuard lock(mutex_);
    if (killed_.load(std::memory_order_acquire)) {
      return make_error(ErrorCode::kConnectionError, "fault injection: endpoint dead");
    }
    if (!account_message()) {
      die = true;
    } else {
      drop = roll(plan_.drop_prob);
      if (!drop) {
        dup = roll(plan_.dup_prob);
        if (roll(plan_.delay_prob) && plan_.max_delay_ms > 0) {
          delay = 1 + static_cast<int>(rng_.next_below(
                          static_cast<std::uint64_t>(plan_.max_delay_ms)));
        }
      }
    }
  }
  if (die) {
    // "Hang then die": dwell as a wedged peer would, then drop the link.
    notify_fault("disconnect", inner_->peer_address());
    sleep_ms(plan_.hang_before_die_ms);
    inner_->close();
    return make_error(ErrorCode::kConnectionError,
                      "fault injection: forced disconnect");
  }
  stats_->sent.fetch_add(1, std::memory_order_relaxed);
  if (drop) {
    stats_->dropped.fetch_add(1, std::memory_order_relaxed);
    static telemetry::Counter& drops = injected_counter("drops");
    drops.inc();
    notify_fault("drop", inner_->peer_address());
    return Status::ok();  // the link ate it; the sender cannot tell
  }
  if (delay > 0) {
    stats_->delayed.fetch_add(1, std::memory_order_relaxed);
    static telemetry::Counter& delays = injected_counter("delays");
    delays.inc();
    notify_fault("delay", inner_->peer_address());
    sleep_ms(delay);
  }
  if (dup) {
    stats_->duplicated.fetch_add(1, std::memory_order_relaxed);
    static telemetry::Counter& dups = injected_counter("dups");
    dups.inc();
    notify_fault("duplicate", inner_->peer_address());
    TDP_RETURN_IF_ERROR(inner_->send(msg));
  }
  return inner_->send(msg);
}

Result<Message> FaultyEndpoint::receive(int timeout_ms) {
  if (killed_.load(std::memory_order_acquire)) {
    return make_error(ErrorCode::kConnectionError, "fault injection: endpoint dead");
  }
  auto received = inner_->receive(timeout_ms);
  if (!received.is_ok()) return received;

  bool corrupt = false;
  bool die = false;
  {
    LockGuard lock(mutex_);
    if (!account_message()) {
      die = true;
    } else {
      corrupt = roll(plan_.corrupt_prob);
    }
  }
  if (die) {
    notify_fault("disconnect", inner_->peer_address());
    sleep_ms(plan_.hang_before_die_ms);
    inner_->close();
    return make_error(ErrorCode::kConnectionError,
                      "fault injection: forced disconnect");
  }
  stats_->received.fetch_add(1, std::memory_order_relaxed);
  if (!corrupt) return received;

  // Corrupt the encoded frame and re-decode, exactly what a receiver sees
  // when bytes are damaged in flight. A frame that still decodes is
  // delivered garbled; one that does not has desynced the stream, which
  // on a framed byte transport is fatal for the connection.
  stats_->corrupted.fetch_add(1, std::memory_order_relaxed);
  static telemetry::Counter& corruptions = injected_counter("corruptions");
  corruptions.inc();
  notify_fault("corrupt", inner_->peer_address());
  // Re-encode with the inner endpoint's negotiated version so the chaos
  // tier damages (and re-decodes) v2 frames once a session upgrades, not
  // just the v1 layout.
  std::vector<std::uint8_t> frame = received->encode(inner_->wire_version());
  {
    LockGuard lock(mutex_);
    corrupt_frame(frame, rng_);
  }
  auto decoded = Message::decode(frame.data(), frame.size());
  if (decoded.is_ok()) return decoded;
  stats_->desyncs.fetch_add(1, std::memory_order_relaxed);
  notify_fault("desync", inner_->peer_address());
  kLog.debug("injected corruption desynced stream from ", inner_->peer_address());
  killed_.store(true, std::memory_order_release);
  inner_->close();
  return make_error(ErrorCode::kConnectionError,
                    "fault injection: corrupted frame desynced stream");
}

bool FaultyEndpoint::is_open() const {
  return !killed_.load(std::memory_order_acquire) && inner_->is_open();
}

FaultyListener::FaultyListener(std::unique_ptr<Listener> inner, const FaultPlan& plan,
                               std::shared_ptr<FaultStats> stats,
                               std::shared_ptr<std::atomic<int>> disconnect_tokens,
                               std::shared_ptr<std::atomic<std::uint64_t>> next_index)
    : inner_(std::move(inner)),
      plan_(plan),
      stats_(std::move(stats)),
      disconnect_tokens_(std::move(disconnect_tokens)),
      next_index_(std::move(next_index)) {}

Result<std::unique_ptr<Endpoint>> FaultyListener::accept(int timeout_ms) {
  auto accepted = inner_->accept(timeout_ms);
  if (!accepted.is_ok()) return accepted;
  const std::uint64_t index =
      next_index_->fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Endpoint>(new FaultyEndpoint(
      std::move(accepted).value(), plan_, stats_, disconnect_tokens_, index));
}

FaultyTransport::FaultyTransport(std::shared_ptr<Transport> inner, FaultPlan plan)
    : inner_(std::move(inner)),
      plan_(std::move(plan)),
      stats_(std::make_shared<FaultStats>()),
      disconnect_tokens_(
          std::make_shared<std::atomic<int>>(plan_.max_disconnects)),
      next_index_(std::make_shared<std::atomic<std::uint64_t>>(0)),
      connect_refusals_left_(plan_.connect_failures) {}

Result<std::unique_ptr<Listener>> FaultyTransport::listen(const std::string& address) {
  auto listener = inner_->listen(address);
  if (!listener.is_ok() || !plan_.fault_accepted) return listener;
  return std::unique_ptr<Listener>(
      new FaultyListener(std::move(listener).value(), plan_, stats_,
                         disconnect_tokens_, next_index_));
}

Result<std::unique_ptr<Endpoint>> FaultyTransport::connect(const std::string& address) {
  int left = connect_refusals_left_.load(std::memory_order_acquire);
  while (left > 0) {
    if (connect_refusals_left_.compare_exchange_weak(left, left - 1,
                                                     std::memory_order_acq_rel)) {
      stats_->connects_refused.fetch_add(1, std::memory_order_relaxed);
      notify_fault("connect-refused", address);
      return make_error(ErrorCode::kConnectionError,
                        "fault injection: connection refused");
    }
  }
  auto connected = inner_->connect(address);
  if (!connected.is_ok()) return connected;
  stats_->connects.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t index =
      next_index_->fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Endpoint>(new FaultyEndpoint(
      std::move(connected).value(), plan_, stats_, disconnect_tokens_, index));
}

}  // namespace tdp::net
