// proxy.hpp - RM-provided connection proxy for private networks.
//
// Section 2.4: when the execution hosts sit behind a firewall/NAT, the RT
// daemon cannot connect straight to its front-end; "the host/port number
// will be that of the RM's proxy, which will be responsible for
// establishing the connection and forwarding inbound and outbound
// messages." TDP "does not require a new proxy facility ... it merely
// leverages existing ones and provides a standard interface to such a
// facility."
//
// We model both halves of that sentence:
//   * FirewalledTransport - wraps any Transport with an allow/deny policy,
//     simulating the private network: blocked direct dials fail with
//     kPermissionDenied so the proxy path is genuinely exercised.
//   * ProxyServer - the RM-owned relay: clients connect to the proxy's
//     address, name a registered logical service ("paradyn-frontend",
//     "cass", "app-stdio"), and the proxy splices the two endpoints,
//     relaying messages verbatim in both directions.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "util/flightrec.hpp"
#include "util/sync.hpp"

namespace tdp::net {

/// Policy wrapper: connect() consults `allow` before dialing.
class FirewalledTransport final : public Transport {
 public:
  using Policy = std::function<bool(const std::string& address)>;

  /// `allow` returns true when a direct connection to `address` is
  /// permitted. Listening is always local and therefore unrestricted.
  FirewalledTransport(std::shared_ptr<Transport> inner, Policy allow)
      : inner_(std::move(inner)), allow_(std::move(allow)) {}

  Result<std::unique_ptr<Listener>> listen(const std::string& address) override {
    return inner_->listen(address);
  }

  Result<std::unique_ptr<Endpoint>> connect(const std::string& address) override {
    if (allow_ && !allow_(address)) {
      return make_error(ErrorCode::kPermissionDenied,
                        "firewall blocks direct connection to " + address);
    }
    return inner_->connect(address);
  }

 private:
  std::shared_ptr<Transport> inner_;
  Policy allow_;
};

/// Recovery policy for a tunnel whose upstream (broker) link fails while
/// the client side is still healthy: the proxy redials the registered
/// target and splices the surviving client onto the fresh connection.
/// Messages in flight on the dead link are lost; end-to-end retry (e.g.
/// AttrClient's RetryPolicy) recovers them — the proxy only guarantees the
/// path comes back.
struct RelinkPolicy {
  bool enabled = false;
  int max_relinks = 3;  ///< redials per tunnel before giving up
  int backoff_ms = 20;  ///< pause before each redial (doubles per attempt)
};

/// The RM's message relay. One ProxyServer serves many logical services.
///
/// Lifecycle: construct, register_service() for each reachable target,
/// start(), ... , stop(). Each tunnel uses two pump threads; fine for the
/// handful of long-lived control connections TDP needs (RT front-end link,
/// stdio forwarding, CASS access).
class ProxyServer {
 public:
  /// `transport` must be able to reach the registered targets (it is the
  /// RM's own unrestricted transport).
  explicit ProxyServer(std::shared_ptr<Transport> transport);
  ~ProxyServer();

  ProxyServer(const ProxyServer&) = delete;
  ProxyServer& operator=(const ProxyServer&) = delete;

  /// Maps a logical service name to a concrete address.
  void register_service(const std::string& name, const std::string& target_address);
  void unregister_service(const std::string& name);

  /// Binds `listen_address` and starts the accept loop on a background
  /// thread. Returns the concrete bound address (useful with TCP port 0).
  Result<std::string> start(const std::string& listen_address);

  /// Stops accepting and tears down all active tunnels. Idempotent.
  void stop();

  /// Address clients should dial; empty before start().
  [[nodiscard]] std::string address() const;

  /// Number of tunnels spliced since start (diagnostics).
  [[nodiscard]] std::size_t tunnels_opened() const;

  /// Installs the upstream-recovery policy (applies to tunnels opened
  /// afterwards).
  void set_relink_policy(RelinkPolicy policy);

  /// Upstream links re-established since start (diagnostics/tests).
  [[nodiscard]] std::size_t relinks() const {
    return relinks_.load(std::memory_order_relaxed);
  }

  /// Attaches the proxy's flight recorder (PR 9): tunnel opens and
  /// upstream relinks land in the ring. Set before start(); the recorder's
  /// shard mutex is a strict leaf, safe from the pump threads.
  void set_recorder(std::shared_ptr<flightrec::Recorder> recorder) {
    recorder_ = std::move(recorder);
  }

 private:
  /// Shared state of one spliced connection; `upstream` is replaced (and
  /// `generation` bumped) when the relink policy restores a dead link.
  /// Lock order: Tunnel::mu is always acquired before ProxyServer::mutex_
  /// (relink() dials under mu and registers the fresh endpoint under
  /// mutex_); nothing may take mu while holding mutex_.
  struct Tunnel {
    std::shared_ptr<Endpoint> client;
    std::string target;  ///< dial string for relinks

    Mutex mu{"ProxyServer::Tunnel::mu"};
    std::shared_ptr<Endpoint> upstream TDP_GUARDED_BY(mu);
    std::uint64_t generation TDP_GUARDED_BY(mu) = 0;
    int relinks_left TDP_GUARDED_BY(mu) = 0;
  };

  void accept_loop();
  void handle_connection_shared(std::shared_ptr<Endpoint> client);
  void pump_client_to_upstream(const std::shared_ptr<Tunnel>& tunnel);
  void pump_upstream_to_client(const std::shared_ptr<Tunnel>& tunnel);
  /// Redials the tunnel's target after the upstream at `seen_generation`
  /// died. Returns true when a live upstream exists afterwards (this call
  /// relinked, or another pump already had).
  bool relink(Tunnel& tunnel, std::uint64_t seen_generation)
      TDP_EXCLUDES(tunnel.mu, mutex_);

  std::shared_ptr<Transport> transport_;
  std::unique_ptr<Listener> listener_;
  std::string address_;

  mutable Mutex mutex_{"ProxyServer::mutex_"};
  std::map<std::string, std::string> services_ TDP_GUARDED_BY(mutex_);
  RelinkPolicy relink_ TDP_GUARDED_BY(mutex_);

  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> tunnels_{0};
  std::atomic<std::size_t> relinks_{0};
  /// Live pump/handler threads. They are detached (a proxy serves an
  /// unbounded stream of tunnels; joinable threads would accumulate until
  /// stop()) and counted so stop() can wait for them to drain.
  std::atomic<int> active_threads_{0};
  /// Weak handles to endpoints so stop() can sever live tunnels; pruned
  /// opportunistically.
  std::vector<std::weak_ptr<Endpoint>> live_endpoints_ TDP_GUARDED_BY(mutex_);
  std::shared_ptr<flightrec::Recorder> recorder_;
};

/// Client-side helper implementing the Section 2.4 contract: TDP hands the
/// RT a host/port that is either the real peer or the RM's proxy. This
/// function performs the proxy handshake (kProxyConnect / reply) and
/// returns an endpoint on which the caller immediately speaks its own
/// protocol.
Result<std::unique_ptr<Endpoint>> proxy_connect(Transport& transport,
                                                const std::string& proxy_address,
                                                const std::string& service);

/// Convenience used by TDP core: try direct connect first; on
/// kPermissionDenied (firewall) fall back to the proxy when one is known.
Result<std::unique_ptr<Endpoint>> connect_direct_or_proxied(
    Transport& transport, const std::string& target_address,
    const std::string& proxy_address, const std::string& service);

}  // namespace tdp::net
