#include "net/proxy.hpp"

#include <algorithm>
#include <chrono>

#include "util/log.hpp"

namespace tdp::net {

namespace {
const log::Logger kLog("proxy");
}  // namespace

ProxyServer::ProxyServer(std::shared_ptr<Transport> transport)
    : transport_(std::move(transport)) {}

ProxyServer::~ProxyServer() { stop(); }

void ProxyServer::register_service(const std::string& name,
                                   const std::string& target_address) {
  std::lock_guard<std::mutex> lock(mutex_);
  services_[name] = target_address;
}

void ProxyServer::unregister_service(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  services_.erase(name);
}

Result<std::string> ProxyServer::start(const std::string& listen_address) {
  auto listener = transport_->listen(listen_address);
  if (!listener.is_ok()) return listener.status();
  listener_ = std::move(listener).value();
  address_ = listener_->address();
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  kLog.info("proxy listening on ", address_);
  return address_;
}

void ProxyServer::stop() {
  running_.store(false, std::memory_order_release);
  if (listener_) listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Sever every live tunnel so detached pump threads wind down, then wait
  // for the count to drain.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& weak : live_endpoints_) {
      if (auto endpoint = weak.lock()) endpoint->close();
    }
    live_endpoints_.clear();
  }
  while (active_threads_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

std::string ProxyServer::address() const {
  return address_;
}

std::size_t ProxyServer::tunnels_opened() const {
  return tunnels_.load(std::memory_order_relaxed);
}

void ProxyServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    auto accepted = listener_->accept(200);
    if (!accepted.is_ok()) {
      if (accepted.status().code() == ErrorCode::kTimeout) continue;
      break;  // listener closed or failed
    }
    std::shared_ptr<Endpoint> shared(std::move(accepted).value().release());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!running_.load(std::memory_order_acquire)) {
        shared->close();
        break;
      }
      // Prune dead entries so the registry stays proportional to LIVE
      // tunnels, not historical ones.
      live_endpoints_.erase(
          std::remove_if(live_endpoints_.begin(), live_endpoints_.end(),
                         [](const std::weak_ptr<Endpoint>& weak) {
                           return weak.expired();
                         }),
          live_endpoints_.end());
      live_endpoints_.push_back(shared);
    }
    active_threads_.fetch_add(1, std::memory_order_acq_rel);
    std::thread([this, shared]() mutable {
      handle_connection_shared(std::move(shared));
      active_threads_.fetch_sub(1, std::memory_order_acq_rel);
    }).detach();
  }
}

void ProxyServer::handle_connection_shared(std::shared_ptr<Endpoint> client) {
  auto hello = client->receive(5000);
  if (!hello.is_ok() || hello->type() != MsgType::kProxyConnect) {
    client->close();
    return;
  }
  const std::string service = hello->get("service");
  std::string target;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = services_.find(service);
    if (it != services_.end()) target = it->second;
  }
  Message reply(MsgType::kProxyConnectReply);
  if (target.empty()) {
    reply.set("status", "error").set("error", "unknown service: " + service);
    client->send(reply);
    client->close();
    return;
  }
  auto dialed = transport_->connect(target);
  if (!dialed.is_ok()) {
    reply.set("status", "error").set("error", dialed.status().to_string());
    client->send(reply);
    client->close();
    return;
  }
  std::shared_ptr<Endpoint> upstream(std::move(dialed).value().release());
  reply.set("status", "ok");
  if (!client->send(reply).is_ok()) {
    client->close();
    upstream->close();
    return;
  }
  tunnels_.fetch_add(1, std::memory_order_relaxed);
  kLog.debug("tunnel opened: service=", service, " target=", target);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_.load(std::memory_order_acquire)) {
      // stop() already swept the registry; do not start a tunnel it can
      // no longer sever.
      client->close();
      upstream->close();
      return;
    }
    live_endpoints_.push_back(upstream);
  }
  // Reverse direction pumped on its own (detached, counted) thread;
  // forward direction pumped on this connection's thread. Both endpoints
  // stay alive through the captured shared_ptrs.
  active_threads_.fetch_add(1, std::memory_order_acq_rel);
  std::thread([this, client, upstream] {
    pump(*upstream, *client);
    active_threads_.fetch_sub(1, std::memory_order_acq_rel);
  }).detach();
  pump(*client, *upstream);
}

void ProxyServer::pump(Endpoint& from, Endpoint& to) {
  while (true) {
    auto msg = from.receive(-1);
    if (!msg.is_ok()) break;
    if (!to.send(msg.value()).is_ok()) break;
  }
  from.close();
  to.close();
}

Result<std::unique_ptr<Endpoint>> proxy_connect(Transport& transport,
                                                const std::string& proxy_address,
                                                const std::string& service) {
  auto connected = transport.connect(proxy_address);
  if (!connected.is_ok()) return connected.status();
  std::unique_ptr<Endpoint> endpoint = std::move(connected).value();

  Message hello(MsgType::kProxyConnect);
  hello.set("service", service);
  TDP_RETURN_IF_ERROR(endpoint->send(hello));

  auto reply = endpoint->receive(5000);
  if (!reply.is_ok()) return reply.status();
  if (reply->type() != MsgType::kProxyConnectReply) {
    return make_error(ErrorCode::kInternal,
                      "unexpected proxy reply: " + reply->to_string());
  }
  if (reply->get("status") != "ok") {
    return make_error(ErrorCode::kNotFound,
                      "proxy refused service '" + service + "': " + reply->get("error"));
  }
  return endpoint;
}

Result<std::unique_ptr<Endpoint>> connect_direct_or_proxied(
    Transport& transport, const std::string& target_address,
    const std::string& proxy_address, const std::string& service) {
  auto direct = transport.connect(target_address);
  if (direct.is_ok()) return direct;
  if (direct.status().code() != ErrorCode::kPermissionDenied || proxy_address.empty()) {
    return direct.status();
  }
  kLog.debug("direct connect to ", target_address, " blocked; using proxy ",
             proxy_address);
  return proxy_connect(transport, proxy_address, service);
}

}  // namespace tdp::net
