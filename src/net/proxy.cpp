#include "net/proxy.hpp"

#include <algorithm>
#include <chrono>

#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace tdp::net {

namespace {
const log::Logger kLog("proxy");

// Frames relayed in either direction, across all tunnels. Since PR 6 the
// pumps move raw frames (send_frame/receive_frame) without decoding, so
// trace headers, unknown fields, and the sender's wire version all pass
// through byte-identical - and the relay never pays a field-table parse.
telemetry::Counter& relayed_counter() {
  static telemetry::Counter& c =
      telemetry::Registry::instance().counter("proxy.frames_relayed");
  return c;
}

// A relayed burst holds whole frames only (receive_frames guarantees it),
// so counting them is a prefix walk, no decode.
std::size_t count_frames(const std::uint8_t* data, std::size_t size) {
  std::size_t frames = 0;
  std::size_t offset = 0;
  while (offset + Message::kLenPrefixSize <= size) {
    offset += Message::kLenPrefixSize + Message::peek_length(data + offset);
    ++frames;
  }
  return frames;
}
}  // namespace

ProxyServer::ProxyServer(std::shared_ptr<Transport> transport)
    : transport_(std::move(transport)) {}

ProxyServer::~ProxyServer() { stop(); }

void ProxyServer::register_service(const std::string& name,
                                   const std::string& target_address) {
  LockGuard lock(mutex_);
  services_[name] = target_address;
}

void ProxyServer::unregister_service(const std::string& name) {
  LockGuard lock(mutex_);
  services_.erase(name);
}

Result<std::string> ProxyServer::start(const std::string& listen_address) {
  auto listener = transport_->listen(listen_address);
  if (!listener.is_ok()) return listener.status();
  listener_ = std::move(listener).value();
  address_ = listener_->address();
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  kLog.info("proxy listening on ", address_);
  return address_;
}

void ProxyServer::stop() {
  running_.store(false, std::memory_order_release);
  if (listener_) listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Sever every live tunnel so detached pump threads wind down, then wait
  // for the count to drain. The registry is swapped out under the lock but
  // the endpoints are closed outside it: close() can cascade into socket
  // shutdown / signal-pipe writes, and pump threads contend on mutex_.
  std::vector<std::weak_ptr<Endpoint>> doomed;
  {
    LockGuard lock(mutex_);
    doomed.swap(live_endpoints_);
  }
  for (auto& weak : doomed) {
    if (auto endpoint = weak.lock()) endpoint->close();
  }
  while (active_threads_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

std::string ProxyServer::address() const {
  return address_;
}

std::size_t ProxyServer::tunnels_opened() const {
  return tunnels_.load(std::memory_order_relaxed);
}

void ProxyServer::set_relink_policy(RelinkPolicy policy) {
  LockGuard lock(mutex_);
  relink_ = policy;
}

void ProxyServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    auto accepted = listener_->accept(200);
    if (!accepted.is_ok()) {
      if (accepted.status().code() == ErrorCode::kTimeout) continue;
      break;  // listener closed or failed
    }
    std::shared_ptr<Endpoint> shared(std::move(accepted).value().release());
    bool rejected = false;
    {
      LockGuard lock(mutex_);
      if (!running_.load(std::memory_order_acquire)) {
        rejected = true;  // closed below, outside the registry lock
      } else {
        // Prune dead entries so the registry stays proportional to LIVE
        // tunnels, not historical ones.
        live_endpoints_.erase(
            std::remove_if(live_endpoints_.begin(), live_endpoints_.end(),
                           [](const std::weak_ptr<Endpoint>& weak) {
                             return weak.expired();
                           }),
            live_endpoints_.end());
        live_endpoints_.push_back(shared);
      }
    }
    if (rejected) {
      shared->close();
      break;
    }
    active_threads_.fetch_add(1, std::memory_order_acq_rel);
    std::thread([this, shared]() mutable {
      handle_connection_shared(std::move(shared));
      active_threads_.fetch_sub(1, std::memory_order_acq_rel);
    }).detach();
  }
}

void ProxyServer::handle_connection_shared(std::shared_ptr<Endpoint> client) {
  auto hello = client->receive(5000);
  if (!hello.is_ok() || hello->type() != MsgType::kProxyConnect) {
    client->close();
    return;
  }
  const std::string service = hello->get("service");
  std::string target;
  {
    LockGuard lock(mutex_);
    auto it = services_.find(service);
    if (it != services_.end()) target = it->second;
  }
  // The handshake stays version-neutral (plain v1): the proxy cannot speak
  // for the upstream's capabilities. End-to-end negotiation rides the
  // application's first messages, which the raw-frame pumps relay verbatim.
  Message reply(MsgType::kProxyConnectReply);
  if (target.empty()) {
    reply.set("status", "error").set("error", "unknown service: " + service);
    client->send(reply);
    client->close();
    return;
  }
  auto dialed = transport_->connect(target);
  if (!dialed.is_ok()) {
    reply.set("status", "error").set("error", dialed.status().to_string());
    client->send(reply);
    client->close();
    return;
  }
  std::shared_ptr<Endpoint> upstream(std::move(dialed).value().release());
  reply.set("status", "ok");
  if (!client->send(reply).is_ok()) {
    client->close();
    upstream->close();
    return;
  }
  tunnels_.fetch_add(1, std::memory_order_relaxed);
  kLog.debug("tunnel opened: service=", service, " target=", target);
  if (recorder_) {
    recorder_->state("tunnel-open", "service=" + service + " target=" + target);
  }
  auto tunnel = std::make_shared<Tunnel>();
  tunnel->client = client;
  tunnel->target = target;
  int relink_budget = 0;
  bool stopped = false;
  {
    LockGuard lock(mutex_);
    if (!running_.load(std::memory_order_acquire)) {
      // stop() already swept the registry; do not start a tunnel it can
      // no longer sever. Closes happen below, outside the registry lock.
      stopped = true;
    } else {
      relink_budget = relink_.enabled ? relink_.max_relinks : 0;
      live_endpoints_.push_back(upstream);
    }
  }
  if (stopped) {
    client->close();
    upstream->close();
    return;
  }
  {
    // Deliberately outside mutex_: the tunnel lock orders before the
    // registry lock (see the Tunnel comment in the header).
    LockGuard tlock(tunnel->mu);
    tunnel->upstream = upstream;
    tunnel->relinks_left = relink_budget;
  }
  // Reverse direction pumped on its own (detached, counted) thread;
  // forward direction pumped on this connection's thread. Both endpoints
  // stay alive through the captured shared_ptrs.
  active_threads_.fetch_add(1, std::memory_order_acq_rel);
  std::thread([this, tunnel] {
    pump_upstream_to_client(tunnel);
    active_threads_.fetch_sub(1, std::memory_order_acq_rel);
  }).detach();
  pump_client_to_upstream(tunnel);
}

bool ProxyServer::relink(Tunnel& tunnel, std::uint64_t seen_generation) {
  // Held across the redial (backoff included): with the upstream dead no
  // traffic can flow anyway, and the lock makes the two pumps agree on a
  // single replacement instead of racing to dial twice.
  LockGuard lock(tunnel.mu);
  if (tunnel.generation != seen_generation) return tunnel.upstream != nullptr;
  if (tunnel.upstream) tunnel.upstream->close();
  if (!tunnel.client->is_open()) {  // nobody left to relay for
    tunnel.upstream.reset();
    return false;
  }
  int backoff;
  {
    LockGuard plock(mutex_);
    backoff = relink_.backoff_ms;
  }
  while (tunnel.relinks_left > 0 && running_.load(std::memory_order_acquire)) {
    --tunnel.relinks_left;
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff *= 2;
    }
    auto dialed = transport_->connect(tunnel.target);
    if (!dialed.is_ok()) continue;
    std::shared_ptr<Endpoint> fresh(std::move(dialed).value().release());
    bool stopped = false;
    {
      LockGuard plock(mutex_);
      if (!running_.load(std::memory_order_acquire)) {
        stopped = true;  // closed below, outside the registry lock
      } else {
        live_endpoints_.push_back(fresh);
      }
    }
    if (stopped) {
      fresh->close();
      break;
    }
    tunnel.upstream = std::move(fresh);
    ++tunnel.generation;
    relinks_.fetch_add(1, std::memory_order_relaxed);
    kLog.info("tunnel upstream relinked: target=", tunnel.target,
              " generation=", tunnel.generation);
    if (recorder_) {
      recorder_->state("relink", "target=" + tunnel.target + " generation=" +
                                     std::to_string(tunnel.generation));
    }
    return true;
  }
  tunnel.upstream.reset();
  return false;
}

void ProxyServer::pump_client_to_upstream(const std::shared_ptr<Tunnel>& tunnel) {
  // One warm burst buffer per pump thread: steady state relays with zero
  // allocation, zero decode, and one write per pipelined burst.
  std::vector<std::uint8_t> frame;
  while (running_.load(std::memory_order_acquire)) {
    // Bounded receive so stop() is honored; receive_frames(-1) here would
    // wedge the thread forever on an idle-but-open client.
    auto received = tunnel->client->receive_frames(200, &frame);
    if (!received.is_ok()) {
      if (received.code() == ErrorCode::kTimeout) continue;
      break;  // client gone: the tunnel is over
    }
    bool forwarded = false;
    while (running_.load(std::memory_order_acquire)) {
      std::shared_ptr<Endpoint> up;
      std::uint64_t generation;
      {
        LockGuard lock(tunnel->mu);
        up = tunnel->upstream;
        generation = tunnel->generation;
      }
      if (!up) break;
      // The buffered burst survives a relink, so the redial path re-sends
      // the same bytes on the fresh upstream.
      if (up->send_frame(frame.data(), frame.size()).is_ok()) {
        forwarded = true;
        relayed_counter().add(count_frames(frame.data(), frame.size()));
        break;
      }
      if (!relink(*tunnel, generation)) break;  // retry send on the new link
    }
    if (!forwarded) break;
  }
  tunnel->client->close();
  LockGuard lock(tunnel->mu);
  if (tunnel->upstream) tunnel->upstream->close();
}

void ProxyServer::pump_upstream_to_client(const std::shared_ptr<Tunnel>& tunnel) {
  std::vector<std::uint8_t> frame;
  while (running_.load(std::memory_order_acquire)) {
    std::shared_ptr<Endpoint> up;
    std::uint64_t generation;
    {
      LockGuard lock(tunnel->mu);
      up = tunnel->upstream;
      generation = tunnel->generation;
    }
    if (!up) break;
    auto received = up->receive_frames(200, &frame);
    if (!received.is_ok()) {
      if (received.code() == ErrorCode::kTimeout) continue;
      if (relink(*tunnel, generation)) continue;
      break;
    }
    if (!tunnel->client->send_frame(frame.data(), frame.size()).is_ok()) break;
    relayed_counter().add(count_frames(frame.data(), frame.size()));
  }
  tunnel->client->close();
  LockGuard lock(tunnel->mu);
  if (tunnel->upstream) tunnel->upstream->close();
}

Result<std::unique_ptr<Endpoint>> proxy_connect(Transport& transport,
                                                const std::string& proxy_address,
                                                const std::string& service) {
  auto connected = transport.connect(proxy_address);
  if (!connected.is_ok()) return connected.status();
  std::unique_ptr<Endpoint> endpoint = std::move(connected).value();

  Message hello(MsgType::kProxyConnect);
  hello.set("service", service);
  TDP_RETURN_IF_ERROR(endpoint->send(hello));

  auto reply = endpoint->receive(5000);
  if (!reply.is_ok()) return reply.status();
  if (reply->type() != MsgType::kProxyConnectReply) {
    return make_error(ErrorCode::kInternal,
                      "unexpected proxy reply: " + reply->to_string());
  }
  if (reply->get("status") != "ok") {
    return make_error(ErrorCode::kNotFound,
                      "proxy refused service '" + service + "': " + reply->get("error"));
  }
  return endpoint;
}

Result<std::unique_ptr<Endpoint>> connect_direct_or_proxied(
    Transport& transport, const std::string& target_address,
    const std::string& proxy_address, const std::string& service) {
  auto direct = transport.connect(target_address);
  if (direct.is_ok()) return direct;
  if (direct.status().code() != ErrorCode::kPermissionDenied || proxy_address.empty()) {
    return direct.status();
  }
  kLog.debug("direct connect to ", target_address, " blocked; using proxy ",
             proxy_address);
  return proxy_connect(transport, proxy_address, service);
}

}  // namespace tdp::net
