// wire.hpp - wire format versioning and the v2 field-id registry (PR 6).
//
// The paper keeps all exchanged data as null-terminated strings
// (Section 3.2); v1 of our framing inherited that shape with string keys
// repeated on every message. v2 keeps the same Message API and the same
// u32 length prefix, but encodes compactly:
//
//   v1 payload: u16 type | u64 seq | u16 nfields |
//               { u16 klen, key, u32 vlen, value }*
//   v2 payload: u8 0xFD | u8 version(=2) | u8 flags(=0) | u16 type |
//               varint seq | varint nfields | field*
//   field:      u8 tag | varint body_len | body
//     tag 0x01 (interned): body = u16 field_id | value bytes
//     tag 0x02 (named):    body = varint klen | key bytes | value bytes
//     any other tag:       skipped (body_len makes every field
//                          self-delimiting - the skip-unknown-fields rule)
//
// Version detection: v1 frames start with the u16 message type, and no
// MsgType has a low byte of 0xFD (that row of the type space is reserved),
// so payload[0] == 0xFD unambiguously marks a v2 frame. Decoders accept
// both; what a sender may EMIT is negotiated - see WireVersion below and
// DESIGN.md §13 for the rolling-upgrade rule.
//
// The field-id registry interns the well-known keys (attrspace protocol
// fields, the _tc trace header, batch k<i>/v<i> slots, liveness/telemetry
// publish fields). Ids are wire format: never renumber, only append.
// A key missing from the registry simply rides as tag 0x02 - unknown
// string keys pass through unchanged, and a reader that does not know an
// interned id skips that field (same rule as unknown tags).
#pragma once

#include <cstdint>
#include <string_view>

namespace tdp::net {

class Endpoint;
class Message;
class MessageView;

/// Frame encodings a sender can emit. Receivers always accept both.
enum class WireVersion : std::uint8_t {
  kV1 = 1,  ///< string-keyed (seed format)
  kV2 = 2,  ///< interned field ids, varint lengths, skip-unknown fields
};

/// payload[0] of every v2 frame. v1 message types with this low byte are
/// reserved (none exist; see MsgType).
inline constexpr std::uint8_t kV2Marker = 0xFD;

/// Reserved v1 field key carrying a sender's wire-version advertisement
/// ("2"). Rides the first message of a protocol exchange (tdp_init, proxy
/// hello, paradynd hello, condor claim) exactly like the _tc trace field:
/// v1 readers skip it as an unknown string field, v2 readers adopt it.
inline constexpr const char* kWireVersionField = "_wv";

/// Looks up the interned id for a field key. Returns true and sets `id`
/// when the key is in the registry.
bool wire_field_id(std::string_view key, std::uint16_t* id);

/// Reverse lookup. Returns empty view for unknown ids (the decoder then
/// skips the field).
std::string_view wire_field_name(std::uint16_t id);

/// Number of registered ids (test surface; also the next free id).
std::size_t wire_field_registry_size();

// --- negotiation helpers -------------------------------------------------

/// Stamps the _wv advertisement on a first-contact message, unless the
/// endpoint was pinned to v1 (a pinned endpoint emulates a genuine old
/// daemon and must not claim v2 support).
void advertise_wire_version(const Endpoint& endpoint, Message& msg);

/// Reads a peer's _wv advertisement (if any) and upgrades the endpoint's
/// send version accordingly. Call on the first message of an exchange;
/// harmless on every message.
void adopt_advertised_wire_version(Endpoint& endpoint, const MessageView& msg);
void adopt_advertised_wire_version(Endpoint& endpoint, const Message& msg);

}  // namespace tdp::net
