// message.hpp - the framed message that every TDP daemon pair exchanges.
//
// One message format serves all protocols in the system (attribute space,
// Condor claiming protocol, Paradyn front-end <-> paradynd, MRNet-lite):
// a 16-bit type, a 64-bit sequence number for request/reply correlation,
// and a string->string field table, reflecting the paper's decision to keep
// all exchanged data as null-terminated strings (Section 3.2).
//
// Wire format (little-endian):
//   u32 payload_len | u16 type | u64 seq | u16 nfields |
//   repeat nfields: u16 key_len, key bytes, u32 val_len, val bytes
//
// Fast-path notes:
//   * Fields live in a small flat vector in insertion order. Messages carry
//     fewer than ~16 fields, so linear scans beat a node-based map and every
//     lookup is allocation-free (string_view compare).
//   * encode() precomputes the frame size and fills one contiguous buffer;
//     encode_into() reuses a caller-owned buffer so steady-state senders do
//     no allocation at all.
//   * MessageView parses a frame in place and yields string_view fields over
//     the receive buffer, so a server's request path does no per-field
//     allocation (see Endpoint::receive_view).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/wire.hpp"
#include "util/status.hpp"

namespace tdp::net {

/// Message type codes. One flat space keeps the framing layer protocol-
/// agnostic; each subsystem uses its own contiguous range.
///
/// Reserved: values whose low byte is 0xFD (253, 509, 765, ...) must never
/// be assigned - payload byte 0 distinguishes v1 frames (type low byte)
/// from v2 frames (wire marker 0xFD, see net/wire.hpp).
enum class MsgType : std::uint16_t {
  kInvalid = 0,

  // --- attribute space protocol (Section 3.2) ---
  kAttrPut = 100,
  kAttrPutReply = 101,
  kAttrGet = 102,
  kAttrGetReply = 103,
  kAttrAsyncGet = 104,   ///< get that may be parked until the attribute appears
  kAttrSubscribe = 105,  ///< asynchronous notification registration (Section 2.1)
  kAttrNotify = 106,
  kAttrExit = 107,       ///< tdp_exit: detach from a context
  kAttrRemove = 108,
  kAttrList = 109,
  kAttrListReply = 110,
  kAttrInit = 111,       ///< tdp_init: join a context (refcounted)
  kAttrInitReply = 112,
  kAttrPutBatch = 113,   ///< N coalesced puts, one round trip, one ack

  // --- process management relay (Section 2.3: RT asks RM to act) ---
  kProcRequest = 200,    ///< pause/continue/kill request routed to the RM
  kProcReply = 201,
  kProcStatusEvent = 202,///< RM -> RT process state change notification

  // --- proxy / tunnel (Section 2.4) ---
  kProxyConnect = 300,   ///< open a relay to a registered logical service
  kProxyConnectReply = 301,
  kProxyData = 302,      ///< encapsulated payload relayed through the tunnel

  // --- Condor protocols (Figure 4) ---
  kCondorSubmit = 400,
  kCondorSubmitReply = 401,
  kCondorMatch = 402,        ///< matchmaker -> schedd: machine found
  kCondorClaim = 403,        ///< schedd -> startd claiming protocol
  kCondorClaimReply = 404,
  kCondorActivate = 405,     ///< shadow -> startd: start the job
  kCondorJobStatus = 406,    ///< starter -> shadow status updates
  kCondorRemoteSyscall = 407,///< starter/job -> shadow remote file I/O
  kCondorRemoteSyscallReply = 408,

  // --- Paradyn protocols (Section 4.2) ---
  kParadynReport = 500,    ///< paradynd -> front-end: metric samples
  kParadynCommand = 501,   ///< front-end -> paradynd: run/pause/instrument
  kParadynCommandReply = 502,
  kParadynHello = 503,     ///< paradynd announces itself to the front-end

  // --- MRNet-lite (auxiliary service) ---
  kMrnetBroadcast = 600,
  kMrnetReduce = 601,
  kMrnetReduceReply = 602,

  // --- generic control ---
  kPing = 900,
  kPong = 901,
  kShutdown = 902,
};

/// A typed, string-keyed message. Regular value type (Core Guidelines C.11).
/// Keys are unique (set() overwrites); fields keep insertion order.
class Message {
 public:
  struct Field {
    std::string key;
    std::string value;

    friend bool operator==(const Field& a, const Field& b) {
      return a.key == b.key && a.value == b.value;
    }
  };

  Message() = default;
  explicit Message(MsgType type) : type_(type) {}

  [[nodiscard]] MsgType type() const noexcept { return type_; }
  void set_type(MsgType type) noexcept { type_ = type; }

  [[nodiscard]] std::uint64_t seq() const noexcept { return seq_; }
  void set_seq(std::uint64_t seq) noexcept { seq_ = seq; }

  /// Sets a field, overwriting any previous value. Returns *this to allow
  /// fluent construction of protocol messages.
  Message& set(std::string key, std::string value);
  Message& set_int(std::string key, std::int64_t value);

  /// Appends a field without scanning for an existing key — O(1) instead of
  /// O(fields). For batch builders that guarantee key uniqueness themselves
  /// (k0/v0/k1/v1...); violating that breaks the unique-keys invariant.
  Message& add(std::string key, std::string value);

  [[nodiscard]] bool has(std::string_view key) const;
  /// Returns the field value, or `fallback` when absent.
  [[nodiscard]] std::string get(std::string_view key,
                                std::string_view fallback = "") const;
  /// Borrowed view of the field value (no copy); valid while the message
  /// is alive and unmodified.
  [[nodiscard]] std::string_view get_view(std::string_view key,
                                          std::string_view fallback = "") const;
  /// Integer view of a field; returns fallback when absent or non-numeric.
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback = 0) const;

  [[nodiscard]] const std::vector<Field>& fields() const noexcept {
    return fields_;
  }

  /// Pre-sizes the field table (batch builders).
  void reserve_fields(std::size_t n) { fields_.reserve(n); }

  /// Serializes to the wire format described in the header comment (v1)
  /// or the compact v2 layout (net/wire.hpp).
  [[nodiscard]] std::vector<std::uint8_t> encode(
      WireVersion version = WireVersion::kV1) const;

  /// Serializes into `out`, reusing its capacity (out is overwritten).
  /// Steady-state senders with a warm buffer allocate nothing in either
  /// version.
  void encode_into(std::vector<std::uint8_t>& out,
                   WireVersion version = WireVersion::kV1) const;

  /// Exact frame size encode(version) would produce (prefix included).
  [[nodiscard]] std::size_t encoded_size(
      WireVersion version = WireVersion::kV1) const noexcept;

  /// Decodes a full frame (including the u32 length prefix), auto-detecting
  /// v1 vs v2 (payload byte 0 == wire::kV2Marker). Returns kInvalidArgument
  /// on truncated or malformed input. Duplicate keys on the wire merge
  /// (last occurrence wins), matching set() semantics. v2 fields with an
  /// unknown tag or an unregistered field id are skipped (the
  /// skip-unknown-fields rule; see DESIGN.md §13).
  static Result<Message> decode(const std::uint8_t* data, std::size_t size);

  /// Wire version a full frame claims to be (inspects the payload marker
  /// byte). Frames shorter than prefix+1 report kV1.
  static WireVersion detect_version(const std::uint8_t* data,
                                    std::size_t size) noexcept;

  /// Reads the payload length from a 4-byte prefix.
  static std::uint32_t peek_length(const std::uint8_t* prefix) noexcept;

  /// Bytes of the length prefix.
  static constexpr std::size_t kLenPrefixSize = 4;
  /// Upper bound accepted for one payload; protects servers against
  /// corrupted prefixes.
  static constexpr std::uint32_t kMaxPayload = 64u * 1024u * 1024u;

  /// Field-order-insensitive equality (keys are unique per message).
  friend bool operator==(const Message& a, const Message& b);

  /// Debug rendering: "AttrPut{seq=3, attr=pid, value=1234}".
  [[nodiscard]] std::string to_string() const;

 private:
  MsgType type_ = MsgType::kInvalid;
  std::uint64_t seq_ = 0;
  std::vector<Field> fields_;
};

/// Zero-copy decoded frame: header plus string_view fields borrowing the
/// buffer given to parse() (or an adopted Message). Reusing one MessageView
/// across receives amortizes its field-table allocation away, so a server
/// request path touches no allocator per message.
///
/// Lifetime: after parse(), views are valid while the source buffer is;
/// after adopt(), the view owns the message and views point into it. Any
/// parse()/adopt() invalidates previous views.
class MessageView {
 public:
  struct FieldView {
    std::string_view key;
    std::string_view value;
  };

  MessageView() = default;

  /// Parses a full frame (length prefix included) in place, auto-detecting
  /// v1 vs v2. The buffer must outlive the view. Same validation as
  /// Message::decode; duplicate wire keys are kept (lookups return the last
  /// occurrence, matching decode()). v2 interned keys view the static
  /// registry string, so they are zero-copy too.
  Status parse(const std::uint8_t* data, std::size_t size);

  /// Wire version of the last successfully parsed frame (kV1 after
  /// adopt(), which never saw bytes).
  [[nodiscard]] WireVersion wire_version() const noexcept { return wire_version_; }

  /// Takes ownership of a decoded message (transports that queue Message
  /// objects instead of bytes) and exposes it through the same interface.
  void adopt(Message msg);

  [[nodiscard]] MsgType type() const noexcept { return type_; }
  [[nodiscard]] std::uint64_t seq() const noexcept { return seq_; }

  [[nodiscard]] bool has(std::string_view key) const;
  [[nodiscard]] std::string_view get(std::string_view key,
                                     std::string_view fallback = "") const;
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback = 0) const;

  [[nodiscard]] const std::vector<FieldView>& fields() const noexcept {
    return fields_;
  }
  [[nodiscard]] std::size_t field_count() const noexcept { return fields_.size(); }

  /// Materializes an owned Message (copying the viewed bytes).
  [[nodiscard]] Message to_message() const;

 private:
  MsgType type_ = MsgType::kInvalid;
  std::uint64_t seq_ = 0;
  WireVersion wire_version_ = WireVersion::kV1;
  std::vector<FieldView> fields_;
  Message owned_;  ///< backing storage for adopt(); empty after parse()
};

/// Short human-readable name of a message type.
const char* msg_type_name(MsgType type) noexcept;

/// Reserved field key carrying the compact telemetry trace header
/// ("1-<trace-hex>-<span-hex>", see util/telemetry.hpp format_context).
/// Riding the ordinary string field table keeps the frame layout
/// unchanged: readers that predate telemetry skip it like any other
/// unknown field, and the header itself is versioned for the day the
/// encoding changes. The "_" prefix keeps it out of the application's
/// attribute key namespace.
inline constexpr const char* kTraceField = "_tc";

}  // namespace tdp::net
