// tcp.hpp - real TCP transport with length-prefixed message framing.
//
// This is the transport a deployed TDP installation would use between the
// submit host (RM/RT front-ends, CASS) and the execution hosts (starter,
// paradynd, LASS). Addresses are "host:port"; listeners may bind port 0 to
// get a kernel-assigned port, mirroring how the Paradyn front-end publishes
// its -p/-P listener ports (Figure 5B).
#pragma once

#include <memory>
#include <string>

#include "net/transport.hpp"

namespace tdp::net {

/// RAII file descriptor (Core Guidelines R.1).
class UniqueFd {
 public:
  UniqueFd() noexcept = default;
  explicit UniqueFd(int fd) noexcept : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  int release() noexcept {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

class TcpTransport final : public Transport {
 public:
  /// `address` forms: "host:port" or ":port"; host defaults to 127.0.0.1.
  /// Binding port 0 allocates an ephemeral port, reported by address().
  Result<std::unique_ptr<Listener>> listen(const std::string& address) override;
  Result<std::unique_ptr<Endpoint>> connect(const std::string& address) override;
};

}  // namespace tdp::net
