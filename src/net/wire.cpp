#include "net/wire.hpp"

#include <string>
#include <unordered_map>
#include <vector>

#include "net/message.hpp"
#include "net/transport.hpp"

namespace tdp::net {

namespace {

/// The interned key table, in id order starting at id 1 (id 0 is reserved
/// as "no id"). Wire format: APPEND ONLY - renumbering breaks mixed-version
/// pools mid-upgrade. The batch slots k0..k31 / v0..v31 are appended
/// programmatically after this list.
constexpr const char* kWellKnownKeys[] = {
    // attrspace protocol fields (attr_protocol.hpp)
    "ctx", "attr", "value", "status", "error", "block", "pattern", "sub_id",
    "count", "bid",
    // reserved cross-cutting fields
    "_tc", "_wv",
    // proxy / process-control / ping payloads
    "service", "payload", "cmd",
    // standard attribute names that double as message fields
    "pid", "executable_name", "app_args", "frontend_host", "frontend_port",
    "frontend_port2", "proxy_address", "stdio_address", "app_state",
    "rt_ready", "working_dir", "job_id", "num_procs",
    // condor / paradyn / mrnet message fields
    "job", "machine", "executable", "daemon", "module", "function", "metric",
    "host", "rank", "state", "final", "mod", "fn", "m", "v",
    // liveness / telemetry publish fields (PR 4/5)
    "seq", "micros", "role", "lease_ttl_ms", "beat",
};

constexpr std::size_t kBatchSlots = 32;  // k0..k31, v0..v31

struct Registry {
  std::unordered_map<std::string_view, std::uint16_t> by_key;
  std::vector<std::string> by_id;  // index = id; [0] unused

  Registry() {
    // Reserve the exact final size up front: the by_key string_views point
    // into by_id's strings, so the vector must never reallocate (SSO moves
    // the character buffers with the string objects).
    const std::size_t total =
        1 + std::size(kWellKnownKeys) + 2 * kBatchSlots;
    by_id.reserve(total);
    by_key.reserve(total);
    by_id.emplace_back();  // id 0 = "no id"
    for (const char* key : kWellKnownKeys) add(key);
    for (std::size_t i = 0; i < kBatchSlots; ++i) {
      add("k" + std::to_string(i));
      add("v" + std::to_string(i));
    }
  }

  void add(std::string key) {
    by_id.push_back(std::move(key));
    by_key.emplace(by_id.back(), static_cast<std::uint16_t>(by_id.size() - 1));
  }
};

const Registry& registry() {
  static const Registry instance;
  return instance;
}

}  // namespace

bool wire_field_id(std::string_view key, std::uint16_t* id) {
  const auto& reg = registry();
  auto it = reg.by_key.find(key);
  if (it == reg.by_key.end()) return false;
  *id = it->second;
  return true;
}

std::string_view wire_field_name(std::uint16_t id) {
  const auto& reg = registry();
  if (id == 0 || id >= reg.by_id.size()) return {};
  return reg.by_id[id];
}

std::size_t wire_field_registry_size() { return registry().by_id.size(); }

void advertise_wire_version(const Endpoint& endpoint, Message& msg) {
  if (endpoint.wire_version_pinned()) return;
  msg.set(kWireVersionField, "2");
}

namespace {
void adopt_impl(Endpoint& endpoint, std::string_view advertised) {
  // Numeric compare, not lexicographic: a future "10" still means >= 2.
  int version = 0;
  for (char c : advertised) {
    if (c < '0' || c > '9' || version > 1000) return;  // not a version
    version = version * 10 + (c - '0');
  }
  if (version >= 2) endpoint.note_peer_wire_version(WireVersion::kV2);
}
}  // namespace

void adopt_advertised_wire_version(Endpoint& endpoint, const MessageView& msg) {
  adopt_impl(endpoint, msg.get(kWireVersionField));
}

void adopt_advertised_wire_version(Endpoint& endpoint, const Message& msg) {
  adopt_impl(endpoint, msg.get_view(kWireVersionField));
}

}  // namespace tdp::net
