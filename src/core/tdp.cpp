#include "core/tdp.hpp"

#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <chrono>

#include "net/proxy.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"
#include "util/string_util.hpp"

namespace tdp {

namespace {
const log::Logger kLog("tdp");

std::string make_request_token() {
  static std::atomic<std::uint64_t> counter{0};
  return std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

/// Parses "op:<op> pid:<pid>" control request values.
bool parse_control_value(const std::string& value, std::string* op, proc::Pid* pid) {
  std::string op_out;
  proc::Pid pid_out = -1;
  for (const std::string& part : str::split_args(value)) {
    if (str::starts_with(part, "op:")) op_out = part.substr(3);
    if (str::starts_with(part, "pid:")) {
      const std::string num = part.substr(4);
      if (!str::is_integer(num)) return false;
      pid_out = std::stoll(num);
    }
  }
  if (op_out.empty() || pid_out < 0) return false;
  *op = std::move(op_out);
  *pid = pid_out;
  return true;
}

}  // namespace

namespace control {

std::string request_attr(const std::string& token, std::uint64_t n) {
  return "tdpreq." + token + "." + std::to_string(n);
}

std::string reply_attr(const std::string& token, std::uint64_t n) {
  return "tdprep." + token + "." + std::to_string(n);
}

std::string state_attr(proc::Pid pid) {
  return std::string("proc_state.") + std::to_string(pid);
}

}  // namespace control

TdpSession::TdpSession(InitOptions options)
    : role_(options.role),
      context_(options.context),
      options_(std::move(options)),
      backend_(options_.backend),
      request_token_(make_request_token()) {}

Result<std::unique_ptr<TdpSession>> TdpSession::init(InitOptions options) {
  if (!options.transport) {
    return make_error(ErrorCode::kInvalidArgument, "InitOptions.transport is required");
  }
  if (options.lass_address.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "InitOptions.lass_address is required: every TDP process "
                      "must reach its local attribute space server");
  }
  if (options.role == Role::kResourceManager && !options.backend) {
    return make_error(ErrorCode::kInvalidArgument,
                      "an RM session requires a ProcessBackend");
  }
  std::unique_ptr<TdpSession> session(new TdpSession(std::move(options)));
  TDP_RETURN_IF_ERROR(session->connect_spaces());
  return session;
}

Status TdpSession::connect_spaces() {
  auto lass = attr::AttrClient::connect(*options_.transport, options_.lass_address,
                                        context_, options_.retry);
  if (!lass.is_ok()) return lass.status();
  lass_ = std::move(lass).value();

  if (!options_.cass_address.empty()) {
    // The CASS lives on the front-end host, possibly across a firewall;
    // fall back to the RM proxy when the direct route is blocked.
    auto endpoint = net::connect_direct_or_proxied(
        *options_.transport, options_.cass_address, options_.proxy_address, "cass");
    if (!endpoint.is_ok()) return endpoint.status();
    auto cass = attr::AttrClient::adopt(std::move(endpoint).value(),
                                        options_.cass_context);
    if (!cass.is_ok()) return cass.status();
    cass_ = std::move(cass).value();
    // Timeout replay applies; redial does not (adopted endpoints keep no
    // dial string — the proxied route may not even be redialable).
    cass_->set_retry_policy(options_.retry);
  }

  if (role_ == Role::kResourceManager) {
    // Serve tool control requests: the subscription callback runs inside
    // this session's service_events(), the RM's "safe point".
    TDP_RETURN_IF_ERROR(lass_->subscribe(
        control::kRequestPattern,
        [this](const std::string& attribute, const std::string& value) {
          serve_control_request(attribute, value);
        }));
  }
  return Status::ok();
}

TdpSession::~TdpSession() {
  if (!exited_.load(std::memory_order_acquire)) exit();
}

Result<proc::Pid> TdpSession::create_process(const proc::CreateOptions& options) {
  if (role_ != Role::kResourceManager) {
    return make_error(ErrorCode::kInvalidState,
                      "tdp_create_process is an RM operation; tools receive the "
                      "pid through the attribute space (Figure 6 step 3)");
  }
  return backend_->create_process(options);
}

Status TdpSession::attach(proc::Pid pid) {
  if (role_ == Role::kResourceManager) return backend_->attach(pid);
  return request_control("attach", pid);
}

Status TdpSession::continue_process(proc::Pid pid) {
  if (role_ == Role::kResourceManager) return backend_->continue_process(pid);
  return request_control("continue", pid);
}

Status TdpSession::pause_process(proc::Pid pid) {
  if (role_ == Role::kResourceManager) return backend_->pause_process(pid);
  return request_control("pause", pid);
}

Status TdpSession::kill_process(proc::Pid pid) {
  if (role_ == Role::kResourceManager) return backend_->kill_process(pid);
  return request_control("kill", pid);
}

Result<proc::ProcessInfo> TdpSession::process_info(proc::Pid pid) {
  if (role_ == Role::kResourceManager) return backend_->info(pid);
  // Tools read the state the RM last published.
  auto value = try_get(control::state_attr(pid));
  if (!value.is_ok()) return value.status();
  proc::ProcessInfo info;
  info.pid = pid;
  const std::vector<std::string> parts = str::split(value.value(), ':');
  const std::string& name = parts[0];
  for (int s = 0; s <= static_cast<int>(proc::ProcessState::kFailed); ++s) {
    auto state = static_cast<proc::ProcessState>(s);
    if (name == proc::process_state_name(state)) {
      info.state = state;
      break;
    }
  }
  if (parts.size() > 1 && str::is_integer(parts[1])) {
    if (info.state == proc::ProcessState::kExited) info.exit_code = std::stoi(parts[1]);
    if (info.state == proc::ProcessState::kSignalled) {
      info.term_signal = std::stoi(parts[1]);
    }
  }
  return info;
}

Status TdpSession::request_control(const std::string& op, proc::Pid pid) {
  const std::uint64_t n = request_counter_.fetch_add(1, std::memory_order_relaxed);
  const std::string request = control::request_attr(request_token_, n);
  const std::string reply = control::reply_attr(request_token_, n);
  const std::string request_value = "op:" + op + " pid:" + std::to_string(pid);
  TDP_RETURN_IF_ERROR(lass_->put(request, request_value));
  // The RM learns of the request through a subscription notify, which is
  // fire-and-forget: on a lossy link it can vanish even though the put was
  // acknowledged. With retry enabled, wait in slices and re-put the request
  // (an overwrite re-triggers the notify); the ops are idempotent at the
  // backend, so the RM serving a request twice is harmless.
  const bool nudge = options_.retry.enabled;
  const int total = options_.control_timeout_ms;
  const int slice = nudge ? std::max(1, std::min(total, 1000)) : total;
  const Clock& wall = RealClock::instance();
  const Micros deadline = wall.now_micros() + static_cast<Micros>(total) * 1000;
  Result<std::string> result = make_error(ErrorCode::kTimeout, "not attempted");
  while (true) {
    result = lass_->get(reply, slice);
    if (result.is_ok() || result.status().code() != ErrorCode::kTimeout) break;
    if (!nudge || wall.now_micros() >= deadline) break;
    lass_->put(request, request_value);
  }
  if (!result.is_ok()) {
    if (result.status().code() == ErrorCode::kTimeout) {
      return make_error(ErrorCode::kTimeout,
                        "RM did not answer control request '" + op +
                            "'; is its event loop running?");
    }
    return result.status();
  }
  if (result.value() == "ok") return Status::ok();
  return make_error(ErrorCode::kInternal, "RM rejected '" + op + "': " + result.value());
}

void TdpSession::serve_control_request(const std::string& attribute,
                                       const std::string& value) {
  // attribute = "tdpreq.<token>.<n>"; reply goes to "tdprep.<token>.<n>".
  std::string op;
  proc::Pid pid = 0;
  std::string reply_name = attribute;
  const std::string kReqPrefix = "tdpreq.";
  if (str::starts_with(reply_name, kReqPrefix)) {
    reply_name = "tdprep." + reply_name.substr(kReqPrefix.size());
  }
  Status status;
  if (!parse_control_value(value, &op, &pid)) {
    status = make_error(ErrorCode::kInvalidArgument, "malformed control request");
  } else if (op == "attach") {
    status = backend_->attach(pid);
  } else if (op == "continue") {
    status = backend_->continue_process(pid);
  } else if (op == "pause") {
    status = backend_->pause_process(pid);
  } else if (op == "kill") {
    status = backend_->kill_process(pid);
  } else {
    status = make_error(ErrorCode::kInvalidArgument, "unknown control op: " + op);
  }
  const std::string reply_value =
      status.is_ok() ? "ok" : "error:" + status.to_string();
  Status put_status = lass_->put(reply_name, reply_value);
  if (!put_status.is_ok()) {
    kLog.error("failed to publish control reply ", reply_name, ": ",
               put_status.to_string());
  }
}

Status TdpSession::put(const std::string& attribute, const std::string& value) {
  return lass_->put(attribute, value);
}

Status TdpSession::put_batch(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  return lass_->put_batch(pairs);
}

Result<std::string> TdpSession::get(const std::string& attribute, int timeout_ms) {
  return lass_->get(attribute, timeout_ms);
}

Result<std::string> TdpSession::try_get(const std::string& attribute) {
  return lass_->try_get(attribute);
}

Result<int> TdpSession::async_get(const std::string& attribute,
                                  attr::CompletionCallback callback) {
  return lass_->async_get(attribute, std::move(callback));
}

Result<int> TdpSession::async_put(const std::string& attribute,
                                  const std::string& value,
                                  attr::CompletionCallback callback) {
  return lass_->async_put(attribute, value, std::move(callback));
}

Status TdpSession::subscribe(const std::string& pattern,
                             attr::NotifyCallback callback) {
  return lass_->subscribe(pattern, std::move(callback));
}

Status TdpSession::cass_put(const std::string& attribute, const std::string& value) {
  if (!cass_) {
    return make_error(ErrorCode::kInvalidState, "no CASS configured for this session");
  }
  return cass_->put(attribute, value);
}

Result<std::string> TdpSession::cass_get(const std::string& attribute, int timeout_ms) {
  if (!cass_) {
    return make_error(ErrorCode::kInvalidState, "no CASS configured for this session");
  }
  return cass_->get(attribute, timeout_ms);
}

Result<std::string> TdpSession::cass_try_get(const std::string& attribute) {
  if (!cass_) {
    return make_error(ErrorCode::kInvalidState, "no CASS configured for this session");
  }
  return cass_->try_get(attribute);
}

int TdpSession::service_events() {
  int handled = lass_->service_events();
  if (cass_) handled += cass_->service_events();
  if (role_ == Role::kResourceManager && backend_) {
    for (const proc::ProcessEvent& event : backend_->poll_events()) {
      publish_event(event);
      ++handled;
    }
  }
  return handled;
}

void TdpSession::publish_event(const proc::ProcessEvent& event) {
  std::string value = proc::process_state_name(event.state);
  if (event.state == proc::ProcessState::kExited) {
    value += ":" + std::to_string(event.exit_code);
  } else if (event.state == proc::ProcessState::kSignalled) {
    value += ":" + std::to_string(event.term_signal);
  }
  lass_->put(control::state_attr(event.pid), value);
  lass_->put(attr::attrs::kAppState,
             std::to_string(event.pid) + ":" + value);
}

int TdpSession::event_fd() const { return lass_->readable_fd(); }

Result<std::unique_ptr<net::Endpoint>> TdpSession::connect_to(
    const std::string& target_address, const std::string& service) {
  return net::connect_direct_or_proxied(*options_.transport, target_address,
                                        options_.proxy_address, service);
}

Status TdpSession::exit() {
  bool expected = false;
  if (!exited_.compare_exchange_strong(expected, true)) return Status::ok();
  Status status = Status::ok();
  if (cass_) status = cass_->exit();
  if (lass_) {
    Status lass_status = lass_->exit();
    if (status.is_ok()) status = lass_status;
  }
  return status;
}

void TdpSession::abandon() {
  bool expected = false;
  if (!exited_.compare_exchange_strong(expected, true)) return;
  if (cass_) cass_->abandon();
  if (lass_) lass_->abandon();
}

}  // namespace tdp
