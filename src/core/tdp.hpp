// tdp.hpp - the Tool Dæmon Protocol library (the paper's contribution).
//
// A TdpSession is the "tdp handle" returned by tdp_init (Section 3.2). Both
// kinds of daemon hold one:
//
//   * the RM (resource manager; Condor's starter in Parador) initializes
//     with Role::kResourceManager and a ProcessBackend. It creates
//     application processes (tdp_create_process with the run or paused
//     option), monitors them, and serves process-control requests that
//     tools route to it;
//   * the RT (run-time tool; paradynd in Parador) initializes with
//     Role::kTool. Its attach/continue/pause/kill calls do NOT touch the
//     OS: per Section 2.3 "the responsibility for controlling an
//     application process and for monitoring its status belongs to the RM",
//     so the RT's requests travel through the attribute space to the RM,
//     which performs the operation and replies. "Two different processes
//     will never attempt conflicting control operations."
//
// Event model (Section 3.3): nothing in this library ever invokes a user
// callback from a signal handler or a hidden thread. Async completions and
// notifications are queued, a descriptor (event_fd) becomes readable, and
// the daemon's own poll loop calls service_events() to dispatch — "the
// callback function will be called at a well-known and (presumably) safe
// point."
//
// The create-mode launch sequence of Figure 3A/Figure 6, expressed in this
// API (RM side):
//     auto rm = TdpSession::init(rm_options);               // tdp_init
//     auto app = rm->create_process(app_opts, kPaused);     // stopped at exec
//     rm->put("pid", std::to_string(app));                  // tdp_put
//     auto rt = rm->create_process(tool_opts, kRun);        // launch the RT
// and the RT side:
//     auto rt = TdpSession::init(tool_options);             // tdp_init
//     auto pid = rt->get("pid");                            // blocks for put
//     rt->attach(std::stoll(pid.value()));                  // tdp_attach
//     ... tool initialization ...
//     rt->continue_process(std::stoll(pid.value()));        // tdp_continue
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "attrspace/attr_client.hpp"
#include "attrspace/attr_protocol.hpp"
#include "net/transport.hpp"
#include "proc/backend.hpp"

namespace tdp {

enum class Role : std::uint8_t { kResourceManager, kTool };

/// Configuration for TdpSession::init (the tdp_init call).
struct InitOptions {
  Role role = Role::kTool;

  /// Address of the local attribute space server (LASS) on this host.
  /// Every TDP process must reach its LASS (Section 2.1).
  std::string lass_address;

  /// Attribute-space context, the unit of RM<->RT pairing (Section 3.2).
  /// An RM managing several RTs uses a different context per RT.
  std::string context = attr::kDefaultContext;

  /// Transport used for all connections (in-process or TCP).
  std::shared_ptr<net::Transport> transport;

  /// RM only: the process-control backend this RM encapsulates.
  std::shared_ptr<proc::ProcessBackend> backend;

  /// Optional central attribute space server (CASS) on the front-end host.
  std::string cass_address;

  /// Context joined on the CASS. Pool-wide data (front-end contact info,
  /// global configuration) lives in the shared default context even when
  /// the LASS side uses a per-RT context.
  std::string cass_context = attr::kDefaultContext;

  /// Optional RM proxy for connections that must cross a firewall
  /// (Section 2.4); consulted by connect_to().
  std::string proxy_address;

  /// Timeout for RT->RM control round trips, milliseconds.
  int control_timeout_ms = 10'000;

  /// Failure-recovery policy for the LASS connection: with `enabled`, lost
  /// frames are replayed and a dead connection is redialed transparently
  /// (subscriptions re-registered, in-flight async ops replayed). The CASS
  /// link adopts the same policy for replay, but having been set up through
  /// connect_to() (possibly proxied) it cannot be redialed.
  attr::RetryPolicy retry;
};

/// The tdp handle. Thread-safe; one per daemon process.
class TdpSession {
 public:
  /// tdp_init: joins the context on the LASS (and CASS when configured).
  /// "On success, tdp_init will return a tdp handle, which will be used in
  /// any TDP subsequent action."
  static Result<std::unique_ptr<TdpSession>> init(InitOptions options);

  ~TdpSession();

  TdpSession(const TdpSession&) = delete;
  TdpSession& operator=(const TdpSession&) = delete;

  // ------------------------------------------------------------------
  // Process management (Section 3.1)
  // ------------------------------------------------------------------

  /// tdp_create_process. RM only (kInvalidState for tools): launches the
  /// application (or the RT itself, or an auxiliary service) via the
  /// backend. With CreateMode::kPaused the process is left stopped just
  /// after exec, ready for a tool to attach before main() runs.
  Result<proc::Pid> create_process(const proc::CreateOptions& options);

  /// tdp_attach: obtains control of the process and ensures it is paused.
  /// RM: direct backend call. RT: routed to the RM through the attribute
  /// space.
  Status attach(proc::Pid pid);

  /// tdp_continue_process: resumes a paused/stopped process (both the
  /// create and attach scenarios of Figure 3 end with this call).
  Status continue_process(proc::Pid pid);

  /// Pauses a running application (RT-initiated pause must be coordinated
  /// with the RM "so the change is not viewed as faulty behaviour").
  Status pause_process(proc::Pid pid);

  /// Terminates the application.
  Status kill_process(proc::Pid pid);

  /// Current state of a managed process as the RM last reported it.
  /// RM: backend truth. RT: read from the attribute space.
  Result<proc::ProcessInfo> process_info(proc::Pid pid);

  // ------------------------------------------------------------------
  // Attribute space (Section 3.2)
  // ------------------------------------------------------------------

  /// tdp_put: blocking store into the LASS.
  Status put(const std::string& attribute, const std::string& value);

  /// Batched tdp_put: stores all pairs in one round trip to the LASS.
  /// Daemons publishing N related attributes at once (metric samples,
  /// handshake bundles) pay one network round trip instead of N.
  Status put_batch(const std::vector<std::pair<std::string, std::string>>& pairs);

  /// tdp_get, blocking form: waits until the attribute is present.
  Result<std::string> get(const std::string& attribute, int timeout_ms = -1);

  /// tdp_get, documented error form: kNotFound when absent.
  Result<std::string> try_get(const std::string& attribute);

  /// tdp_async_get: returns the descriptor to poll (the paper's tdp_fd);
  /// the callback fires from a later service_events().
  Result<int> async_get(const std::string& attribute,
                        attr::CompletionCallback callback);

  /// tdp_async_put.
  Result<int> async_put(const std::string& attribute, const std::string& value,
                        attr::CompletionCallback callback);

  /// Asynchronous notification (Section 2.1): callback on every put whose
  /// attribute matches `pattern` (exact, or trailing-'*' prefix).
  Status subscribe(const std::string& pattern, attr::NotifyCallback callback);

  /// Same operations against the central space (CASS), when configured.
  Status cass_put(const std::string& attribute, const std::string& value);
  Result<std::string> cass_get(const std::string& attribute, int timeout_ms = -1);
  Result<std::string> cass_try_get(const std::string& attribute);

  // ------------------------------------------------------------------
  // Event notification (Section 3.3)
  // ------------------------------------------------------------------

  /// tdp_service_event: dispatches every pending completion/notification
  /// callback on the calling thread, and — for an RM session — polls the
  /// process backend, publishes state changes into the attribute space
  /// (attribute "proc_state.<pid>" plus the standard app_state), and serves
  /// queued tool control requests. Returns the number of events handled.
  int service_events();

  /// Descriptor that polls readable when service_events() has work
  /// (attribute traffic). RM loops should also call service_events on a
  /// short timer tick to reap child state changes.
  [[nodiscard]] int event_fd() const;

  // ------------------------------------------------------------------
  // Tool communication (Section 2.4)
  // ------------------------------------------------------------------

  /// Connects to `target_address` (e.g. the tool front-end), transparently
  /// falling back to the RM's proxy when a firewall blocks the direct
  /// route. `service` names the registered proxy service.
  Result<std::unique_ptr<net::Endpoint>> connect_to(const std::string& target_address,
                                                    const std::string& service);

  // ------------------------------------------------------------------
  // Lifecycle
  // ------------------------------------------------------------------

  /// tdp_exit: leaves the context; the space is destroyed server-side when
  /// the last participant exits. The session is unusable afterwards.
  Status exit();

  /// Simulates daemon death: severs both space connections without the
  /// tdp_exit protocol, as a crashed process would. Contexts are NOT left
  /// cleanly — survivors notice via broken transports or missed leases.
  void abandon();

  [[nodiscard]] Role role() const noexcept { return role_; }
  [[nodiscard]] const std::string& context() const noexcept { return context_; }
  [[nodiscard]] bool has_cass() const noexcept { return cass_ != nullptr; }

  /// Direct access to the underlying clients (examples, tests).
  attr::AttrClient& lass_client() { return *lass_; }

 private:
  explicit TdpSession(InitOptions options);

  Status connect_spaces();

  /// RM: executes one control op named by a tool request attribute.
  void serve_control_request(const std::string& attribute, const std::string& value);

  /// RT: round-trips one control request through the attribute space.
  Status request_control(const std::string& op, proc::Pid pid);

  /// RM: publishes one backend event into the space.
  void publish_event(const proc::ProcessEvent& event);

  Role role_;
  std::string context_;
  InitOptions options_;
  std::unique_ptr<attr::AttrClient> lass_;
  std::unique_ptr<attr::AttrClient> cass_;
  std::shared_ptr<proc::ProcessBackend> backend_;
  std::atomic<std::uint64_t> request_counter_{0};
  std::string request_token_;  ///< unique per session, namespaces requests
  std::atomic<bool> exited_{false};
};

/// Attribute-name helpers for the RT->RM control channel and RM->RT status
/// publication. Exposed for tests and for RMs implementing richer policies.
namespace control {
/// "tdpreq.<token>.<n>" - a tool's control request; value "op:<op> pid:<pid>".
std::string request_attr(const std::string& token, std::uint64_t n);
/// "tdprep.<token>.<n>" - the RM's reply; value "ok" or "error:<detail>".
std::string reply_attr(const std::string& token, std::uint64_t n);
/// "proc_state.<pid>" - latest state of a process, value from
/// process_state_name plus optional ":code".
std::string state_attr(proc::Pid pid);
/// The subscription pattern an RM uses to see all control requests.
inline constexpr const char* kRequestPattern = "tdpreq.*";
}  // namespace control

}  // namespace tdp
