#include "core/tdp_c.h"

#include <cstring>
#include <map>
#include <memory>

#include "core/tdp.hpp"
#include "net/tcp.hpp"
#include "proc/posix_backend.hpp"
#include "util/sync.hpp"

namespace {

using tdp::ErrorCode;
using tdp::TdpSession;

int rc_from_code(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return TDP_OK;
    case ErrorCode::kNotFound: return TDP_ERR_NOT_FOUND;
    case ErrorCode::kAlreadyExists: return TDP_ERR_ALREADY_EXISTS;
    case ErrorCode::kInvalidArgument: return TDP_ERR_INVALID_ARGUMENT;
    case ErrorCode::kTimeout: return TDP_ERR_TIMEOUT;
    case ErrorCode::kConnectionError: return TDP_ERR_CONNECTION;
    case ErrorCode::kPermissionDenied: return TDP_ERR_PERMISSION;
    case ErrorCode::kInvalidState: return TDP_ERR_INVALID_STATE;
    case ErrorCode::kResourceExhausted: return TDP_ERR_RESOURCE;
    case ErrorCode::kInternal: return TDP_ERR_INTERNAL;
    case ErrorCode::kUnsupported: return TDP_ERR_UNSUPPORTED;
    case ErrorCode::kCancelled: return TDP_ERR_CANCELLED;
    case ErrorCode::kBusy: return TDP_ERR_BUSY;
  }
  return TDP_ERR_INTERNAL;
}

int rc_from_status(const tdp::Status& status) { return rc_from_code(status.code()); }

/// Registry of live sessions; handles are never reused within a process.
/// Sessions are shared-owned so a tdp_exit racing a call on another thread
/// destroys the session only after the in-flight call returns (the paper
/// requires the library to be thread safe).
struct Registry {
  tdp::Mutex mutex{"tdp_c::Registry::mutex"};
  std::map<tdp_handle, std::shared_ptr<TdpSession>> sessions TDP_GUARDED_BY(mutex);
  tdp_handle next_handle TDP_GUARDED_BY(mutex) = 1;
};

Registry& registry() {
  static Registry instance;
  return instance;
}

std::shared_ptr<TdpSession> lookup(tdp_handle handle) {
  Registry& reg = registry();
  tdp::LockGuard lock(reg.mutex);
  auto it = reg.sessions.find(handle);
  return it == reg.sessions.end() ? nullptr : it->second;
}

}  // namespace

extern "C" {

int tdp_init(const char* lass_address, const char* context, int role,
             tdp_handle* out) {
  if (lass_address == nullptr || out == nullptr) return TDP_ERR_INVALID_ARGUMENT;
  tdp::InitOptions options;
  options.lass_address = lass_address;
  options.context = context != nullptr ? context : tdp::attr::kDefaultContext;
  options.role = role == TDP_ROLE_RESOURCE_MANAGER ? tdp::Role::kResourceManager
                                                   : tdp::Role::kTool;
  options.transport = std::make_shared<tdp::net::TcpTransport>();
  if (options.role == tdp::Role::kResourceManager) {
    options.backend = std::make_shared<tdp::proc::PosixProcessBackend>();
  }
  auto session = TdpSession::init(std::move(options));
  if (!session.is_ok()) return rc_from_status(session.status());

  Registry& reg = registry();
  tdp::LockGuard lock(reg.mutex);
  tdp_handle handle = reg.next_handle++;
  reg.sessions[handle] = std::move(session).value();
  *out = handle;
  return TDP_OK;
}

int tdp_exit(tdp_handle handle) {
  std::shared_ptr<TdpSession> session;
  {
    Registry& reg = registry();
    tdp::LockGuard lock(reg.mutex);
    auto it = reg.sessions.find(handle);
    if (it == reg.sessions.end()) return TDP_ERR_BAD_HANDLE;
    session = std::move(it->second);
    reg.sessions.erase(it);
  }
  return rc_from_status(session->exit());
}

int tdp_create_process(tdp_handle handle, const char* const* argv, int mode,
                       long long* pid_out) {
  std::shared_ptr<TdpSession> session = lookup(handle);
  if (session == nullptr) return TDP_ERR_BAD_HANDLE;
  if (argv == nullptr || argv[0] == nullptr || pid_out == nullptr) {
    return TDP_ERR_INVALID_ARGUMENT;
  }
  tdp::proc::CreateOptions options;
  for (int i = 0; argv[i] != nullptr; ++i) options.argv.emplace_back(argv[i]);
  options.mode = mode == TDP_CREATE_PAUSED ? tdp::proc::CreateMode::kPaused
                                           : tdp::proc::CreateMode::kRun;
  auto pid = session->create_process(options);
  if (!pid.is_ok()) return rc_from_status(pid.status());
  *pid_out = pid.value();
  return TDP_OK;
}

int tdp_attach(tdp_handle handle, long long pid) {
  std::shared_ptr<TdpSession> session = lookup(handle);
  if (session == nullptr) return TDP_ERR_BAD_HANDLE;
  return rc_from_status(session->attach(pid));
}

int tdp_continue_process(tdp_handle handle, long long pid) {
  std::shared_ptr<TdpSession> session = lookup(handle);
  if (session == nullptr) return TDP_ERR_BAD_HANDLE;
  return rc_from_status(session->continue_process(pid));
}

int tdp_pause_process(tdp_handle handle, long long pid) {
  std::shared_ptr<TdpSession> session = lookup(handle);
  if (session == nullptr) return TDP_ERR_BAD_HANDLE;
  return rc_from_status(session->pause_process(pid));
}

int tdp_kill_process(tdp_handle handle, long long pid) {
  std::shared_ptr<TdpSession> session = lookup(handle);
  if (session == nullptr) return TDP_ERR_BAD_HANDLE;
  return rc_from_status(session->kill_process(pid));
}

int tdp_put(tdp_handle handle, const char* attribute, const char* value) {
  std::shared_ptr<TdpSession> session = lookup(handle);
  if (session == nullptr) return TDP_ERR_BAD_HANDLE;
  if (attribute == nullptr || value == nullptr) return TDP_ERR_INVALID_ARGUMENT;
  return rc_from_status(session->put(attribute, value));
}

int tdp_get(tdp_handle handle, const char* attribute, char* value_buf,
            size_t buf_len, int timeout_ms) {
  std::shared_ptr<TdpSession> session = lookup(handle);
  if (session == nullptr) return TDP_ERR_BAD_HANDLE;
  if (attribute == nullptr || value_buf == nullptr || buf_len == 0) {
    return TDP_ERR_INVALID_ARGUMENT;
  }
  auto value = session->get(attribute, timeout_ms);
  if (!value.is_ok()) return rc_from_status(value.status());
  if (value.value().size() + 1 > buf_len) return TDP_ERR_BUFFER_TOO_SMALL;
  std::memcpy(value_buf, value.value().c_str(), value.value().size() + 1);
  return TDP_OK;
}

int tdp_try_get(tdp_handle handle, const char* attribute, char* value_buf,
                size_t buf_len) {
  std::shared_ptr<TdpSession> session = lookup(handle);
  if (session == nullptr) return TDP_ERR_BAD_HANDLE;
  if (attribute == nullptr || value_buf == nullptr || buf_len == 0) {
    return TDP_ERR_INVALID_ARGUMENT;
  }
  auto value = session->try_get(attribute);
  if (!value.is_ok()) return rc_from_status(value.status());
  if (value.value().size() + 1 > buf_len) return TDP_ERR_BUFFER_TOO_SMALL;
  std::memcpy(value_buf, value.value().c_str(), value.value().size() + 1);
  return TDP_OK;
}

int tdp_remove(tdp_handle handle, const char* attribute) {
  std::shared_ptr<TdpSession> session = lookup(handle);
  if (session == nullptr) return TDP_ERR_BAD_HANDLE;
  if (attribute == nullptr) return TDP_ERR_INVALID_ARGUMENT;
  return rc_from_status(session->lass_client().remove(attribute));
}

int tdp_async_get(tdp_handle handle, const char* attribute, tdp_callback callback,
                  void* callback_arg, int* fd_out) {
  std::shared_ptr<TdpSession> session = lookup(handle);
  if (session == nullptr) return TDP_ERR_BAD_HANDLE;
  if (attribute == nullptr || callback == nullptr) return TDP_ERR_INVALID_ARGUMENT;
  auto fd = session->async_get(
      attribute, [callback, callback_arg](const tdp::Status& status,
                                          const std::string& attr,
                                          const std::string& value) {
        callback(rc_from_status(status), attr.c_str(), value.c_str(), callback_arg);
      });
  if (!fd.is_ok()) return rc_from_status(fd.status());
  if (fd_out != nullptr) *fd_out = fd.value();
  return TDP_OK;
}

int tdp_async_put(tdp_handle handle, const char* attribute, const char* value,
                  tdp_callback callback, void* callback_arg, int* fd_out) {
  std::shared_ptr<TdpSession> session = lookup(handle);
  if (session == nullptr) return TDP_ERR_BAD_HANDLE;
  if (attribute == nullptr || value == nullptr || callback == nullptr) {
    return TDP_ERR_INVALID_ARGUMENT;
  }
  auto fd = session->async_put(
      attribute, value,
      [callback, callback_arg](const tdp::Status& status, const std::string& attr,
                               const std::string& stored) {
        callback(rc_from_status(status), attr.c_str(), stored.c_str(), callback_arg);
      });
  if (!fd.is_ok()) return rc_from_status(fd.status());
  if (fd_out != nullptr) *fd_out = fd.value();
  return TDP_OK;
}

int tdp_service_event(tdp_handle handle) {
  std::shared_ptr<TdpSession> session = lookup(handle);
  if (session == nullptr) return TDP_ERR_BAD_HANDLE;
  return session->service_events();
}

int tdp_event_fd(tdp_handle handle) {
  std::shared_ptr<TdpSession> session = lookup(handle);
  if (session == nullptr) return TDP_ERR_BAD_HANDLE;
  return session->event_fd();
}

const char* tdp_rc_name(int rc) {
  switch (rc) {
    case TDP_OK: return "TDP_OK";
    case TDP_ERR_NOT_FOUND: return "TDP_ERR_NOT_FOUND";
    case TDP_ERR_ALREADY_EXISTS: return "TDP_ERR_ALREADY_EXISTS";
    case TDP_ERR_INVALID_ARGUMENT: return "TDP_ERR_INVALID_ARGUMENT";
    case TDP_ERR_TIMEOUT: return "TDP_ERR_TIMEOUT";
    case TDP_ERR_CONNECTION: return "TDP_ERR_CONNECTION";
    case TDP_ERR_PERMISSION: return "TDP_ERR_PERMISSION";
    case TDP_ERR_INVALID_STATE: return "TDP_ERR_INVALID_STATE";
    case TDP_ERR_RESOURCE: return "TDP_ERR_RESOURCE";
    case TDP_ERR_INTERNAL: return "TDP_ERR_INTERNAL";
    case TDP_ERR_UNSUPPORTED: return "TDP_ERR_UNSUPPORTED";
    case TDP_ERR_CANCELLED: return "TDP_ERR_CANCELLED";
    case TDP_ERR_BAD_HANDLE: return "TDP_ERR_BAD_HANDLE";
    case TDP_ERR_BUFFER_TOO_SMALL: return "TDP_ERR_BUFFER_TOO_SMALL";
    case TDP_ERR_BUSY: return "TDP_ERR_BUSY";
    default: return "TDP_ERR_UNKNOWN";
  }
}

}  // extern "C"
