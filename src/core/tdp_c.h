/* tdp_c.h - C binding of the Tool Daemon Protocol library.
 *
 * Section 3 of the SC'03 paper: "The API should be consistent with standard
 * C library interfaces. A first implementation will be provided in C
 * language. The library should be thread safe."
 *
 * This header is that C API, with the exact entry points the paper names:
 * tdp_init, tdp_exit, tdp_create_process, tdp_attach,
 * tdp_continue_process, tdp_get, tdp_put, tdp_async_get, tdp_async_put and
 * tdp_service_event. It is a thin veneer over the C++ TdpSession; each
 * handle owns a real TCP transport and (for resource managers) a POSIX
 * process backend.
 */
#ifndef TDP_CORE_TDP_C_H_
#define TDP_CORE_TDP_C_H_

#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Return codes. 0 is success; negatives mirror tdp::ErrorCode. */
enum tdp_rc {
  TDP_OK = 0,
  TDP_ERR_NOT_FOUND = -1,
  TDP_ERR_ALREADY_EXISTS = -2,
  TDP_ERR_INVALID_ARGUMENT = -3,
  TDP_ERR_TIMEOUT = -4,
  TDP_ERR_CONNECTION = -5,
  TDP_ERR_PERMISSION = -6,
  TDP_ERR_INVALID_STATE = -7,
  TDP_ERR_RESOURCE = -8,
  TDP_ERR_INTERNAL = -9,
  TDP_ERR_UNSUPPORTED = -10,
  TDP_ERR_CANCELLED = -11,
  TDP_ERR_BAD_HANDLE = -12,
  TDP_ERR_BUFFER_TOO_SMALL = -13,
  TDP_ERR_BUSY = -14
};

/* Opaque session handle returned by tdp_init. */
typedef int tdp_handle;

/* Role of the calling daemon. */
#define TDP_ROLE_TOOL 0
#define TDP_ROLE_RESOURCE_MANAGER 1

/* Process creation modes (Section 3.1). */
#define TDP_CREATE_RUN 0
#define TDP_CREATE_PAUSED 1

/* tdp_init: connect to the LASS at lass_address ("host:port") and join
 * `context` (NULL selects the default context). Role is TDP_ROLE_*.
 * On success writes the handle to *out and returns TDP_OK. */
int tdp_init(const char* lass_address, const char* context, int role,
             tdp_handle* out);

/* tdp_exit: leave the context and release the handle. The attribute space
 * context is destroyed when its last participant exits. */
int tdp_exit(tdp_handle handle);

/* tdp_create_process: RM only. argv is NULL-terminated; mode is
 * TDP_CREATE_RUN or TDP_CREATE_PAUSED ("stopped just after the exec").
 * Writes the new pid to *pid_out. */
int tdp_create_process(tdp_handle handle, const char* const* argv, int mode,
                       long long* pid_out);

/* tdp_attach: obtain control of the process and ensure it is paused.
 * From a tool, the request is routed through the RM. */
int tdp_attach(tdp_handle handle, long long pid);

/* tdp_continue_process: resume a paused/stopped process. */
int tdp_continue_process(tdp_handle handle, long long pid);

/* Extensions used by ParadoR: pause and kill, same routing rules. */
int tdp_pause_process(tdp_handle handle, long long pid);
int tdp_kill_process(tdp_handle handle, long long pid);

/* tdp_put: blocking store of (attribute, value); both NUL-terminated. */
int tdp_put(tdp_handle handle, const char* attribute, const char* value);

/* tdp_get: blocking fetch; waits until the attribute is present (bounded
 * by timeout_ms, <0 = forever). Copies the NUL-terminated value into
 * value_buf (capacity buf_len); returns TDP_ERR_BUFFER_TOO_SMALL if it
 * does not fit. */
int tdp_get(tdp_handle handle, const char* attribute, char* value_buf,
            size_t buf_len, int timeout_ms);

/* tdp_try_get: the paper's documented non-waiting form — "an error is
 * returned if the attribute is not contained in the shared space"
 * (TDP_ERR_NOT_FOUND). Same buffer contract as tdp_get. */
int tdp_try_get(tdp_handle handle, const char* attribute, char* value_buf,
                size_t buf_len);

/* tdp_remove: deletes an attribute from the shared space. */
int tdp_remove(tdp_handle handle, const char* attribute);

/* Completion callback for the asynchronous operations: rc is a tdp_rc,
 * value is valid only for the duration of the call. */
typedef void (*tdp_callback)(int rc, const char* attribute, const char* value,
                             void* callback_arg);

/* tdp_async_get / tdp_async_put: "Both functions will return immediately
 * ... the callback function provided will be executed when the
 * corresponding operation completes" — from a later tdp_service_event.
 * Writes the descriptor to poll (the paper's tdp_fd) to *fd_out when
 * non-NULL. */
int tdp_async_get(tdp_handle handle, const char* attribute, tdp_callback callback,
                  void* callback_arg, int* fd_out);
int tdp_async_put(tdp_handle handle, const char* attribute, const char* value,
                  tdp_callback callback, void* callback_arg, int* fd_out);

/* tdp_service_event: "will call any pending callback that has been
 * registered previously in an asynchronous put or get", at this
 * well-known, safe point, on the calling thread. Returns the number of
 * callbacks dispatched, or a negative tdp_rc. */
int tdp_service_event(tdp_handle handle);

/* The descriptor to include in the daemon's central poll loop. */
int tdp_event_fd(tdp_handle handle);

/* Human-readable name of a tdp_rc. */
const char* tdp_rc_name(int rc);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* TDP_CORE_TDP_C_H_ */
