#include "proc/posix_backend.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/ptrace.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/clock.hpp"
#include "util/log.hpp"

namespace tdp::proc {

namespace {

const log::Logger kLog("posix_proc");

Status errno_status(ErrorCode code, const char* what) {
  return make_error(code, std::string(what) + ": " + std::strerror(errno));
}

/// Child-side setup after fork; only async-signal-safe calls allowed.
/// On any failure, writes errno to err_fd and _exits.
[[noreturn]] void child_exec(const CreateOptions& options, int err_fd) {
  auto fail = [err_fd](int saved_errno) {
    // In pre-exec-stop mode the parent has already closed the pipe's read
    // end; the report write must not kill us with SIGPIPE before the
    // deliberate _exit(127). Safe: this process exits on the next line,
    // so the ignored disposition never leaks into an exec'd image.
    ::signal(SIGPIPE, SIG_IGN);
    [[maybe_unused]] ssize_t n = ::write(err_fd, &saved_errno, sizeof(saved_errno));
    _exit(127);
  };

  if (!options.working_dir.empty() && ::chdir(options.working_dir.c_str()) != 0) {
    fail(errno);
  }

  auto redirect = [&](const std::string& path, int target_fd, int flags) -> bool {
    if (path.empty()) return true;
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return false;
    if (::dup2(fd, target_fd) < 0) return false;
    ::close(fd);
    return true;
  };
  if (!redirect(options.stdin_path, STDIN_FILENO, O_RDONLY)) fail(errno);
  if (!redirect(options.stdout_path, STDOUT_FILENO, O_WRONLY | O_CREAT | O_TRUNC)) {
    fail(errno);
  }
  if (!redirect(options.stderr_path, STDERR_FILENO, O_WRONLY | O_CREAT | O_TRUNC)) {
    fail(errno);
  }

  std::vector<char*> argv;
  argv.reserve(options.argv.size() + 1);
  for (const auto& arg : options.argv) argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);

  for (const auto& kv : options.env) {
    // const_cast is safe: putenv keeps the pointer, and the child execs or
    // exits immediately.
    ::putenv(const_cast<char*>(kv.c_str()));
  }

  if (options.mode == CreateMode::kPaused) {
    if (::ptrace(PTRACE_TRACEME, 0, nullptr, nullptr) != 0) fail(errno);
  } else if (options.mode == CreateMode::kPausedBeforeExec) {
    ::kill(::getpid(), SIGSTOP);  // stop here; exec happens on SIGCONT
  }

  ::execvp(argv[0], argv.data());
  fail(errno);
  _exit(127);  // unreachable; satisfies [[noreturn]] (fail is a lambda)
}

}  // namespace

PosixProcessBackend::~PosixProcessBackend() {
  // Last-resort cleanup: kill and reap everything still alive so tests and
  // daemons never leak stopped children.
  LockGuard lock(mutex_);
  for (auto& [pid, managed] : managed_) {
    if (!is_terminal(managed.info.state)) {
      ::kill(static_cast<pid_t>(pid), SIGKILL);
      ::kill(static_cast<pid_t>(pid), SIGCONT);  // SIGKILL needs the process runnable
    }
    if (!managed.reaped) {
      int status = 0;
      ::waitpid(static_cast<pid_t>(pid), &status, 0);
    }
  }
}

Result<Pid> PosixProcessBackend::create_process(const CreateOptions& options) {
  if (options.argv.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "argv must not be empty");
  }

  int err_pipe[2] = {-1, -1};
  if (::pipe2(err_pipe, O_CLOEXEC) != 0) {
    return errno_status(ErrorCode::kInternal, "pipe2");
  }

  pid_t child = ::fork();
  if (child < 0) {
    ::close(err_pipe[0]);
    ::close(err_pipe[1]);
    return errno_status(ErrorCode::kResourceExhausted, "fork");
  }
  if (child == 0) {
    ::close(err_pipe[0]);
    child_exec(options, err_pipe[1]);  // never returns
  }
  ::close(err_pipe[1]);

  // For kPaused we must observe the exec-stop before reading the error
  // pipe: a successful exec closes the pipe (CLOEXEC) and stops the child.
  ProcessState initial_state = ProcessState::kRunning;
  if (options.mode == CreateMode::kPaused) {
    int status = 0;
    pid_t rc;
    do {
      rc = ::waitpid(child, &status, WUNTRACED);
    } while (rc < 0 && errno == EINTR);
    if (rc == child && WIFSTOPPED(status)) {
      // SIGTRAP = exec-stop under TRACEME. Detach leaving a plain SIGSTOP.
      ::ptrace(PTRACE_DETACH, child, nullptr, reinterpret_cast<void*>(SIGSTOP));
      initial_state = ProcessState::kPausedAtExec;
    } else {
      // Child exited before exec (exec failure path handled below).
      initial_state = ProcessState::kFailed;
    }
  } else if (options.mode == CreateMode::kPausedBeforeExec) {
    int status = 0;
    pid_t rc;
    do {
      rc = ::waitpid(child, &status, WUNTRACED);
    } while (rc < 0 && errno == EINTR);
    initial_state = (rc == child && WIFSTOPPED(status)) ? ProcessState::kPausedAtExec
                                                        : ProcessState::kFailed;
  }

  // Check for exec failure: the child writes errno before _exit(127). In
  // kPausedBeforeExec mode exec has not happened yet (the child is stopped
  // with the pipe still open), so reading would block; exec failures in
  // that mode surface later as exit code 127.
  if (options.mode != CreateMode::kPausedBeforeExec) {
    int child_errno = 0;
    ssize_t nread;
    do {
      nread = ::read(err_pipe[0], &child_errno, sizeof(child_errno));
    } while (nread < 0 && errno == EINTR);
    ::close(err_pipe[0]);

    if (nread == static_cast<ssize_t>(sizeof(child_errno))) {
      int status = 0;
      ::waitpid(child, &status, 0);  // reap the _exit(127)
      return make_error(ErrorCode::kInvalidArgument,
                        "exec failed for '" + options.argv[0] +
                            "': " + std::strerror(child_errno));
    }
  } else {
    ::close(err_pipe[0]);
  }

  LockGuard lock(mutex_);
  Managed managed;
  managed.info.pid = child;
  managed.info.state = initial_state;
  managed.info.executable = options.argv[0];
  managed_[child] = managed;
  kLog.debug("created pid ", child, " state=", process_state_name(initial_state));
  return static_cast<Pid>(child);
}

Result<PosixProcessBackend::Managed*> PosixProcessBackend::find_locked(Pid pid) {
  auto it = managed_.find(pid);
  if (it == managed_.end()) {
    return make_error(ErrorCode::kNotFound, "pid not managed: " + std::to_string(pid));
  }
  return &it->second;
}

Status PosixProcessBackend::attach(Pid pid) {
  LockGuard lock(mutex_);
  auto found = find_locked(pid);
  if (!found.is_ok()) return found.status();
  Managed* managed = found.value();
  drain_status_locked(pid, &pending_events_);
  if (is_terminal(managed->info.state)) {
    return make_error(ErrorCode::kInvalidState, "cannot attach: process is terminal");
  }
  if (managed->info.state == ProcessState::kPausedAtExec ||
      managed->info.state == ProcessState::kStopped) {
    return Status::ok();  // already under control and paused
  }
  if (::kill(static_cast<pid_t>(pid), SIGSTOP) != 0) {
    return errno_status(ErrorCode::kInternal, "kill(SIGSTOP)");
  }
  managed->info.state = ProcessState::kStopped;
  pending_events_.push_back({pid, ProcessState::kStopped, 0, 0});
  return Status::ok();
}

Status PosixProcessBackend::continue_process(Pid pid) {
  LockGuard lock(mutex_);
  auto found = find_locked(pid);
  if (!found.is_ok()) return found.status();
  Managed* managed = found.value();
  drain_status_locked(pid, &pending_events_);
  if (is_terminal(managed->info.state)) {
    return make_error(ErrorCode::kInvalidState, "cannot continue: process is terminal");
  }
  if (::kill(static_cast<pid_t>(pid), SIGCONT) != 0) {
    return errno_status(ErrorCode::kInternal, "kill(SIGCONT)");
  }
  if (managed->info.state != ProcessState::kRunning) {
    managed->info.state = ProcessState::kRunning;
    pending_events_.push_back({pid, ProcessState::kRunning, 0, 0});
  }
  return Status::ok();
}

Status PosixProcessBackend::pause_process(Pid pid) {
  LockGuard lock(mutex_);
  auto found = find_locked(pid);
  if (!found.is_ok()) return found.status();
  Managed* managed = found.value();
  drain_status_locked(pid, &pending_events_);
  if (is_terminal(managed->info.state)) {
    return make_error(ErrorCode::kInvalidState, "cannot pause: process is terminal");
  }
  if (::kill(static_cast<pid_t>(pid), SIGSTOP) != 0) {
    return errno_status(ErrorCode::kInternal, "kill(SIGSTOP)");
  }
  if (managed->info.state == ProcessState::kRunning) {
    managed->info.state = ProcessState::kStopped;
    pending_events_.push_back({pid, ProcessState::kStopped, 0, 0});
  }
  return Status::ok();
}

Status PosixProcessBackend::kill_process(Pid pid) {
  LockGuard lock(mutex_);
  auto found = find_locked(pid);
  if (!found.is_ok()) return found.status();
  Managed* managed = found.value();
  if (is_terminal(managed->info.state)) return Status::ok();
  if (::kill(static_cast<pid_t>(pid), SIGKILL) != 0) {
    return errno_status(ErrorCode::kInternal, "kill(SIGKILL)");
  }
  // A stopped process must be continued for SIGKILL delivery... actually
  // SIGKILL terminates stopped processes directly, but be defensive:
  ::kill(static_cast<pid_t>(pid), SIGCONT);
  return Status::ok();
}

Result<ProcessInfo> PosixProcessBackend::info(Pid pid) {
  LockGuard lock(mutex_);
  auto found = find_locked(pid);
  if (!found.is_ok()) return found.status();
  drain_status_locked(pid, &pending_events_);
  return found.value()->info;
}

void PosixProcessBackend::drain_status_locked(Pid pid,
                                              std::vector<ProcessEvent>* events) {
  auto it = managed_.find(pid);
  if (it == managed_.end() || it->second.reaped) return;
  Managed& managed = it->second;

  while (true) {
    int status = 0;
    pid_t rc = ::waitpid(static_cast<pid_t>(pid), &status,
                         WNOHANG | WUNTRACED | WCONTINUED);
    if (rc == 0) return;  // no pending change
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;  // ECHILD: someone else reaped; keep last known state
    }
    if (WIFEXITED(status)) {
      managed.info.state = ProcessState::kExited;
      managed.info.exit_code = WEXITSTATUS(status);
      managed.reaped = true;
      events->push_back({pid, ProcessState::kExited, managed.info.exit_code, 0});
      return;
    }
    if (WIFSIGNALED(status)) {
      managed.info.state = ProcessState::kSignalled;
      managed.info.term_signal = WTERMSIG(status);
      managed.reaped = true;
      events->push_back({pid, ProcessState::kSignalled, 0, managed.info.term_signal});
      return;
    }
    if (WIFSTOPPED(status) && managed.info.state == ProcessState::kRunning) {
      managed.info.state = ProcessState::kStopped;
      events->push_back({pid, ProcessState::kStopped, 0, 0});
    } else if (WIFCONTINUED(status) &&
               (managed.info.state == ProcessState::kStopped ||
                managed.info.state == ProcessState::kPausedAtExec)) {
      managed.info.state = ProcessState::kRunning;
      events->push_back({pid, ProcessState::kRunning, 0, 0});
    }
  }
}

std::vector<ProcessEvent> PosixProcessBackend::poll_events() {
  LockGuard lock(mutex_);
  for (auto& [pid, managed] : managed_) {
    if (!managed.reaped) drain_status_locked(pid, &pending_events_);
  }
  std::vector<ProcessEvent> out;
  out.swap(pending_events_);
  return out;
}

Result<ProcessInfo> PosixProcessBackend::wait_terminal(Pid pid, int timeout_ms) {
  const Clock& wall = RealClock::instance();
  const bool has_deadline = timeout_ms >= 0;
  const Micros deadline = wall.now_micros() + static_cast<Micros>(timeout_ms) * 1000;
  while (true) {
    {
      LockGuard lock(mutex_);
      auto found = find_locked(pid);
      if (!found.is_ok()) return found.status();
      drain_status_locked(pid, &pending_events_);
      if (is_terminal(found.value()->info.state)) return found.value()->info;
    }
    if (has_deadline && wall.now_micros() >= deadline) {
      return make_error(ErrorCode::kTimeout, "process did not terminate in time");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

std::size_t PosixProcessBackend::managed_count() {
  LockGuard lock(mutex_);
  std::size_t count = 0;
  for (const auto& [pid, managed] : managed_) {
    if (!managed.reaped) ++count;
  }
  return count;
}

}  // namespace tdp::proc
