// posix_backend.hpp - real fork/exec/ptrace/waitpid process control.
//
// The create-paused implementation reproduces the paper's semantics
// exactly: "the process will be stopped just after the execution of the
// exec call" (Section 3.1). Mechanism: the child calls
// ptrace(PTRACE_TRACEME) and execs; the kernel delivers a SIGTRAP stop at
// exec; the parent then PTRACE_DETACHes with SIGSTOP, leaving the child a
// plain stopped process that any entity may later SIGCONT — no lingering
// tracer relationship, so the run-time tool is free to attach with its own
// mechanism (Paradyn would use ptrace/"/proc"; our MiniParadyn goes
// through the RM as Section 2.3 prescribes).
//
// The ablation mode kPausedBeforeExec instead raises SIGSTOP in the child
// before exec: the paper notes tools like Vampir need tracing started
// "before the application starts execution", and the difference between
// the two stop points is observable (libraries not yet loaded) — our tests
// assert it via /proc/<pid>/comm.
#pragma once

#include <map>

#include "proc/backend.hpp"
#include "util/sync.hpp"

namespace tdp::proc {

class PosixProcessBackend final : public ProcessBackend {
 public:
  PosixProcessBackend() = default;
  ~PosixProcessBackend() override;

  Result<Pid> create_process(const CreateOptions& options) override;
  Status attach(Pid pid) override;
  Status continue_process(Pid pid) override;
  Status pause_process(Pid pid) override;
  Status kill_process(Pid pid) override;
  Result<ProcessInfo> info(Pid pid) override;
  std::vector<ProcessEvent> poll_events() override;
  Result<ProcessInfo> wait_terminal(Pid pid, int timeout_ms) override;
  std::size_t managed_count() override;

 private:
  struct Managed {
    ProcessInfo info;
    bool reaped = false;  ///< waitpid has collected the terminal status
  };

  /// Reaps pending waitpid statuses for `pid` without blocking; updates the
  /// registry and appends events. Caller holds mutex_.
  void drain_status_locked(Pid pid, std::vector<ProcessEvent>* events)
      TDP_REQUIRES(mutex_);

  Result<Managed*> find_locked(Pid pid) TDP_REQUIRES(mutex_);

  Mutex mutex_{"PosixBackend::mutex_"};
  std::map<Pid, Managed> managed_ TDP_GUARDED_BY(mutex_);
  std::vector<ProcessEvent> pending_events_ TDP_GUARDED_BY(mutex_);
};

}  // namespace tdp::proc
