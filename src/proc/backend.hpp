// backend.hpp - the process-control interface the RM localizes.
//
// Section 2.3: "the responsibility for controlling an application process
// and for monitoring its status belongs to the RM; process management
// operations are localized and encapsulated in the RM." A ProcessBackend
// is that encapsulation: exactly one backend instance owns each process,
// which "eliminates confusing race conditions — two different processes
// will never attempt conflicting control operations."
//
// Section 3 lists the OS interfaces this hides (fork/exec, /proc, ptrace on
// Unix; CreateProcess/WaitForSingleObject on Windows); the guideline "TDP
// provides its own set of interfaces that are OS neutral" is why everything
// above this header is backend-agnostic.
#pragma once

#include "proc/process.hpp"

namespace tdp::proc {

class ProcessBackend {
 public:
  virtual ~ProcessBackend() = default;

  ProcessBackend() = default;
  ProcessBackend(const ProcessBackend&) = delete;
  ProcessBackend& operator=(const ProcessBackend&) = delete;

  /// Launches a process per `options.mode` (Section 3.1's
  /// tdp_create_process with run/paused option). Returns its Pid.
  virtual Result<Pid> create_process(const CreateOptions& options) = 0;

  /// Takes control of an already-managed process and leaves it stopped
  /// (the tool-attach steps of Section 2.2: obtain control, pause).
  /// No-op when the process is already paused/stopped.
  virtual Status attach(Pid pid) = 0;

  /// tdp_continue_process: resumes a paused/stopped process.
  virtual Status continue_process(Pid pid) = 0;

  /// Pauses a running process (tool operation routed through the RM).
  virtual Status pause_process(Pid pid) = 0;

  /// Forcibly terminates the process.
  virtual Status kill_process(Pid pid) = 0;

  /// Current snapshot; kNotFound for unmanaged pids.
  virtual Result<ProcessInfo> info(Pid pid) = 0;

  /// Collects state changes since the last call (stop/continue observations
  /// and terminal events). Non-blocking.
  virtual std::vector<ProcessEvent> poll_events() = 0;

  /// Blocks until `pid` reaches a terminal state or `timeout_ms` passes
  /// (<0 = forever). Returns the final info.
  virtual Result<ProcessInfo> wait_terminal(Pid pid, int timeout_ms) = 0;

  /// Number of processes currently managed and not yet reaped.
  virtual std::size_t managed_count() = 0;

  // --- checkpointing (Condor's standard-universe capability; Section 4.1
  // mentions the pool "including checkpointing and remote file access") ---

  /// Captures an opaque, transferable checkpoint of a live process.
  /// Backends without checkpoint support return kUnsupported (the POSIX
  /// backend does: real process checkpointing needs Condor's libckpt).
  virtual Result<std::string> checkpoint(Pid pid) {
    (void)pid;
    return make_error(ErrorCode::kUnsupported,
                      "this backend cannot checkpoint processes");
  }

  /// Recreates a process from a checkpoint, resuming where it left off.
  /// The new process starts paused-at-exec so a tool can re-attach first.
  virtual Result<Pid> restore(const std::string& checkpoint,
                              const CreateOptions& options) {
    (void)checkpoint;
    (void)options;
    return make_error(ErrorCode::kUnsupported,
                      "this backend cannot restore checkpoints");
  }
};

}  // namespace tdp::proc
