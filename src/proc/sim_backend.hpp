// sim_backend.hpp - deterministic simulated process control.
//
// The virtual-cluster benches (Figure 4 pipeline, MPI-universe scaling)
// need thousands of "processes" whose lifecycle is driven by virtual time
// on a single core. SimProcessBackend implements the same ProcessBackend
// contract as the POSIX backend but advances processes only when step() is
// called: each running process consumes one work unit per step and exits
// naturally when its budget (CreateOptions::sim_work_units) is spent.
//
// Unlike the POSIX backend, every transition is checked against
// valid_transition, so the simulator doubles as an executable model of the
// TDP process state machine — property tests drive random operation
// sequences against it and assert the model is never violated.
#pragma once

#include <map>

#include "proc/backend.hpp"
#include "util/sync.hpp"

namespace tdp::proc {

class SimProcessBackend final : public ProcessBackend {
 public:
  SimProcessBackend() = default;

  Result<Pid> create_process(const CreateOptions& options) override;
  Status attach(Pid pid) override;
  Status continue_process(Pid pid) override;
  Status pause_process(Pid pid) override;
  Status kill_process(Pid pid) override;
  Result<ProcessInfo> info(Pid pid) override;
  std::vector<ProcessEvent> poll_events() override;
  Result<ProcessInfo> wait_terminal(Pid pid, int timeout_ms) override;
  std::size_t managed_count() override;

  /// Advances virtual time: every kRunning process consumes `units` work
  /// units; those reaching zero exit with their configured code. Returns
  /// the number of processes that terminated during this step.
  int step(std::int64_t units = 1);

  /// Total work units executed across all processes (a virtual "CPU time"
  /// counter used by benches).
  [[nodiscard]] std::int64_t total_work_done() const;

  /// Checkpoint format: "exe=<name> remaining=<units> exit=<code>".
  Result<std::string> checkpoint(Pid pid) override;
  Result<Pid> restore(const std::string& checkpoint,
                      const CreateOptions& options) override;

  /// Remaining work units of a live process (diagnostics/tests).
  [[nodiscard]] Result<std::int64_t> remaining_work(Pid pid) const;

 private:
  struct SimProcess {
    ProcessInfo info;
    std::int64_t remaining_work = 0;
  };

  Status transition_locked(SimProcess& process, ProcessState to)
      TDP_REQUIRES(mutex_);
  Result<SimProcess*> find_locked(Pid pid) TDP_REQUIRES(mutex_);

  mutable Mutex mutex_{"SimBackend::mutex_"};
  std::map<Pid, SimProcess> managed_ TDP_GUARDED_BY(mutex_);
  std::vector<ProcessEvent> pending_events_ TDP_GUARDED_BY(mutex_);
  Pid next_pid_ TDP_GUARDED_BY(mutex_) = 1000;
  std::int64_t work_done_ TDP_GUARDED_BY(mutex_) = 0;
};

}  // namespace tdp::proc
