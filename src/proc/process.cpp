#include "proc/process.hpp"

namespace tdp::proc {

const char* process_state_name(ProcessState state) noexcept {
  switch (state) {
    case ProcessState::kCreated: return "created";
    case ProcessState::kPausedAtExec: return "paused_at_exec";
    case ProcessState::kRunning: return "running";
    case ProcessState::kStopped: return "stopped";
    case ProcessState::kExited: return "exited";
    case ProcessState::kSignalled: return "signalled";
    case ProcessState::kFailed: return "failed";
  }
  return "?";
}

bool valid_transition(ProcessState from, ProcessState to) noexcept {
  if (from == to) return false;
  switch (from) {
    case ProcessState::kCreated:
      // Launch outcome: paused (either flavor), straight to running, or a
      // failed exec.
      return to == ProcessState::kPausedAtExec || to == ProcessState::kRunning ||
             to == ProcessState::kFailed;
    case ProcessState::kPausedAtExec:
      // tdp_continue_process, a kill while paused, or removal.
      return to == ProcessState::kRunning || to == ProcessState::kSignalled ||
             to == ProcessState::kExited;
    case ProcessState::kRunning:
      return to == ProcessState::kStopped || to == ProcessState::kExited ||
             to == ProcessState::kSignalled;
    case ProcessState::kStopped:
      return to == ProcessState::kRunning || to == ProcessState::kExited ||
             to == ProcessState::kSignalled;
    case ProcessState::kExited:
    case ProcessState::kSignalled:
    case ProcessState::kFailed:
      return false;  // terminal
  }
  return false;
}

}  // namespace tdp::proc
