#include "proc/sim_backend.hpp"

#include <chrono>
#include <thread>

namespace tdp::proc {

Result<Pid> SimProcessBackend::create_process(const CreateOptions& options) {
  if (options.argv.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "argv must not be empty");
  }
  if (options.sim_work_units < 0) {
    return make_error(ErrorCode::kInvalidArgument, "sim_work_units must be >= 0");
  }
  LockGuard lock(mutex_);
  SimProcess process;
  process.info.pid = next_pid_++;
  process.info.executable = options.argv[0];
  process.remaining_work = options.sim_work_units;
  process.info.exit_code = options.sim_exit_code;
  process.info.state = ProcessState::kCreated;

  // Launch outcome mirrors the POSIX backend: paused modes stop at "exec",
  // run mode goes straight to running.
  ProcessState launched = options.mode == CreateMode::kRun
                              ? ProcessState::kRunning
                              : ProcessState::kPausedAtExec;
  Status status = transition_locked(process, launched);
  if (!status.is_ok()) return status;
  Pid pid = process.info.pid;
  managed_[pid] = std::move(process);
  return pid;
}

Status SimProcessBackend::transition_locked(SimProcess& process, ProcessState to) {
  if (!valid_transition(process.info.state, to)) {
    return make_error(ErrorCode::kInvalidState,
                      std::string("illegal transition ") +
                          process_state_name(process.info.state) + " -> " +
                          process_state_name(to));
  }
  process.info.state = to;
  ProcessEvent event{process.info.pid, to, 0, 0};
  if (to == ProcessState::kExited) event.exit_code = process.info.exit_code;
  if (to == ProcessState::kSignalled) event.term_signal = process.info.term_signal;
  pending_events_.push_back(event);
  return Status::ok();
}

Result<SimProcessBackend::SimProcess*> SimProcessBackend::find_locked(Pid pid) {
  auto it = managed_.find(pid);
  if (it == managed_.end()) {
    return make_error(ErrorCode::kNotFound, "pid not managed: " + std::to_string(pid));
  }
  return &it->second;
}

Status SimProcessBackend::attach(Pid pid) {
  LockGuard lock(mutex_);
  auto found = find_locked(pid);
  if (!found.is_ok()) return found.status();
  SimProcess* process = found.value();
  if (process->info.state == ProcessState::kPausedAtExec ||
      process->info.state == ProcessState::kStopped) {
    return Status::ok();
  }
  if (process->info.state != ProcessState::kRunning) {
    return make_error(ErrorCode::kInvalidState, "cannot attach: process not running");
  }
  return transition_locked(*process, ProcessState::kStopped);
}

Status SimProcessBackend::continue_process(Pid pid) {
  LockGuard lock(mutex_);
  auto found = find_locked(pid);
  if (!found.is_ok()) return found.status();
  SimProcess* process = found.value();
  if (process->info.state == ProcessState::kRunning) return Status::ok();
  return transition_locked(*process, ProcessState::kRunning);
}

Status SimProcessBackend::pause_process(Pid pid) {
  LockGuard lock(mutex_);
  auto found = find_locked(pid);
  if (!found.is_ok()) return found.status();
  SimProcess* process = found.value();
  if (process->info.state == ProcessState::kStopped) return Status::ok();
  return transition_locked(*process, ProcessState::kStopped);
}

Status SimProcessBackend::kill_process(Pid pid) {
  LockGuard lock(mutex_);
  auto found = find_locked(pid);
  if (!found.is_ok()) return found.status();
  SimProcess* process = found.value();
  if (is_terminal(process->info.state)) return Status::ok();
  process->info.term_signal = 9;  // SIGKILL analogue
  return transition_locked(*process, ProcessState::kSignalled);
}

Result<ProcessInfo> SimProcessBackend::info(Pid pid) {
  LockGuard lock(mutex_);
  auto found = find_locked(pid);
  if (!found.is_ok()) return found.status();
  return found.value()->info;
}

std::vector<ProcessEvent> SimProcessBackend::poll_events() {
  LockGuard lock(mutex_);
  std::vector<ProcessEvent> out;
  out.swap(pending_events_);
  return out;
}

Result<ProcessInfo> SimProcessBackend::wait_terminal(Pid pid, int timeout_ms) {
  // The simulated world only advances via step(); waiting wall-clock time
  // cannot change anything, so return immediately unless already terminal.
  LockGuard lock(mutex_);
  auto found = find_locked(pid);
  if (!found.is_ok()) return found.status();
  if (is_terminal(found.value()->info.state)) return found.value()->info;
  (void)timeout_ms;
  return make_error(ErrorCode::kTimeout,
                    "simulated process still live; drive step() to advance time");
}

std::size_t SimProcessBackend::managed_count() {
  LockGuard lock(mutex_);
  std::size_t count = 0;
  for (const auto& [pid, process] : managed_) {
    if (!is_terminal(process.info.state)) ++count;
  }
  return count;
}

int SimProcessBackend::step(std::int64_t units) {
  LockGuard lock(mutex_);
  int terminated = 0;
  for (auto& [pid, process] : managed_) {
    if (process.info.state != ProcessState::kRunning) continue;
    const std::int64_t consumed = std::min(units, process.remaining_work);
    process.remaining_work -= consumed;
    work_done_ += consumed;
    if (process.remaining_work <= 0) {
      transition_locked(process, ProcessState::kExited);
      ++terminated;
    }
  }
  return terminated;
}

Result<std::string> SimProcessBackend::checkpoint(Pid pid) {
  LockGuard lock(mutex_);
  auto it = managed_.find(pid);
  if (it == managed_.end()) {
    return make_error(ErrorCode::kNotFound, "pid not managed: " + std::to_string(pid));
  }
  const SimProcess& process = it->second;
  if (is_terminal(process.info.state)) {
    return make_error(ErrorCode::kInvalidState, "cannot checkpoint a dead process");
  }
  return "exe=" + process.info.executable +
         " remaining=" + std::to_string(process.remaining_work) +
         " exit=" + std::to_string(process.info.exit_code);
}

Result<Pid> SimProcessBackend::restore(const std::string& checkpoint,
                                       const CreateOptions& options) {
  std::int64_t remaining = -1;
  int exit_code = 0;
  std::string executable = options.argv.empty() ? "restored" : options.argv[0];
  for (const std::string& part : checkpoint.empty()
                                     ? std::vector<std::string>{}
                                     : [&] {
                                         std::vector<std::string> parts;
                                         std::string current;
                                         for (char c : checkpoint) {
                                           if (c == ' ') {
                                             parts.push_back(current);
                                             current.clear();
                                           } else {
                                             current += c;
                                           }
                                         }
                                         parts.push_back(current);
                                         return parts;
                                       }()) {
    if (part.rfind("remaining=", 0) == 0) remaining = std::stoll(part.substr(10));
    if (part.rfind("exit=", 0) == 0) exit_code = std::stoi(part.substr(5));
    if (part.rfind("exe=", 0) == 0) executable = part.substr(4);
  }
  if (remaining < 0) {
    return make_error(ErrorCode::kInvalidArgument, "malformed checkpoint");
  }
  CreateOptions restored = options;
  if (restored.argv.empty()) restored.argv = {executable};
  restored.mode = CreateMode::kPaused;  // tools re-attach before it resumes
  restored.sim_work_units = remaining;
  restored.sim_exit_code = exit_code;
  return create_process(restored);
}

Result<std::int64_t> SimProcessBackend::remaining_work(Pid pid) const {
  LockGuard lock(mutex_);
  auto it = managed_.find(pid);
  if (it == managed_.end()) {
    return make_error(ErrorCode::kNotFound, "pid not managed: " + std::to_string(pid));
  }
  return it->second.remaining_work;
}

std::int64_t SimProcessBackend::total_work_done() const {
  LockGuard lock(mutex_);
  return work_done_;
}

}  // namespace tdp::proc
