// process.hpp - process model shared by all backends.
//
// Sections 2.2/3.1 of the paper enumerate the creation schemes a run-time
// tool needs: (1) create-and-run, (2) create-paused-then-initialize-then
// -run, (3) attach to a running process. The state machine below encodes
// those plus the control operations of Section 2.3 (pause/continue under
// the RM's single-point responsibility) and the terminal states the RM
// must observe and report.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace tdp::proc {

/// Backend-independent process identifier. For the POSIX backend this is
/// the OS pid; for the simulated backend it is a synthetic id.
using Pid = std::int64_t;

enum class ProcessState : std::uint8_t {
  kCreated = 0,   ///< object exists, not yet launched (sim backend only)
  kPausedAtExec,  ///< stopped "just after the execution of the exec call"
  kRunning,
  kStopped,       ///< paused mid-execution by the tool/RM (SIGSTOP)
  kExited,        ///< terminated normally; exit_code valid
  kSignalled,     ///< terminated by a signal; term_signal valid
  kFailed,        ///< could not be launched (exec failure)
};

const char* process_state_name(ProcessState state) noexcept;

/// True when `from` -> `to` is a legal transition of the TDP process model.
/// Used by the simulated backend to enforce the model and by property tests
/// to check the POSIX backend never reports an illegal move.
bool valid_transition(ProcessState from, ProcessState to) noexcept;

/// True for states from which the process can never change again.
inline bool is_terminal(ProcessState state) noexcept {
  return state == ProcessState::kExited || state == ProcessState::kSignalled ||
         state == ProcessState::kFailed;
}

/// How tdp_create_process should leave the new process (Section 3.1).
enum class CreateMode : std::uint8_t {
  kRun = 0,          ///< scheme 1: create and start running
  kPaused,           ///< scheme 2: stopped just after exec (ptrace-assisted)
  kPausedBeforeExec, ///< ablation variant: SIGSTOP raised before exec
};

/// Launch request for ProcessBackend::create_process.
struct CreateOptions {
  std::vector<std::string> argv;  ///< argv[0] is the executable path
  std::vector<std::string> env;   ///< extra KEY=VALUE entries; inherits rest
  std::string working_dir;        ///< empty = inherit
  std::string stdin_path;         ///< empty = inherit (RM-managed stdio)
  std::string stdout_path;
  std::string stderr_path;
  CreateMode mode = CreateMode::kRun;
  /// Simulated backend only: virtual-time units of work until natural exit.
  std::int64_t sim_work_units = 1;
  /// Simulated backend only: exit code to report at natural exit.
  int sim_exit_code = 0;
};

/// A state-change observation, delivered by ProcessBackend::poll_events.
/// This is the raw material for Section 2.3's status monitoring: the RM
/// consumes these and republishes them through the attribute space.
struct ProcessEvent {
  Pid pid = 0;
  ProcessState state = ProcessState::kRunning;
  int exit_code = 0;    ///< valid when state == kExited
  int term_signal = 0;  ///< valid when state == kSignalled
};

/// Snapshot of one managed process.
struct ProcessInfo {
  Pid pid = 0;
  ProcessState state = ProcessState::kCreated;
  int exit_code = 0;
  int term_signal = 0;
  std::string executable;
};

}  // namespace tdp::proc
