#include "attrspace/attr_store.hpp"

#include <algorithm>

#include "util/telemetry.hpp"

namespace tdp::attr {

namespace {

// Shard-op counters. Registered once, then a relaxed add per op - the
// registry reference is stable for the process lifetime.
telemetry::Counter& puts_counter() {
  static telemetry::Counter& c =
      telemetry::Registry::instance().counter("attrstore.puts");
  return c;
}

telemetry::Counter& gets_counter() {
  static telemetry::Counter& c =
      telemetry::Registry::instance().counter("attrstore.gets");
  return c;
}

telemetry::Counter& watchers_fired_counter() {
  static telemetry::Counter& c =
      telemetry::Registry::instance().counter("attrstore.watchers_fired");
  return c;
}

/// Adapts a plain callback to the traced signature (trace dropped).
TracedCallback drop_trace(AttrCallback callback) {
  return [cb = std::move(callback)](const std::string& context,
                                    const std::string& attribute,
                                    const std::string& value,
                                    const std::string& /*trace*/) {
    cb(context, attribute, value);
  };
}

}  // namespace

int AttributeStore::open_context(std::string_view context) {
  Shard& shard = shard_for(context);
  WriteLock lock(shard.mutex);
  auto ctx_it = shard.contexts.find(context);
  if (ctx_it == shard.contexts.end()) {
    shard.contexts.emplace(std::string(context),
                           std::map<std::string, Entry, std::less<>>{});
  }
  auto rc_it = shard.refcounts.find(context);
  if (rc_it == shard.refcounts.end()) {
    rc_it = shard.refcounts.emplace(std::string(context), 0).first;
  }
  return ++rc_it->second;
}

Result<int> AttributeStore::close_context(std::string_view context) {
  Shard& shard = shard_for(context);
  WriteLock lock(shard.mutex);
  auto it = shard.refcounts.find(context);
  if (it == shard.refcounts.end() || it->second <= 0) {
    return make_error(ErrorCode::kNotFound,
                      "context has no participants: " + std::string(context));
  }
  int remaining = --it->second;
  if (remaining == 0) {
    shard.refcounts.erase(it);
    auto ctx_it = shard.contexts.find(context);
    if (ctx_it != shard.contexts.end()) shard.contexts.erase(ctx_it);
    // Waiters on a destroyed context can never fire; drop them.
    shard.watchers.erase(
        std::remove_if(shard.watchers.begin(), shard.watchers.end(),
                       [&](const Watcher& w) { return w.context == context; }),
        shard.watchers.end());
  }
  return remaining;
}

bool AttributeStore::context_exists(std::string_view context) const {
  const Shard& shard = shard_for(context);
  SharedLock lock(shard.mutex);
  return shard.contexts.find(context) != shard.contexts.end();
}

int AttributeStore::context_refcount(std::string_view context) const {
  const Shard& shard = shard_for(context);
  SharedLock lock(shard.mutex);
  auto it = shard.refcounts.find(context);
  return it == shard.refcounts.end() ? 0 : it->second;
}

void AttributeStore::match_watchers_locked(Shard& shard, std::string_view context,
                                           std::string_view attribute,
                                           std::vector<TracedCallback>& to_fire) {
  shard.mutex.assert_held();
  for (auto it = shard.watchers.begin(); it != shard.watchers.end();) {
    if (it->context == context && pattern_matches(it->pattern, attribute)) {
      to_fire.push_back(it->callback);
      if (it->one_shot) {
        it = shard.watchers.erase(it);
        continue;
      }
    }
    ++it;
  }
}

std::uint64_t AttributeStore::add_watcher_locked(Shard& shard,
                                                 std::string_view context,
                                                 std::string_view pattern,
                                                 bool one_shot,
                                                 TracedCallback callback) {
  shard.mutex.assert_held();
  std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  shard.watchers.push_back(
      {id, std::string(context), std::string(pattern), one_shot, std::move(callback)});
  return id;
}

Status AttributeStore::put(std::string_view context, std::string_view attribute,
                           std::string value, std::string trace) {
  puts_counter().inc();
  Shard& shard = shard_for(context);
  std::vector<TracedCallback> to_fire;
  std::string fired_value;
  {
    WriteLock lock(shard.mutex);
    auto ctx_it = shard.contexts.find(context);
    if (ctx_it == shard.contexts.end()) {
      // Implicit context creation on put.
      ctx_it = shard.contexts
                   .emplace(std::string(context),
                            std::map<std::string, Entry, std::less<>>{})
                   .first;
    }
    auto attr_it = ctx_it->second.find(attribute);
    if (attr_it == ctx_it->second.end()) {
      attr_it = ctx_it->second
                    .emplace(std::string(attribute),
                             Entry{std::move(value), trace})
                    .first;
    } else {
      attr_it->second.value = std::move(value);
      attr_it->second.trace = trace;
    }
    fired_value = attr_it->second.value;

    match_watchers_locked(shard, context, attribute, to_fire);
  }
  if (!to_fire.empty()) {
    // PR 1 invariant, asserted: watcher callbacks fire outside the shard
    // lock, so a callback that re-enters the store cannot self-deadlock.
    shard.mutex.assert_not_held();
    watchers_fired_counter().add(to_fire.size());
    const std::string ctx_name(context);
    const std::string attr_name(attribute);
    for (auto& callback : to_fire) {
      callback(ctx_name, attr_name, fired_value, trace);
    }
  }
  maybe_journal_put(context, attribute, fired_value, trace);
  return Status::ok();
}

Result<std::string> AttributeStore::get(std::string_view context,
                                        std::string_view attribute,
                                        std::string* trace_out) const {
  gets_counter().inc();
  const Shard& shard = shard_for(context);
  SharedLock lock(shard.mutex);
  auto ctx_it = shard.contexts.find(context);
  if (ctx_it == shard.contexts.end()) {
    return make_error(ErrorCode::kNotFound, "no such context: " + std::string(context));
  }
  auto attr_it = ctx_it->second.find(attribute);
  if (attr_it == ctx_it->second.end()) {
    return make_error(ErrorCode::kNotFound,
                      "attribute not in shared space: " + std::string(attribute));
  }
  if (trace_out != nullptr) *trace_out = attr_it->second.trace;
  return attr_it->second.value;
}

Status AttributeStore::remove(std::string_view context, std::string_view attribute) {
  Shard& shard = shard_for(context);
  WriteLock lock(shard.mutex);
  auto ctx_it = shard.contexts.find(context);
  if (ctx_it == shard.contexts.end()) {
    return make_error(ErrorCode::kNotFound,
                      "attribute not in shared space: " + std::string(attribute));
  }
  auto attr_it = ctx_it->second.find(attribute);
  if (attr_it == ctx_it->second.end()) {
    return make_error(ErrorCode::kNotFound,
                      "attribute not in shared space: " + std::string(attribute));
  }
  ctx_it->second.erase(attr_it);
  return Status::ok();
}

std::vector<std::pair<std::string, std::string>> AttributeStore::list(
    std::string_view context) const {
  const Shard& shard = shard_for(context);
  SharedLock lock(shard.mutex);
  std::vector<std::pair<std::string, std::string>> out;
  auto ctx_it = shard.contexts.find(context);
  if (ctx_it != shard.contexts.end()) {
    out.reserve(ctx_it->second.size());
    for (const auto& [name, entry] : ctx_it->second) {
      out.emplace_back(name, entry.value);
    }
  }
  return out;
}

std::size_t AttributeStore::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    SharedLock lock(shard.mutex);
    for (const auto& [name, space] : shard.contexts) total += space.size();
  }
  return total;
}

std::uint64_t AttributeStore::get_or_wait(std::string_view context,
                                          std::string_view attribute,
                                          AttrCallback callback) {
  return get_or_wait_traced(context, attribute, drop_trace(std::move(callback)));
}

std::uint64_t AttributeStore::get_or_wait_traced(std::string_view context,
                                                 std::string_view attribute,
                                                 TracedCallback callback) {
  Shard& shard = shard_for(context);
  std::string value;
  std::string trace;
  {
    WriteLock lock(shard.mutex);
    auto ctx_it = shard.contexts.find(context);
    if (ctx_it != shard.contexts.end()) {
      auto attr_it = ctx_it->second.find(attribute);
      if (attr_it != ctx_it->second.end()) {
        value = attr_it->second.value;
        trace = attr_it->second.trace;
        // Fall through to fire outside the lock.
      } else {
        return add_watcher_locked(shard, context, attribute, /*one_shot=*/true,
                                  std::move(callback));
      }
    } else {
      return add_watcher_locked(shard, context, attribute, /*one_shot=*/true,
                                std::move(callback));
    }
  }
  // Same invariant as put(): immediate-hit callbacks run outside the lock.
  shard.mutex.assert_not_held();
  callback(std::string(context), std::string(attribute), value, trace);
  return 0;
}

std::uint64_t AttributeStore::subscribe(std::string_view context,
                                        std::string_view pattern,
                                        AttrCallback callback) {
  return subscribe_traced(context, pattern, drop_trace(std::move(callback)));
}

std::uint64_t AttributeStore::subscribe_traced(std::string_view context,
                                               std::string_view pattern,
                                               TracedCallback callback) {
  Shard& shard = shard_for(context);
  WriteLock lock(shard.mutex);
  return add_watcher_locked(shard, context, pattern, /*one_shot=*/false,
                            std::move(callback));
}

void AttributeStore::unsubscribe(std::uint64_t id) {
  if (id == 0) return;
  // Ids do not encode their shard; scan all of them (rare operation).
  for (Shard& shard : shards_) {
    WriteLock lock(shard.mutex);
    auto it = std::remove_if(shard.watchers.begin(), shard.watchers.end(),
                             [id](const Watcher& w) { return w.id == id; });
    if (it != shard.watchers.end()) {
      shard.watchers.erase(it, shard.watchers.end());
      return;
    }
  }
}

std::size_t AttributeStore::watcher_count() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    SharedLock lock(shard.mutex);
    total += shard.watchers.size();
  }
  return total;
}

bool AttributeStore::pattern_matches(const std::string& pattern,
                                     std::string_view attribute) {
  if (!pattern.empty() && pattern.back() == '*') {
    std::string_view prefix(pattern.data(), pattern.size() - 1);
    return attribute.substr(0, prefix.size()) == prefix;
  }
  return pattern == attribute;
}

// ---------------------------------------------------------------------
// Durability (PR 5)
// ---------------------------------------------------------------------

void AttributeStore::configure_durability(journal::Journal* journal,
                                          std::vector<std::string> prefixes) {
  LockGuard lock(durability_mutex_);
  durable_journal_ = journal;
  durable_prefixes_ = std::move(prefixes);
}

void AttributeStore::maybe_journal_put(std::string_view context,
                                       std::string_view attribute,
                                       const std::string& value,
                                       const std::string& trace) {
  LockGuard lock(durability_mutex_);
  if (durable_journal_ == nullptr) return;
  const bool durable = std::any_of(
      durable_prefixes_.begin(), durable_prefixes_.end(),
      [&](const std::string& prefix) {
        return attribute.substr(0, prefix.size()) == prefix;
      });
  if (!durable) return;
  Status appended = durable_journal_->append(
      {"attr",
       {std::string(context), std::string(attribute), value, trace}});
  (void)appended;  // a failed append degrades durability, not service
}

Status AttributeStore::recover_durable() {
  journal::Journal* journal = nullptr;
  {
    // Detach while replaying so the puts below do not re-journal what the
    // journal itself just said.
    LockGuard lock(durability_mutex_);
    journal = durable_journal_;
    durable_journal_ = nullptr;
  }
  if (journal == nullptr) {
    return make_error(ErrorCode::kInvalidState, "durability not configured");
  }
  journal::ReplayStats replay_stats;
  auto replayed = journal->replay(&replay_stats);
  if (!replayed.is_ok()) {
    LockGuard lock(durability_mutex_);
    durable_journal_ = journal;
    return replayed.status();
  }
  if (replay_stats.resyncs > 0 || replay_stats.torn_tail) {
    telemetry::Registry::instance()
        .counter("attr.durability_resyncs")
        .add(replay_stats.resyncs + (replay_stats.torn_tail ? 1 : 0));
  }
  // Last record per (context, attribute) wins; puts are applied in order
  // so watchers observe the same final state a live daemon produced.
  std::vector<journal::Record> survivors;
  std::map<std::string, std::size_t> last_index;
  for (const journal::Record& record : replayed.value()) {
    if (record.type != "attr" || record.fields.size() < 4) continue;
    put(record.fields[0], record.fields[1], record.fields[2], record.fields[3]);
    const std::string key = record.fields[0] + "\x1f" + record.fields[1];
    auto it = last_index.find(key);
    if (it == last_index.end()) {
      last_index[key] = survivors.size();
      survivors.push_back(record);
    } else {
      survivors[it->second] = record;
    }
  }
  Status compacted = journal->write_snapshot(survivors);
  {
    LockGuard lock(durability_mutex_);
    durable_journal_ = journal;
  }
  return compacted;
}

}  // namespace tdp::attr
