#include "attrspace/attr_store.hpp"

#include <algorithm>

namespace tdp::attr {

int AttributeStore::open_context(const std::string& context) {
  std::lock_guard<std::mutex> lock(mutex_);
  contexts_.try_emplace(context);
  return ++refcounts_[context];
}

Result<int> AttributeStore::close_context(const std::string& context) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = refcounts_.find(context);
  if (it == refcounts_.end() || it->second <= 0) {
    return make_error(ErrorCode::kNotFound, "context has no participants: " + context);
  }
  int remaining = --it->second;
  if (remaining == 0) {
    refcounts_.erase(it);
    contexts_.erase(context);
    // Waiters on a destroyed context can never fire; drop them.
    watchers_.erase(std::remove_if(watchers_.begin(), watchers_.end(),
                                   [&](const Watcher& w) { return w.context == context; }),
                    watchers_.end());
  }
  return remaining;
}

bool AttributeStore::context_exists(const std::string& context) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return contexts_.find(context) != contexts_.end();
}

int AttributeStore::context_refcount(const std::string& context) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = refcounts_.find(context);
  return it == refcounts_.end() ? 0 : it->second;
}

Status AttributeStore::put(const std::string& context, const std::string& attribute,
                           std::string value) {
  std::vector<AttrCallback> to_fire;
  std::string fired_value;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& space = contexts_[context];  // implicit context creation on put
    space[attribute] = std::move(value);
    fired_value = space[attribute];

    for (auto it = watchers_.begin(); it != watchers_.end();) {
      if (it->context == context && pattern_matches(it->pattern, attribute)) {
        to_fire.push_back(it->callback);
        if (it->one_shot) {
          it = watchers_.erase(it);
          continue;
        }
      }
      ++it;
    }
  }
  for (auto& callback : to_fire) callback(context, attribute, fired_value);
  return Status::ok();
}

Result<std::string> AttributeStore::get(const std::string& context,
                                        const std::string& attribute) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto ctx_it = contexts_.find(context);
  if (ctx_it == contexts_.end()) {
    return make_error(ErrorCode::kNotFound, "no such context: " + context);
  }
  auto attr_it = ctx_it->second.find(attribute);
  if (attr_it == ctx_it->second.end()) {
    return make_error(ErrorCode::kNotFound,
                      "attribute not in shared space: " + attribute);
  }
  return attr_it->second;
}

Status AttributeStore::remove(const std::string& context, const std::string& attribute) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto ctx_it = contexts_.find(context);
  if (ctx_it == contexts_.end() || ctx_it->second.erase(attribute) == 0) {
    return make_error(ErrorCode::kNotFound, "attribute not in shared space: " + attribute);
  }
  return Status::ok();
}

std::vector<std::pair<std::string, std::string>> AttributeStore::list(
    const std::string& context) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::string>> out;
  auto ctx_it = contexts_.find(context);
  if (ctx_it != contexts_.end()) {
    out.assign(ctx_it->second.begin(), ctx_it->second.end());
  }
  return out;
}

std::size_t AttributeStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [name, space] : contexts_) total += space.size();
  return total;
}

std::uint64_t AttributeStore::get_or_wait(const std::string& context,
                                          const std::string& attribute,
                                          AttrCallback callback) {
  std::string value;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto ctx_it = contexts_.find(context);
    if (ctx_it != contexts_.end()) {
      auto attr_it = ctx_it->second.find(attribute);
      if (attr_it != ctx_it->second.end()) {
        value = attr_it->second;
        // Fall through to fire outside the lock.
      } else {
        std::uint64_t id = next_id_++;
        watchers_.push_back({id, context, attribute, /*one_shot=*/true,
                             std::move(callback)});
        return id;
      }
    } else {
      std::uint64_t id = next_id_++;
      watchers_.push_back({id, context, attribute, /*one_shot=*/true,
                           std::move(callback)});
      return id;
    }
  }
  callback(context, attribute, value);
  return 0;
}

std::uint64_t AttributeStore::subscribe(const std::string& context,
                                        const std::string& pattern,
                                        AttrCallback callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t id = next_id_++;
  watchers_.push_back({id, context, pattern, /*one_shot=*/false, std::move(callback)});
  return id;
}

void AttributeStore::unsubscribe(std::uint64_t id) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  watchers_.erase(std::remove_if(watchers_.begin(), watchers_.end(),
                                 [id](const Watcher& w) { return w.id == id; }),
                  watchers_.end());
}

std::size_t AttributeStore::watcher_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return watchers_.size();
}

bool AttributeStore::pattern_matches(const std::string& pattern,
                                     std::string_view attribute) {
  if (!pattern.empty() && pattern.back() == '*') {
    std::string_view prefix(pattern.data(), pattern.size() - 1);
    return attribute.substr(0, prefix.size()) == prefix;
  }
  return pattern == attribute;
}

}  // namespace tdp::attr
