// telemetry_export.hpp - self-hosted telemetry export: daemons publish
// their metrics registry into the attribute space itself, under
//
//   tdp.telemetry.<role>.<host>.<metric>[.count|.sum|.p50|.p95|.p99]
//
// so the same LASS/CASS channel that carries job control also carries the
// observability plane (the way Condor daemons expose state through their
// own ClassAd collector). Anything that can do an attribute-space get -
// examples/tdptop, another daemon, a test - can watch a daemon's counters
// live with plain subscribes; no side channel, no extra port.
//
// The reserved "tdp.telemetry." prefix is declared in attr_protocol.hpp
// (attr::kTelemetryPrefix); metric names never collide with application
// attributes because application code has no reason to write under it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "attrspace/attr_store.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace tdp::attr {

/// Cross-host telemetry fold (PR 7): the mergeable form of one host's (or
/// one subtree's) metrics, carried up the mrnet overlay by the
/// hierarchical CASS. Scalars fold as sum/min/max/count (the mrnet numeric
/// filters applied per metric); histograms merge their log2 buckets
/// elementwise (mrnet Filter::kHistMerge) and percentiles are recomputed
/// from the merged buckets at the root — folding per-host percentiles
/// would produce numbers with no statistical meaning.
class TelemetryRollup {
 public:
  /// One scalar observation (counter or gauge value from one host).
  void add_value(const std::string& name, double value);

  /// One histogram contribution: log2 bucket counts + value sum.
  void add_histogram(const std::string& name,
                     const std::vector<std::uint64_t>& buckets,
                     std::uint64_t sum);

  /// Folds another rollup in (what an interior node does with each child's
  /// upward message).
  void merge(const TelemetryRollup& other);

  [[nodiscard]] std::size_t metric_count() const {
    return scalars_.size() + hists_.size();
  }
  [[nodiscard]] bool empty() const {
    return scalars_.empty() && hists_.empty();
  }

  /// Root export: flattened (attribute, value) pairs.
  /// Scalars: <prefix><name>.{sum,min,max,count}; histograms:
  /// <prefix><name>.{count,sum,p50,p95,p99} recomputed from merged
  /// buckets. Deterministic order (sorted metric names).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> flatten(
      const std::string& prefix) const;

 private:
  struct Scalar {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t count = 0;
  };
  struct Hist {
    std::vector<std::uint64_t> buckets;
    std::uint64_t sum = 0;
  };

  std::map<std::string, Scalar> scalars_;
  std::map<std::string, Hist> hists_;
};

/// Periodically snapshots telemetry::Registry and writes it into an
/// attribute space. Two sinks:
///   - a direct AttributeStore* for daemons that own their LASS in-process
///     (the starter), bypassing the wire entirely;
///   - a batch-put function for client-backed daemons (paradynd via its
///     TdpSession), so one publish is one batched round trip.
/// Not thread-safe: drive it from the daemon's own pump/poll loop, which
/// is where the paper wants all TDP activity anyway.
class TelemetryPublisher {
 public:
  struct Options {
    std::string role;     ///< daemon role, e.g. "starter", "paradynd"
    std::string host;     ///< machine/daemon instance name
    std::string context;  ///< store-backed sink only: context to write into
    /// Minimum spacing between publishes from maybe_publish().
    Micros interval_micros = 250'000;
    /// Time source for the interval; nullptr = RealClock.
    const Clock* clock = nullptr;
  };

  using PutBatchFn = std::function<Status(
      const std::vector<std::pair<std::string, std::string>>&)>;

  TelemetryPublisher(Options options, AttributeStore* store);
  TelemetryPublisher(Options options, PutBatchFn put_batch);

  /// Publishes if at least interval_micros elapsed since the last publish
  /// (first call always publishes). Returns true when a publish happened.
  bool maybe_publish();

  /// Unconditional snapshot-and-write.
  Status publish_now();

  /// "tdp.telemetry.<role>.<host>." - every exported attribute starts with
  /// this.
  [[nodiscard]] const std::string& prefix() const noexcept { return prefix_; }

  [[nodiscard]] std::uint64_t publishes() const noexcept { return publishes_; }

 private:
  [[nodiscard]] Micros now() const;

  Options options_;
  AttributeStore* store_ = nullptr;  ///< store sink (may be null)
  PutBatchFn put_batch_;             ///< client sink (may be empty)
  std::string prefix_;
  Micros last_publish_ = 0;
  bool published_once_ = false;
  std::uint64_t publishes_ = 0;
};

}  // namespace tdp::attr
