// attr_server.hpp - the attribute space server process logic.
//
// One class serves both deployment roles from Figure 2:
//   * LASS - "Each host on which an application process (and tool daemon)
//     runs has a local instance of the attribute space server", started by
//     the RM on the execution host;
//   * CASS - "a central attribute space server process on the host running
//     the tool front-end", started by the RM front-end.
//
// The server parks blocking gets until a matching put arrives (this is what
// lets paradynd block in tdp_get("pid") until the starter's tdp_put, per
// Figure 6 step 3), maintains persistent subscriptions for asynchronous
// notification, and reference counts contexts across client connections,
// treating an unexpected disconnect as an implicit tdp_exit (crash
// cleanup — part of the paper's fault-detection requirement).
//
// Threading model: one I/O thread drives a Reactor that multiplexes the
// listener plus every client endpoint (Section 3.3's "central polling
// loop"), so the server's thread count is constant no matter how many
// daemons connect. Requests are parsed zero-copy into a per-connection
// MessageView and handled inline on the I/O thread; parked-get and
// subscription callbacks fire from whichever thread performs the matching
// put (normally also the I/O thread).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "attrspace/attr_store.hpp"
#include "net/reactor.hpp"
#include "net/transport.hpp"
#include "util/clock.hpp"
#include "util/flightrec.hpp"
#include "util/sync.hpp"

namespace tdp::attr {

class AttrServer {
 public:
  /// `name` is used for logging only ("LASS@node3", "CASS").
  AttrServer(std::string name, std::shared_ptr<net::Transport> transport);
  ~AttrServer();

  AttrServer(const AttrServer&) = delete;
  AttrServer& operator=(const AttrServer&) = delete;

  /// Binds and starts the I/O thread. Returns the concrete bound address
  /// clients should use.
  Result<std::string> start(const std::string& listen_address);

  /// Stops serving, closes all client connections, joins the I/O thread.
  void stop();

  [[nodiscard]] std::string address() const { return address_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Direct access to the store, e.g. for tests and for an RM embedding
  /// the LASS in-process.
  AttributeStore& store() noexcept { return store_; }

  /// Number of client connections served so far.
  [[nodiscard]] std::size_t connections_served() const {
    return connections_.load(std::memory_order_relaxed);
  }

  /// Batches applied / acknowledged-without-applying because their batch id
  /// was already seen (a client replayed after losing the ack). Tests use
  /// these to assert exactly-once batch application under retry.
  [[nodiscard]] std::size_t batches_applied() const {
    return batches_applied_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t batches_deduped() const {
    return batches_deduped_.load(std::memory_order_relaxed);
  }

  /// Attaches the server's flight recorder (PR 9): start/stop, accepted
  /// connections and teardowns land in the ring. Set before start();
  /// recorded into on the I/O thread with no server lock held.
  void set_recorder(std::shared_ptr<flightrec::Recorder> recorder) {
    recorder_ = std::move(recorder);
  }

  // --- write admission (PR 10 front door) ---

  /// Token-bucket admission over writes (kAttrPut / kAttrPutBatch). An
  /// over-rate request is answered status="busy" with a server-computed
  /// retry_after_ms hint instead of being applied — explicit backpressure
  /// in place of unbounded queueing. Reads are never shed (a monitoring
  /// get must keep working exactly when the server is overloaded).
  struct AdmissionConfig {
    bool enabled = false;
    double puts_per_sec = 1000.0;  ///< sustained refill rate
    double burst = 100.0;          ///< bucket capacity (tokens)
    int min_retry_after_ms = 1;    ///< hint floor
    /// Clock tokens refill against (virtual in sim/chaos runs).
    const Clock* clock = &RealClock::instance();
  };

  /// Installs the write-admission policy. Call before start(): the bucket
  /// state lives on the I/O thread, like the batch-dedup window.
  void set_admission(AdmissionConfig admission) {
    admission_ = admission;
    admission_tokens_ = admission.burst;
  }

  /// Writes answered with status="busy" so far.
  [[nodiscard]] std::size_t busy_replies() const {
    return busy_replies_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-connection state, owned by the I/O thread (created on accept,
  /// destroyed on disconnect or stop()).
  struct Connection {
    std::shared_ptr<net::Endpoint> endpoint;
    std::vector<std::uint64_t> watcher_ids;    ///< waiters/subscriptions owned here
    std::vector<std::string> opened_contexts;  ///< for implicit-exit crash cleanup
    net::MessageView view;                     ///< reused across receives
    /// Subscribe-request seq -> watcher id, so a replayed subscribe (the
    /// client lost the ack) re-acks instead of double-registering.
    std::map<std::uint64_t, std::uint64_t> subs_by_seq;
  };

  /// Remembers `batch_id` in the bounded recent-batch window; returns false
  /// when it was already present (replay). I/O thread only (asserted in
  /// Debug), which is why the window needs no lock.
  bool remember_batch(const std::string& batch_id) TDP_EXCLUDES(conns_mutex_);

  /// Debug check that the caller is the reactor I/O thread — the lock-free
  /// dedup window and per-connection state rely on it.
  void assert_io_thread() const;

  void on_acceptable();
  void on_readable(int fd);
  void handle_message(const net::MessageView& msg, Connection& conn);
  /// Refills the admission bucket and takes one token. Returns 0 when the
  /// write is admitted, else the retry-after hint (ms) for the busy reply.
  /// I/O thread only, like the batch window: no lock.
  int admit_write();
  /// Cancels watchers, applies implicit exits, closes the endpoint.
  void teardown(Connection& conn);

  std::string name_;
  std::shared_ptr<net::Transport> transport_;
  std::unique_ptr<net::Listener> listener_;
  std::string address_;
  AttributeStore store_;

  net::Reactor reactor_;
  std::thread io_thread_;
  /// Published by the I/O thread before its first reactor turn; callbacks
  /// assert against it in Debug.
  std::atomic<std::thread::id> io_thread_id_{};
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> connections_{0};
  std::atomic<std::size_t> batches_applied_{0};
  std::atomic<std::size_t> batches_deduped_{0};

  /// Recently applied batch ids (bounded FIFO window); touched only on the
  /// I/O thread, so no lock. The window must exceed any plausible number of
  /// batches in flight between a client's send and its retry, not the
  /// lifetime batch count — 1024 is orders of magnitude beyond that.
  std::unordered_set<std::string> recent_batch_ids_;
  std::deque<std::string> recent_batch_order_;
  static constexpr std::size_t kBatchWindow = 1024;

  /// Write-admission bucket; set before start(), refilled/spent only on
  /// the I/O thread.
  AdmissionConfig admission_;
  double admission_tokens_ = 0.0;
  Micros admission_refill_at_ = 0;
  std::atomic<std::size_t> busy_replies_{0};

  std::shared_ptr<flightrec::Recorder> recorder_;

  /// The I/O thread mutates the connection table, stop() (any thread)
  /// drains it.
  Mutex conns_mutex_{"AttrServer::conns_mutex_"};
  std::map<int, std::shared_ptr<Connection>> conns_ TDP_GUARDED_BY(conns_mutex_);
};

}  // namespace tdp::attr
