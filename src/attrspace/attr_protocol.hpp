// attr_protocol.hpp - wire field keys and the standard attribute registry.
//
// Section 3.2: "there is a standard list of attribute names for the set of
// data commonly exchanged between the different daemons (every RT and RM
// must understand this set); different tools and resource managers can
// extend this set with their own situation specific attributes."
//
// This header is that standard list for our implementation, assembled from
// every exchange the paper describes: the application pid and executable
// (Section 3.3 example), the front-end host/ports the Paradyn front-end
// publishes (Section 4.3), the stdio forwarding addresses (Section 1,
// "Standard input and output management"), and the proxy address
// (Section 2.4).
#pragma once

namespace tdp::attr {

/// Message field keys used by the attribute-space wire protocol.
namespace field {
inline constexpr const char* kContext = "ctx";
inline constexpr const char* kAttribute = "attr";
inline constexpr const char* kValue = "value";
inline constexpr const char* kStatus = "status";
inline constexpr const char* kError = "error";
inline constexpr const char* kBlock = "block";      ///< "1" = park until put
inline constexpr const char* kPattern = "pattern";  ///< subscription pattern
inline constexpr const char* kSubId = "sub_id";
inline constexpr const char* kCount = "count";
inline constexpr const char* kKeyPrefix = "k";      ///< list reply: k0,v0,k1,v1...
inline constexpr const char* kValPrefix = "v";
/// Client-unique id on a kAttrPutBatch; the server remembers recent ids and
/// acks a replayed batch without applying it twice (retry idempotency).
inline constexpr const char* kBatchId = "bid";
/// Server-computed backpressure hint on a status="busy" reply: how long the
/// client should wait (milliseconds) before retrying the request. The
/// client adds jitter on top so a herd of hinted clients desynchronizes.
inline constexpr const char* kRetryAfterMs = "retry_after_ms";
}  // namespace field

/// Attribute-name prefix under which every daemon self-publishes its
/// telemetry snapshot: tdp.telemetry.<role>.<host>.<metric>. The space
/// observes itself through the same channel it provides (Section 1's "one
/// coordination channel" claim applied to the system's own state).
inline constexpr const char* kTelemetryPrefix = "tdp.telemetry.";

/// The standard attribute names every RM and RT must understand.
namespace attrs {
/// Application process id, put by the RM after tdp_create_process(paused)
/// and fetched by the RT before tdp_attach (Figure 6, steps 1 and 3).
inline constexpr const char* kPid = "pid";
/// Path of the application executable, for the RT's symbol parsing.
inline constexpr const char* kExecutableName = "executable_name";
/// Arguments passed to the application ("-p1500 -P2000" style multi-value).
inline constexpr const char* kAppArgs = "app_args";
/// Host of the RT front-end, published by the front-end (Section 4.3).
inline constexpr const char* kFrontendHost = "frontend_host";
/// First front-end listener port (Paradyn's -p).
inline constexpr const char* kFrontendPort = "frontend_port";
/// Second front-end listener port (Paradyn's -P).
inline constexpr const char* kFrontendPort2 = "frontend_port2";
/// Address (host:port) of the RM's connection proxy, when one is needed.
inline constexpr const char* kProxyAddress = "proxy_address";
/// Where the application should connect its standard input/output.
inline constexpr const char* kStdioAddress = "stdio_address";
/// Current application state as maintained by the RM ("created", "paused",
/// "running", "stopped", "exited:<code>", "signalled:<sig>").
inline constexpr const char* kAppState = "app_state";
/// Set by the RT when its initialization is done and the RM may start the
/// application (Section 2.2 step 5).
inline constexpr const char* kRtReady = "rt_ready";
/// Working directory for the application process.
inline constexpr const char* kWorkingDir = "working_dir";
/// Job identifier assigned by the RM, for log correlation.
inline constexpr const char* kJobId = "job_id";
/// Number of processes in the job (MPI universe).
inline constexpr const char* kNumProcs = "num_procs";
}  // namespace attrs

/// The context name Parador uses when the RM manages a single RT; RMs that
/// "deal simultaneously with several RT may initialize a different space
/// for each RT" by suffixing this (Section 3.2).
inline constexpr const char* kDefaultContext = "tdp";

}  // namespace tdp::attr
