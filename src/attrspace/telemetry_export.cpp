#include "attrspace/telemetry_export.hpp"

#include <cinttypes>
#include <cstdio>

#include "attrspace/attr_protocol.hpp"
#include "util/telemetry.hpp"

namespace tdp::attr {

namespace {

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

/// Flattens one registry sample into (suffix, value) attribute pairs.
void append_sample(const telemetry::Sample& sample, const std::string& prefix,
                   std::vector<std::pair<std::string, std::string>>* out) {
  switch (sample.kind) {
    case telemetry::Sample::Kind::kCounter:
    case telemetry::Sample::Kind::kGauge:
      out->emplace_back(prefix + sample.name, std::to_string(sample.value));
      break;
    case telemetry::Sample::Kind::kHistogram: {
      const std::string base = prefix + sample.name;
      out->emplace_back(base + ".count", std::to_string(sample.hist.count));
      out->emplace_back(base + ".sum", std::to_string(sample.hist.sum));
      out->emplace_back(base + ".p50", format_double(sample.hist.p50));
      out->emplace_back(base + ".p95", format_double(sample.hist.p95));
      out->emplace_back(base + ".p99", format_double(sample.hist.p99));
      break;
    }
  }
}

}  // namespace

// --- TelemetryRollup ---

void TelemetryRollup::add_value(const std::string& name, double value) {
  auto [it, inserted] = scalars_.try_emplace(name);
  Scalar& s = it->second;
  if (inserted || s.count == 0) {
    s.min = value;
    s.max = value;
  } else {
    if (value < s.min) s.min = value;
    if (value > s.max) s.max = value;
  }
  s.sum += value;
  ++s.count;
}

void TelemetryRollup::add_histogram(const std::string& name,
                                    const std::vector<std::uint64_t>& buckets,
                                    std::uint64_t sum) {
  Hist& h = hists_[name];
  if (h.buckets.size() < buckets.size()) h.buckets.resize(buckets.size(), 0);
  for (std::size_t b = 0; b < buckets.size(); ++b) h.buckets[b] += buckets[b];
  h.sum += sum;
}

void TelemetryRollup::merge(const TelemetryRollup& other) {
  for (const auto& [name, s] : other.scalars_) {
    auto [it, inserted] = scalars_.try_emplace(name);
    Scalar& mine = it->second;
    if (inserted || mine.count == 0) {
      mine.min = s.min;
      mine.max = s.max;
    } else if (s.count > 0) {
      if (s.min < mine.min) mine.min = s.min;
      if (s.max > mine.max) mine.max = s.max;
    }
    mine.sum += s.sum;
    mine.count += s.count;
  }
  for (const auto& [name, h] : other.hists_) {
    add_histogram(name, h.buckets, h.sum);
  }
}

std::vector<std::pair<std::string, std::string>> TelemetryRollup::flatten(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(scalars_.size() * 4 + hists_.size() * 5);
  for (const auto& [name, s] : scalars_) {
    const std::string base = prefix + name;
    out.emplace_back(base + ".sum", format_double(s.sum));
    out.emplace_back(base + ".min", format_double(s.min));
    out.emplace_back(base + ".max", format_double(s.max));
    out.emplace_back(base + ".count", std::to_string(s.count));
  }
  for (const auto& [name, h] : hists_) {
    const telemetry::Histogram::Snapshot snap =
        telemetry::snapshot_from_buckets(h.buckets, h.sum);
    const std::string base = prefix + name;
    out.emplace_back(base + ".count", std::to_string(snap.count));
    out.emplace_back(base + ".sum", std::to_string(snap.sum));
    out.emplace_back(base + ".p50", format_double(snap.p50));
    out.emplace_back(base + ".p95", format_double(snap.p95));
    out.emplace_back(base + ".p99", format_double(snap.p99));
  }
  return out;
}

TelemetryPublisher::TelemetryPublisher(Options options, AttributeStore* store)
    : options_(std::move(options)), store_(store) {
  prefix_ = std::string(kTelemetryPrefix) + options_.role + "." + options_.host + ".";
}

TelemetryPublisher::TelemetryPublisher(Options options, PutBatchFn put_batch)
    : options_(std::move(options)), put_batch_(std::move(put_batch)) {
  prefix_ = std::string(kTelemetryPrefix) + options_.role + "." + options_.host + ".";
}

Micros TelemetryPublisher::now() const {
  const Clock* clock =
      options_.clock != nullptr ? options_.clock : &RealClock::instance();
  return clock->now_micros();
}

bool TelemetryPublisher::maybe_publish() {
  const Micros t = now();
  if (published_once_ && t - last_publish_ < options_.interval_micros) {
    return false;
  }
  last_publish_ = t;
  published_once_ = true;
  return publish_now().is_ok();
}

Status TelemetryPublisher::publish_now() {
  std::vector<std::pair<std::string, std::string>> pairs;
  const std::vector<telemetry::Sample> samples =
      telemetry::Registry::instance().snapshot();
  pairs.reserve(samples.size() + 1);
  for (const telemetry::Sample& sample : samples) {
    append_sample(sample, prefix_, &pairs);
  }
  // A publish sequence number last, so a subscriber that sees it bump
  // knows the rest of this batch is already in the space (puts are
  // ordered per connection and per shard map).
  ++publishes_;
  pairs.emplace_back(prefix_ + "publishes", std::to_string(publishes_));

  if (store_ != nullptr) {
    for (auto& [attribute, value] : pairs) {
      TDP_RETURN_IF_ERROR(
          store_->put(options_.context, attribute, std::move(value)));
    }
    return Status::ok();
  }
  if (put_batch_) return put_batch_(pairs);
  return make_error(ErrorCode::kInvalidState, "telemetry publisher has no sink");
}

}  // namespace tdp::attr
