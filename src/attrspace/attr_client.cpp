#include "attrspace/attr_client.hpp"

#include <chrono>
#include <vector>

#include "attrspace/attr_protocol.hpp"
#include "util/log.hpp"

namespace tdp::attr {

using net::Message;
using net::MsgType;

namespace {
const log::Logger kLog("attr_client");

Status status_from_reply(const Message& reply) {
  if (reply.get(field::kStatus) == "ok") return Status::ok();
  const std::string error = reply.get(field::kError, "unknown server error");
  // Preserve NOT_FOUND so callers can distinguish absence from failure.
  ErrorCode code = error.find("NOT_FOUND") != std::string::npos
                       ? ErrorCode::kNotFound
                       : ErrorCode::kInternal;
  return make_error(code, error);
}
}  // namespace

AttrClient::AttrClient(std::unique_ptr<net::Endpoint> endpoint, std::string context)
    : endpoint_(std::move(endpoint)), context_(std::move(context)) {}

Result<std::unique_ptr<AttrClient>> AttrClient::connect(net::Transport& transport,
                                                        const std::string& address,
                                                        const std::string& context) {
  auto connected = transport.connect(address);
  if (!connected.is_ok()) return connected.status();
  return adopt(std::move(connected).value(), context);
}

Result<std::unique_ptr<AttrClient>> AttrClient::adopt(
    std::unique_ptr<net::Endpoint> endpoint, const std::string& context) {
  std::unique_ptr<AttrClient> client(new AttrClient(std::move(endpoint), context));
  TDP_RETURN_IF_ERROR(client->perform_init());
  return client;
}

AttrClient::~AttrClient() {
  if (!exited_ && endpoint_ && endpoint_->is_open()) {
    // Best effort; the server also handles abrupt disconnects as implicit
    // exits.
    exit();
  }
}

Status AttrClient::perform_init() {
  Message init(MsgType::kAttrInit);
  init.set(field::kContext, context_);
  auto reply = call(std::move(init), 5000);
  if (!reply.is_ok()) return reply.status();
  if (reply->type() != MsgType::kAttrInitReply) {
    return make_error(ErrorCode::kInternal, "bad init reply: " + reply->to_string());
  }
  return status_from_reply(reply.value());
}

std::uint64_t AttrClient::next_seq() { return ++seq_; }

Status AttrClient::put(const std::string& attribute, const std::string& value) {
  Message request(MsgType::kAttrPut);
  request.set(field::kContext, context_);
  request.set(field::kAttribute, attribute);
  request.set(field::kValue, value);
  auto reply = call(std::move(request), -1);
  if (!reply.is_ok()) return reply.status();
  return status_from_reply(reply.value());
}

Status AttrClient::put_batch(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  if (pairs.empty()) return Status::ok();
  Message request(MsgType::kAttrPutBatch);
  request.reserve_fields(2 + 2 * pairs.size());
  request.set(field::kContext, context_);
  request.set_int(field::kCount, static_cast<std::int64_t>(pairs.size()));
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    // add() skips the duplicate-key scan; the k<i>/v<i> scheme guarantees
    // uniqueness, keeping batch construction O(N).
    const std::string index = std::to_string(i);
    request.add(field::kKeyPrefix + index, pairs[i].first);
    request.add(field::kValPrefix + index, pairs[i].second);
  }
  auto reply = call(std::move(request), -1);
  if (!reply.is_ok()) return reply.status();
  return status_from_reply(reply.value());
}

Result<std::string> AttrClient::get(const std::string& attribute, int timeout_ms) {
  Message request(MsgType::kAttrGet);
  request.set(field::kContext, context_);
  request.set(field::kAttribute, attribute);
  request.set(field::kBlock, "1");
  auto reply = call(std::move(request), timeout_ms);
  if (!reply.is_ok()) return reply.status();
  Status status = status_from_reply(reply.value());
  if (!status.is_ok()) return status;
  return reply->get(field::kValue);
}

Result<std::string> AttrClient::try_get(const std::string& attribute) {
  Message request(MsgType::kAttrGet);
  request.set(field::kContext, context_);
  request.set(field::kAttribute, attribute);
  request.set(field::kBlock, "0");
  auto reply = call(std::move(request), -1);
  if (!reply.is_ok()) return reply.status();
  Status status = status_from_reply(reply.value());
  if (!status.is_ok()) return status;
  return reply->get(field::kValue);
}

Status AttrClient::remove(const std::string& attribute) {
  Message request(MsgType::kAttrRemove);
  request.set(field::kContext, context_);
  request.set(field::kAttribute, attribute);
  auto reply = call(std::move(request), -1);
  if (!reply.is_ok()) return reply.status();
  return status_from_reply(reply.value());
}

Result<std::vector<std::pair<std::string, std::string>>> AttrClient::list() {
  Message request(MsgType::kAttrList);
  request.set(field::kContext, context_);
  auto reply = call(std::move(request), -1);
  if (!reply.is_ok()) return reply.status();
  Status status = status_from_reply(reply.value());
  if (!status.is_ok()) return status;
  std::vector<std::pair<std::string, std::string>> out;
  const std::int64_t count = reply->get_int(field::kCount);
  out.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    out.emplace_back(reply->get(field::kKeyPrefix + std::to_string(i)),
                     reply->get(field::kValPrefix + std::to_string(i)));
  }
  return out;
}

Result<int> AttrClient::async_get(const std::string& attribute,
                                  CompletionCallback callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!endpoint_ || !endpoint_->is_open()) {
    return make_error(ErrorCode::kConnectionError, "not connected");
  }
  Message request(MsgType::kAttrAsyncGet);
  const std::uint64_t seq_used = next_seq();
  request.set_seq(seq_used);
  request.set(field::kContext, context_);
  request.set(field::kAttribute, attribute);
  TDP_RETURN_IF_ERROR(endpoint_->send(std::move(request)));
  pending_async_[seq_used] = {attribute, std::move(callback)};
  return endpoint_->readable_fd();
}

Result<int> AttrClient::async_put(const std::string& attribute, const std::string& value,
                                  CompletionCallback callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!endpoint_ || !endpoint_->is_open()) {
    return make_error(ErrorCode::kConnectionError, "not connected");
  }
  Message request(MsgType::kAttrPut);
  const std::uint64_t seq_used = next_seq();
  request.set_seq(seq_used);
  request.set(field::kContext, context_);
  request.set(field::kAttribute, attribute);
  request.set(field::kValue, value);
  TDP_RETURN_IF_ERROR(endpoint_->send(std::move(request)));
  pending_async_[seq_used] = {attribute, std::move(callback)};
  return endpoint_->readable_fd();
}

Status AttrClient::subscribe(const std::string& pattern, NotifyCallback callback) {
  // Register client-side first so a notify racing the subscribe ack is not
  // lost; seq is fixed up under the same lock as the send.
  std::lock_guard<std::mutex> lock(mutex_);
  if (!endpoint_ || !endpoint_->is_open()) {
    return make_error(ErrorCode::kConnectionError, "not connected");
  }
  Message request(MsgType::kAttrSubscribe);
  request.set(field::kContext, context_);
  request.set(field::kPattern, pattern);
  const std::uint64_t seq_used = next_seq();
  request.set_seq(seq_used);
  subscriptions_.push_back({seq_used, std::move(callback)});
  TDP_RETURN_IF_ERROR(endpoint_->send(std::move(request)));
  // Wait for the acknowledgement so callers know the subscription is live.
  while (true) {
    auto received = endpoint_->receive(-1);
    if (!received.is_ok()) return received.status();
    Message reply;
    if (route_message(std::move(received).value(), seq_used, &reply)) {
      return status_from_reply(reply);
    }
  }
}

Result<Message> AttrClient::call(Message request, int timeout_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!endpoint_ || !endpoint_->is_open()) {
    return make_error(ErrorCode::kConnectionError, "not connected");
  }
  request.set_seq(next_seq());
  const std::uint64_t awaited = request.seq();
  TDP_RETURN_IF_ERROR(endpoint_->send(std::move(request)));

  const bool has_deadline = timeout_ms >= 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    int wait = -1;
    if (has_deadline) {
      auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return make_error(ErrorCode::kTimeout, "call timed out");
      wait = static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                  deadline - now)
                                  .count() +
                              1);
    }
    auto received = endpoint_->receive(wait);
    if (!received.is_ok()) return received.status();
    Message reply;
    if (route_message(std::move(received).value(), awaited, &reply)) {
      return reply;
    }
  }
}

bool AttrClient::route_message(Message msg, std::uint64_t awaited_seq,
                               Message* reply_out) {
  // Called with mutex_ held.
  if (msg.type() == MsgType::kAttrNotify) {
    for (const auto& sub : subscriptions_) {
      if (sub.seq == msg.seq()) {
        NotifyCallback callback = sub.callback;
        std::string attribute = msg.get(field::kAttribute);
        std::string value = msg.get(field::kValue);
        ready_callbacks_.push_back([callback = std::move(callback),
                                    attribute = std::move(attribute),
                                    value = std::move(value)] {
          callback(attribute, value);
        });
        return false;
      }
    }
    kLog.warn("notify for unknown subscription seq=", msg.seq());
    return false;
  }

  auto async_it = pending_async_.find(msg.seq());
  if (async_it != pending_async_.end() && msg.seq() != awaited_seq) {
    PendingAsync pending = std::move(async_it->second);
    pending_async_.erase(async_it);
    Status status = status_from_reply(msg);
    std::string value = msg.get(field::kValue);
    ready_callbacks_.push_back([pending = std::move(pending), status,
                                value = std::move(value)] {
      pending.callback(status, pending.attribute, value);
    });
    return false;
  }

  if (msg.seq() == awaited_seq && awaited_seq != 0) {
    *reply_out = std::move(msg);
    return true;
  }

  kLog.warn("dropping unexpected message ", msg.to_string());
  return false;
}

int AttrClient::service_events() {
  std::deque<std::function<void()>> to_run;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (endpoint_ && endpoint_->is_open()) {
      while (true) {
        auto received = endpoint_->receive(0);
        if (!received.is_ok()) break;  // timeout (drained) or disconnect
        Message unused;
        route_message(std::move(received).value(), /*awaited_seq=*/0, &unused);
      }
    }
    to_run.swap(ready_callbacks_);
  }
  // Callbacks run outside the lock, on the caller's thread — the paper's
  // "well-known and (presumably) safe point".
  int dispatched = 0;
  for (auto& callback : to_run) {
    callback();
    ++dispatched;
  }
  return dispatched;
}

int AttrClient::readable_fd() const {
  return endpoint_ ? endpoint_->readable_fd() : -1;
}

Status AttrClient::exit() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (exited_) return Status::ok();
  exited_ = true;
  if (!endpoint_ || !endpoint_->is_open()) return Status::ok();
  Message request(MsgType::kAttrExit);
  const std::uint64_t awaited = next_seq();
  request.set_seq(awaited);
  request.set(field::kContext, context_);
  Status sent = endpoint_->send(std::move(request));
  if (sent.is_ok()) {
    // Await the ack (with a bound) so the server-side refcount is settled
    // before we tear the connection down.
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (std::chrono::steady_clock::now() < deadline) {
      auto received = endpoint_->receive(200);
      if (!received.is_ok()) {
        if (received.status().code() == ErrorCode::kTimeout) continue;
        break;
      }
      Message reply;
      if (route_message(std::move(received).value(), awaited, &reply)) break;
    }
  }
  endpoint_->close();
  return Status::ok();
}

bool AttrClient::connected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return endpoint_ && endpoint_->is_open() && !exited_;
}

}  // namespace tdp::attr
