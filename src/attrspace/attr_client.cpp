#include "attrspace/attr_client.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "attrspace/attr_protocol.hpp"
#include "net/wire.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace tdp::attr {

using net::Message;
using net::MsgType;

namespace {
const log::Logger kLog("attr_client");

telemetry::Counter& calls_counter() {
  static telemetry::Counter& c =
      telemetry::Registry::instance().counter("attrclient.calls");
  return c;
}

telemetry::Counter& replays_counter() {
  static telemetry::Counter& c =
      telemetry::Registry::instance().counter("attrclient.replays");
  return c;
}

telemetry::Counter& reconnects_counter() {
  static telemetry::Counter& c =
      telemetry::Registry::instance().counter("attrclient.reconnects");
  return c;
}

telemetry::Counter& busy_counter() {
  static telemetry::Counter& c =
      telemetry::Registry::instance().counter("attrclient.busy_replies");
  return c;
}

// Round-trip latency, sampled only for traced calls (a span active on the
// calling thread); the untraced hot path pays one counter add.
telemetry::Histogram& call_histogram() {
  static telemetry::Histogram& h =
      telemetry::Registry::instance().histogram("attrclient.call_us");
  return h;
}

/// Stamps the caller's trace context onto an outgoing request, so the
/// server (and whoever later reads the value) can join the causal tree.
void stamp_trace(Message& request) {
  const telemetry::SpanContext ctx = telemetry::current_context();
  if (ctx.valid() && !request.has(net::kTraceField)) {
    request.set(net::kTraceField, telemetry::format_context(ctx));
  }
}

/// Adopts the trace header of a reply as the thread's ambient context:
/// whatever the caller does next (e.g. paradynd attaching after its
/// blocking get("pid") returns) parents to the writer's span.
void adopt_reply_trace(const Message& reply) {
  const std::string_view header = reply.get_view(net::kTraceField);
  if (header.empty()) return;
  const telemetry::SpanContext ctx = telemetry::parse_context(header);
  if (ctx.valid()) telemetry::set_ambient_context(ctx);
}

Status status_from_reply(const Message& reply) {
  const std::string status = reply.get(field::kStatus);
  if (status == "ok") return Status::ok();
  if (status == "busy") {
    // Backpressure, not failure: the server shed the request and computed
    // how long we should stay away. Encode the hint in the message so a
    // caller that does not retry in-library can still honor it.
    return make_error(ErrorCode::kBusy,
                      "server busy; " + std::string(field::kRetryAfterMs) +
                          "=" + reply.get(field::kRetryAfterMs, "0"));
  }
  const std::string error = reply.get(field::kError, "unknown server error");
  // Preserve NOT_FOUND so callers can distinguish absence from failure.
  ErrorCode code = error.find("NOT_FOUND") != std::string::npos
                       ? ErrorCode::kNotFound
                       : ErrorCode::kInternal;
  return make_error(code, error);
}

/// True when the reply is a served-but-shed backpressure answer.
bool reply_is_busy(const Message& reply) {
  return reply.get(field::kStatus) == "busy";
}

/// Distinct per client instance in this process; combined with a counter
/// it makes batch ids unique across reconnects and client generations.
std::uint64_t make_batch_nonce(const void* self) {
  static std::atomic<std::uint64_t> counter{1};
  return (counter.fetch_add(1, std::memory_order_relaxed) << 20) ^
         (reinterpret_cast<std::uintptr_t>(self) >> 4);
}
}  // namespace

int backoff_delay_ms(const RetryPolicy& policy, int attempt, int server_hint_ms,
                     Rng& jitter) {
  if (server_hint_ms > 0) {
    return server_hint_ms +
           static_cast<int>(jitter.next_below(
               static_cast<std::uint64_t>(server_hint_ms / 2 + 1)));
  }
  // base << (attempt-1) is UB once attempt exceeds the int width; beyond
  // shift 20 the doubled value exceeds any sane max_backoff_ms anyway, so
  // clamping the exponent preserves the curve and removes the UB.
  const int shift = std::clamp(attempt - 1, 0, 20);
  const std::int64_t doubled =
      static_cast<std::int64_t>(std::max(0, policy.base_backoff_ms)) << shift;
  const int backoff = static_cast<int>(
      std::min<std::int64_t>(std::max(0, policy.max_backoff_ms), doubled));
  if (backoff <= 0) return 0;
  // Half deterministic, half jitter, so a herd of daemons retrying against
  // one server spreads out instead of stampeding.
  return backoff / 2 + static_cast<int>(jitter.next_below(
                           static_cast<std::uint64_t>(backoff / 2 + 1)));
}

int retry_after_hint_ms(const Status& status) {
  if (status.code() != ErrorCode::kBusy) return 0;
  const std::string key = std::string(field::kRetryAfterMs) + "=";
  const std::size_t at = status.message().find(key);
  if (at == std::string::npos) return 0;
  return std::atoi(status.message().c_str() + at + key.size());
}

AttrClient::AttrClient(std::unique_ptr<net::Endpoint> endpoint, std::string context)
    : context_(std::move(context)), batch_nonce_(make_batch_nonce(this)),
      endpoint_(std::move(endpoint)) {
  backoff_rng_.reseed(batch_nonce_);
}

Result<std::unique_ptr<AttrClient>> AttrClient::connect(net::Transport& transport,
                                                        const std::string& address,
                                                        const std::string& context,
                                                        RetryPolicy retry) {
  const int attempts = retry.enabled ? retry.max_reconnects + 1 : 1;
  Rng jitter(0xc0ffee ^ std::hash<std::string>{}(address));
  Status last = make_error(ErrorCode::kConnectionError, "not attempted");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      const int backoff = backoff_delay_ms(retry, attempt, 0, jitter);
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      }
    }
    auto connected = transport.connect(address);
    if (!connected.is_ok()) {
      last = connected.status();
      continue;
    }
    std::unique_ptr<AttrClient> client(
        new AttrClient(std::move(connected).value(), context));
    {
      LockGuard lock(client->mutex_);
      client->retry_ = retry;  // before init so a dropped init frame resends
    }
    Status init = client->perform_init();
    if (!init.is_ok()) {
      last = init;
      continue;
    }
    {
      LockGuard lock(client->mutex_);
      client->transport_ = &transport;
      client->address_ = address;
    }
    return client;
  }
  return last;
}

Result<std::unique_ptr<AttrClient>> AttrClient::adopt(
    std::unique_ptr<net::Endpoint> endpoint, const std::string& context) {
  std::unique_ptr<AttrClient> client(new AttrClient(std::move(endpoint), context));
  TDP_RETURN_IF_ERROR(client->perform_init());
  return client;
}

AttrClient::~AttrClient() {
  // Best effort; exit() is a no-op when already exited or disconnected, and
  // the server also handles abrupt disconnects as implicit exits.
  exit();
}

void AttrClient::set_retry_policy(RetryPolicy retry) {
  LockGuard lock(mutex_);
  retry_ = retry;
}

Status AttrClient::perform_init() {
  LockGuard lock(mutex_);
  return init_on_endpoint_locked();
}

Status AttrClient::init_on_endpoint_locked() {
  Message init(MsgType::kAttrInit);
  const std::uint64_t awaited = next_seq();
  init.set_seq(awaited);
  init.set(field::kContext, context_);
  // First contact advertises our wire version; the server's reply (or any
  // later v2 frame from it) upgrades this endpoint's send side.
  net::advertise_wire_version(*endpoint_, init);
  TDP_RETURN_IF_ERROR(endpoint_->send(init));
  const Clock& wall = RealClock::instance();
  const Micros deadline = wall.now_micros() + 5'000'000;
  Micros last_send = wall.now_micros();
  while (wall.now_micros() < deadline) {
    auto received = endpoint_->receive(200);
    if (!received.is_ok()) {
      if (received.status().code() == ErrorCode::kTimeout) {
        // A lossy link may have eaten the init; resend (a duplicate init
        // is balanced by the matching implicit exit at teardown).
        if (retry_.enabled &&
            wall.now_micros() - last_send >
                static_cast<Micros>(retry_.attempt_timeout_ms) * 1000) {
          replays_.fetch_add(1, std::memory_order_relaxed);
          replays_counter().inc();
          endpoint_->send(init);
          last_send = wall.now_micros();
        }
        continue;
      }
      return received.status();
    }
    Message reply;
    if (!route_message(std::move(received).value(), awaited, &reply)) continue;
    if (reply.type() != MsgType::kAttrInitReply) {
      return make_error(ErrorCode::kInternal, "bad init reply: " + reply.to_string());
    }
    net::adopt_advertised_wire_version(*endpoint_, reply);
    return status_from_reply(reply);
  }
  return make_error(ErrorCode::kTimeout, "tdp_init timed out");
}

bool AttrClient::can_reconnect_locked() const {
  return retry_.enabled && transport_ != nullptr && !exited_;
}

Status AttrClient::reconnect_locked() {
  Status last = make_error(ErrorCode::kConnectionError, "reconnect not attempted");
  for (int attempt = 1; attempt <= retry_.max_reconnects; ++attempt) {
    const int backoff = backoff_delay_ms(retry_, attempt, 0, backoff_rng_);
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    auto connected = transport_->connect(address_);
    if (!connected.is_ok()) {
      last = connected.status();
      continue;
    }
    endpoint_ = std::move(connected).value();
    Status init = init_on_endpoint_locked();
    if (!init.is_ok()) {
      last = init;
      continue;
    }
    // Re-register every subscription under its original seq so notify
    // correlation keeps working; the acks are routed and dropped as
    // already-answered replies. Each send's status matters: a fresh
    // endpoint that dies here would otherwise report a "successful"
    // reconnect whose lease watches are never re-armed server-side.
    Status rearm = Status::ok();
    for (const Subscription& sub : subscriptions_) {
      Message request(MsgType::kAttrSubscribe);
      request.set_seq(sub.seq);
      request.set(field::kContext, context_);
      request.set(field::kPattern, sub.pattern);
      rearm = endpoint_->send(std::move(request));
      if (!rearm.is_ok()) break;
    }
    // Replay in-flight async operations (idempotent: puts overwrite).
    if (rearm.is_ok()) {
      for (const auto& [seq, pending] : pending_async_) {
        Message request(pending.type);
        request.set_seq(seq);
        request.set(field::kContext, context_);
        request.set(field::kAttribute, pending.attribute);
        if (pending.type == MsgType::kAttrPut) {
          request.set(field::kValue, pending.value);
        }
        rearm = endpoint_->send(std::move(request));
        if (!rearm.is_ok()) break;
      }
    }
    if (!rearm.is_ok()) {
      kLog.warn("reconnect attempt ", attempt,
                " lost the connection mid-rearm: ", rearm.to_string());
      endpoint_->close();
      last = rearm;
      continue;  // counts as a failed attempt; keep backing off
    }
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    reconnects_counter().inc();
    kLog.info("reconnected to ", address_, " (attempt ", attempt, "), ",
              subscriptions_.size(), " subscriptions re-registered, ",
              pending_async_.size(), " async ops replayed");
    return Status::ok();
  }
  return last;
}

std::uint64_t AttrClient::next_seq() { return ++seq_; }

Status AttrClient::put(const std::string& attribute, const std::string& value) {
  Message request(MsgType::kAttrPut);
  request.set(field::kContext, context_);
  request.set(field::kAttribute, attribute);
  request.set(field::kValue, value);
  auto reply = call(std::move(request), -1);
  if (!reply.is_ok()) return reply.status();
  return status_from_reply(reply.value());
}

Status AttrClient::put_batch(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  if (pairs.empty()) return Status::ok();
  Message request(MsgType::kAttrPutBatch);
  request.reserve_fields(3 + 2 * pairs.size());
  request.set(field::kContext, context_);
  request.set_int(field::kCount, static_cast<std::int64_t>(pairs.size()));
  {
    // Batch id: lets the server recognize a replayed batch (ack lost to a
    // disconnect) and acknowledge without applying twice.
    LockGuard lock(mutex_);
    request.set(field::kBatchId, std::to_string(batch_nonce_) + "-" +
                                     std::to_string(++batch_counter_));
  }
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    // add() skips the duplicate-key scan; the k<i>/v<i> scheme guarantees
    // uniqueness, keeping batch construction O(N).
    const std::string index = std::to_string(i);
    request.add(field::kKeyPrefix + index, pairs[i].first);
    request.add(field::kValPrefix + index, pairs[i].second);
  }
  auto reply = call(std::move(request), -1);
  if (!reply.is_ok()) return reply.status();
  return status_from_reply(reply.value());
}

Result<std::string> AttrClient::get(const std::string& attribute, int timeout_ms) {
  Message request(MsgType::kAttrGet);
  request.set(field::kContext, context_);
  request.set(field::kAttribute, attribute);
  request.set(field::kBlock, "1");
  auto reply = call(std::move(request), timeout_ms);
  if (!reply.is_ok()) return reply.status();
  Status status = status_from_reply(reply.value());
  if (!status.is_ok()) return status;
  adopt_reply_trace(reply.value());
  return reply->get(field::kValue);
}

Result<std::string> AttrClient::try_get(const std::string& attribute) {
  Message request(MsgType::kAttrGet);
  request.set(field::kContext, context_);
  request.set(field::kAttribute, attribute);
  request.set(field::kBlock, "0");
  auto reply = call(std::move(request), -1);
  if (!reply.is_ok()) return reply.status();
  Status status = status_from_reply(reply.value());
  if (!status.is_ok()) return status;
  adopt_reply_trace(reply.value());
  return reply->get(field::kValue);
}

Status AttrClient::remove(const std::string& attribute) {
  Message request(MsgType::kAttrRemove);
  request.set(field::kContext, context_);
  request.set(field::kAttribute, attribute);
  auto reply = call(std::move(request), -1);
  if (!reply.is_ok()) return reply.status();
  return status_from_reply(reply.value());
}

Result<std::vector<std::pair<std::string, std::string>>> AttrClient::list() {
  Message request(MsgType::kAttrList);
  request.set(field::kContext, context_);
  auto reply = call(std::move(request), -1);
  if (!reply.is_ok()) return reply.status();
  Status status = status_from_reply(reply.value());
  if (!status.is_ok()) return status;
  std::vector<std::pair<std::string, std::string>> out;
  const std::int64_t count = reply->get_int(field::kCount);
  out.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    out.emplace_back(reply->get(field::kKeyPrefix + std::to_string(i)),
                     reply->get(field::kValPrefix + std::to_string(i)));
  }
  return out;
}

Result<int> AttrClient::async_get(const std::string& attribute,
                                  CompletionCallback callback) {
  LockGuard lock(mutex_);
  if (!endpoint_ || !endpoint_->is_open()) {
    if (!can_reconnect_locked()) {
      return make_error(ErrorCode::kConnectionError, "not connected");
    }
    TDP_RETURN_IF_ERROR(reconnect_locked());
  }
  Message request(MsgType::kAttrAsyncGet);
  const std::uint64_t seq_used = next_seq();
  request.set_seq(seq_used);
  request.set(field::kContext, context_);
  request.set(field::kAttribute, attribute);
  stamp_trace(request);
  TDP_RETURN_IF_ERROR(endpoint_->send(std::move(request)));
  pending_async_[seq_used] = {MsgType::kAttrAsyncGet, attribute, "",
                              std::move(callback)};
  return endpoint_->readable_fd();
}

Result<int> AttrClient::async_put(const std::string& attribute, const std::string& value,
                                  CompletionCallback callback) {
  LockGuard lock(mutex_);
  if (!endpoint_ || !endpoint_->is_open()) {
    if (!can_reconnect_locked()) {
      return make_error(ErrorCode::kConnectionError, "not connected");
    }
    TDP_RETURN_IF_ERROR(reconnect_locked());
  }
  Message request(MsgType::kAttrPut);
  const std::uint64_t seq_used = next_seq();
  request.set_seq(seq_used);
  request.set(field::kContext, context_);
  request.set(field::kAttribute, attribute);
  request.set(field::kValue, value);
  stamp_trace(request);
  TDP_RETURN_IF_ERROR(endpoint_->send(std::move(request)));
  pending_async_[seq_used] = {MsgType::kAttrPut, attribute, value,
                              std::move(callback)};
  return endpoint_->readable_fd();
}

Status AttrClient::subscribe(const std::string& pattern, NotifyCallback callback) {
  // Register client-side first so a notify racing the subscribe ack is not
  // lost; seq is fixed up under the same lock as the send.
  LockGuard lock(mutex_);
  if (!endpoint_ || !endpoint_->is_open()) {
    if (!can_reconnect_locked()) {
      return make_error(ErrorCode::kConnectionError, "not connected");
    }
    TDP_RETURN_IF_ERROR(reconnect_locked());
  }
  const std::uint64_t seq_used = next_seq();
  subscriptions_.push_back({seq_used, pattern, std::move(callback)});
  Message request(MsgType::kAttrSubscribe);
  request.set_seq(seq_used);
  request.set(field::kContext, context_);
  request.set(field::kPattern, pattern);
  stamp_trace(request);
  Status sent = endpoint_->send(std::move(request));
  if (!sent.is_ok()) {
    if (!can_reconnect_locked()) {
      subscriptions_.pop_back();
      return sent;
    }
    // reconnect_locked re-sends every registered subscription, including
    // the one just added.
    Status reconnected = reconnect_locked();
    if (!reconnected.is_ok()) {
      subscriptions_.pop_back();
      return reconnected;
    }
  }
  // Wait (bounded) for the acknowledgement so callers know the
  // subscription is live; re-send on a lost frame when retry is enabled.
  const Clock& wall = RealClock::instance();
  const Micros deadline = wall.now_micros() + 30'000'000;
  Micros last_resend = wall.now_micros();
  while (wall.now_micros() < deadline) {
    auto received = endpoint_->receive(200);
    if (!received.is_ok()) {
      if (received.status().code() == ErrorCode::kTimeout) {
        if (retry_.enabled &&
            wall.now_micros() - last_resend >
                static_cast<Micros>(retry_.attempt_timeout_ms) * 1000) {
          Message resend(MsgType::kAttrSubscribe);
          resend.set_seq(seq_used);
          resend.set(field::kContext, context_);
          resend.set(field::kPattern, pattern);
          replays_.fetch_add(1, std::memory_order_relaxed);
          replays_counter().inc();
          endpoint_->send(std::move(resend));
          last_resend = wall.now_micros();
        }
        continue;
      }
      if (!can_reconnect_locked()) return received.status();
      Status reconnected = reconnect_locked();  // re-sends the subscription
      if (!reconnected.is_ok()) return reconnected;
      continue;
    }
    Message reply;
    if (route_message(std::move(received).value(), seq_used, &reply)) {
      return status_from_reply(reply);
    }
  }
  return make_error(ErrorCode::kTimeout, "subscribe not acknowledged");
}

Result<Message> AttrClient::call(Message request, int timeout_ms) {
  calls_counter().inc();
  const bool traced = telemetry::current_context().valid();
  const Clock& wall = RealClock::instance();
  const Micros start = traced ? telemetry::Tracer::instance().now() : 0;
  const bool has_deadline = timeout_ms >= 0;
  const Micros deadline =
      wall.now_micros() + static_cast<Micros>(timeout_ms) * 1000;
  Result<Message> result =
      make_error(ErrorCode::kInternal, "call not attempted");
  for (int busy_attempt = 1;; ++busy_attempt) {
    int delay_ms = 0;
    {
      LockGuard lock(mutex_);
      int remaining_ms = timeout_ms;
      if (has_deadline) {
        remaining_ms = static_cast<int>(
            std::max<Micros>(0, deadline - wall.now_micros()) / 1000);
      }
      result = call_locked(request, remaining_ms);
      if (!result.is_ok() || !reply_is_busy(result.value())) break;
      busy_counter().inc();
      const int hint_ms =
          static_cast<int>(result->get_int(field::kRetryAfterMs, 0));
      if (!retry_.enabled || !retry_.honor_retry_after ||
          busy_attempt > retry_.max_reconnects ||
          (has_deadline && wall.now_micros() >= deadline)) {
        break;  // surface the busy reply; status_from_reply maps it to kBusy
      }
      delay_ms = backoff_delay_ms(retry_, busy_attempt, hint_ms, backoff_rng_);
      if (has_deadline) {
        delay_ms = static_cast<int>(std::min<Micros>(
            delay_ms, std::max<Micros>(0, deadline - wall.now_micros()) / 1000));
      }
    }
    // Wait out the server's retry-after hint OUTSIDE the client lock: other
    // threads keep using the client, and blocking stays off the lock graph.
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
  }
  if (traced) {
    call_histogram().record(static_cast<std::uint64_t>(
        std::max<Micros>(0, telemetry::Tracer::instance().now() - start)));
  }
  return result;
}

Result<Message> AttrClient::call_locked(Message request, int timeout_ms) {
  stamp_trace(request);
  if (!endpoint_ || !endpoint_->is_open()) {
    if (!can_reconnect_locked()) {
      return make_error(ErrorCode::kConnectionError, "not connected");
    }
    TDP_RETURN_IF_ERROR(reconnect_locked());
  }
  const bool has_deadline = timeout_ms >= 0;
  const Clock& wall = RealClock::instance();
  const Micros deadline =
      wall.now_micros() + static_cast<Micros>(timeout_ms) * 1000;
  int consecutive_conn_failures = 0;
  while (true) {
    // (Re)send under a fresh seq; a straggler reply to a superseded seq is
    // warn-dropped by route_message.
    request.set_seq(next_seq());
    const std::uint64_t awaited = request.seq();
    Status sent = endpoint_->send(request);
    if (!sent.is_ok()) {
      if (!can_reconnect_locked() ||
          ++consecutive_conn_failures > retry_.max_reconnects) {
        return sent;
      }
      TDP_RETURN_IF_ERROR(reconnect_locked());
      continue;
    }
    while (true) {
      int wait = -1;
      if (has_deadline) {
        const Micros now = wall.now_micros();
        if (now >= deadline) return make_error(ErrorCode::kTimeout, "call timed out");
        wait = static_cast<int>((deadline - now) / 1000 + 1);
      }
      if (retry_.enabled && retry_.attempt_timeout_ms > 0) {
        wait = wait < 0 ? retry_.attempt_timeout_ms
                        : std::min(wait, retry_.attempt_timeout_ms);
      }
      auto received = endpoint_->receive(wait);
      if (!received.is_ok()) {
        if (received.status().code() == ErrorCode::kTimeout) {
          if (has_deadline && wall.now_micros() >= deadline) {
            return make_error(ErrorCode::kTimeout, "call timed out");
          }
          if (retry_.enabled) {
            // The frame (or its reply) was probably lost; replay. All
            // requests are idempotent (puts overwrite, batches are
            // server-deduplicated by batch id).
            replays_.fetch_add(1, std::memory_order_relaxed);
            replays_counter().inc();
            break;
          }
          continue;
        }
        if (!can_reconnect_locked() ||
            ++consecutive_conn_failures > retry_.max_reconnects) {
          return received.status();
        }
        Status reconnected = reconnect_locked();
        if (!reconnected.is_ok()) return reconnected;
        break;  // resend on the fresh connection
      }
      consecutive_conn_failures = 0;
      Message reply;
      if (route_message(std::move(received).value(), awaited, &reply)) {
        return reply;
      }
    }
  }
}

bool AttrClient::route_message(Message msg, std::uint64_t awaited_seq,
                               Message* reply_out) {
  if (msg.type() == MsgType::kAttrNotify) {
    for (const auto& sub : subscriptions_) {
      if (sub.seq == msg.seq()) {
        NotifyCallback callback = sub.callback;
        std::string attribute = msg.get(field::kAttribute);
        std::string value = msg.get(field::kValue);
        // The notify carries the writer's trace header; dispatch the
        // callback under that ambient context so work it triggers joins
        // the writer's causal tree.
        const telemetry::SpanContext trace =
            telemetry::parse_context(msg.get_view(net::kTraceField));
        ready_callbacks_.push_back([callback = std::move(callback),
                                    attribute = std::move(attribute),
                                    value = std::move(value), trace] {
          telemetry::ScopedAmbient ambient(trace);
          callback(attribute, value);
        });
        return false;
      }
    }
    kLog.warn("notify for unknown subscription seq=", msg.seq());
    return false;
  }

  auto async_it = pending_async_.find(msg.seq());
  if (async_it != pending_async_.end() && msg.seq() != awaited_seq) {
    PendingAsync pending = std::move(async_it->second);
    pending_async_.erase(async_it);
    Status status = status_from_reply(msg);
    std::string value = msg.get(field::kValue);
    const telemetry::SpanContext trace =
        telemetry::parse_context(msg.get_view(net::kTraceField));
    ready_callbacks_.push_back([pending = std::move(pending), status,
                                value = std::move(value), trace] {
      telemetry::ScopedAmbient ambient(trace);
      pending.callback(status, pending.attribute, value);
    });
    return false;
  }

  if (msg.seq() == awaited_seq && awaited_seq != 0) {
    *reply_out = std::move(msg);
    return true;
  }

  kLog.warn("dropping unexpected message ", msg.to_string());
  return false;
}

int AttrClient::service_events() {
  std::deque<std::function<void()>> to_run;
  {
    LockGuard lock(mutex_);
    if (endpoint_ && endpoint_->is_open()) {
      while (true) {
        auto received = endpoint_->receive(0);
        if (!received.is_ok()) {
          // Drained (timeout) or disconnected. A poll-loop daemon calls
          // this every turn, so this is the natural place to heal a lost
          // connection: redial, rejoin, re-register subscriptions.
          if (received.status().code() != ErrorCode::kTimeout &&
              can_reconnect_locked()) {
            reconnect_locked();  // best effort; next turn retries again
          }
          break;
        }
        Message unused;
        route_message(std::move(received).value(), /*awaited_seq=*/0, &unused);
      }
    }
    to_run.swap(ready_callbacks_);
  }
  // Callbacks run outside the lock, on the caller's thread — the paper's
  // "well-known and (presumably) safe point".
  mutex_.assert_not_held();
  int dispatched = 0;
  for (auto& callback : to_run) {
    callback();
    ++dispatched;
  }
  return dispatched;
}

int AttrClient::readable_fd() const {
  LockGuard lock(mutex_);
  return endpoint_ ? endpoint_->readable_fd() : -1;
}

Status AttrClient::exit() {
  LockGuard lock(mutex_);
  if (exited_) return Status::ok();
  exited_ = true;
  if (!endpoint_ || !endpoint_->is_open()) return Status::ok();
  Message request(MsgType::kAttrExit);
  const std::uint64_t awaited = next_seq();
  request.set_seq(awaited);
  request.set(field::kContext, context_);
  Status sent = endpoint_->send(std::move(request));
  if (sent.is_ok()) {
    // Await the ack (with a bound) so the server-side refcount is settled
    // before we tear the connection down.
    const Clock& wall = RealClock::instance();
    const Micros deadline = wall.now_micros() + 2'000'000;
    while (wall.now_micros() < deadline) {
      auto received = endpoint_->receive(200);
      if (!received.is_ok()) {
        if (received.status().code() == ErrorCode::kTimeout) continue;
        break;
      }
      Message reply;
      if (route_message(std::move(received).value(), awaited, &reply)) break;
    }
  }
  endpoint_->close();
  return Status::ok();
}

void AttrClient::abandon() {
  LockGuard lock(mutex_);
  exited_ = true;
  if (endpoint_) endpoint_->close();
}

bool AttrClient::connected() const {
  LockGuard lock(mutex_);
  return endpoint_ && endpoint_->is_open() && !exited_;
}

}  // namespace tdp::attr
