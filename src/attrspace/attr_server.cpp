#include "attrspace/attr_server.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <optional>

#include "attrspace/attr_protocol.hpp"
#include "net/wire.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace tdp::attr {

using net::Message;
using net::MessageView;
using net::MsgType;

namespace {

telemetry::Counter& dispatch_counter() {
  static telemetry::Counter& c =
      telemetry::Registry::instance().counter("attrsrv.dispatch");
  return c;
}

// Recorded only for requests that carry a trace header; untraced hot-path
// messages pay a counter increment and a has-field check, nothing more.
telemetry::Histogram& dispatch_histogram() {
  static telemetry::Histogram& h =
      telemetry::Registry::instance().histogram("attrsrv.dispatch_us");
  return h;
}

/// True when `key` is `prefix` followed by one or more decimal digits
/// ("k12" for prefix "k"), the batch-put field naming scheme.
bool is_indexed_key(std::string_view key, std::string_view prefix,
                    std::string_view* index_out) {
  if (key.size() <= prefix.size() || key.substr(0, prefix.size()) != prefix) {
    return false;
  }
  std::string_view index = key.substr(prefix.size());
  for (char c : index) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  *index_out = index;
  return true;
}

}  // namespace

AttrServer::AttrServer(std::string name, std::shared_ptr<net::Transport> transport)
    : name_(std::move(name)), transport_(std::move(transport)) {}

AttrServer::~AttrServer() { stop(); }

Result<std::string> AttrServer::start(const std::string& listen_address) {
  auto listener = transport_->listen(listen_address);
  if (!listener.is_ok()) return listener.status();
  listener_ = std::move(listener).value();
  address_ = listener_->address();
  running_.store(true, std::memory_order_release);
  reactor_.add_readable(listener_->readable_fd(), [this] { on_acceptable(); });
  io_thread_ = std::thread([this] {
    io_thread_id_.store(std::this_thread::get_id(), std::memory_order_release);
    while (running_.load(std::memory_order_acquire)) {
      reactor_.run_once(-1);
    }
  });
  log::Logger(name_).info("attribute space server on ", address_);
  if (recorder_) recorder_->state("start", "address=" + address_);
  return address_;
}

void AttrServer::stop() {
  running_.store(false, std::memory_order_release);
  reactor_.stop();  // wakes the blocked poll so the I/O thread observes running_
  if (io_thread_.joinable()) io_thread_.join();

  std::map<int, std::shared_ptr<Connection>> conns;
  {
    LockGuard lock(conns_mutex_);
    conns.swap(conns_);
  }
  for (auto& [fd, conn] : conns) {
    reactor_.remove(fd);
    teardown(*conn);
  }
  if (listener_) {
    reactor_.remove(listener_->readable_fd());
    listener_->close();
  }
  if (recorder_) recorder_->state("stop", "");
}

void AttrServer::on_acceptable() {
  // Drain every pending connection: the reactor is level-triggered per
  // poll cycle, but accepting in a loop avoids one loop iteration per
  // queued connect under a connect burst.
  while (running_.load(std::memory_order_acquire)) {
    auto accepted = listener_->accept(0);
    if (!accepted.is_ok()) break;  // kTimeout: queue drained
    connections_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>();
    conn->endpoint = std::shared_ptr<net::Endpoint>(std::move(accepted).value());
    const int fd = conn->endpoint->readable_fd();
    if (fd < 0) {
      conn->endpoint->close();
      continue;
    }
    {
      LockGuard lock(conns_mutex_);
      conns_.emplace(fd, conn);
    }
    if (recorder_) recorder_->state("accept", "fd=" + std::to_string(fd));
    reactor_.add_readable(fd, [this, fd] { on_readable(fd); });
  }
}

void AttrServer::on_readable(int fd) {
  std::shared_ptr<Connection> conn;
  {
    LockGuard lock(conns_mutex_);
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;  // raced with stop()
    conn = it->second;
  }
  // Drain all complete frames; receive_view parses in place into the
  // connection's reused view, so the request path allocates nothing.
  while (running_.load(std::memory_order_acquire)) {
    Status received = conn->endpoint->receive_view(0, &conn->view);
    if (!received.is_ok()) {
      if (received.code() == ErrorCode::kTimeout) return;  // no full frame yet
      // Peer gone: crash cleanup (implicit tdp_exit) and unregister.
      reactor_.remove(fd);
      {
        LockGuard lock(conns_mutex_);
        conns_.erase(fd);
      }
      teardown(*conn);
      return;
    }
    handle_message(conn->view, *conn);
  }
}

void AttrServer::assert_io_thread() const {
#if TDP_LOCK_ORDER_CHECKS
  const std::thread::id io_id = io_thread_id_.load(std::memory_order_acquire);
  if (io_id != std::thread::id{} && io_id != std::this_thread::get_id()) {
    log::Logger(name_).error("dedup window touched off the I/O thread");
    std::abort();
  }
#endif
}

bool AttrServer::remember_batch(const std::string& batch_id) {
  // The recent-batch window is intentionally lock-free: only the reactor's
  // I/O thread may reach it, and it must not be reached with the connection
  // table locked (send() inside could then deadlock against stop()).
  assert_io_thread();
  conns_mutex_.assert_not_held();
  if (!recent_batch_ids_.insert(batch_id).second) return false;
  recent_batch_order_.push_back(batch_id);
  if (recent_batch_order_.size() > kBatchWindow) {
    recent_batch_ids_.erase(recent_batch_order_.front());
    recent_batch_order_.pop_front();
  }
  return true;
}

int AttrServer::admit_write() {
  if (!admission_.enabled) return 0;
  // Same lock-free discipline as the batch window: only the I/O thread
  // touches the bucket, so admission adds zero lock traffic to the hot path.
  assert_io_thread();
  const Micros now = admission_.clock->now_micros();
  if (admission_refill_at_ == 0) admission_refill_at_ = now;
  if (now > admission_refill_at_) {
    const double elapsed_s =
        static_cast<double>(now - admission_refill_at_) / 1e6;
    admission_tokens_ = std::min(admission_.burst,
                                 admission_tokens_ +
                                     elapsed_s * admission_.puts_per_sec);
    admission_refill_at_ = now;
  }
  if (admission_tokens_ >= 1.0) {
    admission_tokens_ -= 1.0;
    return 0;
  }
  busy_replies_.fetch_add(1, std::memory_order_relaxed);
  // Hint = time until one whole token refills at the sustained rate. The
  // hint paces the herd; the client layers jitter on top of it.
  const double deficit = 1.0 - admission_tokens_;
  const double rate =
      admission_.puts_per_sec > 0.0 ? admission_.puts_per_sec : 1.0;
  const int hint_ms = static_cast<int>(deficit * 1000.0 / rate) + 1;
  return std::max(admission_.min_retry_after_ms, hint_ms);
}

void AttrServer::teardown(Connection& conn) {
  // Cancel this client's watchers so their callbacks never touch a dead
  // endpoint, then treat unclosed inits as implicit tdp_exit (the daemon
  // crashed or forgot to exit).
  for (std::uint64_t id : conn.watcher_ids) store_.unsubscribe(id);
  for (const std::string& context : conn.opened_contexts) {
    auto closed = store_.close_context(context);
    if (closed.is_ok()) {
      log::Logger(name_).debug("implicit exit for context '", context,
                               "', refcount now ", closed.value());
    }
  }
  conn.endpoint->close();
  if (recorder_) {
    recorder_->state("teardown",
                     "contexts=" + std::to_string(conn.opened_contexts.size()));
  }
}

void AttrServer::handle_message(const MessageView& msg, Connection& conn) {
  dispatch_counter().inc();
  const std::string_view context = msg.get(field::kContext, kDefaultContext);
  const std::uint64_t seq = msg.seq();
  const std::shared_ptr<net::Endpoint>& endpoint = conn.endpoint;

  // A request carrying a trace header gets a server-side dispatch span
  // parented to the caller, plus a latency sample. Untraced requests (the
  // overwhelming hot path) skip both - see the <3% overhead target.
  const std::string_view trace_header = msg.get(net::kTraceField);
  std::optional<telemetry::Span> dispatch_span;
  Micros dispatch_start = 0;
  if (!trace_header.empty()) {
    const telemetry::SpanContext parent =
        telemetry::parse_context(trace_header);
    if (parent.valid()) {
      dispatch_span.emplace(net::msg_type_name(msg.type()), name_, parent);
      dispatch_start = telemetry::Tracer::instance().now();
    }
  }

  auto reply_status = [&](MsgType type, const Status& status) {
    Message reply(type);
    reply.set_seq(seq);
    reply.set(field::kStatus, status.is_ok() ? "ok" : "error");
    if (!status.is_ok()) reply.set(field::kError, status.to_string());
    endpoint->send(std::move(reply));
  };

  switch (msg.type()) {
    case MsgType::kAttrInit: {
      // First contact: adopt the client's wire-version advertisement and
      // advertise ours back (TCP receive already auto-upgrades on seeing a
      // v2 frame; the _wv field covers the first-message-is-v1 case).
      net::adopt_advertised_wire_version(*endpoint, msg);
      int refcount = store_.open_context(context);
      conn.opened_contexts.emplace_back(context);
      Message reply(MsgType::kAttrInitReply);
      reply.set_seq(seq);
      reply.set(field::kStatus, "ok");
      reply.set_int(field::kCount, refcount);
      net::advertise_wire_version(*endpoint, reply);
      endpoint->send(std::move(reply));
      break;
    }

    case MsgType::kAttrExit: {
      auto it = std::find(conn.opened_contexts.begin(), conn.opened_contexts.end(),
                          context);
      if (it == conn.opened_contexts.end()) {
        reply_status(MsgType::kAttrPutReply,
                     make_error(ErrorCode::kInvalidState,
                                "tdp_exit without matching tdp_init on this connection"));
        break;
      }
      conn.opened_contexts.erase(it);
      auto closed = store_.close_context(context);
      reply_status(MsgType::kAttrPutReply,
                   closed.is_ok() ? Status::ok() : closed.status());
      break;
    }

    case MsgType::kAttrPut: {
      if (const int retry_after_ms = admit_write(); retry_after_ms > 0) {
        Message reply(MsgType::kAttrPutReply);
        reply.set_seq(seq);
        reply.set(field::kStatus, "busy");
        reply.set_int(field::kRetryAfterMs, retry_after_ms);
        endpoint->send(std::move(reply));
        break;
      }
      Status status = store_.put(context, msg.get(field::kAttribute),
                                 std::string(msg.get(field::kValue)),
                                 std::string(trace_header));
      reply_status(MsgType::kAttrPutReply, status);
      break;
    }

    case MsgType::kAttrPutBatch: {
      if (const int retry_after_ms = admit_write(); retry_after_ms > 0) {
        Message reply(MsgType::kAttrPutReply);
        reply.set_seq(seq);
        reply.set(field::kStatus, "busy");
        reply.set_int(field::kRetryAfterMs, retry_after_ms);
        endpoint->send(std::move(reply));
        break;
      }
      // A batch id already in the recent window means the ack was lost and
      // the client replayed: acknowledge without applying again.
      const std::string batch_id(msg.get(field::kBatchId));
      if (!batch_id.empty() && !remember_batch(batch_id)) {
        batches_deduped_.fetch_add(1, std::memory_order_relaxed);
        Message reply(MsgType::kAttrPutReply);
        reply.set_seq(seq);
        reply.set(field::kStatus, "ok");
        reply.set_int(field::kCount, msg.get_int(field::kCount));
        endpoint->send(std::move(reply));
        break;
      }
      // Fields arrive as k0,v0,k1,v1,...; pair them positionally in one
      // pass (no per-key lookup, so a batch of N costs O(N)).
      Status status = Status::ok();
      std::int64_t applied = 0;
      std::string_view pending_attr;
      std::string_view pending_index;
      bool have_attr = false;
      for (const auto& f : msg.fields()) {
        std::string_view index;
        if (is_indexed_key(f.key, field::kKeyPrefix, &index)) {
          pending_attr = f.value;
          pending_index = index;
          have_attr = true;
        } else if (have_attr && is_indexed_key(f.key, field::kValPrefix, &index) &&
                   index == pending_index) {
          status = store_.put(context, pending_attr, std::string(f.value),
                              std::string(trace_header));
          have_attr = false;
          if (!status.is_ok()) break;
          ++applied;
        }
      }
      const std::int64_t expected = msg.get_int(field::kCount, applied);
      if (status.is_ok() && applied != expected) {
        status = make_error(ErrorCode::kInvalidArgument,
                            "batch put count mismatch: expected " +
                                std::to_string(expected) + ", applied " +
                                std::to_string(applied));
      }
      if (status.is_ok()) {
        batches_applied_.fetch_add(1, std::memory_order_relaxed);
      }
      Message reply(MsgType::kAttrPutReply);
      reply.set_seq(seq);
      reply.set(field::kStatus, status.is_ok() ? "ok" : "error");
      if (!status.is_ok()) reply.set(field::kError, status.to_string());
      reply.set_int(field::kCount, applied);
      endpoint->send(std::move(reply));
      break;
    }

    case MsgType::kAttrGet:
    case MsgType::kAttrAsyncGet: {
      const std::string_view attribute = msg.get(field::kAttribute);
      const bool block = msg.get(field::kBlock) == "1" ||
                         msg.type() == MsgType::kAttrAsyncGet;
      if (!block) {
        std::string stored_trace;
        auto value = store_.get(context, attribute, &stored_trace);
        Message reply(MsgType::kAttrGetReply);
        reply.set_seq(seq);
        reply.set(field::kAttribute, std::string(attribute));
        if (value.is_ok()) {
          reply.set(field::kStatus, "ok").set(field::kValue, std::move(value).value());
          // The reply carries the *writer's* trace so the reader can join
          // the causal tree of whoever produced the value.
          if (!stored_trace.empty()) {
            reply.set(net::kTraceField, std::move(stored_trace));
          }
        } else {
          reply.set(field::kStatus, "error")
              .set(field::kError, value.status().to_string());
        }
        endpoint->send(std::move(reply));
        break;
      }
      // Parked get: reply fires from whichever thread performs the put.
      std::weak_ptr<net::Endpoint> weak = endpoint;
      std::uint64_t id = store_.get_or_wait_traced(
          context, attribute,
          [weak, seq](const std::string&, const std::string& attr,
                      const std::string& value, const std::string& trace) {
            if (auto ep = weak.lock()) {
              Message reply(MsgType::kAttrGetReply);
              reply.set_seq(seq);
              reply.set(field::kStatus, "ok");
              reply.set(field::kAttribute, attr);
              reply.set(field::kValue, value);
              if (!trace.empty()) reply.set(net::kTraceField, trace);
              ep->send(std::move(reply));
            }
          });
      if (id != 0) conn.watcher_ids.push_back(id);
      break;
    }

    case MsgType::kAttrSubscribe: {
      // A replayed subscribe (ack lost in flight) must not register twice,
      // or the client would get every notify duplicated.
      if (auto existing = conn.subs_by_seq.find(seq);
          existing != conn.subs_by_seq.end()) {
        Message reply(MsgType::kAttrPutReply);
        reply.set_seq(seq);
        reply.set(field::kStatus, "ok");
        reply.set_int(field::kSubId, static_cast<std::int64_t>(existing->second));
        endpoint->send(std::move(reply));
        break;
      }
      const std::string_view pattern = msg.get(field::kPattern);
      std::weak_ptr<net::Endpoint> weak = endpoint;
      std::uint64_t id = store_.subscribe_traced(
          context, pattern,
          [weak, seq](const std::string&, const std::string& attr,
                      const std::string& value, const std::string& trace) {
            if (auto ep = weak.lock()) {
              Message notify(MsgType::kAttrNotify);
              notify.set_seq(seq);  // correlates with the subscribe request
              notify.set(field::kAttribute, attr);
              notify.set(field::kValue, value);
              if (!trace.empty()) notify.set(net::kTraceField, trace);
              ep->send(std::move(notify));
            }
          });
      conn.watcher_ids.push_back(id);
      conn.subs_by_seq.emplace(seq, id);
      Message reply(MsgType::kAttrPutReply);
      reply.set_seq(seq);
      reply.set(field::kStatus, "ok");
      reply.set_int(field::kSubId, static_cast<std::int64_t>(id));
      endpoint->send(std::move(reply));
      break;
    }

    case MsgType::kAttrRemove: {
      reply_status(MsgType::kAttrPutReply,
                   store_.remove(context, msg.get(field::kAttribute)));
      break;
    }

    case MsgType::kAttrList: {
      auto pairs = store_.list(context);
      Message reply(MsgType::kAttrListReply);
      reply.set_seq(seq);
      reply.reserve_fields(2 + 2 * pairs.size());
      reply.set(field::kStatus, "ok");
      reply.set_int(field::kCount, static_cast<std::int64_t>(pairs.size()));
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        reply.set(field::kKeyPrefix + std::to_string(i), std::move(pairs[i].first));
        reply.set(field::kValPrefix + std::to_string(i), std::move(pairs[i].second));
      }
      endpoint->send(std::move(reply));
      break;
    }

    case MsgType::kPing: {
      Message reply(MsgType::kPong);
      reply.set_seq(seq);
      endpoint->send(std::move(reply));
      break;
    }

    default: {
      reply_status(MsgType::kAttrPutReply,
                   make_error(ErrorCode::kInvalidArgument,
                              std::string("unexpected message: ") +
                                  net::msg_type_name(msg.type())));
      break;
    }
  }

  if (dispatch_span.has_value()) {
    const Micros start = dispatch_start;
    dispatch_span->end();
    dispatch_histogram().record(static_cast<std::uint64_t>(
        std::max<Micros>(0, telemetry::Tracer::instance().now() - start)));
  }
}

}  // namespace tdp::attr
