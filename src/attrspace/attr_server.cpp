#include "attrspace/attr_server.hpp"

#include <algorithm>

#include "attrspace/attr_protocol.hpp"
#include "util/log.hpp"

namespace tdp::attr {

using net::Message;
using net::MsgType;

AttrServer::AttrServer(std::string name, std::shared_ptr<net::Transport> transport)
    : name_(std::move(name)), transport_(std::move(transport)) {}

AttrServer::~AttrServer() { stop(); }

Result<std::string> AttrServer::start(const std::string& listen_address) {
  auto listener = transport_->listen(listen_address);
  if (!listener.is_ok()) return listener.status();
  listener_ = std::move(listener).value();
  address_ = listener_->address();
  running_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    threads_.emplace_back([this] { accept_loop(); });
  }
  log::Logger(name_).info("attribute space server on ", address_);
  return address_;
}

void AttrServer::stop() {
  running_.store(false, std::memory_order_release);
  if (listener_) listener_->close();
  while (true) {
    std::vector<std::thread> to_join;
    std::vector<std::shared_ptr<net::Endpoint>> to_close;
    {
      std::lock_guard<std::mutex> lock(threads_mutex_);
      to_join.swap(threads_);
      to_close.swap(live_endpoints_);
    }
    if (to_join.empty() && to_close.empty()) break;
    for (auto& endpoint : to_close) endpoint->close();
    for (auto& thread : to_join) {
      if (thread.joinable()) thread.join();
    }
  }
}

void AttrServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    auto accepted = listener_->accept(200);
    if (!accepted.is_ok()) {
      if (accepted.status().code() == ErrorCode::kTimeout) continue;
      break;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<net::Endpoint> endpoint(std::move(accepted).value().release());
    std::lock_guard<std::mutex> lock(threads_mutex_);
    if (!running_.load(std::memory_order_acquire)) {
      endpoint->close();
      break;
    }
    live_endpoints_.push_back(endpoint);
    threads_.emplace_back([this, endpoint] { serve_connection(endpoint); });
  }
}

void AttrServer::serve_connection(std::shared_ptr<net::Endpoint> endpoint) {
  std::vector<std::uint64_t> watcher_ids;    // waiters/subscriptions owned here
  std::vector<std::string> opened_contexts;  // for implicit-exit crash cleanup
  while (running_.load(std::memory_order_acquire)) {
    auto received = endpoint->receive(200);
    if (!received.is_ok()) {
      if (received.status().code() == ErrorCode::kTimeout) continue;
      break;  // peer gone
    }
    handle_message(received.value(), endpoint, watcher_ids, opened_contexts);
  }
  // Connection teardown: cancel this client's watchers so their callbacks
  // never touch a dead endpoint, then treat unclosed inits as implicit
  // tdp_exit (the daemon crashed or forgot to exit).
  for (std::uint64_t id : watcher_ids) store_.unsubscribe(id);
  for (const std::string& context : opened_contexts) {
    auto closed = store_.close_context(context);
    if (closed.is_ok()) {
      log::Logger(name_).debug("implicit exit for context '", context,
                               "', refcount now ", closed.value());
    }
  }
  endpoint->close();
}

void AttrServer::handle_message(const Message& msg,
                                const std::shared_ptr<net::Endpoint>& endpoint,
                                std::vector<std::uint64_t>& watcher_ids,
                                std::vector<std::string>& opened_contexts) {
  const std::string context = msg.get(field::kContext, kDefaultContext);
  const std::uint64_t seq = msg.seq();

  auto reply_status = [&](MsgType type, const Status& status) {
    Message reply(type);
    reply.set_seq(seq);
    reply.set(field::kStatus, status.is_ok() ? "ok" : "error");
    if (!status.is_ok()) reply.set(field::kError, status.to_string());
    endpoint->send(reply);
  };

  switch (msg.type()) {
    case MsgType::kAttrInit: {
      int refcount = store_.open_context(context);
      opened_contexts.push_back(context);
      Message reply(MsgType::kAttrInitReply);
      reply.set_seq(seq);
      reply.set(field::kStatus, "ok");
      reply.set_int(field::kCount, refcount);
      endpoint->send(reply);
      break;
    }

    case MsgType::kAttrExit: {
      auto it = std::find(opened_contexts.begin(), opened_contexts.end(), context);
      if (it == opened_contexts.end()) {
        reply_status(MsgType::kAttrPutReply,
                     make_error(ErrorCode::kInvalidState,
                                "tdp_exit without matching tdp_init on this connection"));
        break;
      }
      opened_contexts.erase(it);
      auto closed = store_.close_context(context);
      reply_status(MsgType::kAttrPutReply,
                   closed.is_ok() ? Status::ok() : closed.status());
      break;
    }

    case MsgType::kAttrPut: {
      Status status = store_.put(context, msg.get(field::kAttribute),
                                 msg.get(field::kValue));
      reply_status(MsgType::kAttrPutReply, status);
      break;
    }

    case MsgType::kAttrGet:
    case MsgType::kAttrAsyncGet: {
      const std::string attribute = msg.get(field::kAttribute);
      const bool block = msg.get(field::kBlock) == "1" ||
                         msg.type() == MsgType::kAttrAsyncGet;
      if (!block) {
        auto value = store_.get(context, attribute);
        Message reply(MsgType::kAttrGetReply);
        reply.set_seq(seq);
        reply.set(field::kAttribute, attribute);
        if (value.is_ok()) {
          reply.set(field::kStatus, "ok").set(field::kValue, value.value());
        } else {
          reply.set(field::kStatus, "error")
              .set(field::kError, value.status().to_string());
        }
        endpoint->send(reply);
        break;
      }
      // Parked get: reply fires from whichever thread performs the put.
      std::weak_ptr<net::Endpoint> weak = endpoint;
      std::uint64_t id = store_.get_or_wait(
          context, attribute,
          [weak, seq](const std::string&, const std::string& attr,
                      const std::string& value) {
            if (auto ep = weak.lock()) {
              Message reply(MsgType::kAttrGetReply);
              reply.set_seq(seq);
              reply.set(field::kStatus, "ok");
              reply.set(field::kAttribute, attr);
              reply.set(field::kValue, value);
              ep->send(reply);
            }
          });
      if (id != 0) watcher_ids.push_back(id);
      break;
    }

    case MsgType::kAttrSubscribe: {
      const std::string pattern = msg.get(field::kPattern);
      std::weak_ptr<net::Endpoint> weak = endpoint;
      std::uint64_t id = store_.subscribe(
          context, pattern,
          [weak, seq](const std::string&, const std::string& attr,
                      const std::string& value) {
            if (auto ep = weak.lock()) {
              Message notify(MsgType::kAttrNotify);
              notify.set_seq(seq);  // correlates with the subscribe request
              notify.set(field::kAttribute, attr);
              notify.set(field::kValue, value);
              ep->send(notify);
            }
          });
      watcher_ids.push_back(id);
      Message reply(MsgType::kAttrPutReply);
      reply.set_seq(seq);
      reply.set(field::kStatus, "ok");
      reply.set_int(field::kSubId, static_cast<std::int64_t>(id));
      endpoint->send(reply);
      break;
    }

    case MsgType::kAttrRemove: {
      reply_status(MsgType::kAttrPutReply,
                   store_.remove(context, msg.get(field::kAttribute)));
      break;
    }

    case MsgType::kAttrList: {
      auto pairs = store_.list(context);
      Message reply(MsgType::kAttrListReply);
      reply.set_seq(seq);
      reply.set(field::kStatus, "ok");
      reply.set_int(field::kCount, static_cast<std::int64_t>(pairs.size()));
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        reply.set(field::kKeyPrefix + std::to_string(i), pairs[i].first);
        reply.set(field::kValPrefix + std::to_string(i), pairs[i].second);
      }
      endpoint->send(reply);
      break;
    }

    case MsgType::kPing: {
      Message reply(MsgType::kPong);
      reply.set_seq(seq);
      endpoint->send(reply);
      break;
    }

    default: {
      reply_status(MsgType::kAttrPutReply,
                   make_error(ErrorCode::kInvalidArgument,
                              std::string("unexpected message: ") +
                                  net::msg_type_name(msg.type())));
      break;
    }
  }
}

}  // namespace tdp::attr
