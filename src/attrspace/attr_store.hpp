// attr_store.hpp - the in-memory attribute-value space (Section 2.1, 3.2).
//
// "Information in the shared environment space is kept in the form of
// (attribute, value) pairs, where both the attribute and value are
// constrained only to be null-terminated strings."
//
// The store is context-aware: "A RM that deals simultaneously with several
// RT may initialize a different space for each RT ... Each RT interacts
// with the RM through its own local Attribute Space, called a context."
// Contexts are reference counted and "will be destroyed when the last
// element using the specific context calls tdp_exit."
//
// The store also implements the waiter/subscription machinery the LASS and
// CASS servers use to park blocking gets and deliver asynchronous
// notifications.
//
// Concurrency: the store is sharded by context hash (kShardCount shards,
// each under its own tdp::SharedMutex). Everything belonging to a context
// — its attribute table, refcount, and watchers — lives in one shard, so
// clients working in different contexts never contend, and read-side
// operations (get/list/context_exists) take shared locks. Watcher and
// subscription callbacks always fire outside the shard lock, preserving
// the original contract.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/journal.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace tdp::attr {

/// Fired when a matching attribute is stored: (context, attribute, value).
using AttrCallback =
    std::function<void(const std::string&, const std::string&, const std::string&)>;

/// Trace-aware variant: also receives the telemetry trace header that rode
/// the put which stored the value ("" when the writer was untraced). The
/// servers use this to stamp replies/notifications so a blocked get in one
/// daemon joins the causal tree of the put that released it (Figure 6: the
/// starter's put("pid") parents paradynd's attach).
using TracedCallback = std::function<void(
    const std::string&, const std::string&, const std::string&, const std::string&)>;

/// Thread-safe attribute store shared by one server (LASS or CASS).
class AttributeStore {
 public:
  /// Shards in the context-hash partition. 16 is comfortably above the
  /// number of I/O threads that ever touch one store.
  static constexpr std::size_t kShardCount = 16;

  AttributeStore() = default;

  AttributeStore(const AttributeStore&) = delete;
  AttributeStore& operator=(const AttributeStore&) = delete;

  // --- context lifecycle (tdp_init / tdp_exit) ---

  /// Adds one participant to `context`, creating it if needed. Returns the
  /// new participant count.
  int open_context(std::string_view context);

  /// Removes one participant; when the count reaches zero the context and
  /// all its attributes are destroyed (Section 3.2). kNotFound when the
  /// context has no participants.
  Result<int> close_context(std::string_view context);

  [[nodiscard]] bool context_exists(std::string_view context) const;
  [[nodiscard]] int context_refcount(std::string_view context) const;

  // --- attribute operations ---

  /// Stores (attribute, value); overwrites silently, then fires all
  /// matching waiters (one-shot) and subscriptions, outside the lock.
  Status put(std::string_view context, std::string_view attribute,
             std::string value) {
    return put(context, attribute, std::move(value), std::string());
  }

  /// Trace-carrying put: `trace` is the wire trace header of the writer
  /// (retained with the value and handed to watchers; "" = untraced).
  Status put(std::string_view context, std::string_view attribute,
             std::string value, std::string trace);

  /// Immediate lookup; kNotFound when absent (the paper's documented
  /// non-blocking failure mode for tdp_get).
  Result<std::string> get(std::string_view context,
                          std::string_view attribute) const {
    return get(context, attribute, nullptr);
  }

  /// As above; additionally copies the stored trace header (possibly "")
  /// into *trace_out on success when trace_out is non-null.
  Result<std::string> get(std::string_view context, std::string_view attribute,
                          std::string* trace_out) const;

  /// Removes an attribute; kNotFound when absent.
  Status remove(std::string_view context, std::string_view attribute);

  /// Snapshot of all pairs in a context, sorted by attribute name.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> list(
      std::string_view context) const;

  /// Total number of attributes across all contexts (diagnostics).
  [[nodiscard]] std::size_t size() const;

  // --- waiters and subscriptions ---

  /// Atomic get-or-register: when the attribute exists, invokes `callback`
  /// immediately (on the calling thread) and returns 0; otherwise registers
  /// a one-shot waiter fired by the next matching put and returns its
  /// nonzero registration id (usable with unsubscribe).
  std::uint64_t get_or_wait(std::string_view context, std::string_view attribute,
                            AttrCallback callback);

  /// get_or_wait whose callback also receives the writer's trace header
  /// (the stored one on an immediate hit, the releasing put's otherwise).
  std::uint64_t get_or_wait_traced(std::string_view context,
                                   std::string_view attribute,
                                   TracedCallback callback);

  /// Persistent subscription: fires on every put whose attribute matches
  /// `pattern` (exact string, or prefix match when the pattern ends with
  /// '*'). Returns a nonzero subscription id.
  std::uint64_t subscribe(std::string_view context, std::string_view pattern,
                          AttrCallback callback);

  /// subscribe whose callback also receives each put's trace header.
  std::uint64_t subscribe_traced(std::string_view context,
                                 std::string_view pattern,
                                 TracedCallback callback);

  /// Cancels a waiter or subscription; unknown ids are ignored.
  void unsubscribe(std::uint64_t id);

  /// Count of outstanding waiters + subscriptions (diagnostics/tests).
  [[nodiscard]] std::size_t watcher_count() const;

  // --- durability (PR 5) ---

  /// Flags attribute-name prefixes as durable: every put whose attribute
  /// starts with one of `prefixes` is also appended to `journal` (not
  /// owned; must outlive the store). A LASS restarted after a crash calls
  /// recover_durable() to reload them - the paper's pid rediscovery
  /// (Figure 6) depends on entries like "pid" surviving the server.
  void configure_durability(journal::Journal* journal,
                            std::vector<std::string> prefixes);

  /// Replays durable entries from the journal into the store (watchers
  /// fire as for normal puts), then compacts the journal to a snapshot of
  /// the surviving entries. kInvalidState without configure_durability.
  Status recover_durable();

 private:
  struct Watcher {
    std::uint64_t id = 0;
    std::string context;
    std::string pattern;  ///< exact name, or prefix when trailing '*'
    bool one_shot = false;
    TracedCallback callback;
  };

  /// A stored value plus the trace header of the put that wrote it.
  struct Entry {
    std::string value;
    std::string trace;
  };

  /// One partition: contexts whose hash lands here, plus their refcounts
  /// and watchers. std::less<> enables allocation-free string_view lookups.
  struct Shard {
    mutable SharedMutex mutex{"AttributeStore::Shard::mutex"};
    std::map<std::string, std::map<std::string, Entry, std::less<>>,
             std::less<>>
        contexts TDP_GUARDED_BY(mutex);
    std::map<std::string, int, std::less<>> refcounts TDP_GUARDED_BY(mutex);
    std::vector<Watcher> watchers TDP_GUARDED_BY(mutex);
  };

  Shard& shard_for(std::string_view context) {
    return shards_[std::hash<std::string_view>{}(context) % kShardCount];
  }
  const Shard& shard_for(std::string_view context) const {
    return shards_[std::hash<std::string_view>{}(context) % kShardCount];
  }

  /// Collects the callbacks of every watcher matching (context, attribute),
  /// erasing one-shot waiters as it goes.
  static void match_watchers_locked(Shard& shard, std::string_view context,
                                    std::string_view attribute,
                                    std::vector<TracedCallback>& to_fire)
      TDP_REQUIRES(shard.mutex);

  /// Registers a watcher in the shard and returns its id.
  std::uint64_t add_watcher_locked(Shard& shard, std::string_view context,
                                   std::string_view pattern, bool one_shot,
                                   TracedCallback callback)
      TDP_REQUIRES(shard.mutex);

  static bool pattern_matches(const std::string& pattern, std::string_view attribute);

  /// Appends (context, attribute, value, trace) to the durable journal when
  /// the attribute carries a durable prefix. Called outside shard locks.
  void maybe_journal_put(std::string_view context, std::string_view attribute,
                         const std::string& value, const std::string& trace);

  std::array<Shard, kShardCount> shards_;
  std::atomic<std::uint64_t> next_id_{1};

  /// Leaf lock (like the journal's own): taken after any shard mutex is
  /// released, never while calling out.
  mutable Mutex durability_mutex_{"AttributeStore::durability_mutex_"};
  journal::Journal* durable_journal_ TDP_GUARDED_BY(durability_mutex_) = nullptr;
  std::vector<std::string> durable_prefixes_ TDP_GUARDED_BY(durability_mutex_);
};

}  // namespace tdp::attr
