// attr_client.hpp - client side of the attribute space.
//
// This class implements the communication model of Sections 3.2 and 3.3:
//
//   * tdp_put / tdp_get       -> put() / get() (blocking forms);
//                                try_get() is the documented error-if-absent
//                                variant ("an error is returned if the
//                                attribute is not contained in the space").
//   * tdp_async_get/put       -> async_get() / async_put(); both "return
//                                immediately ... the callback function will
//                                be executed when the operation completes".
//   * tdp_service_event       -> service_events(); callbacks are only ever
//                                invoked from inside service_events() or a
//                                blocking call on the caller's own thread —
//                                never from signals or hidden threads, which
//                                is exactly the paper's design rationale.
//   * the "tdp_fd"            -> readable_fd(); activity on it tells a
//                                poll-based daemon loop to call
//                                service_events().
//
// Thread safety: all public methods are safe to call concurrently; the
// paper requires the library to be usable from serial and multi-threaded
// daemons alike.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/transport.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace tdp::attr {

/// Completion callback: (status, attribute, value). For puts, `value` is
/// the value that was stored.
using CompletionCallback =
    std::function<void(const Status&, const std::string&, const std::string&)>;

/// Notification callback for subscriptions: (attribute, value).
using NotifyCallback = std::function<void(const std::string&, const std::string&)>;

/// Failure-recovery policy (disabled by default: a clean transport never
/// needs it, and tests of failure semantics want the raw behaviour).
///
/// With `enabled`:
///   * kConnectionError on any round trip redials the server (exponential
///     backoff with jitter, at most `max_reconnects` consecutive tries),
///     re-runs the tdp_init handshake, re-registers every subscription and
///     replays in-flight async operations;
///   * a reply not arriving within `attempt_timeout_ms` replays the
///     request with a fresh seq (recovers from a dropped frame). Replay is
///     safe: puts overwrite idempotently and batches carry a batch id the
///     server deduplicates on.
/// Caller-supplied deadlines (e.g. get(timeout_ms)) still bound the whole
/// operation; retry never extends them.
struct RetryPolicy {
  bool enabled = false;
  int max_reconnects = 5;         ///< consecutive redials before giving up
  int attempt_timeout_ms = 1000;  ///< reply wait before an idempotent replay
  int base_backoff_ms = 5;        ///< first backoff; doubles per attempt
  int max_backoff_ms = 200;       ///< backoff ceiling
  /// Honor a server's status="busy" retry-after hint by waiting it out
  /// (plus jitter) and retrying, up to max_reconnects attempts. Off: the
  /// busy reply surfaces immediately as ErrorCode::kBusy.
  bool honor_retry_after = true;
};

/// Backoff before retry `attempt` (1-based). With a positive server hint
/// (a busy reply's retry_after_ms) the delay is the hint plus up to half
/// the hint again of jitter — the server paces the herd, the jitter
/// desynchronizes it. Without a hint: exponential from base_backoff_ms,
/// doubling per attempt with the exponent clamped so a huge attempt count
/// cannot shift past the integer width (UB), capped at max_backoff_ms and
/// half-jittered ("half deterministic, half jitter").
int backoff_delay_ms(const RetryPolicy& policy, int attempt, int server_hint_ms,
                     Rng& jitter);

/// Parses the retry-after hint out of a kBusy Status produced by
/// status_from_reply (message carries "retry_after_ms=<n>"); 0 if absent.
int retry_after_hint_ms(const Status& status);

class AttrClient {
 public:
  /// Connects to an attribute server and joins `context` (the tdp_init
  /// handshake). The context is reference counted server-side. With an
  /// enabled `retry` policy the initial dial also retries, and `transport`
  /// must outlive the client (it is kept for reconnects).
  static Result<std::unique_ptr<AttrClient>> connect(net::Transport& transport,
                                                     const std::string& address,
                                                     const std::string& context,
                                                     RetryPolicy retry = {});

  /// Adopts an already-established endpoint (used when the connection was
  /// set up through the RM's proxy, Section 2.4).
  static Result<std::unique_ptr<AttrClient>> adopt(
      std::unique_ptr<net::Endpoint> endpoint, const std::string& context);

  ~AttrClient();

  AttrClient(const AttrClient&) = delete;
  AttrClient& operator=(const AttrClient&) = delete;

  // --- blocking operations (Section 3.2) ---

  /// Stores (attribute, value); blocks until the server acknowledges.
  Status put(const std::string& attribute, const std::string& value);

  /// Stores all (attribute, value) pairs in one round trip (one request,
  /// one ack), the batched form daemons use to publish N related
  /// attributes — e.g. paradynd reporting a whole metric sample batch —
  /// without paying N network round trips.
  Status put_batch(const std::vector<std::pair<std::string, std::string>>& pairs);

  /// Blocking get: waits until the attribute is present (parked server
  /// side), subject to `timeout_ms` (<0 = wait forever).
  Result<std::string> get(const std::string& attribute, int timeout_ms = -1);

  /// Non-waiting get: kNotFound when the attribute is absent.
  Result<std::string> try_get(const std::string& attribute);

  /// Removes an attribute.
  Status remove(const std::string& attribute);

  /// Lists all (attribute, value) pairs in this context.
  Result<std::vector<std::pair<std::string, std::string>>> list();

  // --- asynchronous operations (Sections 3.2-3.3) ---

  /// Requests the attribute; returns immediately. The callback fires from
  /// a later service_events() call (or is queued by an intervening blocking
  /// call). Returns the descriptor to poll (the paper's "tdp_fd").
  Result<int> async_get(const std::string& attribute, CompletionCallback callback);

  /// Stores the attribute asynchronously; callback on acknowledgement.
  Result<int> async_put(const std::string& attribute, const std::string& value,
                        CompletionCallback callback);

  /// Registers for notification on every put matching `pattern` (exact
  /// name or trailing-'*' prefix). Notifications dispatch from
  /// service_events().
  Status subscribe(const std::string& pattern, NotifyCallback callback);

  /// Drains pending traffic without blocking and invokes all completed
  /// callbacks on the calling thread. Returns the number dispatched.
  int service_events();

  /// Descriptor that polls readable when service_events() has work.
  [[nodiscard]] int readable_fd() const;

  // --- failure recovery ---

  /// Installs (or replaces) the retry policy. Reconnection additionally
  /// requires the client to have been built with connect() — an adopted
  /// endpoint has no dial string, so only timeout replay applies there.
  void set_retry_policy(RetryPolicy retry);

  /// Successful redial+rejoin cycles performed so far.
  [[nodiscard]] int reconnects() const noexcept {
    return reconnects_.load(std::memory_order_relaxed);
  }
  /// Requests re-sent after a lost frame (timeout replay).
  [[nodiscard]] int replays() const noexcept {
    return replays_.load(std::memory_order_relaxed);
  }

  // --- lifecycle ---

  /// tdp_exit: leaves the context (destroyed server-side when the last
  /// participant exits) and closes the connection.
  Status exit();

  /// Simulates daemon death: drops the connection without the tdp_exit
  /// protocol, exactly as a crashed process would. The server learns about
  /// it only through the broken transport (or a missed lease heartbeat).
  void abandon();

  [[nodiscard]] const std::string& context() const noexcept { return context_; }
  [[nodiscard]] bool connected() const;

 private:
  AttrClient(std::unique_ptr<net::Endpoint> endpoint, std::string context);

  Status perform_init();

  /// Sends a request and waits for the reply whose seq matches, routing
  /// unrelated inbound messages (async completions, notifications) to the
  /// pending queue for later dispatch. Applies the retry policy.
  Result<net::Message> call(net::Message request, int timeout_ms)
      TDP_EXCLUDES(mutex_);
  Result<net::Message> call_locked(net::Message request, int timeout_ms)
      TDP_REQUIRES(mutex_);

  /// True when the policy allows redialing the server.
  [[nodiscard]] bool can_reconnect_locked() const TDP_REQUIRES(mutex_);

  /// Redials, re-runs tdp_init, re-registers subscriptions and replays
  /// in-flight async requests. Backoff between attempts.
  Status reconnect_locked() TDP_REQUIRES(mutex_);

  /// The kAttrInit round trip on the current endpoint.
  Status init_on_endpoint_locked() TDP_REQUIRES(mutex_);

  /// Routes one inbound message; returns true if it was the awaited reply.
  bool route_message(net::Message msg, std::uint64_t awaited_seq,
                     net::Message* reply_out) TDP_REQUIRES(mutex_);

  std::uint64_t next_seq() TDP_REQUIRES(mutex_);

  std::string context_;

  std::atomic<int> reconnects_{0};
  std::atomic<int> replays_{0};
  std::uint64_t batch_nonce_ = 0;  ///< set once in the ctor, immutable after

  mutable Mutex mutex_{"AttrClient::mutex_"};
  // The request/reply state machine mutex_ serializes.
  std::unique_ptr<net::Endpoint> endpoint_ TDP_GUARDED_BY(mutex_);
  /// Dial info for reconnects; null/empty when built via adopt().
  net::Transport* transport_ TDP_GUARDED_BY(mutex_) = nullptr;
  std::string address_ TDP_GUARDED_BY(mutex_);
  RetryPolicy retry_ TDP_GUARDED_BY(mutex_);
  /// Jitter source for reconnect backoff; reseeded per client.
  Rng backoff_rng_ TDP_GUARDED_BY(mutex_){0x7d9fau};
  std::uint64_t batch_counter_ TDP_GUARDED_BY(mutex_) = 0;
  std::uint64_t seq_ TDP_GUARDED_BY(mutex_) = 0;

  struct PendingAsync {
    net::MsgType type = net::MsgType::kInvalid;  ///< for replay after reconnect
    std::string attribute;
    std::string value;  ///< puts only
    CompletionCallback callback;
  };
  std::map<std::uint64_t, PendingAsync> pending_async_ TDP_GUARDED_BY(mutex_);

  struct Subscription {
    std::uint64_t seq = 0;  ///< seq of the subscribe request, echoed in notifies
    std::string pattern;    ///< kept so reconnect can re-register
    NotifyCallback callback;
  };
  std::vector<Subscription> subscriptions_ TDP_GUARDED_BY(mutex_);

  /// Callbacks ready to run at the next service_events().
  std::deque<std::function<void()>> ready_callbacks_ TDP_GUARDED_BY(mutex_);

  bool exited_ TDP_GUARDED_BY(mutex_) = false;
};

}  // namespace tdp::attr
